/**
 * @file
 * Counter-format explorer: watch a MorphCtr-128 cacheline morph.
 *
 * Drives one morphable counter line through the regimes the paper
 * designs for and prints the internal representation at each step:
 *
 *   sparse writes   -> ZCC with wide (16-bit) counters
 *   spreading out   -> ZCC widths shrink (8, 7, 6, 5, 4 bits)
 *   65th counter    -> morph to MCR (double-base, 3-bit minors)
 *   uniform storm   -> rebases absorb saturation without resets
 *   hot hammering   -> set reset, then base overflow back to ZCC
 *   adversarial mix -> the paper's 67-write worst case
 *
 * Build & run:  ./build/examples/counter_explorer
 */

#include <cstdio>

#include "counters/mcr_codec.hh"
#include "counters/morph_counter.hh"
#include "counters/zcc_codec.hh"

namespace
{

using namespace morph;

void
show(const MorphableCounterFormat &format, const CachelineData &line,
     const char *moment)
{
    std::printf("%-44s | ", moment);
    if (format.inZccFormat(line)) {
        std::printf("ZCC  major=%-8llu live=%-3u width=%u bits\n",
                    (unsigned long long)zcc::majorOf(line),
                    zcc::count(line), zcc::ctrSz(line));
    } else {
        std::printf("MCR  major=%-8llu bases={%u,%u} live=%u\n",
                    (unsigned long long)mcr::majorOf(line),
                    mcr::base(line, 0), mcr::base(line, 1),
                    mcr::nonZeroCount(line));
    }
}

} // namespace

int
main()
{
    MorphableCounterFormat format(/*rebasing=*/true);
    CachelineData line;
    format.init(line);
    show(format, line, "fresh line");

    // Sparse phase: a few hot counters get 16 bits each. Values stay
    // at 12 so every later ZCC width (down to 4 bits) still fits —
    // but 12 does NOT fit a 3-bit MCR minor, setting up the morph
    // failure below.
    for (int w = 0; w < 48; ++w)
        format.increment(line, unsigned(w % 4));
    show(format, line, "4 hot children, 12 writes each");

    // Spreading: widths shrink as the population grows.
    for (unsigned i = 4; i < 30; ++i)
        format.increment(line, i);
    show(format, line, "30 live children");
    for (unsigned i = 30; i < 64; ++i)
        format.increment(line, i);
    show(format, line, "64 live children");

    // The 65th child cannot morph losslessly (the hot children hold
    // values >> 7): a full reset re-encrypts all 128 children.
    WriteResult res = format.increment(line, 64);
    std::printf("  -> 65th child: overflow=%d re-encrypt=%u "
                "(values too large to morph)\n",
                int(res.overflow), res.reencCount());
    show(format, line, "after overflow reset");

    // Uniform storm: fill all 128, then sweep; rebases do the work.
    for (unsigned i = 0; i < 128; ++i)
        format.increment(line, i);
    show(format, line, "all 128 live (morphed losslessly)");
    unsigned rebases = 0, overflows = 0;
    for (int sweep = 0; sweep < 20; ++sweep) {
        for (unsigned i = 0; i < 128; ++i) {
            res = format.increment(line, i);
            rebases += res.rebase;
            overflows += res.overflow;
        }
    }
    std::printf("  -> 20 uniform sweeps (2560 writes): %u rebases, "
                "%u overflows\n",
                rebases, overflows);
    show(format, line, "after uniform storm");

    // Hot hammering: rebases run out when the set's minimum is zero.
    overflows = 0;
    unsigned writes = 0;
    while (overflows == 0) {
        res = format.increment(line, 0);
        overflows += res.overflow;
        ++writes;
    }
    std::printf("  -> hammering child 0: first reset after %u writes, "
                "re-encrypt=%u (one 64-child set)\n",
                writes, res.reencCount());
    show(format, line, "after set reset");

    while (!format.inZccFormat(line))
        format.increment(line, 0);
    show(format, line, "base overflowed -> back to ZCC");

    std::printf("\nEvery representation change kept each child's "
                "effective counter strictly increasing —\n");
    std::printf("the property that makes the OTP stream safe "
                "(paper §V).\n");
    return 0;
}
