/**
 * @file
 * A key-value store whose entire heap lives in secure memory.
 *
 * The scenario the paper's introduction motivates: a data-center node
 * keeps sensitive records (credit cards, keys) in DRAM where a
 * physical attacker could read or replay them. This example builds an
 * open-addressing hash table directly on the SecureMemory byte API —
 * every probe, insert and lookup flows through counter-mode
 * encryption, MAC verification and the MorphCtr-128 integrity tree —
 * then shows that a replayed "deleted" record is rejected rather than
 * resurrected.
 *
 * Build & run:  ./build/examples/secure_kv_store
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "secmem/secure_memory.hh"

namespace
{

using namespace morph;

/** Fixed-size record: one 64-byte cacheline per slot. */
struct Record
{
    char key[24];
    char value[32];
    std::uint8_t state; // 0 empty, 1 live, 2 tombstone
    std::uint8_t pad[7];
};
static_assert(sizeof(Record) == 64, "one slot per cacheline");

/** Open-addressing hash table over a secure-memory region. */
class SecureKvStore
{
  public:
    SecureKvStore(SecureMemory &memory, Addr base, std::size_t slots)
        : memory_(&memory), base_(base), slots_(slots)
    {}

    bool
    put(const std::string &key, const std::string &value)
    {
        if (key.size() >= sizeof(Record::key) ||
            value.size() >= sizeof(Record::value))
            return false;
        std::size_t tombstone = slots_;
        for (std::size_t probe = 0; probe < slots_; ++probe) {
            const std::size_t slot = slotFor(key, probe);
            Record record;
            if (!load(slot, record))
                return false;
            if (record.state == 1 &&
                key == std::string(record.key)) {
                setValue(record, value);
                return store(slot, record);
            }
            if (record.state == 2 && tombstone == slots_)
                tombstone = slot;
            if (record.state == 0) {
                const std::size_t target =
                    tombstone != slots_ ? tombstone : slot;
                Record fresh{};
                std::strncpy(fresh.key, key.c_str(),
                             sizeof(fresh.key) - 1);
                setValue(fresh, value);
                fresh.state = 1;
                return store(target, fresh);
            }
        }
        return false; // table full
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        for (std::size_t probe = 0; probe < slots_; ++probe) {
            const std::size_t slot = slotFor(key, probe);
            Record record;
            if (!load(slot, record))
                return std::nullopt; // integrity failure
            if (record.state == 0)
                return std::nullopt;
            if (record.state == 1 && key == std::string(record.key))
                return std::string(record.value);
        }
        return std::nullopt;
    }

    bool
    erase(const std::string &key)
    {
        for (std::size_t probe = 0; probe < slots_; ++probe) {
            const std::size_t slot = slotFor(key, probe);
            Record record;
            if (!load(slot, record))
                return false;
            if (record.state == 0)
                return false;
            if (record.state == 1 && key == std::string(record.key)) {
                record.state = 2;
                std::memset(record.value, 0, sizeof(record.value));
                return store(slot, record);
            }
        }
        return false;
    }

    /** Line address of the slot a key lives in (for the demo). */
    LineAddr
    lineOfKey(const std::string &key) const
    {
        return lineOf(base_ + slotFor(key, 0) * sizeof(Record));
    }

  private:
    static void
    setValue(Record &record, const std::string &value)
    {
        std::memset(record.value, 0, sizeof(record.value));
        std::strncpy(record.value, value.c_str(),
                     sizeof(record.value) - 1);
    }

    std::size_t
    slotFor(const std::string &key, std::size_t probe) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (const char c : key)
            h = (h ^ std::uint8_t(c)) * 1099511628211ull;
        return (h + probe) % slots_;
    }

    bool
    load(std::size_t slot, Record &record)
    {
        return memory_->readBytes(base_ + slot * sizeof(Record),
                                  &record, sizeof(record));
    }

    bool
    store(std::size_t slot, const Record &record)
    {
        memory_->writeBytes(base_ + slot * sizeof(Record), &record,
                            sizeof(record));
        return true;
    }

    SecureMemory *memory_;
    Addr base_;
    std::size_t slots_;
};

} // namespace

int
main()
{
    SecureMemoryConfig config;
    config.memBytes = 64ull << 20;
    config.tree = TreeConfig::morph();
    config.encryptionKey[5] = 0x77;
    config.macKey[5] = 0x99;
    SecureMemory memory(config);

    SecureKvStore store(memory, /*base=*/0x100000, /*slots=*/4096);

    // A working set of sensitive records.
    store.put("card:alice", "4111-1111-1111-1111");
    store.put("card:bob", "5500-0000-0000-0004");
    store.put("btc:carol", "5Kb8kLf9zgWQnogidDA76Mz");
    store.put("card:alice", "4242-4242-4242-4242"); // update

    std::printf("card:alice -> %s\n",
                store.get("card:alice").value_or("<missing>").c_str());
    std::printf("card:bob   -> %s\n",
                store.get("card:bob").value_or("<missing>").c_str());
    std::printf("btc:carol  -> %s\n",
                store.get("btc:carol").value_or("<missing>").c_str());

    // Delete a record, then let the attacker try to resurrect it by
    // replaying the slot's pre-deletion {ciphertext, MAC}.
    const LineAddr slot_line = store.lineOfKey("btc:carol");
    const CachelineData stale_cipher = memory.ciphertextOf(slot_line);
    const std::uint64_t stale_mac = memory.macOf(slot_line);

    store.erase("btc:carol");
    std::printf("\nafter erase: btc:carol -> %s\n",
                store.get("btc:carol").value_or("<missing>").c_str());

    memory.tamperCiphertext(slot_line, stale_cipher);
    memory.tamperMac(slot_line, stale_mac);
    const auto resurrected = store.get("btc:carol");
    std::printf("after replay attack: btc:carol -> %s\n",
                resurrected.value_or("<rejected: integrity failure>")
                    .c_str());

    std::printf("\nsecure-memory stats: %llu reads, %llu writes, "
                "%llu integrity failures\n",
                (unsigned long long)memory.stats().reads,
                (unsigned long long)memory.stats().writes,
                (unsigned long long)memory.stats().integrityFailures);
    return 0;
}
