/**
 * @file
 * Quickstart: protect a region of memory with MorphCtr-128.
 *
 * Shows the three guarantees of the secure-memory stack in a dozen
 * lines each: confidentiality (ciphertext != plaintext), integrity
 * (tampering detected), and freshness (replay detected via the
 * integrity tree), plus the geometry savings of the morphable-counter
 * tree.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "secmem/secure_memory.hh"

int
main()
{
    using namespace morph;

    // 1. Configure a 1 GB protected region using MorphCtr-128 for
    //    both encryption counters and the integrity tree.
    SecureMemoryConfig config;
    config.memBytes = 1ull << 30;
    config.tree = TreeConfig::morph();
    for (unsigned i = 0; i < 16; ++i) {
        config.encryptionKey[i] = std::uint8_t(0x10 + i);
        config.macKey[i] = std::uint8_t(0x30 + i);
    }
    SecureMemory memory(config);

    std::printf("Protected %llu MB with %s\n",
                (unsigned long long)(config.memBytes >> 20),
                config.tree.name.c_str());
    const TreeGeometry &geom = memory.geometry();
    std::printf("  encryption counters: %llu KB, integrity tree: %llu "
                "KB (%u levels)\n\n",
                (unsigned long long)(geom.encryptionBytes() >> 10),
                (unsigned long long)(geom.treeBytes() >> 10),
                geom.treeLevels());

    // 2. Write and read through the byte-granular API.
    const char secret[] = "attack at dawn";
    memory.writeBytes(0x1000, secret, sizeof(secret));

    char readback[sizeof(secret)] = {};
    memory.readBytes(0x1000, readback, sizeof(readback));
    std::printf("round trip:     \"%s\"\n", readback);

    // 3. Confidentiality: the stored ciphertext is unintelligible.
    const CachelineData cipher = memory.ciphertextOf(lineOf(0x1000));
    std::printf("stored bytes:   ");
    for (int i = 0; i < 14; ++i)
        std::printf("%02x ", cipher[i]);
    std::printf(" (ciphertext)\n");

    // 4. Integrity: flip one stored bit; the read must fail.
    CachelineData tampered = cipher;
    tampered[3] ^= 0x01;
    memory.tamperCiphertext(lineOf(0x1000), tampered);
    SecureMemory::Verdict verdict;
    if (!memory.readLine(lineOf(0x1000), verdict))
        std::printf("tampered read:  REJECTED (%s)\n",
                    verdict == SecureMemory::Verdict::DataMacMismatch
                        ? "data MAC mismatch"
                        : "tree MAC mismatch");

    // Restore the genuine ciphertext; reads work again.
    memory.tamperCiphertext(lineOf(0x1000), cipher);
    memory.readBytes(0x1000, readback, sizeof(readback));
    std::printf("restored read:  \"%s\"\n\n", readback);

    // 5. Freshness: replaying a stale counter entry is caught by the
    //    tree (see replay_attack_demo for the full scenario).
    std::printf("stats: %llu writes, %llu reads, %llu overflows, %llu "
                "rebases, %llu integrity failures\n",
                (unsigned long long)memory.stats().writes,
                (unsigned long long)memory.stats().reads,
                (unsigned long long)memory.stats().counterOverflows,
                (unsigned long long)memory.stats().rebases,
                (unsigned long long)memory.stats().integrityFailures);
    return 0;
}
