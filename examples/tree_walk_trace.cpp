/**
 * @file
 * Tree-walk tracer: see exactly what each memory access costs.
 *
 * Feeds a few hand-picked access sequences through the cycle-model
 * controller and prints every DRAM access each one generates —
 * the metadata fetches, verification walks, write-backs, and
 * overflow re-encryptions that the paper's traffic figures aggregate.
 * Running it side by side for SC-64 and MorphCtr-128 makes the
 * "compact trees terminate walks earlier" effect concrete.
 *
 * Build & run:  ./build/examples/tree_walk_trace
 */

#include <cstdio>
#include <vector>

#include "secmem/secure_memory_model.hh"

namespace
{

using namespace morph;

void
describe(const SecureMemoryModel &model, const MemAccess &access)
{
    const TreeGeometry &geom = model.geometry();
    unsigned level;
    std::uint64_t index;
    std::printf("    %-5s %-9s",
                access.type == AccessType::Write ? "WRITE" : "READ",
                trafficName(access.category));
    if (geom.entryOfLine(access.line, level, index))
        std::printf(" level %u entry %-8llu", level,
                    (unsigned long long)index);
    else
        std::printf(" data line    %-8llu",
                    (unsigned long long)access.line);
    std::printf(" %s\n", access.critical ? "[critical]" : "");
}

void
run(const char *title, SecureMemoryModel &model, LineAddr line,
    AccessType type)
{
    std::vector<MemAccess> out;
    model.onDataAccess(line, type, out);
    std::printf("  %s -> %zu DRAM accesses\n", title, out.size());
    for (const MemAccess &access : out)
        describe(model, access);
}

void
walkThrough(const TreeConfig &config)
{
    SecureModelConfig model_config;
    model_config.memBytes = 16ull << 30;
    model_config.tree = config;
    SecureMemoryModel model(model_config);
    std::printf("\n================ %s (16 GB) ================\n",
                config.name.c_str());
    const auto &levels = model.geometry().levels();
    std::printf("tree: ");
    for (const auto &info : levels)
        std::printf("L%u=%lluB ", info.level,
                    (unsigned long long)info.bytes);
    std::printf("\n\n");

    run("cold read of line 0 (full walk)", model, 0,
        AccessType::Read);
    run("read of neighbouring line 1 (counter cached)", model, 1,
        AccessType::Read);
    run("write to line 2 (counter bump, posted)", model, 2,
        AccessType::Write);
    run("cold read far away (new subtree)", model, 1u << 22,
        AccessType::Read);

    // Hammer one line until its counter overflows to show the
    // re-encryption storm.
    std::vector<MemAccess> out;
    unsigned writes = 0;
    while (true) {
        out.clear();
        model.onDataAccess(3, AccessType::Write, out);
        ++writes;
        if (model.stats().totalOverflows() > 0)
            break;
        if (writes > (1u << 17))
            break;
    }
    std::printf("  write #%u to line 3 overflowed its counter -> %zu "
                "DRAM accesses in one burst:\n",
                writes, out.size());
    unsigned shown = 0;
    for (const MemAccess &access : out) {
        if (shown++ == 8) {
            std::printf("    ... %zu more\n", out.size() - 8);
            break;
        }
        describe(model, access);
    }
}

} // namespace

int
main()
{
    walkThrough(TreeConfig::sc64());
    walkThrough(TreeConfig::morph());
    std::printf("\nNote how MorphCtr-128's walk stops a level earlier "
                "(its level 2 is 8 KB and\nlives permanently in the "
                "128 KB metadata cache), and how its ZCC counters\n"
                "push the overflow burst far beyond SC-64's 64-write "
                "horizon.\n");
    return 0;
}
