/**
 * @file
 * Replay-attack walkthrough: why secure memory needs an integrity
 * tree, not just MACs.
 *
 * Plays the adversary of the paper's attack model (§II-A1): physical
 * access to the DIMM, able to read and overwrite any stored byte —
 * ciphertext, MACs, even the counter entries — but not the on-chip
 * tree root. Four escalating attacks; each is detected, the last one
 * only because of the tree:
 *
 *   1. blind tamper            -> data MAC mismatch
 *   2. splice (move a line)    -> data MAC mismatch (address-bound)
 *   3. replay {data, MAC}      -> data MAC mismatch (counter moved on)
 *   4. replay {data, MAC, counter entry} -> TREE MAC mismatch:
 *      the stale counter entry no longer verifies against its
 *      parent's counter, which lives up the chain ending on-chip.
 *
 * Build & run:  ./build/examples/replay_attack_demo
 */

#include <cstdio>
#include <cstring>

#include "secmem/secure_memory.hh"

namespace
{

using namespace morph;

const char *
verdictName(SecureMemory::Verdict verdict)
{
    switch (verdict) {
      case SecureMemory::Verdict::Ok:
        return "OK";
      case SecureMemory::Verdict::DataMacMismatch:
        return "DATA MAC MISMATCH";
      case SecureMemory::Verdict::TreeMacMismatch:
        return "TREE MAC MISMATCH";
    }
    return "?";
}

void
attempt(SecureMemory &memory, LineAddr line, const char *attack)
{
    SecureMemory::Verdict verdict;
    const auto result = memory.readLine(line, verdict);
    std::printf("  %-34s -> %s\n", attack,
                result ? "read ACCEPTED (!!)" : verdictName(verdict));
}

} // namespace

int
main()
{
    SecureMemoryConfig config;
    config.memBytes = 64ull << 20;
    config.tree = TreeConfig::morph();
    config.encryptionKey[0] = 0x5a;
    config.macKey[0] = 0xc3;
    SecureMemory memory(config);

    // The victim stores an account balance.
    const LineAddr account = lineOf(0x40000);
    std::uint64_t balance = 1'000'000;
    memory.writeBytes(addrOf(account), &balance, sizeof(balance));
    std::printf("victim writes balance = %llu\n\n",
                (unsigned long long)balance);

    // ---- Attack 1: blind bit-flip in the ciphertext ----
    std::printf("attack 1: flip a ciphertext bit\n");
    CachelineData genuine = memory.ciphertextOf(account);
    CachelineData flipped = genuine;
    flipped[0] ^= 0x80;
    memory.tamperCiphertext(account, flipped);
    attempt(memory, account, "read after bit-flip");
    memory.tamperCiphertext(account, genuine); // restore

    // ---- Attack 2: splice another line's {data, MAC} here ----
    std::printf("attack 2: splice line B's {data, MAC} over line A\n");
    const LineAddr other = lineOf(0x80000);
    std::uint64_t other_balance = 5;
    memory.writeBytes(addrOf(other), &other_balance,
                      sizeof(other_balance));
    const std::uint64_t genuine_mac = memory.macOf(account);
    memory.tamperCiphertext(account, memory.ciphertextOf(other));
    memory.tamperMac(account, memory.macOf(other));
    attempt(memory, account, "read spliced line");
    memory.tamperCiphertext(account, genuine); // restore
    memory.tamperMac(account, genuine_mac);

    // ---- Attack 3: replay the old {data, MAC} after an update ----
    std::printf("attack 3: replay stale {data, MAC} after the balance "
                "drops\n");
    const CachelineData rich_cipher = memory.ciphertextOf(account);
    const std::uint64_t rich_mac = memory.macOf(account);
    balance = 10; // the victim spends the money
    memory.writeBytes(addrOf(account), &balance, sizeof(balance));
    memory.tamperCiphertext(account, rich_cipher);
    memory.tamperMac(account, rich_mac);
    attempt(memory, account, "read replayed {data, MAC}");

    // ---- Attack 4: also replay the counter entry ----
    std::printf("attack 4: replay {data, MAC, counter entry} — "
                "defeats MACs alone\n");
    // (Snapshot the counter entry while the balance was high, by
    // re-running the history on a second memory with identical keys.)
    SecureMemory shadow(config);
    std::uint64_t replay_balance = 1'000'000;
    shadow.writeBytes(addrOf(account), &replay_balance,
                      sizeof(replay_balance));
    const std::uint64_t entry =
        memory.geometry().parentIndex(0, account);
    const CachelineData stale_entry = shadow.tree().rawEntry(0, entry);
    const CachelineData stale_cipher = shadow.ciphertextOf(account);
    const std::uint64_t stale_mac = shadow.macOf(account);

    memory.tamperCiphertext(account, stale_cipher);
    memory.tamperMac(account, stale_mac);
    memory.tree().injectEntry(0, entry, stale_entry);
    attempt(memory, account,
            "read full-tuple replay (tree catches it)");

    std::printf("\nintegrity failures recorded: %llu\n",
                (unsigned long long)memory.stats().integrityFailures);
    std::printf("every attack detected; the on-chip tree root anchors "
                "freshness.\n");
    return 0;
}
