/**
 * @file
 * Reproduces paper Fig 7: histogram of the fraction of a counter
 * cacheline in use at the moment it overflows, for the SC-64 design,
 * averaged over the 28 evaluation workloads.
 *
 * The paper's observation — overflows cluster below 25% usage
 * (integrity-tree entries over interspersed hot/cold pages) and at
 * 100% usage (streaming encryption counters) — is what motivates the
 * ZCC and MCR representations.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 7", "fraction of counter-cacheline used at overflow "
                    "(SC-64, all workloads)");

    const SimOptions options = overflowOptions();
    const auto config = modelConfig(TreeConfig::sc64());

    Histogram combined(0.0, 1.0 + 1e-9, 20);
    std::uint64_t workloads_with_overflows = 0;
    for (const std::string &name : evaluationWorkloads()) {
        const SimResult result = runByName(name, config, options);
        const Histogram &h = result.traffic.usageAtOverflow;
        if (h.count() == 0)
            continue;
        ++workloads_with_overflows;
        // Weight each workload equally (the paper averages fractions).
        for (unsigned b = 0; b < h.size(); ++b)
            combined.record(h.bucketLo(b) + 0.024,
                            std::uint64_t(h.fraction(b) * 1e6));
    }

    std::printf("%-12s %-10s\n", "usage", "fraction of overflows");
    double below_quarter = 0, above_three_quarters = 0;
    for (unsigned b = 0; b < combined.size(); ++b) {
        const double fraction = combined.fraction(b);
        std::printf("%6.2f-%.2f  %6.3f  ", combined.bucketLo(b),
                    combined.bucketLo(b) + 0.05, fraction);
        for (int stars = int(fraction * 100); stars > 0; --stars)
            std::printf("*");
        std::printf("\n");
        if (combined.bucketLo(b) < 0.25)
            below_quarter += fraction;
        if (combined.bucketLo(b) >= 0.75)
            above_three_quarters += fraction;
    }

    std::printf("\nOverflows at <25%% usage: %.1f%%, at >=75%% usage: "
                "%.1f%% (combined %.1f%%)\n",
                below_quarter * 100, above_three_quarters * 100,
                (below_quarter + above_three_quarters) * 100);
    std::printf("Paper: >75%% of overflows in these two modes for 27 "
                "of 28 workloads.\n");
    std::printf("(workloads with any overflow at this scale: %llu of "
                "28)\n",
                (unsigned long long)workloads_with_overflows);
    return 0;
}
