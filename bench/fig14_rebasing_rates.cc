/**
 * @file
 * Reproduces paper Fig 14: overflows per million accesses for SC-64
 * and MorphCtr-128 with ZCC-only vs ZCC+Rebasing.
 *
 * Expected shape: rebasing pulls the streaming workloads (libquantum,
 * gcc, lbm) from far above SC-64 down to (or below) its level, while
 * GemsFDTD — whose usage is neither sparse nor uniform — remains the
 * outlier where MorphCtr trails SC-64.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 14", "overflows per million accesses: SC-64 / "
                     "MorphCtr-128 ZCC-only / ZCC+Rebasing");

    const SimOptions options = overflowOptions();
    const TreeConfig configs[] = {TreeConfig::sc64(),
                                  TreeConfig::morphZccOnly(),
                                  TreeConfig::morph()};

    std::printf("%-12s %12s %16s %18s %10s\n", "workload", "SC-64",
                "Morph(ZCC)", "Morph(ZCC+Reb)", "rebases/M");
    const auto workloads = evaluationWorkloads();
    std::vector<SweepCase> cases;
    for (const std::string &name : workloads)
        for (int c = 0; c < 3; ++c)
            cases.push_back({name, modelConfig(configs[c]), options});
    const std::vector<SimResult> results = runSweep(cases);

    double sums[3] = {};
    unsigned rows = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        double rates[3];
        double rebases = 0;
        for (int c = 0; c < 3; ++c) {
            const SimResult &result = results[3 * w + std::size_t(c)];
            rates[c] = result.overflowsPerMillion();
            if (c == 2) {
                const auto data =
                    result.traffic.accesses(Traffic::Data);
                rebases = data ? 1e6 *
                                     double(result.traffic
                                                .totalRebases()) /
                                     double(data)
                               : 0.0;
            }
        }
        std::printf("%-12s %12.1f %16.1f %18.1f %10.1f\n",
                    name.c_str(), rates[0], rates[1], rates[2],
                    rebases);
        for (int c = 0; c < 3; ++c)
            sums[c] += rates[c];
        ++rows;
    }

    std::printf("%-12s %12.1f %16.1f %18.1f\n", "Average",
                sums[0] / rows, sums[1] / rows, sums[2] / rows);
    std::printf("\nSC-64 / Morph(ZCC+Rebasing) overflow ratio: %.1fx  "
                "[paper: 1.6x]\n",
                sums[2] > 0 ? sums[0] / sums[2] : 99.9);
    return 0;
}
