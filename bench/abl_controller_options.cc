/**
 * @file
 * Ablation: controller and DRAM options around the paper's design
 * (its §VIII "orthogonal proposals" discussion, quantified).
 *
 *  - speculative verification (PoisonIvy/ASE): removes tree-walk
 *    latency but not bandwidth — the paper argues compact trees
 *    attack the bandwidth half; combining both stacks benefits.
 *  - next-entry counter prefetch;
 *  - type-aware metadata insertion (Lee et al.);
 *  - Bonsai MAC-tree (8-ary tree-of-MACs) as the structural baseline.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Ablation", "controller options and tree structures");

    const SimOptions options = perfOptions();
    const char *workloads[] = {"mcf", "omnetpp", "soplex", "bc-twit",
                               "libquantum", "gcc"};

    struct Variant
    {
        const char *name;
        SecureModelConfig config;
    };
    std::vector<Variant> variants;
    variants.push_back({"SC-64 baseline",
                        modelConfig(TreeConfig::sc64())});
    variants.push_back({"BMT-8 (tree of MACs)",
                        modelConfig(TreeConfig::bonsaiMacTree())});
    variants.push_back({"SC-64 + spec-verify",
                        modelConfig(TreeConfig::sc64())});
    variants.back().config.speculativeVerification = true;
    variants.push_back({"SC-64 + ctr-prefetch",
                        modelConfig(TreeConfig::sc64())});
    variants.back().config.counterPrefetch = true;
    variants.push_back({"SC-64 + demote-enc",
                        modelConfig(TreeConfig::sc64())});
    variants.back().config.demoteEncCounters = true;
    variants.push_back({"SC-64+R (rebasing only)",
                        modelConfig(TreeConfig::sc64Rebased())});
    variants.push_back({"MorphCtr-128",
                        modelConfig(TreeConfig::morph())});
    variants.push_back({"MorphCtr-128 + spec-verify",
                        modelConfig(TreeConfig::morph())});
    variants.back().config.speculativeVerification = true;

    std::vector<double> base_ipc;
    for (const char *w : workloads)
        base_ipc.push_back(
            runByName(w, variants[0].config, options).ipc);

    std::printf("%-28s", "variant");
    for (const char *w : workloads)
        std::printf(" %10s", w);
    std::printf(" %8s %8s\n", "gmean", "bloat");

    for (const Variant &v : variants) {
        std::printf("%-28s", v.name);
        std::vector<double> normalized;
        double bloat = 0;
        for (std::size_t i = 0; i < std::size(workloads); ++i) {
            const SimResult result =
                runByName(workloads[i], v.config, options);
            normalized.push_back(result.ipc / base_ipc[i]);
            bloat += result.bloat();
            std::printf(" %10.3f", normalized.back());
        }
        std::printf(" %8.3f %8.3f\n", geomean(normalized),
                    bloat / double(std::size(workloads)));
    }

    std::printf("\nExpected: spec-verify helps both designs (latency) "
                "but leaves the bandwidth bloat untouched;\n"
                "MorphCtr + spec-verify compounds; BMT-8 trails every "
                "counter tree (deep 8-ary walks).\n");
    return 0;
}
