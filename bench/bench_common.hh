/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses.
 *
 * Each bench/figNN_* binary regenerates one table or figure of the
 * paper: same rows/series, our measured values. Scales are sized so
 * the full bench sweep completes in
 * minutes on one core; MORPH_SIM_ACCESSES / MORPH_SIM_WARMUP /
 * MORPH_SIM_SCALE raise fidelity when you have the time.
 *
 * Two preset scales:
 *  - perfOptions(): timed runs for the IPC/traffic/energy figures.
 *    Footprints divided by 8 so counters reach steady state while
 *    metadata still dwarfs the 128 KB cache.
 *  - overflowOptions(): traffic-only runs for the overflow-rate
 *    figures. Footprints divided by 32 to reach counter steady state
 *    within the access budget (the paper instead warms counters for
 *    25 B instructions).
 */

#ifndef MORPH_BENCH_BENCH_COMMON_HH
#define MORPH_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/run_pool.hh"
#include "sim/simulator.hh"

namespace morph
{
namespace bench
{

inline double
envScale(double fallback)
{
    if (const char *env = std::getenv("MORPH_SIM_SCALE")) {
        const double v = std::atof(env);
        if (v >= 1.0)
            return v;
    }
    return fallback;
}

/** Timed-simulation preset (Figs 5, 15, 16, 18, 19, 20). */
inline SimOptions
perfOptions()
{
    SimOptions options;
    options.accessesPerCore = 400'000;
    options.warmupPerCore = 200'000;
    options.timing = true;
    options.footprintScale = envScale(8.0);
    return SimOptions::fromEnv(options);
}

/** Traffic-only preset (Figs 7, 11, 14). */
inline SimOptions
overflowOptions()
{
    SimOptions options;
    options.accessesPerCore = 1'000'000;
    options.warmupPerCore = 500'000;
    options.timing = false;
    options.footprintScale = envScale(32.0);
    return SimOptions::fromEnv(options);
}

/** Secure-memory configuration for a tree config at paper defaults. */
inline SecureModelConfig
modelConfig(TreeConfig tree)
{
    SecureModelConfig config;
    config.tree = std::move(tree);
    return config;
}

/** Worker count for the figure sweeps: MORPH_BENCH_JOBS when set to
 *  a value >= 1, else hardware concurrency. */
inline unsigned
envJobs()
{
    if (const char *env = std::getenv("MORPH_BENCH_JOBS")) {
        const long long v = std::atoll(env);
        if (v >= 1)
            return unsigned(v);
    }
    return RunPool::hardwareJobs();
}

/** One independent cell of a figure's (workload, config) grid. */
struct SweepCase
{
    std::string workload;
    SecureModelConfig config;
    SimOptions options;
};

/** Run every case on a RunPool and return the results in case order.
 *
 *  Each run owns its whole simulated system and a deterministic seed
 *  from its SimOptions, and aggregation/printing reads the ordered
 *  results exactly as the old serial loops did — figure output is
 *  byte-identical at any MORPH_BENCH_JOBS level. */
inline std::vector<SimResult>
runSweep(const std::vector<SweepCase> &cases)
{
    SweepEngine engine(envJobs());
    return engine.map<SimResult>(cases.size(), [&](std::size_t i) {
        return runByName(cases[i].workload, cases[i].config,
                         cases[i].options);
    });
}

/** Print the standard figure header. */
inline void
banner(const char *figure, const char *caption)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s — %s\n", figure, caption);
    std::printf("===================================================="
                "========================\n");
}

/** Geometric-mean helper over a result metric. */
template <typename Fn>
double
geomeanOf(const std::vector<SimResult> &results, Fn &&metric)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    return geomean(values);
}

} // namespace bench
} // namespace morph

#endif // MORPH_BENCH_BENCH_COMMON_HH
