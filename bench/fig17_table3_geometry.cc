/**
 * @file
 * Reproduces paper Fig 1, Fig 17 and Table III: integrity-tree level
 * footprints, heights, and storage overheads at 16 GB for
 * Commercial-SGX, VAULT, SC-64 and MorphCtr-128.
 *
 * These are closed-form geometry results and must match the paper
 * exactly.
 */

#include <cinttypes>

#include "bench_common.hh"
#include "integrity/tree_geometry.hh"

namespace
{

using namespace morph;

std::string
human(std::uint64_t bytes)
{
    char buffer[32];
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0)
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64 " GB",
                      bytes >> 30);
    else if (bytes >= (1ull << 20))
        std::snprintf(buffer, sizeof(buffer), "%.6g MB",
                      double(bytes) / double(1ull << 20));
    else if (bytes >= (1ull << 10))
        std::snprintf(buffer, sizeof(buffer), "%.6g KB",
                      double(bytes) / double(1ull << 10));
    else
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64 " B", bytes);
    return buffer;
}

void
report(const TreeConfig &config, std::uint64_t mem_bytes)
{
    const TreeGeometry geom(mem_bytes, config);
    std::printf("\n%-16s (arity L0=%u", config.name.c_str(),
                geom.levels()[0].arity);
    for (std::size_t i = 1; i < geom.levels().size(); ++i)
        std::printf("/%u", geom.levels()[i].arity);
    std::printf(")\n");

    std::printf("  encryption counters: %12s  (%.4f%% of data)\n",
                human(geom.encryptionBytes()).c_str(),
                100.0 * double(geom.encryptionBytes()) /
                    double(mem_bytes));
    std::printf("  integrity tree:      %12s  (%.4f%% of data), "
                "%u levels\n",
                human(geom.treeBytes()).c_str(),
                100.0 * double(geom.treeBytes()) / double(mem_bytes),
                geom.treeLevels());
    for (std::size_t i = 1; i < geom.levels().size(); ++i)
        std::printf("    tree level %zu: %12s\n", i,
                    human(geom.levels()[i].bytes).c_str());
}

} // namespace

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    constexpr std::uint64_t mem = 16ull << 30;
    banner("Fig 1 / Fig 17 / Table III",
           "integrity-tree geometry and storage overheads, 16 GB");

    report(TreeConfig::sgx(), mem);
    report(TreeConfig::vault(), mem);
    report(TreeConfig::sc64(), mem);
    report(TreeConfig::morph(), mem);

    const TreeGeometry sc64(mem, TreeConfig::sc64());
    const TreeGeometry vault(mem, TreeConfig::vault());
    const TreeGeometry morphg(mem, TreeConfig::morph());
    std::printf("\nFig 1 ratios: MorphTree is %.2fx smaller than SC-64"
                " tree, %.2fx smaller than VAULT tree\n",
                double(sc64.treeBytes()) / double(morphg.treeBytes()),
                double(vault.treeBytes()) / double(morphg.treeBytes()));
    std::printf("Paper:        4x and 8.5x\n");
    return 0;
}
