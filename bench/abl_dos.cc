/**
 * @file
 * Ablation: the §V denial-of-service analysis, measured.
 *
 * Core 0 runs the paper's pathological overflow pattern (write once
 * to 52 counters of a line to shrink the ZCC width, then hammer one —
 * an overflow every ~67 writes, each costing 2*arity memory
 * accesses); cores 1-3 run a victim workload. We report the victims'
 * IPC with and without the attacker for SC-64 (64-write period) and
 * MorphCtr-128 (67-write period), and the overflow traffic the
 * attacker manufactures.
 *
 * The paper's proposed mitigation (fairness-driven memory
 * scheduling) is outside the protection layer; this harness
 * quantifies the damage such a scheduler would need to contain.
 */

#include "bench_common.hh"

namespace
{

using namespace morph;

/**
 * The §V pattern, swept across many counter lines so the metadata
 * cache cannot absorb it: for each group of `span` data lines sharing
 * a counter entry, write once to `prime` distinct lines, then hammer
 * one line until the expected overflow budget is spent.
 */
class AdversarialSource : public TraceSource
{
  public:
    AdversarialSource(LineAddr base, std::uint64_t region_lines,
                      unsigned span, unsigned prime, unsigned hammer)
        : base_(base), regionLines_(region_lines), span_(span),
          prime_(prime), hammer_(hammer)
    {}

    TraceEntry
    next() override
    {
        TraceEntry entry;
        entry.gap = 2; // dense: the attacker is memory-bound
        entry.type = AccessType::Write;
        const LineAddr group_base = base_ + group_ * span_;
        if (phase_ < prime_) {
            entry.line = group_base + 1 + phase_;
            ++phase_;
        } else {
            entry.line = group_base;
            if (++phase_ >= prime_ + hammer_) {
                phase_ = 0;
                group_ = (group_ + 1) %
                         std::max<std::uint64_t>(1,
                                                 regionLines_ / span_);
            }
        }
        return entry;
    }

  private:
    LineAddr base_;
    std::uint64_t regionLines_;
    unsigned span_, prime_, hammer_;
    std::uint64_t group_ = 0;
    unsigned phase_ = 0;
};

double
victimIpc(const SecureModelConfig &secmem, bool with_attacker,
          const SimOptions &options)
{
    SystemConfig config;
    config.secmem = secmem;
    config.timing = true;

    const WorkloadSpec *victim = findWorkload("mcf");
    std::vector<std::unique_ptr<TraceSource>> traces;
    const std::uint64_t region_lines =
        secmem.memBytes / lineBytes / config.numCores;
    if (with_attacker) {
        const unsigned arity = secmem.tree.arityAt(0);
        // MorphCtr: prime 52 children (width -> 4 bits), then 16
        // hammers overflow at write 67. SC-64 needs no shaping: 65
        // straight hammers cross its 64-write period.
        traces.push_back(std::make_unique<AdversarialSource>(
            0, region_lines, arity, arity == 128 ? 52 : 0,
            arity == 128 ? 16 : 65));
    } else {
        traces.push_back(makeWorkloadTrace(*victim, 0, 4,
                                           secmem.memBytes,
                                           options.seed + 99,
                                           options.footprintScale));
    }
    for (unsigned core = 1; core < config.numCores; ++core)
        traces.push_back(makeWorkloadTrace(*victim, core, 4,
                                           secmem.memBytes,
                                           options.seed,
                                           options.footprintScale));

    SimSystem system(config, std::move(traces));
    system.run(options.warmupPerCore);
    system.startMeasurement();
    system.run(options.accessesPerCore);

    // Victims only: cores 1..3.
    double ipc = 0.0;
    for (unsigned core = 1; core < config.numCores; ++core) {
        const Core &c = system.core(core);
        if (c.measuredCycles() > 0)
            ipc += double(c.measuredInstructions()) /
                   double(c.measuredCycles());
    }
    return ipc;
}

} // namespace

int
main()
{
    using namespace morph::bench;

    banner("Ablation (paper §V)", "denial of service via engineered "
                                  "counter overflows");

    SimOptions options = perfOptions();
    options.accessesPerCore = std::min<std::uint64_t>(
        options.accessesPerCore, 200'000);
    options.warmupPerCore = options.accessesPerCore / 4;

    std::printf("%-14s %18s %18s %12s\n", "config",
                "victim IPC (quiet)", "victim IPC (attack)",
                "slowdown");
    for (const auto &tree :
         {TreeConfig::sc64(), TreeConfig::morph()}) {
        auto secmem = modelConfig(tree);
        const double quiet = victimIpc(secmem, false, options);
        const double attacked = victimIpc(secmem, true, options);
        std::printf("%-14s %18.3f %18.3f %+11.1f%%\n",
                    tree.name.c_str(), quiet, attacked,
                    (attacked / quiet - 1.0) * 100);
    }

    std::printf("\nBoth designs admit the attack: SC-64's period is "
                "shorter (64 writes vs 67, the paper's point), while\n"
                "each MorphCtr overflow re-encrypts 2x the children "
                "(256 accesses) — the per-event damage is larger.\n"
                "Fairness-driven memory scheduling is the paper's "
                "proposed containment for either design.\n");
    return 0;
}
