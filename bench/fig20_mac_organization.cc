/**
 * @file
 * Reproduces paper Fig 20: sensitivity to the MAC organization —
 * Synergy-style in-line MACs (free with the data access) vs separate
 * MAC storage (one extra access per data access).
 *
 * Expected shape: both SC-64 and MorphCtr-128 lose heavily with
 * separate MACs (paper: ~29%); MorphCtr's relative speedup shrinks
 * slightly (paper: +4.7% vs +6.3%) because counters are a smaller
 * share of total traffic.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 20", "Separate MACs vs In-Line MACs (normalized to "
                     "SC-64 in-line)");

    const SimOptions options = perfOptions();

    std::vector<double> base_ipc;
    for (const std::string &name : evaluationWorkloads())
        base_ipc.push_back(
            runByName(name, modelConfig(TreeConfig::sc64()), options)
                .ipc);

    std::printf("%-16s %12s %16s %18s\n", "MAC organization", "SC-64",
                "MorphCtr-128", "Morph speedup");
    for (const bool inline_macs : {false, true}) {
        std::vector<double> sc64_norm, morph_norm;
        unsigned w = 0;
        for (const std::string &name : evaluationWorkloads()) {
            auto sc64_config = modelConfig(TreeConfig::sc64());
            auto morph_config = modelConfig(TreeConfig::morph());
            sc64_config.inlineMacs = inline_macs;
            morph_config.inlineMacs = inline_macs;
            sc64_norm.push_back(
                runByName(name, sc64_config, options).ipc /
                base_ipc[w]);
            morph_norm.push_back(
                runByName(name, morph_config, options).ipc /
                base_ipc[w]);
            ++w;
        }
        const double s = geomean(sc64_norm);
        const double m = geomean(morph_norm);
        std::printf("%-16s %12.3f %16.3f %+17.1f%%\n",
                    inline_macs ? "In-Line (Synergy)" : "Separate",
                    s, m, (m / s - 1.0) * 100);
    }

    std::printf("\nPaper: separate MACs cost both designs ~29%%; Morph "
                "speedup 4.7%% (separate) vs 6.3%% (in-line).\n");
    return 0;
}
