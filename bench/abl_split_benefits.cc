/**
 * @file
 * Ablation: where does MorphCtr-128's win come from?
 *
 * The paper's 4x tree reduction is multiplicative (§VII-A): 2x from
 * halving the encryption-counter base (128 counters per line) and 2x
 * from doubling the tree arity. This harness separates the two by
 * mixing counter kinds across the {encryption, tree} roles:
 *
 *   SC-64 enc + SC-64 tree      (the baseline)
 *   Morph enc + SC-64 tree      (base-halving benefit only)
 *   SC-64 enc + Morph tree      (arity-doubling benefit only)
 *   Morph enc + Morph tree      (the full design)
 *
 * DESIGN.md lists this decomposition as a design-choice ablation.
 */

#include "bench_common.hh"
#include "integrity/tree_geometry.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Ablation", "encryption-base halving vs tree-arity "
                       "doubling");

    struct Variant
    {
        const char *name;
        TreeConfig config;
    };
    const Variant variants[] = {
        {"SC64-enc + SC64-tree",
         {"sc/sc", CounterKind::SC64, {CounterKind::SC64}}},
        {"Morph-enc + SC64-tree",
         {"m/sc", CounterKind::Morph, {CounterKind::SC64}}},
        {"SC64-enc + Morph-tree",
         {"sc/m", CounterKind::SC64, {CounterKind::Morph}}},
        {"Morph-enc + Morph-tree",
         {"m/m", CounterKind::Morph, {CounterKind::Morph}}},
    };

    // Geometry decomposition at 16 GB.
    std::printf("%-24s %14s %12s %8s\n", "variant", "enc counters",
                "tree size", "levels");
    for (const Variant &v : variants) {
        const TreeGeometry geom(16ull << 30, v.config);
        std::printf("%-24s %11.0f MB %9.2f MB %8u\n", v.name,
                    double(geom.encryptionBytes()) / double(1 << 20),
                    double(geom.treeBytes()) / double(1 << 20),
                    geom.treeLevels());
    }

    // Performance decomposition on the random-access workloads where
    // tree traversal dominates.
    const SimOptions options = perfOptions();
    const char *workloads[] = {"mcf", "omnetpp", "bc-twit", "pr-web",
                               "soplex", "sphinx"};

    std::printf("\n%-24s", "variant");
    for (const char *w : workloads)
        std::printf(" %9s", w);
    std::printf(" %9s\n", "gmean");

    std::vector<double> base_ipc;
    for (const char *w : workloads)
        base_ipc.push_back(
            runByName(w, modelConfig(variants[0].config), options).ipc);

    for (const Variant &v : variants) {
        std::printf("%-24s", v.name);
        std::vector<double> normalized;
        for (std::size_t i = 0; i < std::size(workloads); ++i) {
            const double ipc =
                runByName(workloads[i], modelConfig(v.config), options)
                    .ipc;
            normalized.push_back(ipc / base_ipc[i]);
            std::printf(" %9.3f", normalized.back());
        }
        std::printf(" %9.3f\n", geomean(normalized));
    }

    std::printf("\nExpected: each half contributes a share; the full "
                "design compounds them (paper: 2x * 2x = 4x tree).\n");
    return 0;
}
