/**
 * @file
 * Ablation: persist-traffic overhead of the NVM crash-consistency
 * policies (strict vs. lazy epoch-batched root updates) on
 * MorphCtr-128.
 *
 * Strict persists every counter/tree mutation and re-commits the tree
 * root each time: trivially recoverable, but the persist stream
 * scales with metadata mutations, not data writes. Lazy persists only
 * on dirty eviction behind an undo log and commits the root once per
 * epoch, trading bounded rollback (at most one epoch of writes) for
 * far fewer persists. Expected shape: strict's persists/write well
 * above 1 on write-heavy workloads; lazy within a small factor of the
 * data write stream, shrinking further as the epoch grows.
 *
 * The persist domain is a pure observer, so IPC and DRAM traffic are
 * identical across all rows of one workload; only the persist
 * counters differ.
 */

#include "bench_common.hh"

namespace
{

using namespace morph;

SecureModelConfig
persistConfig(PersistPolicy policy, std::uint64_t epoch_writes)
{
    SecureModelConfig config = bench::modelConfig(TreeConfig::morph());
    config.persist.enabled = true;
    config.persist.policy = policy;
    config.persist.epochWrites = epoch_writes;
    return config;
}

void
printRow(const char *label, const SimResult &result)
{
    const double writes =
        double(result.traffic.writes[unsigned(Traffic::Data)]);
    auto per = [&](std::uint64_t count) {
        return writes > 0 ? double(count) / writes : 0.0;
    };
    std::printf("  %-14s %9.3f %9.3f %9.3f %10llu %9llu\n", label,
                per(result.persist.linePersists),
                per(result.persist.logAppends),
                per(result.persist.rootPersists),
                (unsigned long long)result.persist.linePersists,
                (unsigned long long)result.persist.barriers);
}

} // namespace

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Ablation", "NVM persist traffic: strict vs. lazy root"
                       " updates (MorphCtr-128)");

    const SimOptions options = perfOptions();
    constexpr std::uint64_t epochs[] = {256, 4096};

    const auto workloads = evaluationWorkloads();
    std::vector<SweepCase> cases;
    for (const std::string &name : workloads) {
        cases.push_back(
            {name, persistConfig(PersistPolicy::Strict, 1), options});
        for (std::uint64_t epoch : epochs)
            cases.push_back(
                {name, persistConfig(PersistPolicy::Lazy, epoch),
                 options});
    }
    const std::vector<SimResult> results = runSweep(cases);

    const std::size_t rows_per_workload = 1 + std::size(epochs);
    std::printf("%-16s %9s %9s %9s %10s %9s\n", "",
                "prst/wr", "log/wr", "root/wr", "persists",
                "barriers");

    double strict_sum = 0.0;
    double lazy_sum[std::size(epochs)] = {};
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%s\n", workloads[w].c_str());
        const SimResult &strict = results[rows_per_workload * w];
        printRow("strict", strict);
        strict_sum += strict.persistsPerWrite();
        for (std::size_t e = 0; e < std::size(epochs); ++e) {
            const SimResult &lazy =
                results[rows_per_workload * w + 1 + e];
            char label[32];
            std::snprintf(label, sizeof label, "lazy/%llu",
                          (unsigned long long)epochs[e]);
            printRow(label, lazy);
            lazy_sum[e] += lazy.persistsPerWrite();
        }
    }

    const double n = double(workloads.size());
    std::printf("\nAverage persists per data write: strict %.3f",
                strict_sum / n);
    for (std::size_t e = 0; e < std::size(epochs); ++e)
        std::printf(", lazy/%llu %.3f",
                    (unsigned long long)epochs[e], lazy_sum[e] / n);
    std::printf("\nLazy/%llu cuts persist traffic %.1f%% below"
                " strict.\n",
                (unsigned long long)epochs[std::size(epochs) - 1],
                100.0 * (1.0 - lazy_sum[std::size(epochs) - 1] /
                                   strict_sum));
    return 0;
}
