/**
 * @file
 * Ablation: how the designs scale with protected-memory capacity.
 *
 * The paper motivates compact trees with scaling ("as memories scale
 * to larger sizes"): every doubling of capacity doubles each tree
 * level, while the on-chip metadata cache stays fixed. This harness
 * sweeps 4 GB - 64 GB, reporting tree geometry for each design and
 * the measured MorphCtr-128 speedup on a random-access workload.
 */

#include "bench_common.hh"
#include "integrity/tree_geometry.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Ablation", "scaling with protected-memory capacity");

    std::printf("%-8s %14s %14s %14s %10s\n", "memory", "VAULT tree",
                "SC-64 tree", "Morph tree", "levels");
    for (unsigned shift = 2; shift <= 6; ++shift) {
        const std::uint64_t mem = 1ull << (30 + shift);
        const TreeGeometry vault(mem, TreeConfig::vault());
        const TreeGeometry sc64(mem, TreeConfig::sc64());
        const TreeGeometry morphg(mem, TreeConfig::morph());
        std::printf("%3llu GB   %11.2f MB %11.2f MB %11.2f MB "
                    "%2u/%u/%u\n",
                    (unsigned long long)(mem >> 30),
                    double(vault.treeBytes()) / double(1 << 20),
                    double(sc64.treeBytes()) / double(1 << 20),
                    double(morphg.treeBytes()) / double(1 << 20),
                    vault.treeLevels(), sc64.treeLevels(),
                    morphg.treeLevels());
    }

    // Measured speedup on mcf-like traffic as capacity grows. The
    // footprint grows with memory so the counter working set scales.
    std::printf("\n%-8s %12s %14s %12s\n", "memory", "SC-64 IPC",
                "Morph IPC", "speedup");
    SimOptions options = perfOptions();
    const WorkloadSpec *mcf = findWorkload("mcf");
    for (unsigned shift = 2; shift <= 5; ++shift) {
        const std::uint64_t mem = 1ull << (30 + shift);
        auto sc64_config = modelConfig(TreeConfig::sc64());
        auto morph_config = modelConfig(TreeConfig::morph());
        sc64_config.memBytes = morph_config.memBytes = mem;
        const double sc64_ipc =
            runWorkload(*mcf, sc64_config, options).ipc;
        const double morph_ipc =
            runWorkload(*mcf, morph_config, options).ipc;
        std::printf("%3llu GB   %12.3f %14.3f %+11.1f%%\n",
                    (unsigned long long)(mem >> 30), sc64_ipc,
                    morph_ipc, (morph_ipc / sc64_ipc - 1.0) * 100);
    }

    std::printf("\nExpected: the Morph advantage persists (and the "
                "tree-size gap widens) as capacity scales.\n");
    return 0;
}
