/**
 * @file
 * Reproduces paper Fig 19: sensitivity of the MorphCtr-128 speedup to
 * the metadata cache size (64 KB / 128 KB / 256 KB).
 *
 * Expected shape: the smaller the cache, the larger MorphCtr's win
 * (paper: +11% at 64 KB, +6.3% at 128 KB, +3.3% at 256 KB) — a
 * compact tree matters most when cache is scarce. The paper also
 * notes MorphCtr at 64 KB roughly matches SC-64 at 128 KB.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 19", "speedup vs metadata cache size (normalized to "
                     "SC-64 @ 128 KB)");

    // Full footprints: the trend comes from whole tree levels
    // crossing the cache-capacity boundary (SC-64's 64 KB level 2
    // fits a 256 KB cache but not a 64 KB one), which footprint
    // scaling would distort.
    SimOptions options = perfOptions();
    options.footprintScale = envScale(1.0);
    const std::size_t sizes[] = {64 * 1024, 128 * 1024, 256 * 1024};

    // Baseline: SC-64 with the default 128 KB cache.
    std::vector<double> base_ipc;
    for (const std::string &name : evaluationWorkloads())
        base_ipc.push_back(
            runByName(name, modelConfig(TreeConfig::sc64()), options)
                .ipc);

    std::printf("%-10s %12s %16s %18s\n", "cache", "SC-64",
                "MorphCtr-128", "Morph speedup");
    for (const std::size_t size : sizes) {
        std::vector<double> sc64_norm, morph_norm;
        unsigned w = 0;
        for (const std::string &name : evaluationWorkloads()) {
            auto sc64_config = modelConfig(TreeConfig::sc64());
            auto morph_config = modelConfig(TreeConfig::morph());
            sc64_config.metadataCacheBytes = size;
            morph_config.metadataCacheBytes = size;
            sc64_norm.push_back(
                runByName(name, sc64_config, options).ipc /
                base_ipc[w]);
            morph_norm.push_back(
                runByName(name, morph_config, options).ipc /
                base_ipc[w]);
            ++w;
        }
        const double s = geomean(sc64_norm);
        const double m = geomean(morph_norm);
        std::printf("%4zu KB    %12.3f %16.3f %+17.1f%%\n",
                    size / 1024, s, m, (m / s - 1.0) * 100);
    }

    std::printf("\nPaper: +11%% @ 64 KB, +6.3%% @ 128 KB, +3.3%% @ "
                "256 KB.\n");
    return 0;
}
