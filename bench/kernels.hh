/**
 * @file
 * Shared hot-path kernel definitions for the throughput gate.
 *
 * Each kernel wraps one optimized primitive (word-level bitfield
 * access, ZCC decode/encode, AES/OTP/SipHash) in a deterministic,
 * self-contained loop. The same definitions back two harnesses:
 *
 *   - tools/morphbench --kernels emits ops-per-second per kernel into
 *     the benchmark JSON, and --compare gates them one-directionally
 *     (slower than min_ratio x baseline fails; faster never does).
 *   - bench/micro_codec registers each kernel as a google-benchmark
 *     case (kernel/<name>) for interactive profiling.
 *
 * Every kernel executes a fixed `batch` of operations per run() call
 * so the std::function indirection is amortized to noise; ops-per-sec
 * is batch * calls / elapsed. Kernel state is seeded deterministically
 * — only the wall-clock rates are nondeterministic, which is why
 * --kernels is opt-in and excluded from the byte-identity contract
 * (docs/PERFORMANCE.md).
 */

#ifndef MORPH_BENCH_KERNELS_HH
#define MORPH_BENCH_KERNELS_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bitfield.hh"
#include "counters/counter_factory.hh"
#include "counters/zcc_codec.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"

namespace morph
{
namespace kernels
{

/** One measurable kernel: run() performs `batch` operations. */
struct Kernel {
    std::string name;
    std::uint64_t batch;
    /** Executes `batch` ops; returns a value-dependent sink. */
    std::function<std::uint64_t()> run;
};

/**
 * Build the kernel list. Construction is deterministic (fixed seeds,
 * fixed populations); each kernel owns its state via shared_ptr so the
 * list is copyable.
 */
inline std::vector<Kernel>
makeKernels()
{
    std::vector<Kernel> out;

    // Pseudorandom offset/width schedule over a fixed line image:
    // exercises aligned, unaligned and word-straddling fields.
    {
        struct St {
            CachelineData line;
            std::uint64_t x = 0x9e3779b97f4a7c15ull;
        };
        auto st = std::make_shared<St>();
        for (unsigned i = 0; i < lineBytes; ++i)
            st->line[i] = std::uint8_t(i * 37);
        out.push_back({"bitfield_read", 256, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned i = 0; i < 256; ++i) {
                               auto &x = st->x;
                               x ^= x << 13;
                               x ^= x >> 7;
                               x ^= x << 17;
                               const unsigned width =
                                   1 + unsigned(x & 63);
                               unsigned offset =
                                   unsigned((x >> 8) & (lineBits - 1));
                               if (offset + width > lineBits)
                                   offset = lineBits - width;
                               sink += readBits(st->line, offset, width);
                           }
                           return sink;
                       }});
    }
    {
        struct St {
            CachelineData line{};
            std::uint64_t x = 0x9e3779b97f4a7c15ull;
        };
        auto st = std::make_shared<St>();
        out.push_back({"bitfield_write", 256, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned i = 0; i < 256; ++i) {
                               auto &x = st->x;
                               x ^= x << 13;
                               x ^= x >> 7;
                               x ^= x << 17;
                               const unsigned width =
                                   1 + unsigned(x & 63);
                               unsigned offset =
                                   unsigned((x >> 8) & (lineBits - 1));
                               if (offset + width > lineBits)
                                   offset = lineBits - width;
                               const std::uint64_t v =
                                   width == 64
                                       ? x
                                       : x & ((1ull << width) - 1);
                               writeBits(st->line, offset, width, v);
                               sink += v;
                           }
                           return sink;
                       }});
    }
    // Popcount over the ZCC bit-vector span at every prefix length.
    {
        struct St {
            CachelineData line;
            unsigned idx = 0;
        };
        auto st = std::make_shared<St>();
        for (unsigned i = 0; i < lineBytes; ++i)
            st->line[i] = std::uint8_t(i * 37);
        out.push_back({"bitfield_popcount", 256, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned i = 0; i < 256; ++i) {
                               st->idx = (st->idx + 1) & 127;
                               sink += popcountBits(st->line, 64,
                                                    st->idx + 1);
                           }
                           return sink;
                       }});
    }
    // Full-line ZCC decode (the verification/re-encode unit of work):
    // one op = all 128 minors of a 40-populated line.
    {
        auto line = std::make_shared<CachelineData>();
        zcc::init(*line, 7);
        for (unsigned i = 0; i < 40; ++i)
            zcc::insertNonZero(*line, (i * 3) % 128);
        out.push_back({"zcc_decode", 64, [line] {
                           std::uint64_t sink = 0;
                           for (unsigned rep = 0; rep < 64; ++rep) {
                               std::uint64_t minors[zcc::numCounters];
                               zcc::decodeAll(*line, minors);
                               sink += minors[(rep * 3) % 128] +
                                       minors[127];
                           }
                           return sink;
                       }});
    }
    // ZCC encode: overwrite minors of a 40-populated line in place.
    // Loop state lives in locals — the byte stores into the line would
    // otherwise force reloads of anything reachable through the state
    // pointer every iteration. Populated indices are 3*i (3*39 < 128),
    // so the index schedule is pure arithmetic.
    {
        auto line = std::make_shared<CachelineData>();
        zcc::init(*line, 7);
        for (unsigned i = 0; i < 40; ++i)
            zcc::insertNonZero(*line, (i * 3) % 128);
        out.push_back({"zcc_encode", 256, [line] {
                           CachelineData &l = *line;
                           std::uint64_t sink = 0;
                           std::uint64_t v = 1;
                           unsigned i = 0;
                           for (unsigned rep = 0; rep < 256; ++rep) {
                               i = (i + 1) & 31;
                               v = (v & 15) + 1;
                               zcc::setMinor(l, 3 * i, v++);
                               sink += i;
                           }
                           return sink;
                       }});
    }
    // Morphable counter increment across all 128 children, including
    // ZCC->MCR morphs and rebases as counters saturate.
    {
        struct St {
            std::unique_ptr<CounterFormat> format;
            CachelineData line;
            unsigned idx = 0;
        };
        auto st = std::make_shared<St>();
        st->format = makeCounterFormat(CounterKind::Morph);
        st->format->init(st->line);
        for (unsigned i = 0; i < 128; ++i)
            st->format->increment(st->line, i);
        out.push_back({"morph_increment", 256, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned rep = 0; rep < 256; ++rep) {
                               const auto r = st->format->increment(
                                   st->line, st->idx);
                               st->idx = (st->idx + 1) & 127;
                               sink += std::uint64_t(r.overflow);
                           }
                           return sink;
                       }});
    }
    // Chained single-block AES (latency-bound, exercises dispatch).
    {
        struct St {
            Aes128 aes{Aes128::Key{}};
            Aes128::Block b{};
        };
        auto st = std::make_shared<St>();
        out.push_back({"aes_encrypt", 64, [st] {
                           for (unsigned rep = 0; rep < 64; ++rep)
                               st->b = st->aes.encrypt(st->b);
                           return std::uint64_t(st->b[0]);
                       }});
    }
    // Cacheline pad generation: four AES blocks per op, batched
    // through encrypt4 (throughput-bound on AES-NI).
    {
        struct St {
            OtpEngine otp{Aes128::Key{}};
            std::uint64_t c = 0;
        };
        auto st = std::make_shared<St>();
        out.push_back({"otp_pad", 64, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned rep = 0; rep < 64; ++rep) {
                               const auto p = st->otp.pad(
                                   42,
                                   (++st->c) & ((1ull << 56) - 1));
                               sink += p[0];
                           }
                           return sink;
                       }});
    }
    // 64-byte SipHash MAC with tweaked inputs.
    {
        struct St {
            MacEngine mac{SipKey{}};
            CachelineData payload{};
            std::uint64_t c = 0;
        };
        auto st = std::make_shared<St>();
        out.push_back({"siphash_mac", 64, [st] {
                           std::uint64_t sink = 0;
                           for (unsigned rep = 0; rep < 64; ++rep)
                               sink += st->mac.compute(7, ++st->c,
                                                       st->payload, 54);
                           return sink;
                       }});
    }
    return out;
}

/** Measured rate for one kernel. */
struct Rate {
    std::string name;
    double ops_per_sec = 0;
};

/**
 * Time one kernel: warm up, then run until at least @p min_seconds of
 * wall clock has elapsed. Returns operations per second.
 */
inline double
measureOpsPerSec(const Kernel &k, double min_seconds)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t sink = 0;
    for (unsigned i = 0; i < 8; ++i)
        sink += k.run();
    std::uint64_t calls = 0;
    const auto t0 = clock::now();
    double elapsed = 0;
    do {
        for (unsigned i = 0; i < 16; ++i)
            sink += k.run();
        calls += 16;
        elapsed =
            std::chrono::duration<double>(clock::now() - t0).count();
    } while (elapsed < min_seconds);
    // Keep the sink alive so the optimizer cannot drop the kernel.
    asm volatile("" : : "r"(sink));
    return double(calls * k.batch) / elapsed;
}

/** Measure every kernel at @p min_seconds each. */
inline std::vector<Rate>
measureAll(double min_seconds)
{
    std::vector<Rate> rates;
    for (const auto &k : makeKernels())
        rates.push_back({k.name, measureOpsPerSec(k, min_seconds)});
    return rates;
}

} // namespace kernels
} // namespace morph

#endif // MORPH_BENCH_KERNELS_HH
