/**
 * @file
 * Reproduces paper Fig 6: writes tolerated before an overflow for
 * split counters (SC-64 vs SC-128) as the fraction of the counter
 * cacheline in use varies, plus the §V adversarial bound.
 */

#include <cmath>

#include "bench_common.hh"
#include "counters/overflow_model.hh"
#include "counters/split_counter.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 6", "writes/overflow vs fraction of counter cacheline "
                    "used (uniform writes)");

    SplitCounterFormat sc64(64), sc128(128);
    std::printf("%-10s %14s %14s\n", "fraction", "SC-64", "SC-128");
    for (double fraction = 0.05; fraction <= 1.0001; fraction += 0.05) {
        const unsigned used64 =
            std::max(1u, unsigned(std::lround(fraction * 64)));
        const unsigned used128 =
            std::max(1u, unsigned(std::lround(fraction * 128)));
        std::printf("%-10.2f %14llu %14llu\n", fraction,
                    (unsigned long long)writesToOverflow(sc64, used64),
                    (unsigned long long)writesToOverflow(sc128,
                                                         used128));
    }

    std::printf("\nWorst case (single hot counter): SC-64 %llu, "
                "SC-128 %llu  [paper: 64 and 8]\n",
                (unsigned long long)writesToOverflow(sc64, 1),
                (unsigned long long)writesToOverflow(sc128, 1));
    std::printf("Uniform-use ratio SC-64/SC-128 at f=1.0: %.1fx  "
                "[paper: 8x]\n",
                double(writesToOverflow(sc64, 64)) /
                    double(writesToOverflow(sc128, 128)));
    return 0;
}
