/**
 * @file
 * Reproduces paper Fig 18: system power, execution time, energy and
 * energy-delay product for VAULT, SC-64 and MorphCtr-128, normalized
 * to SC-64.
 *
 * Expected shape: MorphCtr-128 trades slightly higher average power
 * for shorter execution time, netting lower energy and a clearly
 * better EDP (paper: -8.8%); VAULT is worse on every energy metric.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 18", "power / execution time / energy / EDP "
                     "(normalized to SC-64)");

    const SimOptions options = perfOptions();
    const TreeConfig configs[] = {TreeConfig::vault(),
                                  TreeConfig::sc64(),
                                  TreeConfig::morph()};
    const char *names[] = {"VAULT", "SC-64", "MorphCtr-128"};

    // Accumulate per-workload normalized metrics (geometric mean).
    std::vector<double> power[3], time[3], energy[3], edp[3];
    for (const std::string &workload : evaluationWorkloads()) {
        SimResult results[3];
        for (int c = 0; c < 3; ++c)
            results[c] =
                runByName(workload, modelConfig(configs[c]), options);
        const EnergyReport &base = results[1].energy;
        for (int c = 0; c < 3; ++c) {
            const EnergyReport &r = results[c].energy;
            power[c].push_back(r.systemPowerW / base.systemPowerW);
            time[c].push_back(r.seconds / base.seconds);
            energy[c].push_back(r.systemJ / base.systemJ);
            edp[c].push_back(r.edp / base.edp);
        }
    }

    std::printf("%-14s %12s %16s %10s %10s\n", "config", "power",
                "exec time", "energy", "EDP");
    for (int c = 0; c < 3; ++c) {
        std::printf("%-14s %12.3f %16.3f %10.3f %10.3f\n", names[c],
                    geomean(power[c]), geomean(time[c]),
                    geomean(energy[c]), geomean(edp[c]));
    }

    std::printf("\nPaper: MorphCtr-128 power +4%%, time -6%%, energy "
                "-2.7%%, EDP -8.8%%;\n");
    std::printf("       VAULT energy +3.2%%, EDP +10.5%%.\n");
    return 0;
}
