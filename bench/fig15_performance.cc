/**
 * @file
 * Reproduces paper Fig 15 — the headline result: IPC of VAULT, SC-64
 * and MorphCtr-128 across the 28 evaluation workloads, normalized to
 * SC-64.
 *
 * Expected shape: MorphCtr-128 above 1.0 (paper: +6.3% average, up to
 * +28%), VAULT below 1.0 (paper: -6.4%), with the largest MorphCtr
 * gains on random-access workloads (mcf, omnetpp, GAP-twitter) and
 * parity on streaming ones (libquantum, gcc).
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 15", "normalized performance (IPC): VAULT / SC-64 / "
                     "MorphCtr-128");

    const SimOptions options = perfOptions();

    std::printf("%-12s %10s %10s %14s %14s\n", "workload", "VAULT",
                "SC-64", "MorphCtr-128", "(SC-64 IPC)");
    const auto workloads = evaluationWorkloads();
    std::vector<SweepCase> cases;
    for (const std::string &name : workloads) {
        cases.push_back({name, modelConfig(TreeConfig::vault()), options});
        cases.push_back({name, modelConfig(TreeConfig::sc64()), options});
        cases.push_back({name, modelConfig(TreeConfig::morph()), options});
    }
    const std::vector<SimResult> results = runSweep(cases);

    std::vector<double> vault_norm, morph_norm;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const SimResult &vault = results[3 * w + 0];
        const SimResult &sc64 = results[3 * w + 1];
        const SimResult &morphr = results[3 * w + 2];

        const double v = vault.ipc / sc64.ipc;
        const double m = morphr.ipc / sc64.ipc;
        vault_norm.push_back(v);
        morph_norm.push_back(m);
        std::printf("%-12s %10.3f %10.3f %14.3f %14.3f\n",
                    name.c_str(), v, 1.0, m, sc64.ipc);
    }

    const double v_gmean = geomean(vault_norm);
    const double m_gmean = geomean(morph_norm);
    std::printf("%-12s %10.3f %10.3f %14.3f\n", "GMEAN", v_gmean, 1.0,
                m_gmean);
    std::printf("\nMorphCtr-128 speedup over SC-64: %+.1f%%  [paper: "
                "+6.3%% avg, up to +28.3%%]\n",
                (m_gmean - 1.0) * 100);
    std::printf("VAULT slowdown vs SC-64:        %+.1f%%  [paper: "
                "-6.4%%]\n",
                (v_gmean - 1.0) * 100);
    std::printf("MorphCtr-128 speedup over VAULT: %+.1f%%  [paper: "
                "+13.5%% avg, up to +47.4%%]\n",
                (m_gmean / v_gmean - 1.0) * 100);
    return 0;
}
