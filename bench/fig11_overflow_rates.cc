/**
 * @file
 * Reproduces paper Fig 11: counter overflows per million memory
 * accesses for SC-64, SC-128 and MorphCtr-128 (ZCC-only), per
 * workload.
 *
 * Expected shape: SC-128 far above SC-64 everywhere (~7x average in
 * the paper); ZCC below SC-64 for sparse/random workloads (mcf,
 * omnetpp, xalancbmk, GAP) but above it for streaming workloads
 * (libquantum, gcc, lbm) — the weakness Fig 14's rebasing repairs.
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 11", "overflows per million accesses: SC-64 / SC-128 "
                     "/ MorphCtr-128 (ZCC-only)");

    const SimOptions options = overflowOptions();
    const TreeConfig configs[] = {TreeConfig::sc64(),
                                  TreeConfig::sc128(),
                                  TreeConfig::morphZccOnly()};

    std::printf("%-12s %12s %12s %16s\n", "workload", "SC-64",
                "SC-128", "MorphCtr(ZCC)");
    const auto workloads = evaluationWorkloads();
    std::vector<SweepCase> cases;
    for (const std::string &name : workloads)
        for (int c = 0; c < 3; ++c)
            cases.push_back({name, modelConfig(configs[c]), options});
    const std::vector<SimResult> results = runSweep(cases);

    double sums[3] = {};
    unsigned rows = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        double rates[3];
        for (int c = 0; c < 3; ++c)
            rates[c] = results[3 * w + c].overflowsPerMillion();
        std::printf("%-12s %12.1f %12.1f %16.1f\n", name.c_str(),
                    rates[0], rates[1], rates[2]);
        for (int c = 0; c < 3; ++c)
            sums[c] += rates[c];
        ++rows;
    }

    std::printf("%-12s %12.1f %12.1f %16.1f\n", "Average",
                sums[0] / rows, sums[1] / rows, sums[2] / rows);
    std::printf("\nSC-128 / SC-64 overflow ratio: %.1fx  [paper: "
                "7.4x]\n",
                sums[0] > 0 ? sums[1] / sums[0] : 0.0);
    std::printf("SC-64 / MorphCtr(ZCC) overflow ratio: %.1fx  [paper: "
                "1.4x]\n",
                sums[2] > 0 ? sums[0] / sums[2] : 0.0);
    return 0;
}
