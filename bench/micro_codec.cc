/**
 * @file
 * Google-benchmark microbenchmarks: counter codec and crypto
 * primitive throughput.
 *
 * The paper argues ZCC decode is "relatively simple ... compared to a
 * cryptographic operation like AES" (§III-B2); these benches quantify
 * that claim for this implementation, and measure the cost of
 * increments, re-encodings and morphs.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "kernels.hh"
#include "counters/counter_factory.hh"
#include "counters/split_counter.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "integrity/mac_tree.hh"
#include "secmem/secure_memory.hh"

namespace
{

using namespace morph;

void
BM_SplitCounterIncrement(benchmark::State &state)
{
    SplitCounterFormat format(unsigned(state.range(0)));
    CachelineData line;
    format.init(line);
    unsigned idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(format.increment(line, idx));
        idx = (idx + 1) % format.arity();
    }
}
BENCHMARK(BM_SplitCounterIncrement)->Arg(64)->Arg(128);

void
BM_MorphIncrementSparse(benchmark::State &state)
{
    // Few hot counters: stays in ZCC with 16-bit widths.
    auto format = makeCounterFormat(CounterKind::Morph);
    CachelineData line;
    format->init(line);
    unsigned idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(format->increment(line, idx % 8));
        ++idx;
    }
}
BENCHMARK(BM_MorphIncrementSparse);

void
BM_MorphIncrementDense(benchmark::State &state)
{
    // All 128 counters used: MCR format with periodic rebases.
    auto format = makeCounterFormat(CounterKind::Morph);
    CachelineData line;
    format->init(line);
    for (unsigned i = 0; i < 128; ++i)
        format->increment(line, i);
    unsigned idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(format->increment(line, idx % 128));
        ++idx;
    }
}
BENCHMARK(BM_MorphIncrementDense);

void
BM_MorphRead(benchmark::State &state)
{
    auto format = makeCounterFormat(CounterKind::Morph);
    CachelineData line;
    format->init(line);
    for (unsigned i = 0; i < 40; ++i)
        format->increment(line, i * 3);
    unsigned idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(format->read(line, idx % 128));
        ++idx;
    }
}
BENCHMARK(BM_MorphRead);

void
BM_ZccInsertReencode(benchmark::State &state)
{
    // Worst-case ZCC maintenance: inserting the counter that shrinks
    // the width re-packs the whole payload.
    auto format = makeCounterFormat(CounterKind::Morph);
    for (auto _ : state) {
        state.PauseTiming();
        CachelineData line;
        format->init(line);
        for (unsigned i = 0; i < 16; ++i)
            format->increment(line, i);
        state.ResumeTiming();
        benchmark::DoNotOptimize(format->increment(line, 100));
    }
}
BENCHMARK(BM_ZccInsertReencode);

void
BM_AesBlockEncrypt(benchmark::State &state)
{
    Aes128 aes(Aes128::Key{});
    Aes128::Block block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
}
BENCHMARK(BM_AesBlockEncrypt);

void
BM_OtpCachelinePad(benchmark::State &state)
{
    OtpEngine otp(Aes128::Key{});
    std::uint64_t counter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(otp.pad(42, ++counter));
    }
}
BENCHMARK(BM_OtpCachelinePad);

void
BM_MacCacheline(benchmark::State &state)
{
    MacEngine mac(SipKey{});
    CachelineData payload{};
    std::uint64_t counter = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mac.compute(7, ++counter, payload, 54));
    }
}
BENCHMARK(BM_MacCacheline);

void
BM_SecureMemoryWrite(benchmark::State &state)
{
    SecureMemoryConfig config;
    config.memBytes = 64ull << 20;
    config.tree = TreeConfig::morph();
    SecureMemory memory(config);
    CachelineData data{};
    LineAddr line = 0;
    for (auto _ : state) {
        data[0] = std::uint8_t(line);
        memory.writeLine(line % (config.memBytes / lineBytes), data);
        ++line;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(lineBytes));
}
BENCHMARK(BM_SecureMemoryWrite);

void
BM_SecureMemoryVerifiedRead(benchmark::State &state)
{
    SecureMemoryConfig config;
    config.memBytes = 64ull << 20;
    config.tree = TreeConfig::morph();
    SecureMemory memory(config);
    CachelineData data{};
    for (LineAddr line = 0; line < 256; ++line)
        memory.writeLine(line, data);
    LineAddr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.readLine(line % 256));
        ++line;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(lineBytes));
}
BENCHMARK(BM_SecureMemoryVerifiedRead);

void
BM_MacTreeUpdate(benchmark::State &state)
{
    MacTree tree(1u << 20, SipKey{});
    CachelineData leaf{};
    std::uint64_t index = 0;
    for (auto _ : state) {
        leaf[0] = std::uint8_t(index);
        tree.updateLeaf(index % (1u << 20), leaf);
        ++index;
    }
}
BENCHMARK(BM_MacTreeUpdate);

/**
 * The shared hot-path kernel suite (kernels.hh) registered as
 * kernel/<name> cases: the same loop bodies the morphbench --kernels
 * throughput gate measures, available here for interactive profiling
 * (items processed = kernel ops, so ops/s shows directly).
 */
const int kernel_registration = [] {
    for (const auto &k : morph::kernels::makeKernels()) {
        benchmark::RegisterBenchmark(
            ("kernel/" + k.name).c_str(),
            [k](benchmark::State &state) {
                for (auto _ : state)
                    benchmark::DoNotOptimize(k.run());
                state.SetItemsProcessed(
                    std::int64_t(state.iterations()) *
                    std::int64_t(k.batch));
            });
    }
    return 0;
}();

} // namespace

BENCHMARK_MAIN();
