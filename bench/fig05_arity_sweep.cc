/**
 * @file
 * Reproduces paper Fig 5: the arity-sweep motivation experiment —
 * performance and memory traffic of VAULT, SC-64 and SC-128 (plus
 * the non-secure bound), averaged over the evaluation workloads.
 *
 * Expected shape: SC-64 beats VAULT (fewer tree levels), but naive
 * SC-128 collapses under counter-overflow traffic (paper: -28% vs
 * SC-64 with ~1 extra overflow access per data access).
 */

#include "bench_common.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 5", "impact of counter arity: VAULT / SC-64 / SC-128 "
                    "(+ non-secure bound)");

    // SC-128's overflow catastrophe needs counter steady state, so
    // this figure runs at the overflow footprint scale but timed.
    SimOptions options = perfOptions();
    options.footprintScale = envScale(32.0);

    struct Row
    {
        const char *name;
        SecureModelConfig config;
    };
    std::vector<Row> rows;
    rows.push_back({"Non-Secure", modelConfig(TreeConfig::sc64())});
    rows.back().config.secure = false;
    rows.push_back({"VAULT", modelConfig(TreeConfig::vault())});
    rows.push_back({"SC-64", modelConfig(TreeConfig::sc64())});
    rows.push_back({"SC-128", modelConfig(TreeConfig::sc128())});

    const auto workloads = evaluationWorkloads();
    std::vector<std::vector<double>> ipcs(rows.size());
    std::vector<double> bloat(rows.size(), 0.0);
    std::vector<double> overflow_traffic(rows.size(), 0.0);

    std::vector<SweepCase> cases;
    for (const std::string &name : workloads)
        for (const Row &row : rows)
            cases.push_back({name, row.config, options});
    const std::vector<SimResult> results = runSweep(cases);

    std::size_t next = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const SimResult &result = results[next++];
            ipcs[r].push_back(result.ipc);
            bloat[r] += result.bloat();
            const double data =
                double(result.traffic.accesses(Traffic::Data));
            overflow_traffic[r] +=
                data > 0 ? double(result.traffic.accesses(
                               Traffic::Overflow)) /
                               data
                         : 0.0;
        }
    }

    // Normalize performance to SC-64 (row 2), as in the paper.
    std::printf("%-12s %18s %22s %24s\n", "config",
                "normalized perf", "mem access/data access",
                "overflow access/data");
    const double sc64_gmean = geomean(ipcs[2]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        std::printf("%-12s %18.3f %22.3f %24.3f\n", rows[r].name,
                    geomean(ipcs[r]) / sc64_gmean,
                    bloat[r] / double(workloads.size()),
                    overflow_traffic[r] / double(workloads.size()));
    }

    std::printf("\nPaper: VAULT 0.94, SC-64 1.00, SC-128 0.72 "
                "(overflow bloat ~1 access/access);\n");
    std::printf("       non-secure is ~1.4x over SC-64.\n");
    return 0;
}
