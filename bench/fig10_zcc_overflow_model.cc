/**
 * @file
 * Reproduces paper Fig 10: writes tolerated before an overflow for
 * MorphCtr-128 (ZCC) vs SC-64, and the §V security-analysis numbers
 * (500+ uniform writes, 67-write adversarial pattern).
 */

#include <cmath>

#include "bench_common.hh"
#include "counters/counter_factory.hh"
#include "counters/overflow_model.hh"
#include "counters/split_counter.hh"

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 10", "writes/overflow: MorphCtr-128 (ZCC) vs SC-64");

    SplitCounterFormat sc64(64);
    auto zcc_only = makeCounterFormat(CounterKind::MorphZccOnly);
    auto full = makeCounterFormat(CounterKind::Morph);

    std::printf("%-10s %14s %16s %18s\n", "fraction", "SC-64",
                "MorphCtr (ZCC)", "MorphCtr (+Rebase)");
    for (double fraction = 0.05; fraction <= 1.0001; fraction += 0.05) {
        const unsigned used64 =
            std::max(1u, unsigned(std::lround(fraction * 64)));
        const unsigned used128 =
            std::max(1u, unsigned(std::lround(fraction * 128)));
        std::printf("%-10.2f %14llu %16llu %18llu\n", fraction,
                    (unsigned long long)writesToOverflow(sc64, used64),
                    (unsigned long long)writesToOverflow(*zcc_only,
                                                         used128),
                    (unsigned long long)writesToOverflow(*full,
                                                         used128));
    }

    std::printf("\nSection V checks:\n");
    std::printf("  uniform 128-counter writes before overflow "
                "(rebasing): %llu  [paper: 500+]\n",
                (unsigned long long)writesToOverflow(*full, 128));
    std::printf("  adversarial 52-prime pattern: overflow at write "
                "%llu  [paper: 67]\n",
                (unsigned long long)adversarialWritesToOverflow(*full,
                                                                52));
    return 0;
}
