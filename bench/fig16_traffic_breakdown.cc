/**
 * @file
 * Reproduces paper Fig 16: memory traffic per data access, broken
 * into {Data, Ctr_Encr, Ctr_1, Ctr_2, Ctr_3&Up, Overflow}, for
 * VAULT, SC-64 and MorphCtr-128.
 *
 * Expected shape: VAULT's tall Ctr_1..Ctr_3&Up stack (6-level tree),
 * SC-64 in between, MorphCtr-128 lowest with traffic only at
 * Ctr_Encr/Ctr_1 — its level 2 fits in the metadata cache.
 */

#include "bench_common.hh"

namespace
{

using namespace morph;

void
printRow(const char *config, const SimResult &result)
{
    const double data = double(result.traffic.accesses(Traffic::Data));
    auto per = [&](Traffic t) {
        return data > 0 ? double(result.traffic.accesses(t)) / data
                        : 0.0;
    };
    std::printf("  %-14s %6.3f %9.3f %7.3f %7.3f %9.3f %9.3f | "
                "total %.3f\n",
                config, per(Traffic::Data), per(Traffic::CtrEncr),
                per(Traffic::Ctr1), per(Traffic::Ctr2),
                per(Traffic::Ctr3Up), per(Traffic::Overflow),
                result.bloat());
}

} // namespace

int
main()
{
    using namespace morph;
    using namespace morph::bench;

    banner("Fig 16", "memory accesses per data access, by category");

    const SimOptions options = perfOptions();
    std::printf("%-14s %8s %9s %7s %7s %9s %9s\n", "", "Data",
                "Ctr_Encr", "Ctr_1", "Ctr_2", "Ctr_3&Up", "Overflow");

    const auto workloads = evaluationWorkloads();
    std::vector<SweepCase> cases;
    for (const std::string &name : workloads) {
        cases.push_back({name, modelConfig(TreeConfig::vault()), options});
        cases.push_back({name, modelConfig(TreeConfig::sc64()), options});
        cases.push_back({name, modelConfig(TreeConfig::morph()), options});
    }
    const std::vector<SimResult> results = runSweep(cases);

    double bloat_sums[3] = {};
    unsigned rows = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%s\n", workloads[w].c_str());
        const SimResult &vault = results[3 * w + 0];
        const SimResult &sc64 = results[3 * w + 1];
        const SimResult &morphr = results[3 * w + 2];
        printRow("VAULT", vault);
        printRow("SC-64", sc64);
        printRow("MorphCtr-128", morphr);
        bloat_sums[0] += vault.bloat();
        bloat_sums[1] += sc64.bloat();
        bloat_sums[2] += morphr.bloat();
        ++rows;
    }

    std::printf("\nAverage bloat: VAULT %.3f, SC-64 %.3f, "
                "MorphCtr-128 %.3f\n",
                bloat_sums[0] / rows, bloat_sums[1] / rows,
                bloat_sums[2] / rows);
    std::printf("Paper: MorphCtr-128 cuts traffic 8.8%% below SC-64; "
                "VAULT adds 9.7%% above it.\n");
    std::printf("Measured: MorphCtr %+.1f%%, VAULT %+.1f%% vs SC-64\n",
                100.0 * (bloat_sums[2] / bloat_sums[1] - 1.0),
                100.0 * (bloat_sums[0] / bloat_sums[1] - 1.0));
    return 0;
}
