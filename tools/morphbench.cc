/**
 * @file
 * morphbench — the CI performance-tracking harness.
 *
 * Runs a fixed (workload x config) matrix through the simulator and
 * writes one JSON document per revision; a second invocation compares
 * two such documents cell by cell and fails on relative drift beyond
 * a tolerance. CI runs `morphbench --quick` on every push and checks
 * the result against the committed bench/baseline.json, so an
 * accidental IPC or traffic-bloat regression fails the build instead
 * of landing silently (see docs/OBSERVABILITY.md).
 *
 * Usage:
 *   morphbench [--quick] [--out FILE] [--rev NAME]
 *              [--accesses N] [--warmup N] [--jobs N]
 *   morphbench --compare BASE.json NEW.json [--tolerance F]
 *
 * The run mode writes BENCH_<rev>.json by default. The quick matrix
 * is small enough for per-push CI (~seconds); the full matrix covers
 * every evaluation config. Determinism: the simulator is seeded, so
 * identical code produces identical numbers — the tolerance exists
 * for intentional model changes, which must update the baseline.
 * Matrix cells are independent simulations, so --jobs N (default:
 * hardware concurrency) runs them on a work-stealing pool; cells are
 * collected in matrix order, so the written JSON is byte-identical
 * at every --jobs level (pinned by the morphbench_jobs_determinism
 * tier-1 test).
 *
 * Exit codes: 0 success, 1 drift or comparison failure, 2 bad
 * command line, 4 I/O failure.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/mutex.hh"
#include "common/run_pool.hh"
#include "sim/simulator.hh"

namespace
{

using namespace morph;

struct BenchCase
{
    const char *workload;
    const char *config;
};

/** Per-push matrix: one random, one streaming, one mix — the three
 *  trace shapes — against the paper's two headline configs. */
constexpr BenchCase quickMatrix[] = {
    {"mcf", "morph"},     {"mcf", "sc64"},
    {"libquantum", "morph"}, {"libquantum", "sc64"},
    {"mix1", "morph"},    {"mix1", "sc64"},
};

/** Nightly matrix: wider workload spread, all tree configs. */
constexpr BenchCase fullMatrix[] = {
    {"mcf", "morph"},     {"mcf", "sc64"},     {"mcf", "vault"},
    {"omnetpp", "morph"}, {"omnetpp", "sc64"}, {"omnetpp", "vault"},
    {"libquantum", "morph"}, {"libquantum", "sc64"},
    {"libquantum", "vault"}, {"lbm", "morph"}, {"lbm", "sc64"},
    {"lbm", "vault"},     {"mix1", "morph"},   {"mix1", "sc64"},
    {"mix1", "vault"},    {"bc-twit", "morph"}, {"bc-twit", "sc64"},
    {"bc-twit", "vault"},
};

TreeConfig
treeByName(const std::string &name)
{
    if (name == "sc64")
        return TreeConfig::sc64();
    if (name == "vault")
        return TreeConfig::vault();
    if (name == "morph")
        return TreeConfig::morph();
    std::fprintf(stderr, "morphbench: unknown config '%s'\n",
                 name.c_str());
    std::exit(2);
}

int
runMatrix(bool quick, const std::string &out_path,
          const std::string &rev, std::uint64_t accesses,
          std::uint64_t warmup, unsigned jobs)
{
    const BenchCase *cases = quick ? quickMatrix : fullMatrix;
    const std::size_t count = quick
                                  ? std::size(quickMatrix)
                                  : std::size(fullMatrix);

    // Validate config names up front: treeByName exits on an unknown
    // name, and that must not happen from a pool worker.
    for (std::size_t i = 0; i < count; ++i)
        (void)treeByName(cases[i].config);

    // Every cell is an independent simulation; render each one's JSON
    // fragment on the pool, then join in matrix order so the document
    // is byte-identical at every --jobs level. Seeds come from the
    // cell's fixed SimOptions, never from scheduling.
    Mutex progress_lock;
    std::size_t started = 0;
    SweepEngine engine(jobs);
    const std::vector<std::string> cells =
        engine.map<std::string>(count, [&](std::size_t i) {
            const BenchCase &c = cases[i];
            {
                LockGuard guard(progress_lock);
                std::fprintf(stderr,
                             "morphbench: [%zu/%zu] %s/%s\n",
                             ++started, count, c.workload, c.config);
            }

            SecureModelConfig secmem;
            secmem.tree = treeByName(c.config);
            SimOptions options;
            options.accessesPerCore = accesses;
            options.warmupPerCore = warmup;

            const SimResult r = runByName(c.workload, secmem, options);

            std::ostringstream cell;
            cell << "{\"workload\": \"" << c.workload
                 << "\", \"config\": \"" << c.config
                 << "\", \"ipc\": " << jsonNumber(r.ipc)
                 << ", \"bloat\": " << jsonNumber(r.bloat())
                 << ", \"overflows_per_million\": "
                 << jsonNumber(r.overflowsPerMillion())
                 << ", \"cycles\": " << r.cycles
                 << ", \"dram_reads\": " << r.dram.reads
                 << ", \"dram_writes\": " << r.dram.writes
                 << ", \"mdcache_hit_rate\": "
                 << jsonNumber(r.metadataCache.hitRate()) << "}";
            return cell.str();
        });

    std::ostringstream os;
    os << "{\n  \"schema\": \"morphbench-v1\",\n  \"rev\": \""
       << jsonEscape(rev) << "\",\n  \"accesses_per_core\": "
       << accesses << ",\n  \"warmup_per_core\": " << warmup
       << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            os << ",";
        os << "\n    " << cells[i];
    }
    os << "\n  ]\n}\n";

    std::ofstream out(out_path);
    if (!out || !(out << os.str())) {
        std::fprintf(stderr, "morphbench: cannot write %s\n",
                     out_path.c_str());
        return 4;
    }
    std::fprintf(stderr, "morphbench: wrote %s (%zu cells)\n",
                 out_path.c_str(), count);
    return 0;
}

/** Cells are matched by (workload, config); key them for lookup. */
std::string
cellKey(const JsonValue &cell)
{
    const JsonValue *w = cell.find("workload");
    const JsonValue *c = cell.find("config");
    if (!w || !c)
        return "";
    return w->asString() + "/" + c->asString();
}

JsonValue
loadDoc(const std::string &path, int &rc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "morphbench: cannot read %s\n",
                     path.c_str());
        rc = 4;
        return JsonValue{};
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    bool ok = false;
    std::string error;
    JsonValue doc = jsonParse(buffer.str(), ok, error);
    if (!ok) {
        std::fprintf(stderr, "morphbench: %s: %s\n", path.c_str(),
                     error.c_str());
        rc = 1;
        return JsonValue{};
    }
    return doc;
}

int
compare(const std::string &base_path, const std::string &new_path,
        double tolerance)
{
    int rc = 0;
    const JsonValue base = loadDoc(base_path, rc);
    if (rc)
        return rc;
    const JsonValue fresh = loadDoc(new_path, rc);
    if (rc)
        return rc;

    const JsonValue *base_cells = base.find("cells");
    const JsonValue *new_cells = fresh.find("cells");
    if (!base_cells || !new_cells) {
        std::fprintf(stderr,
                     "morphbench: missing \"cells\" array\n");
        return 1;
    }

    // The metrics gated by the drift check. Lower-is-better vs
    // higher-is-better doesn't matter: drift in either direction
    // means the model changed and the baseline must be re-blessed.
    static const char *metrics[] = {"ipc", "bloat"};

    int failures = 0;
    for (const JsonValue &base_cell : base_cells->elements()) {
        const std::string key = cellKey(base_cell);
        const JsonValue *new_cell = nullptr;
        for (const JsonValue &candidate : new_cells->elements())
            if (cellKey(candidate) == key)
                new_cell = &candidate;
        if (!new_cell) {
            std::fprintf(stderr,
                         "morphbench: FAIL %s: cell missing from %s\n",
                         key.c_str(), new_path.c_str());
            ++failures;
            continue;
        }
        for (const char *metric : metrics) {
            const JsonValue *bv = base_cell.find(metric);
            const JsonValue *nv = new_cell->find(metric);
            const double b = bv ? bv->asNumber() : std::nan("");
            const double n = nv ? nv->asNumber() : std::nan("");
            if (!std::isfinite(b) || !std::isfinite(n)) {
                std::fprintf(stderr,
                             "morphbench: FAIL %s: %s not finite\n",
                             key.c_str(), metric);
                ++failures;
                continue;
            }
            const double drift =
                b == 0.0 ? std::fabs(n)
                         : std::fabs(n - b) / std::fabs(b);
            if (drift > tolerance) {
                std::fprintf(stderr,
                             "morphbench: FAIL %s: %s drifted %.2f%%"
                             " (%.6g -> %.6g, tolerance %.0f%%)\n",
                             key.c_str(), metric, drift * 100.0, b, n,
                             tolerance * 100.0);
                ++failures;
            } else {
                std::fprintf(stderr,
                             "morphbench: ok   %s: %s %.6g -> %.6g"
                             " (%.2f%%)\n",
                             key.c_str(), metric, b, n, drift * 100.0);
            }
        }
    }
    if (failures) {
        std::fprintf(stderr,
                     "morphbench: %d failure(s); if the change is"
                     " intentional, regenerate bench/baseline.json\n",
                     failures);
        return 1;
    }
    std::fprintf(stderr, "morphbench: all cells within tolerance\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: morphbench [options]\n"
        "  --quick             per-push matrix (6 cells; default is\n"
        "                      the 18-cell nightly matrix)\n"
        "  --out FILE          output path (default BENCH_<rev>.json)\n"
        "  --rev NAME          revision label (default 'local')\n"
        "  --accesses N        measured accesses per core\n"
        "  --warmup N          warm-up accesses per core\n"
        "  --jobs N            run matrix cells on N worker threads\n"
        "                      (default: hardware concurrency; output\n"
        "                      is byte-identical at every level)\n"
        "  --compare BASE NEW  compare two bench documents\n"
        "  --tolerance F       max relative drift (default 0.05)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path;
    std::string rev = "local";
    std::string compare_base;
    std::string compare_new;
    double tolerance = 0.05;
    std::uint64_t accesses = 20'000;
    std::uint64_t warmup = 5'000;
    unsigned jobs = RunPool::hardwareJobs();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "morphbench: option %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--rev") {
            rev = value();
        } else if (arg == "--accesses") {
            accesses = std::uint64_t(std::atoll(value()));
        } else if (arg == "--warmup") {
            warmup = std::uint64_t(std::atoll(value()));
        } else if (arg == "--jobs") {
            const long long v = std::atoll(value());
            if (v < 1) {
                std::fprintf(stderr,
                             "morphbench: --jobs needs a value >= 1\n");
                return 2;
            }
            jobs = unsigned(v);
        } else if (arg == "--compare") {
            compare_base = value();
            compare_new = value();
        } else if (arg == "--tolerance") {
            tolerance = std::atof(value());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            std::fprintf(stderr, "morphbench: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    if (!compare_base.empty())
        return compare(compare_base, compare_new, tolerance);

    if (out_path.empty())
        out_path = "BENCH_" + rev + ".json";
    return runMatrix(quick, out_path, rev, accesses, warmup, jobs);
}
