/**
 * @file
 * morphbench — the CI performance-tracking harness.
 *
 * Runs a fixed (workload x config) matrix through the simulator and
 * writes one JSON document per revision; a second invocation compares
 * two such documents cell by cell and fails on relative drift beyond
 * a tolerance. CI runs `morphbench --quick` on every push and checks
 * the result against the committed bench/baseline.json, so an
 * accidental IPC or traffic-bloat regression fails the build instead
 * of landing silently (see docs/OBSERVABILITY.md).
 *
 * Usage:
 *   morphbench [--quick] [--out FILE] [--rev NAME]
 *              [--accesses N] [--warmup N] [--jobs N]
 *              [--kernels] [--kernel-ms N]
 *   morphbench --compare BASE.json NEW.json [--tolerance F]
 *              [--kernel-min-ratio F]
 *
 * The run mode writes BENCH_<rev>.json by default. The quick matrix
 * is small enough for per-push CI (~seconds); the full matrix covers
 * every evaluation config. Determinism: the simulator is seeded, so
 * identical code produces identical numbers — the tolerance exists
 * for intentional model changes, which must update the baseline.
 * Matrix cells are independent simulations, so --jobs N (default:
 * hardware concurrency) runs them on a work-stealing pool; cells are
 * collected in matrix order, so the written JSON is byte-identical
 * at every --jobs level (pinned by the morphbench_jobs_determinism
 * tier-1 test).
 *
 * --kernels additionally measures the hot-path kernel suite
 * (bench/kernels.hh) and emits a "kernels" array plus a "kernel_gate"
 * object. Kernel rates are wall-clock measurements and therefore NOT
 * byte-identical across runs — the flag is opt-in precisely so the
 * default output keeps the byte-identity contract. The gate is
 * one-directional: --compare fails a kernel only when the new rate
 * falls below min_ratio x the baseline rate (slower is a regression;
 * faster never fails). min_ratio travels in the baseline document so
 * the threshold is versioned with the blessed numbers.
 *
 * Exit codes: 0 success, 1 drift or comparison failure, 2 bad
 * command line, 4 I/O failure.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/mutex.hh"
#include "common/prof.hh"
#include "common/run_pool.hh"
#include "kernels.hh"
#include "sim/simulator.hh"

namespace
{

using namespace morph;

struct BenchCase
{
    const char *workload;
    const char *config;
};

/** Per-push matrix: one random, one streaming, one mix — the three
 *  trace shapes — against the paper's two headline configs, plus the
 *  two NVM persist policies on the random workload so persist-traffic
 *  drift is gated per push. */
constexpr BenchCase quickMatrix[] = {
    {"mcf", "morph"},     {"mcf", "sc64"},
    {"libquantum", "morph"}, {"libquantum", "sc64"},
    {"mix1", "morph"},    {"mix1", "sc64"},
    {"mcf", "morph-nvm-strict"}, {"mcf", "morph-nvm-lazy"},
};

/** Nightly matrix: wider workload spread, all tree configs, and the
 *  NVM persist policies on both trace shapes. */
constexpr BenchCase fullMatrix[] = {
    {"mcf", "morph"},     {"mcf", "sc64"},     {"mcf", "vault"},
    {"omnetpp", "morph"}, {"omnetpp", "sc64"}, {"omnetpp", "vault"},
    {"libquantum", "morph"}, {"libquantum", "sc64"},
    {"libquantum", "vault"}, {"lbm", "morph"}, {"lbm", "sc64"},
    {"lbm", "vault"},     {"mix1", "morph"},   {"mix1", "sc64"},
    {"mix1", "vault"},    {"bc-twit", "morph"}, {"bc-twit", "sc64"},
    {"bc-twit", "vault"},
    {"mcf", "morph-nvm-strict"},        {"mcf", "morph-nvm-lazy"},
    {"libquantum", "morph-nvm-strict"}, {"libquantum", "morph-nvm-lazy"},
};

/**
 * Resolve a matrix config name to a full model configuration. Plain
 * names select a tree layout; the "morph-nvm-*" names additionally
 * enable the persist domain (a pure observer — IPC and traffic match
 * the plain "morph" cells; only the persist counters differ).
 */
SecureModelConfig
modelByName(const std::string &name)
{
    SecureModelConfig secmem;
    if (name == "sc64") {
        secmem.tree = TreeConfig::sc64();
    } else if (name == "vault") {
        secmem.tree = TreeConfig::vault();
    } else if (name == "morph") {
        secmem.tree = TreeConfig::morph();
    } else if (name == "morph-nvm-strict") {
        secmem.tree = TreeConfig::morph();
        secmem.persist.enabled = true;
        secmem.persist.policy = PersistPolicy::Strict;
    } else if (name == "morph-nvm-lazy") {
        secmem.tree = TreeConfig::morph();
        secmem.persist.enabled = true;
        secmem.persist.policy = PersistPolicy::Lazy;
        secmem.persist.epochWrites = 4096;
    } else {
        std::fprintf(stderr, "morphbench: unknown config '%s'\n",
                     name.c_str());
        std::exit(2);
    }
    return secmem;
}

/** Default one-directional kernel-gate threshold (see file header). */
constexpr double kernelMinRatioDefault = 0.5;

int
runMatrix(bool quick, const std::string &out_path,
          const std::string &rev, std::uint64_t accesses,
          std::uint64_t warmup, unsigned jobs, bool with_kernels,
          double kernel_seconds)
{
    const BenchCase *cases = quick ? quickMatrix : fullMatrix;
    const std::size_t count = quick
                                  ? std::size(quickMatrix)
                                  : std::size(fullMatrix);

    // Validate config names up front: modelByName exits on an unknown
    // name, and that must not happen from a pool worker.
    for (std::size_t i = 0; i < count; ++i)
        (void)modelByName(cases[i].config);

    // Every cell is an independent simulation; render each one's JSON
    // fragment on the pool, then join in matrix order so the document
    // is byte-identical at every --jobs level. Seeds come from the
    // cell's fixed SimOptions, never from scheduling.
    Mutex progress_lock;
    std::size_t started = 0;
    SweepEngine engine(jobs);
    std::vector<std::string> cells;
    {
        MORPH_PROF_SCOPE("bench.matrix");
        cells = engine.map<std::string>(count, [&](std::size_t i) {
            MORPH_PROF_SCOPE("bench.cell");
            const BenchCase &c = cases[i];
            {
                LockGuard guard(progress_lock);
                std::fprintf(stderr,
                             "morphbench: [%zu/%zu] %s/%s\n",
                             ++started, count, c.workload, c.config);
            }

            const SecureModelConfig secmem = modelByName(c.config);
            SimOptions options;
            options.accessesPerCore = accesses;
            options.warmupPerCore = warmup;

            const SimResult r = runByName(c.workload, secmem, options);

            std::ostringstream cell;
            cell << "{\"workload\": \"" << c.workload
                 << "\", \"config\": \"" << c.config
                 << "\", \"ipc\": " << jsonNumber(r.ipc)
                 << ", \"bloat\": " << jsonNumber(r.bloat())
                 << ", \"overflows_per_million\": "
                 << jsonNumber(r.overflowsPerMillion())
                 << ", \"cycles\": " << r.cycles
                 << ", \"dram_reads\": " << r.dram.reads
                 << ", \"dram_writes\": " << r.dram.writes
                 << ", \"mdcache_hit_rate\": "
                 << jsonNumber(r.metadataCache.hitRate())
                 << ", \"persists_per_write\": "
                 << jsonNumber(r.persistsPerWrite()) << "}";
            return cell.str();
        });
    }
    if (profEnabled())
        std::fprintf(stderr, "morphbench: matrix %s\n",
                     engine.utilization().c_str());

    std::ostringstream os;
    os << "{\n  \"schema\": \"morphbench-v1\",\n  \"rev\": \""
       << jsonEscape(rev) << "\",\n  \"accesses_per_core\": "
       << accesses << ",\n  \"warmup_per_core\": " << warmup
       << ",\n  \"cells\": [";
    for (std::size_t i = 0; i < count; ++i) {
        if (i)
            os << ",";
        os << "\n    " << cells[i];
    }
    os << "\n  ]";

    if (with_kernels) {
        std::fprintf(stderr,
                     "morphbench: measuring %s kernels (%.0f ms"
                     " each)\n",
                     "hot-path", kernel_seconds * 1000.0);
        MORPH_PROF_SCOPE("bench.kernels");
        const auto rates = kernels::measureAll(kernel_seconds);
        os << ",\n  \"kernels\": [";
        for (std::size_t i = 0; i < rates.size(); ++i) {
            if (i)
                os << ",";
            os << "\n    {\"name\": \"" << rates[i].name
               << "\", \"ops_per_sec\": "
               << jsonNumber(rates[i].ops_per_sec) << "}";
            std::fprintf(stderr, "morphbench: kernel %-18s %14.0f"
                         " ops/s\n",
                         rates[i].name.c_str(),
                         rates[i].ops_per_sec);
        }
        // The gate direction and threshold travel with the document:
        // a comparison fails a kernel only when the new rate drops
        // below min_ratio x this baseline (lower-is-worse).
        os << "\n  ],\n  \"kernel_gate\": {\"direction\":"
              " \"lower-is-worse\", \"min_ratio\": "
           << jsonNumber(kernelMinRatioDefault) << "}";
    }

    os << "\n}\n";

    std::ofstream out(out_path);
    if (!out || !(out << os.str())) {
        std::fprintf(stderr, "morphbench: cannot write %s\n",
                     out_path.c_str());
        return 4;
    }
    std::fprintf(stderr, "morphbench: wrote %s (%zu cells)\n",
                 out_path.c_str(), count);
    return 0;
}

/** Cells are matched by (workload, config); key them for lookup. */
std::string
cellKey(const JsonValue &cell)
{
    const JsonValue *w = cell.find("workload");
    const JsonValue *c = cell.find("config");
    if (!w || !c)
        return "";
    return w->asString() + "/" + c->asString();
}

JsonValue
loadDoc(const std::string &path, int &rc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "morphbench: cannot read %s\n",
                     path.c_str());
        rc = 4;
        return JsonValue{};
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    bool ok = false;
    std::string error;
    JsonValue doc = jsonParse(buffer.str(), ok, error);
    if (!ok) {
        std::fprintf(stderr, "morphbench: %s: %s\n", path.c_str(),
                     error.c_str());
        rc = 1;
        return JsonValue{};
    }
    return doc;
}

/**
 * One-directional kernel throughput gate. Throughput metrics compare
 * lower-is-worse: a regression is the new rate dropping below
 * min_ratio x baseline; a faster kernel never fails. Baselines
 * without a "kernels" section skip the gate (pre-kernel documents);
 * a baseline WITH kernels requires the new document to have them.
 * @return number of failures
 */
int
compareKernels(const JsonValue &base, const JsonValue &fresh,
               const std::string &new_path, double min_ratio_override)
{
    const JsonValue *base_kernels = base.find("kernels");
    if (!base_kernels)
        return 0;

    double min_ratio = kernelMinRatioDefault;
    if (const JsonValue *gate = base.find("kernel_gate"))
        if (const JsonValue *mr = gate->find("min_ratio"))
            min_ratio = mr->asNumber();
    if (min_ratio_override >= 0.0)
        min_ratio = min_ratio_override;

    const JsonValue *new_kernels = fresh.find("kernels");
    if (!new_kernels) {
        std::fprintf(stderr,
                     "morphbench: FAIL kernels: baseline has a"
                     " kernel section but %s has none (run with"
                     " --kernels)\n",
                     new_path.c_str());
        return 1;
    }

    int failures = 0;
    for (const JsonValue &base_k : base_kernels->elements()) {
        const JsonValue *name = base_k.find("name");
        const JsonValue *bv = base_k.find("ops_per_sec");
        if (!name || !bv)
            continue;
        const std::string kname = name->asString();
        const JsonValue *new_k = nullptr;
        for (const JsonValue &candidate : new_kernels->elements()) {
            const JsonValue *cn = candidate.find("name");
            if (cn && cn->asString() == kname)
                new_k = &candidate;
        }
        if (!new_k) {
            std::fprintf(stderr,
                         "morphbench: FAIL kernel %s: missing from"
                         " %s\n",
                         kname.c_str(), new_path.c_str());
            ++failures;
            continue;
        }
        const JsonValue *nv = new_k->find("ops_per_sec");
        const double b = bv->asNumber();
        const double n = nv ? nv->asNumber() : std::nan("");
        if (!std::isfinite(b) || !std::isfinite(n) || b <= 0.0) {
            std::fprintf(stderr,
                         "morphbench: FAIL kernel %s: rate not"
                         " finite/positive\n",
                         kname.c_str());
            ++failures;
            continue;
        }
        const double ratio = n / b;
        if (ratio < min_ratio) {
            std::fprintf(stderr,
                         "morphbench: FAIL kernel %s: %.4g ->"
                         " %.4g ops/s (ratio %.2f < min %.2f)\n",
                         kname.c_str(), b, n, ratio, min_ratio);
            ++failures;
        } else {
            std::fprintf(stderr,
                         "morphbench: ok   kernel %s: %.4g ->"
                         " %.4g ops/s (ratio %.2f)\n",
                         kname.c_str(), b, n, ratio);
        }
    }
    return failures;
}

int
compare(const std::string &base_path, const std::string &new_path,
        double tolerance, double kernel_min_ratio)
{
    int rc = 0;
    const JsonValue base = loadDoc(base_path, rc);
    if (rc)
        return rc;
    const JsonValue fresh = loadDoc(new_path, rc);
    if (rc)
        return rc;

    const JsonValue *base_cells = base.find("cells");
    const JsonValue *new_cells = fresh.find("cells");
    if (!base_cells || !new_cells) {
        std::fprintf(stderr,
                     "morphbench: missing \"cells\" array\n");
        return 1;
    }

    // The metrics gated by the drift check. Lower-is-better vs
    // higher-is-better doesn't matter: drift in either direction
    // means the model changed and the baseline must be re-blessed.
    static const char *metrics[] = {"ipc", "bloat",
                                    "persists_per_write"};

    int failures = 0;
    for (const JsonValue &base_cell : base_cells->elements()) {
        const std::string key = cellKey(base_cell);
        const JsonValue *new_cell = nullptr;
        for (const JsonValue &candidate : new_cells->elements())
            if (cellKey(candidate) == key)
                new_cell = &candidate;
        if (!new_cell) {
            std::fprintf(stderr,
                         "morphbench: FAIL %s: cell missing from %s\n",
                         key.c_str(), new_path.c_str());
            ++failures;
            continue;
        }
        for (const char *metric : metrics) {
            const JsonValue *bv = base_cell.find(metric);
            // A metric absent from the baseline cell is a pre-metric
            // document (same rule as baselines without "kernels"):
            // skip it rather than fail. A baseline WITH the metric
            // still requires the new document to carry it.
            if (!bv)
                continue;
            const JsonValue *nv = new_cell->find(metric);
            const double b = bv ? bv->asNumber() : std::nan("");
            const double n = nv ? nv->asNumber() : std::nan("");
            if (!std::isfinite(b) || !std::isfinite(n)) {
                std::fprintf(stderr,
                             "morphbench: FAIL %s: %s not finite\n",
                             key.c_str(), metric);
                ++failures;
                continue;
            }
            const double drift =
                b == 0.0 ? std::fabs(n)
                         : std::fabs(n - b) / std::fabs(b);
            if (drift > tolerance) {
                std::fprintf(stderr,
                             "morphbench: FAIL %s: %s drifted %.2f%%"
                             " (%.6g -> %.6g, tolerance %.0f%%)\n",
                             key.c_str(), metric, drift * 100.0, b, n,
                             tolerance * 100.0);
                ++failures;
            } else {
                std::fprintf(stderr,
                             "morphbench: ok   %s: %s %.6g -> %.6g"
                             " (%.2f%%)\n",
                             key.c_str(), metric, b, n, drift * 100.0);
            }
        }
    }
    failures += compareKernels(base, fresh, new_path,
                               kernel_min_ratio);
    if (failures) {
        std::fprintf(stderr,
                     "morphbench: %d failure(s); if the change is"
                     " intentional, regenerate bench/baseline.json\n",
                     failures);
        return 1;
    }
    std::fprintf(stderr, "morphbench: all cells within tolerance\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: morphbench [options]\n"
        "  --quick             per-push matrix (8 cells; default is\n"
        "                      the 22-cell nightly matrix)\n"
        "  --out FILE          output path (default BENCH_<rev>.json)\n"
        "  --rev NAME          revision label (default 'local')\n"
        "  --accesses N        measured accesses per core\n"
        "  --warmup N          warm-up accesses per core\n"
        "  --jobs N            run matrix cells on N worker threads\n"
        "                      (default: hardware concurrency; output\n"
        "                      is byte-identical at every level)\n"
        "  --kernels           also measure the hot-path kernel suite\n"
        "                      (wall-clock rates; output is no longer\n"
        "                      byte-identical across runs)\n"
        "  --kernel-ms N       per-kernel measurement time in ms\n"
        "                      (default 200)\n"
        "  --compare BASE NEW  compare two bench documents\n"
        "  --tolerance F       max relative drift for sim cells\n"
        "                      (default 0.05)\n"
        "  --kernel-min-ratio F  fail a kernel below F x baseline\n"
        "                      (default: baseline's kernel_gate)\n"
        "  --prof-out FILE     write a morphprof self-profile (JSON,\n"
        "                      FILE.collapsed, FILE.speedscope.json);\n"
        "                      MORPH_PROF=1 for a stderr summary\n");
}

/** Finalize self-profiling (see morphsim's twin): report, stamp
 *  metadata, export, summarize. Returns false on export I/O failure. */
bool
finishProfile(const std::string &prof_out, bool prof_stderr,
              bool quick)
{
    ProfReport report = profReport();
    report.meta.set("tool", "morphbench");
    report.meta.set("matrix", quick ? "quick" : "full");
    if (!prof_out.empty()) {
        std::string failed;
        if (!profWriteFiles(report, prof_out, failed)) {
            std::fprintf(stderr, "morphbench: cannot write %s\n",
                         failed.c_str());
            return false;
        }
    }
    if (prof_stderr) {
        std::ostringstream text;
        report.dumpText(text);
        std::fputs(text.str().c_str(), stderr);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path;
    std::string rev = "local";
    std::string compare_base;
    std::string compare_new;
    double tolerance = 0.05;
    double kernel_min_ratio = -1.0; // negative: use baseline's gate
    bool with_kernels = false;
    double kernel_seconds = 0.2;
    std::string prof_out_path;
    std::uint64_t accesses = 20'000;
    std::uint64_t warmup = 5'000;
    unsigned jobs = RunPool::hardwareJobs();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "morphbench: option %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--rev") {
            rev = value();
        } else if (arg == "--accesses") {
            accesses = std::uint64_t(std::atoll(value()));
        } else if (arg == "--warmup") {
            warmup = std::uint64_t(std::atoll(value()));
        } else if (arg == "--jobs") {
            const long long v = std::atoll(value());
            if (v < 1) {
                std::fprintf(stderr,
                             "morphbench: --jobs needs a value >= 1\n");
                return 2;
            }
            jobs = unsigned(v);
        } else if (arg == "--kernels") {
            with_kernels = true;
        } else if (arg == "--kernel-ms") {
            const double ms = std::atof(value());
            if (ms <= 0.0) {
                std::fprintf(stderr,
                             "morphbench: --kernel-ms needs a value"
                             " > 0\n");
                return 2;
            }
            kernel_seconds = ms / 1000.0;
        } else if (arg == "--compare") {
            compare_base = value();
            compare_new = value();
        } else if (arg == "--tolerance") {
            tolerance = std::atof(value());
        } else if (arg == "--kernel-min-ratio") {
            kernel_min_ratio = std::atof(value());
        } else if (arg == "--prof-out") {
            prof_out_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            std::fprintf(stderr, "morphbench: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    if (!compare_base.empty())
        return compare(compare_base, compare_new, tolerance,
                       kernel_min_ratio);

    bool prof_stderr = false;
    profApplyEnv(prof_out_path, prof_stderr);
    const bool profiling = !prof_out_path.empty() || prof_stderr;
    if (profiling)
        profEnable();

    if (out_path.empty())
        out_path = "BENCH_" + rev + ".json";
    const int code = runMatrix(quick, out_path, rev, accesses, warmup,
                               jobs, with_kernels, kernel_seconds);
    if (profiling && !finishProfile(prof_out_path, prof_stderr, quick))
        return code == 0 ? 4 : code;
    return code;
}
