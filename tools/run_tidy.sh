#!/usr/bin/env bash
# run_tidy.sh — drive clang-tidy over the library sources.
#
# Usage:
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Uses the compilation database exported by CMake
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on for this project). Scans
# src/, tools/, and bench/ — tests are intentionally out of scope: the
# .clang-tidy profile targets the library's bug classes, and gtest
# macros drown it in noise.
#
# Exits 0 when clang-tidy reports no findings, 1 otherwise. If
# clang-tidy is not installed (some build containers ship only gcc),
# the script prints a notice and exits 0 so it can sit in local hook
# chains without blocking; CI installs clang-tidy and gets the full
# gate.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift $(( $# > 0 ? 1 : 0 )) || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
    echo "run_tidy.sh: $tidy_bin not found; skipping (install" \
         "clang-tidy to enable the static-analysis gate)" >&2
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "run_tidy.sh: $db missing — configure first:" >&2
    echo "  cmake --preset dev" >&2
    exit 2
fi

# Gather library, tool, and bench translation units (tests excluded).
mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" \
                            "$repo_root/bench" -name '*.cc' | sort)

echo "run_tidy.sh: checking ${#sources[@]} files with $tidy_bin"

status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" \
        -quiet "$@" "${sources[@]}" || status=1
else
    for file in "${sources[@]}"; do
        "$tidy_bin" -p "$build_dir" --quiet "$@" "$file" || status=1
    done
fi

if [ "$status" -ne 0 ]; then
    echo "run_tidy.sh: clang-tidy reported findings" >&2
    exit 1
fi
echo "run_tidy.sh: clean"
