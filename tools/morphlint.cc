/**
 * @file
 * morphlint — static checker for counter-format and tree invariants.
 *
 * The bit-level cacheline formats of docs/FORMATS.md are the contract
 * between the codecs, the integrity tree, and the paper's correctness
 * argument. morphlint re-derives every documented invariant
 * independently and checks it against the code's constants and codec
 * behaviour:
 *
 *   1. ZCC width schedule — bucket boundaries 16/32/36/42/51/64 map to
 *      16/8/7/6/5/4-bit counters, every bucket fits the 256-bit
 *      payload, widths are monotone, and each is utility-maximal.
 *   2. Field layouts — ZCC and MCR field (offset, width) sets
 *      partition [0, 512) bits exactly, with the MAC at [448, 512);
 *      split-counter layouts for every supported arity sum to 512.
 *   3. Layout probes — encode through each codec, then re-read every
 *      field at the *documented* raw bit offsets, catching any drift
 *      between code and specification.
 *   4. Tree geometry — level sizes for every named configuration are
 *      recomputed with independent arithmetic (ceil-division chains)
 *      and compared against TreeGeometry, including slab placement
 *      and total-footprint accounting.
 *   5. Simulator configs — every *.ini passed on the command line is
 *      validated: known keys, resolvable workload/config names, sane
 *      sizes, and the geometry its settings imply.
 *   6. Runtime stat names — every statistic a fully-assembled system
 *      registers into the morphscope registry must match [a-z0-9_.]+
 *      and be unique (the naming contract the JSON/CSV exporters and
 *      morphbench depend on), re-validated here independently of the
 *      registry's own registration check.
 *   7. Runtime prof scope names — every MORPH_PROF_SCOPE site the
 *      instrumented hot path registers (morphprof, common/prof.hh)
 *      must satisfy the same [a-z0-9_.]+ contract and be unique; the
 *      sites are enumerated by actually executing a miniature
 *      simulation, a pool task and the crypto/tree kernels, so a
 *      scope added anywhere on the hot path is covered automatically.
 *
 * INI files may also carry [lint.zcc] / [lint.geometry] sections that
 * *override* the expected values; this is how the test suite feeds
 * morphlint a deliberately wrong specification and asserts a non-zero
 * exit. Exit status: 0 if every check passes, 1 otherwise.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>

#include "common/bitfield.hh"
#include "common/ini.hh"
#include "common/prof.hh"
#include "common/run_pool.hh"
#include "common/types.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "integrity/integrity_tree.hh"
#include "counters/counter_factory.hh"
#include "counters/mcr_codec.hh"
#include "counters/split_counter.hh"
#include "counters/zcc_codec.hh"
#include "integrity/tree_config.hh"
#include "integrity/tree_geometry.hh"
#include "sim/system.hh"
#include "workloads/workload_db.hh"

namespace
{

using namespace morph;

/** Violation collector: every failed check is reported, none aborts. */
class Lint
{
  public:
    void
    fail(const std::string &where, const std::string &what)
    {
        std::fprintf(stderr, "morphlint: FAIL [%s] %s\n", where.c_str(),
                     what.c_str());
        ++failures_;
    }

    template <typename A, typename B>
    void
    expectEq(const std::string &where, const std::string &what, A actual,
             B expected)
    {
        if (std::uint64_t(actual) != std::uint64_t(expected)) {
            fail(where, what + ": got " +
                            std::to_string(std::uint64_t(actual)) +
                            ", expected " +
                            std::to_string(std::uint64_t(expected)));
        }
    }

    void
    expectTrue(const std::string &where, const std::string &what,
               bool condition)
    {
        if (!condition)
            fail(where, what);
    }

    unsigned failures() const { return failures_; }

  private:
    unsigned failures_ = 0;
};

/** One ZCC width bucket: populations in (prevBound, bound] get width. */
struct Bucket
{
    unsigned bound;
    unsigned width;
};

/** The documented schedule (FORMATS.md / paper Fig 8). */
const std::vector<Bucket> builtinBuckets = {
    {16, 16}, {32, 8}, {36, 7}, {42, 6}, {51, 5}, {64, 4},
};

/** Effective counters feed a 56-bit AES-CTR seed field (otp.cc). */
constexpr unsigned otpCounterBits = 56;

// ---------------------------------------------------------------------
// 1. ZCC width schedule
// ---------------------------------------------------------------------

unsigned
scheduledWidth(const std::vector<Bucket> &buckets, unsigned k)
{
    for (const Bucket &b : buckets)
        if (k <= b.bound)
            return b.width;
    return 0;
}

void
checkZccBuckets(Lint &lint, const std::vector<Bucket> &buckets,
                const std::string &where)
{
    lint.expectTrue(where, "bucket table is non-empty", !buckets.empty());
    if (buckets.empty())
        return;

    unsigned prev_bound = 0;
    unsigned prev_width = ~0u;
    for (const Bucket &b : buckets) {
        lint.expectTrue(where,
                        "bucket bounds strictly increase (bound " +
                            std::to_string(b.bound) + ")",
                        b.bound > prev_bound);
        lint.expectTrue(where,
                        "widths shrink as population grows (width " +
                            std::to_string(b.width) + ")",
                        b.width < prev_width && b.width >= 1);
        lint.expectTrue(where,
                        "bucket " + std::to_string(b.bound) + "x" +
                            std::to_string(b.width) +
                            " fits the 256-bit payload",
                        b.bound * b.width <= zcc::payloadBits);
        lint.expectTrue(where,
                        "bucket " + std::to_string(b.bound) + "x" +
                            std::to_string(b.width) +
                            " is utility-maximal (one more counter "
                            "would not fit)",
                        (b.bound + 1) * b.width > zcc::payloadBits);
        prev_bound = b.bound;
        prev_width = b.width;
    }
    lint.expectEq(where, "last bucket covers the 64-counter limit",
                  buckets.back().bound, zcc::maxNonZero);

    for (unsigned k = 0; k <= zcc::maxNonZero; ++k) {
        const unsigned expected =
            k == 0 ? buckets.front().width : scheduledWidth(buckets, k);
        lint.expectEq(where,
                      "zcc::sizeForCount(" + std::to_string(k) + ")",
                      zcc::sizeForCount(k), expected);
    }
}

// ---------------------------------------------------------------------
// 2. Field layouts partition the 512-bit line
// ---------------------------------------------------------------------

struct Field
{
    const char *name;
    unsigned offset;
    unsigned width;
};

void
checkPartition(Lint &lint, const std::string &where,
               std::vector<Field> fields)
{
    for (std::size_t i = 1; i < fields.size(); ++i)
        for (std::size_t j = i; j > 0; --j)
            if (fields[j].offset < fields[j - 1].offset)
                std::swap(fields[j], fields[j - 1]);

    unsigned pos = 0;
    for (const Field &f : fields) {
        if (f.offset != pos) {
            lint.fail(where, std::string(f.name) + " starts at bit " +
                                 std::to_string(f.offset) + " but bit " +
                                 std::to_string(pos) +
                                 " is the next unclaimed bit (" +
                                 (f.offset > pos ? "gap" : "overlap") +
                                 ")");
            return;
        }
        pos = f.offset + f.width;
    }
    lint.expectEq(where, "fields cover the full 512-bit line", pos,
                  lineBits);
}

void
checkLayouts(Lint &lint)
{
    checkPartition(
        lint, "zcc-layout",
        {{"format flag", zcc::fOffset, 1},
         {"Ctr-Sz", zcc::ctrSzOffset, zcc::ctrSzBits},
         {"major", zcc::majorOffset, zcc::majorBits},
         {"bit-vector", zcc::bvOffset, zcc::bvBits},
         {"payload", zcc::payloadOffset, zcc::payloadBits},
         {"MAC", CounterFormat::macOffset, 64}});
    lint.expectEq("zcc-layout", "bit-vector covers every child",
                  zcc::bvBits, zcc::numCounters);
    lint.expectTrue("zcc-layout",
                    "Ctr-Sz field can store the 16-bit max width",
                    (1u << zcc::ctrSzBits) - 1 >= 16);
    lint.expectEq("zcc-layout",
                  "payload equals 64 counters at the 4-bit floor",
                  zcc::payloadBits, zcc::maxNonZero * 4);

    checkPartition(
        lint, "mcr-layout",
        {{"format flag", mcr::fOffset, 1},
         {"major", mcr::majorOffset, mcr::majorBits},
         {"base 0", mcr::base0Offset, mcr::baseBits},
         {"base 1", mcr::base0Offset + mcr::baseBits, mcr::baseBits},
         {"minors", mcr::minorFieldOffset,
          mcr::numCounters * mcr::minorBits},
         {"MAC", CounterFormat::macOffset, 64}});
    lint.expectEq("mcr-layout", "sets partition the children",
                  mcr::numSets * mcr::setSize, mcr::numCounters);
    lint.expectEq("mcr-layout", "minorMax matches the minor width",
                  mcr::minorMax, (1u << mcr::minorBits) - 1);
    lint.expectEq("mcr-layout", "baseMax matches the base width",
                  mcr::baseMax, (1u << mcr::baseBits) - 1);

    // The ZCC->MCR morph splits the ZCC major into (major49, base7);
    // both formats' combined counters must fit the 56-bit OTP seed.
    lint.expectEq("morph-consistency",
                  "MCR major+base equals the OTP counter width",
                  mcr::majorBits + mcr::baseBits, otpCounterBits);
    lint.expectTrue("morph-consistency",
                    "ZCC major field can hold every morphable value",
                    mcr::majorBits + mcr::baseBits <= zcc::majorBits);

    // Split counters: major(64) + n x (384/n) + MAC(64) == 512.
    for (unsigned n : {8u, 16u, 32u, 64u, 128u}) {
        const std::string where = "sc" + std::to_string(n) + "-layout";
        lint.expectEq(where, "minor field divides evenly", 384 % n, 0u);
        const unsigned minor_bits = 384 / n;
        checkPartition(lint, where,
                       {{"major", 0, 64},
                        {"minors", 64, n * minor_bits},
                        {"MAC", CounterFormat::macOffset, 64}});
        SplitCounterFormat format(n);
        lint.expectEq(where, "SplitCounterFormat minor width",
                      format.minorBits(), minor_bits);
        lint.expectEq(where, "SplitCounterFormat arity", format.arity(),
                      n);
    }

    // SC-n+R: the 64-bit combined base splits as major(57) | base(7).
    checkPartition(lint, "sc-rebased-layout",
                   {{"major", 0, 57},
                    {"base", 57, 7},
                    {"minors", 64, 384},
                    {"MAC", CounterFormat::macOffset, 64}});
}

// ---------------------------------------------------------------------
// 3. Layout probes: codecs vs. documented raw offsets
// ---------------------------------------------------------------------

void
checkLayoutProbes(Lint &lint)
{
    // ZCC: flag at bit 0 clear, major readable at [7, 64).
    {
        CachelineData line;
        zcc::init(line, 0x0123456789abcdull);
        lint.expectEq("zcc-probe", "format flag bit0",
                      readBits(line, 0, 1), 0u);
        lint.expectEq("zcc-probe", "major at documented offset [7,64)",
                      readBits(line, 7, 57), 0x0123456789abcdull);
        lint.expectEq("zcc-probe", "Ctr-Sz at [1,7) after init",
                      readBits(line, 1, 6), zcc::sizeForCount(0));
        zcc::insertNonZero(line, 5);
        lint.expectEq("zcc-probe", "live bit-vector bit at 64+idx",
                      readBits(line, 64 + 5, 1), 1u);
        lint.expectEq("zcc-probe",
                      "rank-0 counter at payload offset [192,208)",
                      readBits(line, 192, 16), 1u);
        CounterFormat::setMac(line, 0xfeedfacecafebeefull);
        lint.expectEq("zcc-probe", "MAC at [448,512)",
                      readBits(line, 448, 64), 0xfeedfacecafebeefull);
        lint.expectEq("zcc-probe", "MAC write leaves major intact",
                      zcc::majorOf(line), 0x0123456789abcdull);
    }

    // MCR: flag set, major at [1,50), bases at [50,57) and [57,64),
    // 3-bit minors from bit 64.
    {
        CachelineData line;
        mcr::init(line, 0x1ffffffffffffull, 0x55);
        lint.expectEq("mcr-probe", "format flag bit0",
                      readBits(line, 0, 1), 1u);
        lint.expectEq("mcr-probe", "major at documented offset [1,50)",
                      readBits(line, 1, 49), 0x1ffffffffffffull);
        lint.expectEq("mcr-probe", "base0 at [50,57)",
                      readBits(line, 50, 7), 0x55u);
        lint.expectEq("mcr-probe", "base1 at [57,64)",
                      readBits(line, 57, 7), 0x55u);
        mcr::setMinor(line, 70, 5);
        lint.expectEq("mcr-probe", "minor 70 at bit 64 + 70*3",
                      readBits(line, 64 + 70 * 3, 3), 5u);
        lint.expectEq("mcr-probe", "effective = ((major<<7)|base)+minor",
                      mcr::effective(line, 70),
                      ((0x1ffffffffffffull << 7) | 0x55u) + 5);
    }

    // SC-64: major at [0,64), 6-bit minors from bit 64.
    {
        SplitCounterFormat format(64);
        CachelineData line;
        format.init(line);
        for (int i = 0; i < 3; ++i)
            format.increment(line, 9);
        lint.expectEq("sc64-probe", "minor 9 at bit 64 + 9*6",
                      readBits(line, 64 + 9 * 6, 6), 3u);
        lint.expectEq("sc64-probe", "major at [0,64) still zero",
                      readBits(line, 0, 64), 0u);
        lint.expectEq("sc64-probe", "effective = (major<<6)|minor",
                      format.read(line, 9), 3u);
    }
}

// ---------------------------------------------------------------------
// 4. Tree geometry
// ---------------------------------------------------------------------

struct NamedConfig
{
    const char *name;
    TreeConfig config;
};

std::vector<NamedConfig>
namedConfigs()
{
    return {
        {"sc64", TreeConfig::sc64()},
        {"vault", TreeConfig::vault()},
        {"morph", TreeConfig::morph()},
        {"morph-zcc", TreeConfig::morphZccOnly()},
        {"sc128", TreeConfig::sc128()},
        {"sgx", TreeConfig::sgx()},
        {"bmt", TreeConfig::bonsaiMacTree()},
    };
}

bool
lookupConfig(const std::string &name, TreeConfig &out)
{
    for (auto &named : namedConfigs()) {
        if (name == named.name) {
            out = named.config;
            return true;
        }
    }
    return false;
}

void
checkGeometry(Lint &lint, const std::string &name,
              const TreeConfig &config, std::uint64_t mem_bytes)
{
    const std::string where =
        "geometry/" + name + "@" +
        std::to_string(mem_bytes >> 30) + "GB";
    const TreeGeometry geom(mem_bytes, config);
    const auto &levels = geom.levels();

    lint.expectEq(where, "data line count", geom.dataLines(),
                  mem_bytes / lineBytes);
    lint.expectTrue(where, "geometry has at least one level",
                    !levels.empty());
    if (levels.empty())
        return;

    // Recompute the level chain with independent ceil-division
    // arithmetic straight from the per-level arity schedule.
    std::uint64_t covered = mem_bytes / lineBytes;
    std::uint64_t expected_total = mem_bytes;
    LineAddr expected_base = geom.dataLines();
    for (unsigned level = 0;; ++level) {
        const unsigned arity = counterArity(config.kindAt(level));
        const std::uint64_t expected_entries =
            (covered + arity - 1) / arity;
        if (level >= levels.size()) {
            lint.fail(where, "level " + std::to_string(level) +
                                 " missing from TreeGeometry");
            return;
        }
        const LevelInfo &info = levels[level];
        const std::string lvl = "level " + std::to_string(level);
        lint.expectEq(where, lvl + " arity", info.arity, arity);
        lint.expectEq(where, lvl + " entries", info.entries,
                      expected_entries);
        lint.expectTrue(where, lvl + " covers every child",
                        info.entries * arity >= covered);
        lint.expectEq(where, lvl + " bytes", info.bytes,
                      expected_entries * lineBytes);
        lint.expectEq(where, lvl + " slab base (contiguous placement)",
                      info.baseLine, expected_base);
        expected_base += expected_entries;
        expected_total += expected_entries * lineBytes;
        covered = expected_entries;
        if (expected_entries <= 1)
            break;
    }

    lint.expectEq(where, "level count", levels.size(),
                  std::size_t(geom.rootLevel() + 1));
    lint.expectEq(where, "root level has a single entry",
                  levels.back().entries, 1u);
    lint.expectEq(where, "treeLevels() excludes encryption counters",
                  geom.treeLevels(), unsigned(levels.size() - 1));
    lint.expectEq(where, "total footprint accounting",
                  geom.totalBytes(), expected_total);
    lint.expectEq(where, "encryption bytes are level 0 bytes",
                  geom.encryptionBytes(), levels[0].bytes);

    // Every metadata line must map back to exactly its (level, index).
    for (const LevelInfo &info : levels) {
        unsigned level = ~0u;
        std::uint64_t index = ~0ull;
        lint.expectTrue(where, "entryOfLine resolves slab base",
                        geom.entryOfLine(info.baseLine, level, index));
        lint.expectEq(where, "entryOfLine level", level, info.level);
        lint.expectEq(where, "entryOfLine index", index, 0u);
    }
}

void
checkAllGeometries(Lint &lint, std::uint64_t mem_bytes)
{
    for (auto &named : namedConfigs())
        checkGeometry(lint, named.name, named.config, mem_bytes);
}

// ---------------------------------------------------------------------
// 6. Runtime stat-name contract
// ---------------------------------------------------------------------

/** The naming contract, re-derived (deliberately NOT a call into
 *  isValidStatName — the lint must catch a drifted implementation). */
bool
lintStatNameOk(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

/**
 * Every stat name a fully-assembled system registers: build the
 * richest system variant (occupancy gauges and timing histograms
 * included) and enumerate its morphscope registry. Registration only
 * — no simulation is run.
 */
const std::vector<std::string> &
runtimeStatNames()
{
    static const std::vector<std::string> names = [] {
        SystemConfig config;
        config.secmem.tree = TreeConfig::morph();
        const WorkloadSpec *spec = findWorkload("mcf");
        std::vector<std::unique_ptr<TraceSource>> traces;
        for (unsigned core = 0; core < config.numCores; ++core)
            traces.push_back(makeWorkloadTrace(
                *spec, core, config.numCores, config.secmem.memBytes,
                1, 1.0));
        SimSystem system(config, std::move(traces));
        ScopeConfig scope_config;
        scope_config.occupancy = true;
        MorphScope scope(scope_config);
        system.attachScope(&scope);
        return scope.registry().names();
    }();
    return names;
}

void
checkStatNames(Lint &lint, const std::string &where,
               std::vector<std::string> names)
{
    lint.expectTrue(where, "system registers at least one stat",
                    !names.empty());
    for (const std::string &name : names) {
        lint.expectTrue(where,
                        "stat name '" + name +
                            "' matches [a-z0-9_.]+",
                        lintStatNameOk(name));
    }
    std::sort(names.begin(), names.end());
    for (std::size_t i = 1; i < names.size(); ++i) {
        if (names[i] == names[i - 1])
            lint.fail(where, "stat name '" + names[i] +
                                 "' registered more than once");
    }
}

// ---------------------------------------------------------------------
// 7. Runtime prof scope-name contract
// ---------------------------------------------------------------------

/**
 * Every profiler scope name the instrumented binary registers. A
 * MORPH_PROF_SCOPE site constructs its static ProfSite on the first
 * pass through the line (enabled or not), so the enumeration must
 * *execute* the instrumented paths, not merely construct objects:
 * a miniature simulation covers the sim/secmem/dram scopes, a
 * two-worker pool session covers pool.task, and direct calls cover
 * the crypto engines and the integrity-tree kernels.
 */
/** Execute the crypto and integrity-tree kernels once so their scope
 *  sites register. All-zero keys, and every pad/tag output is
 *  discarded on the spot: nothing secret flows into the caller. */
void
touchKernelProfSites()
{
    const SipKey sip_key = {};
    const Aes128::Key aes_key = {};
    OtpEngine otp(aes_key);
    (void)otp.pad(LineAddr{0}, 1);
    MacEngine mac(sip_key);
    CachelineData payload = {};
    (void)mac.compute(LineAddr{0}, 1, payload);
    IntegrityTree tree(1ull << 24, TreeConfig::morph(), sip_key);
    (void)tree.bumpCounter(LineAddr{0});
    (void)tree.verify(LineAddr{0});
}

const std::vector<std::string> &
runtimeProfNames()
{
    static const std::vector<std::string> names = [] {
        {
            SystemConfig config;
            config.secmem.tree = TreeConfig::morph();
            const WorkloadSpec *spec = findWorkload("mcf");
            std::vector<std::unique_ptr<TraceSource>> traces;
            for (unsigned core = 0; core < config.numCores; ++core)
                traces.push_back(makeWorkloadTrace(
                    *spec, core, config.numCores,
                    config.secmem.memBytes, 1, 1.0));
            SimSystem system(config, std::move(traces));
            system.run(64);
        }
        {
            RunPool pool(2);
            pool.forEach(4, [](std::size_t) {});
        }
        touchKernelProfSites();
        return profSiteNames();
    }();
    return names;
}

void
checkProfNames(Lint &lint, const std::string &where,
               std::vector<std::string> names)
{
    lint.expectTrue(where, "hot path registers at least one scope",
                    !names.empty());
    for (const std::string &name : names) {
        lint.expectTrue(where,
                        "prof scope '" + name +
                            "' matches [a-z0-9_.]+",
                        lintStatNameOk(name));
    }
    std::sort(names.begin(), names.end());
    for (std::size_t i = 1; i < names.size(); ++i) {
        if (names[i] == names[i - 1])
            lint.fail(where, "prof scope '" + names[i] +
                                 "' registered more than once");
    }
}

// ---------------------------------------------------------------------
// 5. INI validation (simulator configs + lint spec overrides)
// ---------------------------------------------------------------------

bool
workloadExists(const std::string &name)
{
    for (const auto &spec : workloadTable())
        if (spec.name == name)
            return true;
    for (const auto &mix : mixTable())
        if (mix.name == name)
            return true;
    return false;
}

std::vector<Bucket>
parseBuckets(Lint &lint, const std::string &where,
             const std::string &text)
{
    std::vector<Bucket> buckets;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos) {
            lint.fail(where, "malformed bucket '" + item +
                                 "' (want BOUND:WIDTH)");
            return {};
        }
        buckets.push_back(
            {unsigned(std::strtoul(item.c_str(), nullptr, 10)),
             unsigned(std::strtoul(item.c_str() + colon + 1, nullptr,
                                   10))});
        pos = comma + 1;
    }
    return buckets;
}

void
checkIniFile(Lint &lint, const std::string &path)
{
    const IniFile ini = IniFile::fromFile(path);
    const std::string where = "config/" + path;

    static const char *known[] = {
        "system.workload", "system.trace", "system.config",
        "system.mem_gb", "system.cache_kb", "system.accesses",
        "system.warmup", "system.scale", "system.seed",
        "system.timing", "controller.separate_macs",
        "controller.spec_verify", "controller.ctr_prefetch",
        "controller.demote_enc", "persist.mode",
        "persist.epoch_writes", "dram.refresh",
        "dram.write_queueing", "dram.channels", "dram.ranks",
        "lint.zcc.buckets", "lint.geometry.config",
        "lint.geometry.mem_gb", "lint.geometry.tree_levels",
        "lint.geometry.metadata_mb", "lint.mcr.major_bits",
        "lint.mcr.base_bits", "lint.mcr.minor_bits", "lint.sc.arity",
        "lint.sc.minor_bits", "lint.morph.otp_counter_bits",
        "lint.stats.extra_name", "lint.prof.extra_scope",
    };
    for (const std::string &key : ini.keys()) {
        bool ok = false;
        for (const char *candidate : known)
            ok = ok || key == candidate;
        if (!ok)
            lint.fail(where, "unknown key '" + key + "'");
    }

    // --- simulator settings ---
    if (ini.has("system.workload")) {
        const std::string workload = ini.getString("system.workload");
        lint.expectTrue(where, "workload '" + workload + "' exists",
                        workloadExists(workload));
    }

    TreeConfig tree = TreeConfig::morph();
    bool have_tree = true;
    if (ini.has("system.config")) {
        const std::string name = ini.getString("system.config");
        have_tree = lookupConfig(name, tree);
        lint.expectTrue(where, "config '" + name + "' is a known tree",
                        have_tree);
    }

    const double mem_gb = ini.getDouble("system.mem_gb", 16.0);
    lint.expectTrue(where, "mem_gb is positive", mem_gb > 0);
    const std::uint64_t mem_bytes =
        std::uint64_t(mem_gb * double(1ull << 30));
    lint.expectTrue(where, "memory is a whole number of cachelines",
                    mem_bytes > 0 && mem_bytes % lineBytes == 0);

    const std::int64_t cache_kb = ini.getInt("system.cache_kb", 128);
    lint.expectTrue(where, "cache_kb is at least one cacheline",
                    cache_kb * 1024 >= std::int64_t(lineBytes));

    const std::int64_t accesses = ini.getInt("system.accesses", 1);
    const std::int64_t warmup = ini.getInt("system.warmup", 0);
    lint.expectTrue(where, "accesses is positive", accesses > 0);
    lint.expectTrue(where, "warmup is non-negative", warmup >= 0);
    lint.expectTrue(where, "warmup does not exceed accesses",
                    warmup <= accesses);

    if (ini.has("persist.mode")) {
        const std::string mode = ini.getString("persist.mode");
        lint.expectTrue(where,
                        "persist.mode is strict, lazy or off",
                        mode == "strict" || mode == "lazy" ||
                            mode == "off");
    }
    const std::int64_t epoch_writes =
        ini.getInt("persist.epoch_writes", 4096);
    lint.expectTrue(where, "persist.epoch_writes is positive",
                    epoch_writes >= 1);

    const std::int64_t channels = ini.getInt("dram.channels", 2);
    const std::int64_t ranks = ini.getInt("dram.ranks", 2);
    lint.expectTrue(where, "dram.channels in [1, 16]",
                    channels >= 1 && channels <= 16);
    lint.expectTrue(where, "dram.ranks in [1, 16]",
                    ranks >= 1 && ranks <= 16);

    if (have_tree && mem_bytes % lineBytes == 0 && mem_bytes > 0)
        checkGeometry(lint, path, tree, mem_bytes);

    // --- expected-value overrides (the lint spec sections) ---
    if (ini.has("lint.zcc.buckets")) {
        const auto buckets = parseBuckets(
            lint, where, ini.getString("lint.zcc.buckets"));
        if (!buckets.empty())
            checkZccBuckets(lint, buckets, where + "/zcc-buckets");
    }

    // MCR partition spec: declared field widths must match the codec
    // constants and tile the 512-bit line exactly.
    if (ini.has("lint.mcr.major_bits") || ini.has("lint.mcr.base_bits") ||
        ini.has("lint.mcr.minor_bits")) {
        const std::string w = where + "/mcr";
        const std::uint64_t major_bits =
            std::uint64_t(ini.getInt("lint.mcr.major_bits",
                                     mcr::majorBits));
        const std::uint64_t base_bits = std::uint64_t(
            ini.getInt("lint.mcr.base_bits", mcr::baseBits));
        const std::uint64_t minor_bits = std::uint64_t(
            ini.getInt("lint.mcr.minor_bits", mcr::minorBits));
        lint.expectEq(w, "declared MCR major width", mcr::majorBits,
                      major_bits);
        lint.expectEq(w, "declared MCR base width", mcr::baseBits,
                      base_bits);
        lint.expectEq(w, "declared MCR minor width", mcr::minorBits,
                      minor_bits);
        lint.expectEq(w, "declared MCR fields partition the line",
                      1 + major_bits + mcr::numSets * base_bits +
                          mcr::numCounters * minor_bits + 64,
                      lineBits);
    }

    // SC-n layout spec: declared arity/minor width must divide the
    // 384-bit minor field and match the codec.
    if (ini.has("lint.sc.arity") || ini.has("lint.sc.minor_bits")) {
        const std::string w = where + "/sc";
        const auto arity =
            std::uint64_t(ini.getInt("lint.sc.arity", 64));
        if (arity == 0 || 384 % arity != 0) {
            lint.fail(w, "declared arity " + std::to_string(arity) +
                             " does not divide the 384-bit minor "
                             "field");
        } else {
            const std::uint64_t minor_bits = std::uint64_t(
                ini.getInt("lint.sc.minor_bits", 384 / arity));
            lint.expectEq(w, "declared SC minor width", 384 / arity,
                          minor_bits);
            SplitCounterFormat format{unsigned(arity)};
            lint.expectEq(w, "SplitCounterFormat minor width",
                          format.minorBits(), minor_bits);
        }
    }

    // Morph consistency spec: both representations' combined counters
    // must fit the declared OTP seed width.
    if (ini.has("lint.morph.otp_counter_bits")) {
        const std::string w = where + "/morph";
        const std::uint64_t declared = std::uint64_t(
            ini.getInt("lint.morph.otp_counter_bits", 0));
        lint.expectEq(w, "declared OTP counter width", otpCounterBits,
                      declared);
        lint.expectEq(w,
                      "MCR major+base equals the declared OTP width",
                      mcr::majorBits + mcr::baseBits, declared);
        lint.expectTrue(w,
                        "ZCC major can hold every declared-width value",
                        declared <= zcc::majorBits);
    }

    // Stat-name spec: an extra name the configuration claims to
    // register; it must satisfy the contract *and* not collide with
    // any name the system already registers.
    if (ini.has("lint.stats.extra_name")) {
        std::vector<std::string> names = runtimeStatNames();
        names.push_back(ini.getString("lint.stats.extra_name"));
        checkStatNames(lint, where + "/stats", std::move(names));
    }

    // Prof-scope spec: an extra profiler scope the configuration
    // claims to register; same contract as stat names, and it must
    // not collide with a scope the hot path already registers.
    if (ini.has("lint.prof.extra_scope")) {
        std::vector<std::string> names = runtimeProfNames();
        names.push_back(ini.getString("lint.prof.extra_scope"));
        checkProfNames(lint, where + "/prof", std::move(names));
    }

    if (ini.has("lint.geometry.config") ||
        ini.has("lint.geometry.tree_levels") ||
        ini.has("lint.geometry.metadata_mb")) {
        TreeConfig spec_tree = tree;
        std::string spec_name =
            ini.getString("lint.geometry.config",
                          ini.getString("system.config", "morph"));
        if (!lookupConfig(spec_name, spec_tree)) {
            lint.fail(where, "lint.geometry.config '" + spec_name +
                                 "' is not a known tree");
            return;
        }
        const std::uint64_t spec_bytes = std::uint64_t(
            ini.getDouble("lint.geometry.mem_gb", mem_gb) *
            double(1ull << 30));
        const TreeGeometry geom(spec_bytes, spec_tree);
        if (ini.has("lint.geometry.tree_levels")) {
            lint.expectEq(where + "/geometry",
                          spec_name + " tree levels", geom.treeLevels(),
                          std::uint64_t(
                              ini.getInt("lint.geometry.tree_levels",
                                         0)));
        }
        if (ini.has("lint.geometry.metadata_mb")) {
            const std::uint64_t metadata_bytes =
                geom.totalBytes() - geom.memBytes();
            lint.expectEq(where + "/geometry",
                          spec_name + " metadata MB",
                          metadata_bytes >> 20,
                          std::uint64_t(
                              ini.getInt("lint.geometry.metadata_mb",
                                         0)));
        }
    }
}

void
usage()
{
    std::printf(
        "usage: morphlint [options] [config.ini ...]\n"
        "  --mem-gb N   protected capacity for geometry checks "
        "(default 16)\n"
        "  --quiet      only print failures\n"
        "Checks ZCC bucket/width schedule, ZCC/MCR/SC-n field layouts,\n"
        "tree-geometry arithmetic, and each INI file given. Exits 1 on\n"
        "any violation.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> configs;
    std::uint64_t mem_gb = 16;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mem-gb" && i + 1 < argc) {
            mem_gb = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            configs.push_back(arg);
        }
    }

    // I/O problems are usage errors (exit 2), not lint findings: a
    // missing config file must not read as "the invariants failed".
    for (const std::string &path : configs) {
        std::ifstream probe(path);
        if (!probe) {
            std::fprintf(stderr, "morphlint: cannot read %s\n",
                         path.c_str());
            return 2;
        }
    }

    Lint lint;
    checkZccBuckets(lint, builtinBuckets, "zcc-buckets");
    checkLayouts(lint);
    checkLayoutProbes(lint);
    checkAllGeometries(lint, mem_gb << 30);
    checkStatNames(lint, "stat-names", runtimeStatNames());
    checkProfNames(lint, "prof-scopes", runtimeProfNames());
    for (const std::string &path : configs)
        checkIniFile(lint, path);

    if (lint.failures() != 0) {
        std::fprintf(stderr, "morphlint: %u violation(s)\n",
                     lint.failures());
        return 1;
    }
    if (!quiet)
        std::printf("morphlint: all invariants hold (%zu config "
                    "file(s) checked)\n",
                    configs.size());
    return 0;
}
