/**
 * @file
 * morphprof — the self-profile inspector.
 *
 * The morphprof subsystem (src/common/prof.hh) makes every driver emit
 * a morphprof-v1 JSON document describing where the simulator itself
 * spent its time: a merged per-thread call tree of MORPH_PROF_SCOPE
 * phases plus per-worker RunPool telemetry. This tool consumes those
 * documents:
 *
 *   morphprof PROFILE.json                  pretty-print one profile
 *   morphprof PROFILE.json --min-coverage F fail if the main thread's
 *                                           root time covers less than
 *                                           F of the wall window
 *   morphprof --diff BASE.json NEW.json     compare two profiles; a
 *                                           scope whose exclusive time
 *                                           grew beyond --threshold
 *                                           (and past the --min-ms
 *                                           noise floor) is a
 *                                           regression, mirroring
 *                                           `morphbench --compare`
 *   morphprof --trajectory DIR              text report of the sim
 *                                           metrics across every
 *                                           BENCH_*.json in DIR, in
 *                                           filename order
 *
 * Scope times are wall-clock measurements, so --diff is
 * one-directional and thresholded like the morphbench kernel gate:
 * only slower-by-more-than-threshold fails, faster never does, and
 * scopes below the noise floor in both profiles are ignored.
 *
 * Exit codes follow the shared analysis-tool contract: 0 clean,
 * 1 findings (a diff regression or a coverage shortfall), 2 usage or
 * I/O error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace
{

using namespace morph;

constexpr int exitClean = 0;
constexpr int exitFindings = 1;
constexpr int exitUsage = 2;

void
usage()
{
    std::printf(
        "usage: morphprof PROFILE.json [--min-coverage F]\n"
        "       morphprof --diff BASE.json NEW.json [options]\n"
        "       morphprof --trajectory DIR [--metric NAME]\n"
        "  --min-coverage F  fail (exit 1) when the profile covers\n"
        "                    less than F of the wall window (0..1)\n"
        "  --threshold F     --diff: max tolerated relative growth of\n"
        "                    a scope's exclusive time (default 0.5)\n"
        "  --min-ms F        --diff: noise floor; scopes under F ms\n"
        "                    exclusive in both profiles are ignored\n"
        "                    (default 1.0)\n"
        "  --metric NAME     --trajectory: cell metric to track\n"
        "                    (default ipc)\n"
        "Reads morphprof-v1 self-profiles (morphsim/morphbench/\n"
        "morphverify --prof-out) and morphbench BENCH_*.json\n"
        "documents. Exit codes: 0 clean, 1 findings, 2 usage/IO.\n");
}

/** Load and parse one JSON document; exits 2 on I/O or parse error. */
JsonValue
loadJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "morphprof: cannot read %s\n",
                     path.c_str());
        std::exit(exitUsage);
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    bool ok = false;
    std::string error;
    JsonValue doc = jsonParse(buffer.str(), ok, error);
    if (!ok) {
        std::fprintf(stderr, "morphprof: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(exitUsage);
    }
    return doc;
}

/** Require the morphprof-v1 schema marker; exits 2 otherwise. */
void
requireProfileSchema(const JsonValue &doc, const std::string &path)
{
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "morphprof-v1") {
        std::fprintf(stderr,
                     "morphprof: %s is not a morphprof-v1 document\n",
                     path.c_str());
        std::exit(exitUsage);
    }
}

// ---------------------------------------------------------------------
// Pretty-print mode
// ---------------------------------------------------------------------

int
printProfile(const std::string &path, double min_coverage)
{
    const JsonValue doc = loadJson(path);
    requireProfileSchema(doc, path);

    const JsonValue *meta = doc.find("meta");
    const JsonValue *wall = doc.find("wall_ns");
    const JsonValue *coverage = doc.find("coverage");
    const double wall_ms =
        wall ? wall->asNumber() / 1e6 : std::nan("");
    const double cov = coverage ? coverage->asNumber() : std::nan("");

    std::printf("morphprof: %s\n", path.c_str());
    if (meta) {
        for (const std::string &key : meta->keys()) {
            const JsonValue *value = meta->find(key);
            std::printf("  %s: %s\n", key.c_str(),
                        value ? value->asString().c_str() : "");
        }
    }
    std::printf("  wall %.3f ms, coverage %.1f%%\n", wall_ms,
                cov * 100.0);

    const JsonValue *threads = doc.find("threads");
    for (const JsonValue &thread :
         threads ? threads->elements() : std::vector<JsonValue>{}) {
        const JsonValue *name = thread.find("name");
        const JsonValue *root = thread.find("root_inclusive_ns");
        std::printf("thread %s (root %.3f ms)\n",
                    name ? name->asString().c_str() : "?",
                    root ? root->asNumber() / 1e6 : 0.0);
        std::printf("  %-40s %10s %12s %12s\n", "scope", "calls",
                    "incl_ms", "excl_ms");
        const JsonValue *scopes = thread.find("scopes");
        if (!scopes)
            continue;
        for (const JsonValue &scope : scopes->elements()) {
            const JsonValue *sname = scope.find("name");
            const JsonValue *depth = scope.find("depth");
            const JsonValue *calls = scope.find("calls");
            const JsonValue *incl = scope.find("inclusive_ns");
            const JsonValue *excl = scope.find("exclusive_ns");
            std::string label(
                std::size_t(depth ? depth->asNumber() : 0.0) * 2, ' ');
            label += sname ? sname->asString() : "?";
            std::printf("  %-40s %10.0f %12.3f %12.3f\n",
                        label.c_str(),
                        calls ? calls->asNumber() : 0.0,
                        incl ? incl->asNumber() / 1e6 : 0.0,
                        excl ? excl->asNumber() / 1e6 : 0.0);
        }
    }

    const JsonValue *pools = doc.find("pools");
    for (const JsonValue &pool :
         pools ? pools->elements() : std::vector<JsonValue>{}) {
        const JsonValue *label = pool.find("pool");
        const JsonValue *workers = pool.find("workers");
        if (!workers)
            continue;
        double tasks = 0, steals = 0;
        for (const JsonValue &w : workers->elements()) {
            const JsonValue *t = w.find("tasks");
            const JsonValue *s = w.find("steals");
            tasks += t ? t->asNumber() : 0.0;
            steals += s ? s->asNumber() : 0.0;
        }
        std::printf("pool %s: %zu workers, %.0f tasks, %.0f steals\n",
                    label ? label->asString().c_str() : "?",
                    workers->elements().size(), tasks, steals);
        for (const JsonValue &w : workers->elements()) {
            const JsonValue *idx = w.find("worker");
            const JsonValue *t = w.find("tasks");
            const JsonValue *s = w.find("steals");
            const JsonValue *f = w.find("steal_fails");
            const JsonValue *idle = w.find("idle_ns");
            std::printf("  worker %.0f: tasks %.0f, steals %.0f,"
                        " steal_fails %.0f, idle %.3f ms\n",
                        idx ? idx->asNumber() : 0.0,
                        t ? t->asNumber() : 0.0,
                        s ? s->asNumber() : 0.0,
                        f ? f->asNumber() : 0.0,
                        idle ? idle->asNumber() / 1e6 : 0.0);
        }
    }

    if (min_coverage > 0.0 &&
        (!std::isfinite(cov) || cov < min_coverage)) {
        std::fprintf(stderr,
                     "morphprof: FAIL coverage %.3f below required"
                     " %.3f\n",
                     cov, min_coverage);
        return exitFindings;
    }
    return exitClean;
}

// ---------------------------------------------------------------------
// Diff mode
// ---------------------------------------------------------------------

struct ScopeSample
{
    std::string key; ///< "thread;path"
    double exclusiveNs = 0.0;
};

std::vector<ScopeSample>
flattenScopes(const JsonValue &doc)
{
    std::vector<ScopeSample> out;
    const JsonValue *threads = doc.find("threads");
    if (!threads)
        return out;
    for (const JsonValue &thread : threads->elements()) {
        const JsonValue *tname = thread.find("name");
        const JsonValue *scopes = thread.find("scopes");
        if (!tname || !scopes)
            continue;
        for (const JsonValue &scope : scopes->elements()) {
            const JsonValue *path = scope.find("path");
            const JsonValue *excl = scope.find("exclusive_ns");
            if (!path)
                continue;
            out.push_back({tname->asString() + ";" + path->asString(),
                           excl ? excl->asNumber() : 0.0});
        }
    }
    return out;
}

int
diffProfiles(const std::string &base_path, const std::string &new_path,
             double threshold, double min_ms)
{
    const JsonValue base = loadJson(base_path);
    const JsonValue fresh = loadJson(new_path);
    requireProfileSchema(base, base_path);
    requireProfileSchema(fresh, new_path);

    const std::vector<ScopeSample> base_scopes = flattenScopes(base);
    const std::vector<ScopeSample> new_scopes = flattenScopes(fresh);
    const double floor_ns = min_ms * 1e6;

    int regressions = 0;
    for (const ScopeSample &b : base_scopes) {
        const ScopeSample *n = nullptr;
        for (const ScopeSample &candidate : new_scopes)
            if (candidate.key == b.key)
                n = &candidate;
        if (n == nullptr)
            continue; // instrumentation changed; not a regression
        // Noise floor: sub-millisecond scopes jitter wildly.
        if (b.exclusiveNs < floor_ns && n->exclusiveNs < floor_ns)
            continue;
        const double growth =
            b.exclusiveNs <= 0.0
                ? std::numeric_limits<double>::infinity()
                : (n->exclusiveNs - b.exclusiveNs) / b.exclusiveNs;
        if (growth > threshold) {
            std::fprintf(stderr,
                         "morphprof: FAIL %s: exclusive %.3f ->"
                         " %.3f ms (+%.0f%%, threshold +%.0f%%)\n",
                         b.key.c_str(), b.exclusiveNs / 1e6,
                         n->exclusiveNs / 1e6, growth * 100.0,
                         threshold * 100.0);
            ++regressions;
        } else {
            std::fprintf(stderr,
                         "morphprof: ok   %s: exclusive %.3f ->"
                         " %.3f ms\n",
                         b.key.c_str(), b.exclusiveNs / 1e6,
                         n->exclusiveNs / 1e6);
        }
    }
    if (regressions) {
        std::fprintf(stderr,
                     "morphprof: %d scope regression(s) beyond"
                     " +%.0f%%\n",
                     regressions, threshold * 100.0);
        return exitFindings;
    }
    std::fprintf(stderr, "morphprof: no scope regressions\n");
    return exitClean;
}

// ---------------------------------------------------------------------
// Trajectory mode
// ---------------------------------------------------------------------

int
trajectory(const std::string &dir, const std::string &metric)
{
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && name.size() > 11 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::fprintf(stderr, "morphprof: cannot read directory %s\n",
                     dir.c_str());
        return exitUsage;
    }
    if (files.empty()) {
        std::fprintf(stderr, "morphprof: no BENCH_*.json in %s\n",
                     dir.c_str());
        return exitUsage;
    }
    // Directory iteration order is platform-defined; the report is in
    // filename order so repeated runs render identical text.
    std::sort(files.begin(), files.end());

    struct Doc
    {
        std::string rev;
        std::vector<std::pair<std::string, double>> cells;
    };
    std::vector<Doc> docs;
    std::vector<std::string> cell_order;
    for (const std::string &file : files) {
        const JsonValue json = loadJson(file);
        Doc doc;
        const JsonValue *rev = json.find("rev");
        doc.rev = rev ? rev->asString()
                      : std::filesystem::path(file).filename().string();
        const JsonValue *cells = json.find("cells");
        if (!cells) {
            std::fprintf(stderr,
                         "morphprof: %s has no \"cells\" array\n",
                         file.c_str());
            return exitUsage;
        }
        for (const JsonValue &cell : cells->elements()) {
            const JsonValue *w = cell.find("workload");
            const JsonValue *c = cell.find("config");
            const JsonValue *v = cell.find(metric);
            if (!w || !c)
                continue;
            const std::string key =
                w->asString() + "/" + c->asString();
            doc.cells.emplace_back(
                key, v ? v->asNumber() : std::nan(""));
            if (std::find(cell_order.begin(), cell_order.end(), key) ==
                cell_order.end())
                cell_order.push_back(key);
        }
        docs.push_back(std::move(doc));
    }

    std::printf("morphprof: %s trajectory over %zu documents\n",
                metric.c_str(), docs.size());
    std::printf("%-24s", "cell");
    for (const Doc &doc : docs)
        std::printf(" %12.12s", doc.rev.c_str());
    std::printf("\n");
    for (const std::string &key : cell_order) {
        std::printf("%-24s", key.c_str());
        for (const Doc &doc : docs) {
            double value = std::nan("");
            for (const auto &kv : doc.cells)
                if (kv.first == key)
                    value = kv.second;
            if (std::isfinite(value))
                std::printf(" %12.6g", value);
            else
                std::printf(" %12s", "-");
        }
        std::printf("\n");
    }
    return exitClean;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profile_path;
    std::string diff_base;
    std::string diff_new;
    std::string trajectory_dir;
    std::string metric = "ipc";
    double min_coverage = 0.0;
    double threshold = 0.5;
    double min_ms = 1.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "morphprof: option %s needs a value\n",
                             arg.c_str());
                std::exit(exitUsage);
            }
            return argv[++i];
        };
        if (arg == "--diff") {
            diff_base = value();
            diff_new = value();
        } else if (arg == "--trajectory") {
            trajectory_dir = value();
        } else if (arg == "--metric") {
            metric = value();
        } else if (arg == "--min-coverage") {
            min_coverage = std::atof(value());
        } else if (arg == "--threshold") {
            threshold = std::atof(value());
        } else if (arg == "--min-ms") {
            min_ms = std::atof(value());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return exitClean;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            std::fprintf(stderr, "morphprof: unknown option '%s'\n",
                         arg.c_str());
            return exitUsage;
        } else if (profile_path.empty()) {
            profile_path = arg;
        } else {
            usage();
            std::fprintf(stderr, "morphprof: more than one profile\n");
            return exitUsage;
        }
    }

    const int modes = int(!profile_path.empty()) +
                      int(!diff_base.empty()) +
                      int(!trajectory_dir.empty());
    if (modes != 1) {
        usage();
        return exitUsage;
    }
    if (!diff_base.empty())
        return diffProfiles(diff_base, diff_new, threshold, min_ms);
    if (!trajectory_dir.empty())
        return trajectory(trajectory_dir, metric);
    return printProfile(profile_path, min_coverage);
}
