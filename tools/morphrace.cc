/**
 * @file
 * morphrace — concurrency-contract static analyzer.
 *
 * morphrace enforces the locking discipline declared with the MORPH_*
 * concurrency annotations (common/annotations.hh) across the whole
 * repository as one batch:
 *
 *   1. Guarded state. Members and globals annotated
 *      MORPH_GUARDED_BY(mu) may only be touched while `mu` is held
 *      (an in-scope RAII guard or explicit lock()); functions
 *      annotated MORPH_REQUIRES(mu) may only be called with `mu`
 *      held, MORPH_EXCLUDES(mu) only without it.
 *
 *   2. Lock order. The batch-wide mutex acquisition graph (taken
 *      while holding) must stay acyclic; re-acquiring a held mutex is
 *      flagged at the site.
 *
 *   3. Worker isolation. Lambdas handed to RunPool::forEach (or any
 *      pool- or engine-named receiver) must not mutate captured state
 *      except through index-addressed stores, locks they take
 *      themselves, atomics, or MORPH_SHARD_LOCAL state.
 *
 *   4. Static hygiene. Mutable statics and namespace-scope variables
 *      in src/{common,sim,secmem} must carry a concurrency
 *      annotation, be const, thread_local, or atomic.
 *
 * Inputs: the translation units listed in a CMake
 * compile_commands.json plus every header under <root>/{src,tools,
 * bench}, or explicit file arguments (which get every rule family
 * regardless of path — this is how the WILL_FAIL fixtures run).
 *
 * Waivers: `// morphrace: allow(<rule>): reason` on the finding line
 * or the line above; `// morphrace: allow-file(<rule>): reason`
 * anywhere in the file. Waived findings are reported separately and
 * never fail the run.
 *
 * Exit status: 0 clean, 1 unwaived findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compile_db.hh"
#include "analysis/race_analyzer.hh"
#include "common/json.hh"

namespace
{

using namespace morph;
using namespace morph::analysis;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: morphrace [--compile-db PATH] [--root DIR]\n"
        "                 [--json OUT] [--quiet] [file...]\n"
        "\n"
        "Analyze the translation units of a compile database (plus\n"
        "headers under <root>/{src,tools,bench}) for violations of\n"
        "the annotated locking discipline, or analyze explicit files\n"
        "with every rule family enabled.\n");
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Repo-relative display path: strips @p root, keeps others whole. */
std::string
displayPath(const std::string &path, const std::string &root)
{
    if (!root.empty() && path.size() > root.size() + 1 &&
        path.compare(0, root.size(), root) == 0 &&
        path[root.size()] == '/')
        return path.substr(root.size() + 1);
    return path;
}

/** race-naked-static applies to the shared simulator core — the code
 *  RunPool workers actually run concurrently. */
bool
inStaticScope(const std::string &rel_path)
{
    return rel_path.find("src/common") != std::string::npos ||
           rel_path.find("src/sim") != std::string::npos ||
           rel_path.find("src/secmem") != std::string::npos;
}

/** Analysis covers first-party code only. */
bool
excluded(const std::string &rel_path)
{
    return rel_path.find("tests/") != std::string::npos ||
           rel_path.find("examples/") != std::string::npos ||
           rel_path.find("build/") != std::string::npos;
}

std::vector<std::string>
findHeaders(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> headers;
    for (const char *sub : {"src", "tools", "bench"}) {
        const fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(dir, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_regular_file(ec) &&
                it->path().extension() == ".hh")
                headers.push_back(it->path().string());
        }
    }
    std::sort(headers.begin(), headers.end());
    return headers;
}

void
printFinding(const Finding &f, const char *tag)
{
    std::printf("%s:%u: %s[%s] %s\n", f.file.c_str(), f.line, tag,
                f.rule.c_str(), f.message.c_str());
}

bool
writeJson(const std::string &path, const AnalysisResult &result,
          std::size_t files_analyzed, double lex_ms, double analyze_ms,
          const LexCache &cache)
{
    std::ostringstream out;
    const auto emit = [&out](const std::vector<Finding> &list) {
        bool first = true;
        for (const Finding &f : list) {
            if (!first)
                out << ",";
            first = false;
            out << "\n    {\"rule\": \"" << jsonEscape(f.rule)
                << "\", \"file\": \"" << jsonEscape(f.file)
                << "\", \"line\": " << f.line << ", \"symbol\": \""
                << jsonEscape(f.symbol) << "\", \"message\": \""
                << jsonEscape(f.message) << "\"}";
        }
        if (!first)
            out << "\n  ";
    };
    char timing[128];
    std::snprintf(timing, sizeof timing,
                  "  \"timing\": {\"lex_ms\": %.1f, "
                  "\"analyze_ms\": %.1f},\n",
                  lex_ms, analyze_ms);
    out << "{\n  \"tool\": \"morphrace\",\n";
    out << "  \"files_analyzed\": " << files_analyzed << ",\n";
    out << timing;
    out << "  \"lex_cache\": {\"entries\": " << cache.entries()
        << ", \"hits\": " << cache.hits() << "},\n";
    out << "  \"findings\": [";
    emit(result.findings);
    out << "],\n  \"waived\": [";
    emit(result.waived);
    out << "],\n  \"counts\": {\"findings\": "
        << result.findings.size()
        << ", \"waived\": " << result.waived.size() << "}\n}\n";
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;
    file << out.str();
    return static_cast<bool>(file);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string compile_db;
    std::string root;
    std::string json_out;
    bool quiet = false;
    std::vector<std::string> explicit_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](std::string &slot) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "morphrace: %s needs a value\n",
                             arg.c_str());
                return false;
            }
            slot = argv[++i];
            return true;
        };
        if (arg == "--compile-db") {
            if (!value(compile_db))
                return 2;
        } else if (arg == "--root") {
            if (!value(root))
                return 2;
        } else if (arg == "--json") {
            if (!value(json_out))
                return 2;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "morphrace: unknown flag %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            explicit_files.push_back(arg);
        }
    }
    if (explicit_files.empty() && compile_db.empty()) {
        usage();
        return 2;
    }
    if (!root.empty()) {
        // Compile-db entries are absolute; a relative --root (CI
        // passes `.`) must be made absolute for paths to strip.
        root = std::filesystem::absolute(root)
                   .lexically_normal()
                   .string();
        while (root.size() > 1 && root.back() == '/')
            root.pop_back();
    }

    std::vector<std::string> paths;
    if (!explicit_files.empty()) {
        paths = explicit_files;
    } else {
        std::string db_text;
        if (!readFile(compile_db, db_text)) {
            std::fprintf(stderr, "morphrace: cannot read %s\n",
                         compile_db.c_str());
            return 2;
        }
        std::string error;
        if (!readCompileDb(db_text, paths, error)) {
            std::fprintf(stderr, "morphrace: %s: %s\n",
                         compile_db.c_str(), error.c_str());
            return 2;
        }
        for (const std::string &hh : findHeaders(
                 root.empty() ? std::string(".") : root))
            paths.push_back(hh);
    }

    std::vector<SourceText> sources;
    for (const std::string &path : paths) {
        const std::string rel = displayPath(path, root);
        // Explicit file arguments always get the full rule set; the
        // batch walk covers first-party code only.
        const bool is_explicit = !explicit_files.empty();
        if (!is_explicit && excluded(rel))
            continue;
        SourceText src;
        src.path = rel;
        src.staticScope = is_explicit || inStaticScope(rel);
        if (!readFile(path, src.text)) {
            std::fprintf(stderr, "morphrace: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        sources.push_back(std::move(src));
    }

    // Pre-warm the lex cache so lexing and analysis time apart.
    using clk = std::chrono::steady_clock;
    LexCache cache;
    const clk::time_point t0 = clk::now();
    for (const SourceText &src : sources)
        cache.get(src.path, src.path, src.text);
    const clk::time_point t1 = clk::now();
    const AnalysisResult result = analyzeRaces(sources, &cache);
    const clk::time_point t2 = clk::now();
    const auto ms = [](clk::duration d) {
        return std::chrono::duration<double, std::milli>(d).count();
    };
    const double lex_ms = ms(t1 - t0);
    const double analyze_ms = ms(t2 - t1);

    if (!quiet) {
        for (const Finding &f : result.waived)
            printFinding(f, "waived ");
        for (const Finding &f : result.findings)
            printFinding(f, "");
        std::printf(
            "morphrace: %zu file%s, %zu finding%s, %zu waived "
            "(lex %.1f ms, analyze %.1f ms)\n",
            sources.size(), sources.size() == 1 ? "" : "s",
            result.findings.size(),
            result.findings.size() == 1 ? "" : "s",
            result.waived.size(), lex_ms, analyze_ms);
    }
    if (!json_out.empty() &&
        !writeJson(json_out, result, sources.size(), lex_ms,
                   analyze_ms, cache)) {
        std::fprintf(stderr, "morphrace: cannot write %s\n",
                     json_out.c_str());
        return 2;
    }
    return result.findings.empty() ? 0 : 1;
}
