/**
 * @file
 * morphflow — secret-flow and determinism static analyzer.
 *
 * morphflow enforces two source-level contracts that neither the type
 * system nor the test suite can see:
 *
 *   1. Secret flow. Key and pad material annotated with MORPH_SECRET
 *      (common/annotations.hh) must never influence a branch
 *      condition, an array subscript, or a logging call, and must be
 *      wiped before leaving scope — unless an explicit
 *      MORPH_DECLASSIFY boundary or a waiver comment says otherwise.
 *      The one known exception, the table-based AES S-box, is a
 *      waived, documented finding rather than silence.
 *
 *   2. Determinism. Simulation results must be a pure function of the
 *      configuration: rand()/time()/std::random_device and range-for
 *      iteration over unordered containers are banned in src/sim,
 *      src/secmem, bench/ and tools/.
 *
 * Inputs: the translation units listed in a CMake
 * compile_commands.json plus every header under <root>/{src,tools,
 * bench}, or explicit file arguments (which get every rule family
 * regardless of path — this is how the WILL_FAIL fixtures run).
 *
 * Waivers: `// morphflow: allow(<rule>): reason` on the finding line
 * or the line above; `// morphflow: allow-file(<rule>): reason`
 * anywhere in the file. Waived findings are reported separately and
 * never fail the run.
 *
 * Exit status: 0 clean, 1 unwaived findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compile_db.hh"
#include "analysis/flow_analyzer.hh"
#include "common/json.hh"

namespace
{

using namespace morph;
using namespace morph::analysis;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: morphflow [--compile-db PATH] [--root DIR]\n"
        "                 [--json OUT] [--quiet] [file...]\n"
        "\n"
        "Analyze the translation units of a compile database (plus\n"
        "headers under <root>/{src,tools,bench}) for secret-flow and\n"
        "determinism violations, or analyze explicit files with every\n"
        "rule family enabled.\n");
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Repo-relative display path: strips @p root, keeps others whole. */
std::string
displayPath(const std::string &path, const std::string &root)
{
    if (!root.empty() && path.size() > root.size() + 1 &&
        path.compare(0, root.size(), root) == 0 &&
        path[root.size()] == '/')
        return path.substr(root.size() + 1);
    return path;
}

/** The determinism family applies to simulator / secure-memory code
 *  and everything that produces user-visible output. */
bool
inDeterminismScope(const std::string &rel_path)
{
    return rel_path.find("src/sim") != std::string::npos ||
           rel_path.find("src/secmem") != std::string::npos ||
           rel_path.rfind("bench/", 0) == 0 ||
           rel_path.rfind("tools/", 0) == 0 ||
           rel_path.find("/bench/") != std::string::npos ||
           rel_path.find("/tools/") != std::string::npos;
}

/** Analysis covers first-party code only. */
bool
excluded(const std::string &rel_path)
{
    return rel_path.find("tests/") != std::string::npos ||
           rel_path.find("examples/") != std::string::npos ||
           rel_path.find("build/") != std::string::npos;
}

std::vector<std::string>
findHeaders(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<std::string> headers;
    for (const char *sub : {"src", "tools", "bench"}) {
        const fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (!fs::is_directory(dir, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(dir, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_regular_file(ec) &&
                it->path().extension() == ".hh")
                headers.push_back(it->path().string());
        }
    }
    std::sort(headers.begin(), headers.end());
    return headers;
}

void
printFinding(const Finding &f, const char *tag)
{
    std::printf("%s:%u: %s[%s] %s\n", f.file.c_str(), f.line, tag,
                f.rule.c_str(), f.message.c_str());
}

bool
writeJson(const std::string &path, const AnalysisResult &result,
          std::size_t files_analyzed)
{
    std::ostringstream out;
    const auto emit = [&out](const std::vector<Finding> &list) {
        bool first = true;
        for (const Finding &f : list) {
            if (!first)
                out << ",";
            first = false;
            out << "\n    {\"rule\": \"" << jsonEscape(f.rule)
                << "\", \"file\": \"" << jsonEscape(f.file)
                << "\", \"line\": " << f.line << ", \"symbol\": \""
                << jsonEscape(f.symbol) << "\", \"message\": \""
                << jsonEscape(f.message) << "\"}";
        }
        if (!first)
            out << "\n  ";
    };
    out << "{\n  \"tool\": \"morphflow\",\n";
    out << "  \"files_analyzed\": " << files_analyzed << ",\n";
    out << "  \"findings\": [";
    emit(result.findings);
    out << "],\n  \"waived\": [";
    emit(result.waived);
    out << "],\n  \"counts\": {\"findings\": "
        << result.findings.size()
        << ", \"waived\": " << result.waived.size() << "}\n}\n";
    std::ofstream file(path, std::ios::binary);
    if (!file)
        return false;
    file << out.str();
    return static_cast<bool>(file);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string compile_db;
    std::string root;
    std::string json_out;
    bool quiet = false;
    std::vector<std::string> explicit_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](std::string &slot) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "morphflow: %s needs a value\n",
                             arg.c_str());
                return false;
            }
            slot = argv[++i];
            return true;
        };
        if (arg == "--compile-db") {
            if (!value(compile_db))
                return 2;
        } else if (arg == "--root") {
            if (!value(root))
                return 2;
        } else if (arg == "--json") {
            if (!value(json_out))
                return 2;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "morphflow: unknown flag %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            explicit_files.push_back(arg);
        }
    }
    if (explicit_files.empty() && compile_db.empty()) {
        usage();
        return 2;
    }
    if (!root.empty()) {
        // Compile-db entries are absolute; a relative --root (CI
        // passes `.`) must be made absolute for paths to strip.
        root = std::filesystem::absolute(root)
                   .lexically_normal()
                   .string();
        while (root.size() > 1 && root.back() == '/')
            root.pop_back();
    }

    std::vector<std::string> paths;
    if (!explicit_files.empty()) {
        paths = explicit_files;
    } else {
        std::string db_text;
        if (!readFile(compile_db, db_text)) {
            std::fprintf(stderr, "morphflow: cannot read %s\n",
                         compile_db.c_str());
            return 2;
        }
        std::string error;
        if (!readCompileDb(db_text, paths, error)) {
            std::fprintf(stderr, "morphflow: %s: %s\n",
                         compile_db.c_str(), error.c_str());
            return 2;
        }
        for (const std::string &hh : findHeaders(
                 root.empty() ? std::string(".") : root))
            paths.push_back(hh);
    }

    std::vector<SourceText> sources;
    for (const std::string &path : paths) {
        const std::string rel = displayPath(path, root);
        // Explicit file arguments always get the full rule set; the
        // batch walk covers first-party code only.
        const bool is_explicit = !explicit_files.empty();
        if (!is_explicit && excluded(rel))
            continue;
        SourceText src;
        src.path = rel;
        src.determinismScope =
            is_explicit || inDeterminismScope(rel);
        if (!readFile(path, src.text)) {
            std::fprintf(stderr, "morphflow: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        sources.push_back(std::move(src));
    }

    const AnalysisResult result = analyzeSources(sources);

    if (!quiet) {
        for (const Finding &f : result.waived)
            printFinding(f, "waived ");
        for (const Finding &f : result.findings)
            printFinding(f, "");
        std::printf(
            "morphflow: %zu file%s, %zu finding%s, %zu waived\n",
            sources.size(), sources.size() == 1 ? "" : "s",
            result.findings.size(),
            result.findings.size() == 1 ? "" : "s",
            result.waived.size());
    }
    if (!json_out.empty() &&
        !writeJson(json_out, result, sources.size())) {
        std::fprintf(stderr, "morphflow: cannot write %s\n",
                     json_out.c_str());
        return 2;
    }
    return result.findings.empty() ? 0 : 1;
}
