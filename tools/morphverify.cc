/**
 * @file
 * morphverify — exhaustive bounded model checking of the counter
 * formats' transition relations.
 *
 * Where tests/test_codec_fuzz.cc *samples* write sequences and
 * tools/morphlint.cc *pattern-checks* constants, morphverify walks the
 * actual state graph: breadth-first search from deterministic seed
 * states over symmetry-reduced canonical states (see
 * src/counters/transition_model.hh), taking every representative
 * bump(slot) edge from every visited state and checking, on each edge:
 *
 *   1. monotonicity   — the bumped slot's effective value strictly
 *                       increases;
 *   2. accountability — no other slot's effective value changes unless
 *                       the WriteResult reports it in the
 *                       re-encryption range (and reported slots never
 *                       move backwards); a representation change must
 *                       be flagged as formatSwitch, and a reported
 *                       rebase must leave all other slots untouched;
 *   3. canonicity     — encode(decode(state)) reproduces the image bit
 *                       for bit (modulo the MAC field), the image is
 *                       structurally well-formed, and the decoded
 *                       effective values agree with CounterFormat::read
 *                       — no two bit patterns alias one logical state;
 *   4. ZCC schedule   — the stored Ctr-Sz equals the §III width
 *                       schedule for the live population, re-derived
 *                       here from an independent bucket table.
 *
 * Within the explored bound the result is a proof: "no fuzz failure
 * yet" becomes "no reachable violation exists within N canonical
 * states of the seeds". Iteration order is deterministic (seed order,
 * FIFO frontier, ascending slots), so a reported violation is exactly
 * reproducible.
 *
 * --recovery adds the crash-consistency invariant: a sweep of crash
 * injections (src/sim/crash_injector.hh) cuts persistent-memory runs
 * at seed-derived access indexes under both the strict and the lazy
 * root-update policy, and checks that every reachable post-crash
 * durable state reconstructs a consistent tree — the re-derived root
 * digest of the recovered lines must equal the persisted root.
 *
 * Deliberately broken model variants (--broken) re-create the bug
 * classes the checker exists to catch — an off-by-one rebase, an
 * unreported reset, a stale payload encoding, a wrong width bucket,
 * and a persistence bug (unpersisted-tree-write: tree-level lines
 * skip their write-ahead obligation) — and are wired as WILL_FAIL
 * CTest cases proving the checker fires.
 *
 * --jobs N checks models in parallel on a RunPool, one model per
 * shard: each model keeps its whole BFS (visited set, frontier,
 * budget) intact, so visited/edge counts and every WILL_FAIL
 * broken-variant verdict are identical to the serial run. Violation
 * and summary text is buffered per model and flushed in command-line
 * order, byte-identical at any --jobs level.
 *
 * Exit status: 0 when every check passes, 1 on any violation, 2 on
 * usage errors.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bitfield.hh"
#include "common/prof.hh"
#include "common/run_pool.hh"
#include "common/types.hh"
#include "counters/counter_factory.hh"
#include "counters/morph_counter.hh"
#include "counters/rebased_split_counter.hh"
#include "counters/split_counter.hh"
#include "counters/transition_model.hh"
#include "counters/zcc_codec.hh"
#include "crypto/siphash.hh"
#include "sim/crash_injector.hh"

namespace
{

using namespace morph;

// ---------------------------------------------------------------------
// Independent re-derivation of the §III ZCC width schedule. Restated
// here (not pulled from zcc::sizeForCount) so the checker and the
// codec cannot share a bug.
// ---------------------------------------------------------------------

unsigned
independentScheduleWidth(unsigned live)
{
    struct Bucket
    {
        unsigned bound;
        unsigned width;
    };
    static constexpr Bucket schedule[] = {{16, 16}, {32, 8},  {36, 7},
                                          {42, 6},  {51, 5}, {64, 4}};
    if (live == 0)
        return schedule[0].width;
    for (const Bucket &b : schedule)
        if (live <= b.bound)
            return b.width;
    return 0; // > 64 live counters is not a ZCC state at all
}

// ---------------------------------------------------------------------
// Visited set: 128-bit SipHash fingerprints of canonical keys.
// ---------------------------------------------------------------------

struct StateFingerprint
{
    std::uint64_t lo;
    std::uint64_t hi;

    bool
    operator==(const StateFingerprint &other) const
    {
        return lo == other.lo && hi == other.hi;
    }
};

struct FingerprintHash
{
    std::size_t
    operator()(const StateFingerprint &fp) const
    {
        return std::size_t(fp.lo);
    }
};

StateFingerprint
fingerprintOf(const std::string &key)
{
    static const SipKey k1 = {0x6d, 0x6f, 0x72, 0x70, 0x68, 0x76,
                              0x65, 0x72, 0x69, 0x66, 0x79, 0x2d,
                              0x6b, 0x65, 0x79, 0x31};
    static const SipKey k2 = {0x6d, 0x6f, 0x72, 0x70, 0x68, 0x76,
                              0x65, 0x72, 0x69, 0x66, 0x79, 0x2d,
                              0x6b, 0x65, 0x79, 0x32};
    return {siphash24(key.data(), key.size(), k1),
            siphash24(key.data(), key.size(), k2)};
}

// ---------------------------------------------------------------------
// Violation reporting
// ---------------------------------------------------------------------

constexpr unsigned maxPrintedViolations = 16;

std::string
hexImage(const CachelineData &line)
{
    std::string out;
    char buf[4];
    for (unsigned i = 0; i < lineBytes; ++i) {
        std::snprintf(buf, sizeof(buf), "%02x", line[i]);
        out += buf;
        if (i % 16 == 15 && i + 1 < lineBytes)
            out += '\n';
    }
    return out;
}

/**
 * Buffered output of one model's verification run. Workers fill these
 * in parallel; the driver flushes them in command-line order so the
 * report is byte-identical to a serial run.
 */
struct ModelReport
{
    std::string violations; ///< stderr text (violation details)
    std::string summary;    ///< stdout text (per-model summary line)
    int status = 0;         ///< 0 clean, 1 violations found
};

class Verifier
{
  public:
    Verifier(const TransitionModel &model, std::uint64_t budget,
             bool quiet)
        : model_(model), budget_(budget), quiet_(quiet)
    {}

    void
    violation(const CachelineData &state, int slot,
              const std::string &what)
    {
        ++violations_;
        if (violations_ > maxPrintedViolations) {
            if (violations_ == maxPrintedViolations + 1)
                err_ += "morphverify: [" + model_.name() +
                        "] further violations suppressed\n";
            return;
        }
        err_ += "morphverify: VIOLATION [" + model_.name() + "]" +
                (slot >= 0 ? " slot " + std::to_string(slot)
                           : std::string(" state 0")) +
                ": " + what + "\n";
        err_ += "  state image:\n" + hexImage(state) + "\n";
    }

    /** Checks on a state itself: canonicity + schedule. */
    void
    checkState(const CachelineData &state)
    {
        if (!model_.wellFormed(state)) {
            violation(state, -1, "image is not well-formed");
            return;
        }

        const DecodedState decoded = model_.decode(state);

        // Decoded effective values must agree with the codec's own
        // read() — the decode is an independent reading of FORMATS.md.
        for (unsigned i = 0; i < decoded.arity; ++i) {
            const std::uint64_t via_codec = model_.format().read(state, i);
            if (via_codec != decoded.effective[i]) {
                violation(state, int(i),
                          "canonicity: codec read() = " +
                              std::to_string(via_codec) +
                              " but documented-layout decode = " +
                              std::to_string(decoded.effective[i]));
                return;
            }
        }

        // encode(decode(s)) == s modulo the MAC field: no stale bits,
        // no alternative packing, no aliased representations.
        CachelineData canonical = model_.encode(decoded);
        CachelineData masked = state;
        for (unsigned bit = CounterFormat::macOffset; bit < lineBits;
             bit += 64) {
            writeBits(canonical, bit, 64, 0);
            writeBits(masked, bit, 64, 0);
        }
        if (canonical != masked) {
            violation(state, -1,
                      "canonicity: encode(decode(state)) differs from "
                      "the stored image\n  canonical image:\n" +
                          hexImage(canonical));
            return;
        }

        // ZCC width-bucket schedule (§III).
        if (decoded.rep == RepTag::Zcc) {
            unsigned live = 0;
            for (const std::uint64_t m : decoded.minors)
                live += m != 0;
            const unsigned expected = independentScheduleWidth(live);
            if (decoded.ctrSz != expected) {
                violation(state, -1,
                          "schedule: " + std::to_string(live) +
                              " live counters stored at width " +
                              std::to_string(decoded.ctrSz) +
                              ", schedule says " +
                              std::to_string(expected));
            }
        }
    }

    /** Checks on one bump edge; @p after is post-increment. */
    void
    checkEdge(const CachelineData &before, const DecodedState &dec_before,
              const CachelineData &after, unsigned slot,
              const WriteResult &result)
    {
        const DecodedState dec_after = model_.decode(after);

        // 1. Monotonicity of the written slot.
        if (dec_after.effective[slot] <= dec_before.effective[slot]) {
            violation(before, int(slot),
                      "monotonicity: effective " +
                          std::to_string(dec_before.effective[slot]) +
                          " -> " +
                          std::to_string(dec_after.effective[slot]) +
                          " did not strictly increase");
        }

        // 2. Accountability of every other slot.
        for (unsigned i = 0; i < dec_before.arity; ++i) {
            if (i == slot)
                continue;
            const bool reported = result.overflow &&
                                  i >= result.reencBegin &&
                                  i < result.reencEnd;
            if (reported) {
                if (dec_after.effective[i] < dec_before.effective[i]) {
                    violation(before, int(i),
                              "accountability: reset moved slot from " +
                                  std::to_string(dec_before.effective[i]) +
                                  " back to " +
                                  std::to_string(dec_after.effective[i]));
                }
            } else if (dec_after.effective[i] !=
                       dec_before.effective[i]) {
                violation(
                    before, int(i),
                    "accountability: bump(" + std::to_string(slot) +
                        ") changed unreported slot " + std::to_string(i) +
                        " from " +
                        std::to_string(dec_before.effective[i]) + " to " +
                        std::to_string(dec_after.effective[i]) +
                        " (reenc range [" +
                        std::to_string(result.reencBegin) + ", " +
                        std::to_string(result.reencEnd) + "))");
            }
        }

        // Representation changes must be flagged, and vice versa.
        const bool switched = dec_before.rep != dec_after.rep;
        if (switched != result.formatSwitch) {
            violation(before, int(slot),
                      switched ? "accountability: representation switch "
                                 "not reported as formatSwitch"
                               : "accountability: formatSwitch reported "
                                 "without a representation change");
        }
    }

    /** BFS over the symmetry-reduced state graph. */
    void
    run()
    {
        std::deque<CachelineData> frontier;
        for (const CachelineData &seed : model_.seedStates())
            discover(seed, frontier);

        while (!frontier.empty()) {
            const CachelineData state = frontier.front();
            frontier.pop_front();
            ++visited_;

            checkState(state);
            const DecodedState decoded = model_.decode(state);

            for (const unsigned slot :
                 model_.representativeSlots(state)) {
                CachelineData after = state;
                const WriteResult result = model_.bump(after, slot);
                ++edges_;
                checkEdge(state, decoded, after, slot, result);
                discover(after, frontier);
            }
        }

        if (!quiet_) {
            char line[256];
            std::snprintf(
                line, sizeof(line),
                "morphverify: %-8s visited=%" PRIu64 " edges=%" PRIu64
                " %s violations=%" PRIu64 "\n",
                model_.name().c_str(), visited_, edges_,
                truncated_ ? "bounded-by-budget" : "state-space-closed",
                violations_);
            out_ += line;
        }
    }

    /** Move the buffered run output into a flushable report. */
    ModelReport
    takeReport()
    {
        ModelReport report;
        report.violations = std::move(err_);
        report.summary = std::move(out_);
        report.status = violations_ == 0 ? 0 : 1;
        return report;
    }

    std::uint64_t violations() const { return violations_; }
    std::uint64_t visited() const { return visited_; }
    bool truncated() const { return truncated_; }

  private:
    /** Enqueue @p state if unseen and within budget. */
    void
    discover(const CachelineData &state,
             std::deque<CachelineData> &frontier)
    {
        const StateFingerprint fp =
            fingerprintOf(model_.canonicalKey(state));
        if (seen_.count(fp) != 0)
            return;
        if (seen_.size() >= budget_) {
            truncated_ = true;
            return;
        }
        seen_.insert(fp);
        frontier.push_back(state);
    }

    const TransitionModel &model_;
    std::uint64_t budget_;
    bool quiet_;
    std::string err_; ///< buffered violation text
    std::string out_; ///< buffered summary text
    std::unordered_set<StateFingerprint, FingerprintHash> seen_;
    std::uint64_t visited_ = 0;
    std::uint64_t edges_ = 0;
    std::uint64_t violations_ = 0;
    bool truncated_ = false;
};

// ---------------------------------------------------------------------
// Deliberately broken model variants (WILL_FAIL fixtures). Each wraps
// a real codec and injects one representative bug class; morphverify
// must catch every one of them.
// ---------------------------------------------------------------------

/** Forwards every CounterFormat call to an inner codec. */
class FormatWrapper : public CounterFormat
{
  public:
    explicit FormatWrapper(std::unique_ptr<CounterFormat> inner)
        : inner_(std::move(inner))
    {}

    unsigned arity() const override { return inner_->arity(); }
    void init(CachelineData &line) const override { inner_->init(line); }

    std::uint64_t
    read(const CachelineData &line, unsigned idx) const override
    {
        return inner_->read(line, idx);
    }

    WriteResult
    increment(CachelineData &line, unsigned idx) const override
    {
        return inner_->increment(line, idx);
    }

    unsigned
    nonZeroCount(const CachelineData &line) const override
    {
        return inner_->nonZeroCount(line);
    }

    const char *name() const override { return inner_->name(); }

  protected:
    std::unique_ptr<CounterFormat> inner_;
};

/**
 * Off-by-one rebase: after every rebase the combined base lands one
 * short, silently decrementing every effective value — the classic
 * fencepost in the rebasing arithmetic.
 */
class OffByOneRebaseFormat : public FormatWrapper
{
  public:
    OffByOneRebaseFormat()
        : FormatWrapper(
              std::make_unique<RebasedSplitCounterFormat>(64))
    {}

    WriteResult
    increment(CachelineData &line, unsigned idx) const override
    {
        const WriteResult result = inner_->increment(line, idx);
        if (result.rebase) {
            const std::uint64_t combined =
                (readBits(line, 0, 57) << 7) | readBits(line, 57, 7);
            writeBits(line, 57, 7, (combined - 1) & 127);
            writeBits(line, 0, 57, (combined - 1) >> 7);
        }
        return result;
    }
};

/**
 * Unreported reset: overflow resets happen but the WriteResult claims
 * no slot needs re-encryption — counter reuse invisible to the
 * controller.
 */
class UnreportedResetFormat : public FormatWrapper
{
  public:
    UnreportedResetFormat()
        : FormatWrapper(std::make_unique<SplitCounterFormat>(64))
    {}

    WriteResult
    increment(CachelineData &line, unsigned idx) const override
    {
        WriteResult result = inner_->increment(line, idx);
        result.overflow = false;
        result.reencBegin = result.reencEnd = 0;
        return result;
    }
};

/**
 * Stale encoding: inserts leave a junk bit in the unused tail of the
 * ZCC payload, so two bit patterns decode to one logical state.
 */
class StaleEncodingFormat : public FormatWrapper
{
  public:
    StaleEncodingFormat()
        : FormatWrapper(
              std::make_unique<MorphableCounterFormat>(false))
    {}

    WriteResult
    increment(CachelineData &line, unsigned idx) const override
    {
        const WriteResult result = inner_->increment(line, idx);
        if (zcc::isZcc(line)) {
            const unsigned used = zcc::count(line) * zcc::ctrSz(line);
            if (used < zcc::payloadBits)
                setBit(line, zcc::payloadOffset + used, true);
        }
        return result;
    }
};

/**
 * Wrong bucket: a three-counter population is stored at 8-bit width
 * instead of the schedule's 16 — the §III utility argument broken.
 */
class WrongBucketFormat : public FormatWrapper
{
  public:
    WrongBucketFormat()
        : FormatWrapper(
              std::make_unique<MorphableCounterFormat>(false))
    {}

    WriteResult
    increment(CachelineData &line, unsigned idx) const override
    {
        const WriteResult result = inner_->increment(line, idx);
        if (zcc::isZcc(line) && zcc::count(line) == 3)
            writeBits(line, 1, 6, 8);
        return result;
    }
};

std::unique_ptr<TransitionModel>
makeBrokenModel(const std::string &name)
{
    ModelSpec spec;
    spec.name = "broken:" + name;
    if (name == "rebase-off-by-one") {
        spec.flavor = ModelFlavor::RebasedSplit;
        spec.format = std::make_shared<OffByOneRebaseFormat>();
    } else if (name == "unreported-reset") {
        spec.flavor = ModelFlavor::Split;
        spec.format = std::make_shared<UnreportedResetFormat>();
    } else if (name == "stale-encoding") {
        spec.flavor = ModelFlavor::Morph;
        spec.format = std::make_shared<StaleEncodingFormat>();
    } else if (name == "wrong-bucket") {
        spec.flavor = ModelFlavor::Morph;
        spec.format = std::make_shared<WrongBucketFormat>();
    } else {
        return nullptr;
    }
    return makeTransitionModel(std::move(spec));
}

// ---------------------------------------------------------------------
// Recoverability invariant (--recovery): seed-swept crash injections
// under the strict and lazy persist policies. Every cut point is a
// reachable post-crash durable state; each must reconstruct a tree
// whose re-derived root digest equals the persisted root.
// ---------------------------------------------------------------------

struct RecoveryCase
{
    PersistPolicy policy;
    bool broken; ///< unpersisted-tree-write fixture
    std::uint64_t cut;
    std::uint64_t seed;
};

const char *
policyName(PersistPolicy policy)
{
    return policy == PersistPolicy::Strict ? "strict" : "lazy";
}

SecureModelConfig
recoveryModelConfig(PersistPolicy policy, bool broken)
{
    SecureModelConfig config;
    config.tree = TreeConfig::morph();
    // A tiny metadata cache forces tree-level dirty writebacks — the
    // paths persistence bugs hide in — within a short run.
    config.metadataCacheBytes = 4 * 1024;
    config.persist.enabled = true;
    config.persist.policy = policy;
    config.persist.brokenSkipTreePersist = broken;
    // The broken fixture must not be masked by an epoch barrier (a
    // barrier flushes everything and re-commits the root, making the
    // durable state consistent again): push barriers past run end.
    // The clean sweep instead uses a short epoch so barrier paths are
    // reached within the cut range (mcf is ~3% writes).
    config.persist.epochWrites = broken ? (1ull << 40) : 256;
    return config;
}

/** Seed-derived cut points: deterministic, spread over the run. */
std::vector<RecoveryCase>
recoveryCases(bool broken, std::uint64_t cuts,
              std::uint64_t max_accesses)
{
    std::vector<RecoveryCase> cases;
    for (const PersistPolicy policy :
         {PersistPolicy::Strict, PersistPolicy::Lazy}) {
        for (std::uint64_t i = 0; i < cuts; ++i) {
            const std::string key = std::string("recovery/") +
                                    (broken ? "broken/" : "") +
                                    policyName(policy) + "/" +
                                    std::to_string(i);
            RecoveryCase c;
            c.policy = policy;
            c.broken = broken;
            c.cut = 1 + sweepSeed(key, 17) % max_accesses;
            c.seed = sweepSeed(key + "/trace", 29);
            cases.push_back(c);
        }
    }
    return cases;
}

ModelReport
runRecoveryCase(const RecoveryCase &c, bool quiet)
{
    MORPH_PROF_SCOPE("verify.recovery");
    CrashInjectorOptions options;
    options.workload = "mcf";
    options.model = recoveryModelConfig(c.policy, c.broken);
    options.seed = c.seed;
    options.cutAccesses = c.cut;
    const CrashReport report = injectCrash(options);

    ModelReport out;
    const std::string label = std::string("recovery:") +
                              (c.broken ? "broken:" : "") +
                              policyName(c.policy);
    if (!report.recovery.consistent) {
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "morphverify: VIOLATION [%s] cut=%" PRIu64 " seed=%" PRIu64
            ": recovered digest %016" PRIx64
            " != persisted root %016" PRIx64 " (durable=%" PRIu64
            " rolled_back=%" PRIu64 ")\n",
            label.c_str(), c.cut, c.seed,
            report.recovery.recoveredDigest,
            report.recovery.persistedRoot,
            report.recovery.durableEntries, report.recovery.rolledBack);
        out.violations = line;
        out.status = 1;
    }
    if (!quiet) {
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "morphverify: %-16s cut=%-6" PRIu64 " persists=%-6" PRIu64
            " rolled_back=%-4" PRIu64 " lost=%-4" PRIu64
            " fp=%016" PRIx64 " %s\n",
            label.c_str(), c.cut, report.persist.linePersists,
            report.recovery.rolledBack, report.recovery.lostWrites,
            report.fingerprint,
            report.recovery.consistent ? "consistent" : "INCONSISTENT");
        out.summary = line;
    }
    return out;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

void
usage()
{
    std::printf(
        "usage: morphverify [options]\n"
        "  --format NAME   verify one format (or 'all'); names:\n"
        "                  zcc mcr sc64 sc64r morph morph-sb\n"
        "  --broken NAME   run a deliberately broken model variant\n"
        "                  (rebase-off-by-one, unreported-reset,\n"
        "                  stale-encoding, wrong-bucket,\n"
        "                  unpersisted-tree-write); must report\n"
        "                  violations, used as WILL_FAIL fixtures\n"
        "  --recovery      sweep crash injections under the strict and\n"
        "                  lazy persist policies and check that every\n"
        "                  post-crash durable state recovers to a\n"
        "                  consistent tree\n"
        "  --recovery-cuts N\n"
        "                  crash cut points per policy (default 8)\n"
        "  --recovery-accesses N\n"
        "                  cut points are drawn from [1, N] data\n"
        "                  accesses (default 20000)\n"
        "  --budget N      max canonical states per model "
        "(default 200000)\n"
        "  --jobs N        check models in parallel (default:\n"
        "                  hardware concurrency); output and exit\n"
        "                  status are independent of N\n"
        "  --quiet         suppress per-model summaries\n"
        "  --list          print model names and exit\n"
        "  --prof-out FILE write a morphprof self-profile (JSON,\n"
        "                  FILE.collapsed, FILE.speedscope.json);\n"
        "                  MORPH_PROF=1 for a stderr summary\n"
        "Exhaustively explores the counter-format transition relation\n"
        "from deterministic seeds and checks monotonicity,\n"
        "accountability, canonical encoding, and the ZCC width\n"
        "schedule on every edge. Exits 1 on any violation.\n");
}

ModelReport
runModel(const TransitionModel &model, std::uint64_t budget, bool quiet)
{
    MORPH_PROF_SCOPE("verify.model");
    Verifier verifier(model, budget, quiet);
    verifier.run();
    return verifier.takeReport();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> formats;
    std::vector<std::string> broken;
    std::uint64_t budget = 200000;
    unsigned jobs = 0; // 0 = RunPool::hardwareJobs()
    bool quiet = false;
    bool recovery = false;
    bool broken_recovery = false;
    std::uint64_t recovery_cuts = 8;
    std::uint64_t recovery_accesses = 20000;
    std::string prof_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format" && i + 1 < argc) {
            formats.push_back(argv[++i]);
        } else if (arg == "--broken" && i + 1 < argc) {
            const std::string name = argv[++i];
            // The persistence fixture is a crash-injection sweep, not
            // a transition model: route it to the recovery machinery.
            if (name == "unpersisted-tree-write")
                broken_recovery = true;
            else
                broken.push_back(name);
        } else if (arg == "--recovery") {
            recovery = true;
        } else if (arg == "--recovery-cuts" && i + 1 < argc) {
            recovery_cuts = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--recovery-accesses" && i + 1 < argc) {
            recovery_accesses = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--budget" && i + 1 < argc) {
            budget = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            const long long v = std::atoll(argv[++i]);
            if (v < 1) {
                std::fprintf(stderr,
                             "morphverify: --jobs needs a value"
                             " >= 1\n");
                return 2;
            }
            jobs = unsigned(v);
        } else if (arg == "--prof-out" && i + 1 < argc) {
            prof_out = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            for (const std::string &name : transitionModelNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (budget == 0) {
        std::fprintf(stderr, "morphverify: --budget must be positive\n");
        return 2;
    }
    if (recovery_cuts == 0 || recovery_accesses == 0) {
        std::fprintf(stderr, "morphverify: --recovery-cuts and "
                             "--recovery-accesses must be positive\n");
        return 2;
    }
    if (formats.empty() && broken.empty() && !recovery &&
        !broken_recovery)
        formats = transitionModelNames();
    if (formats.size() == 1 && formats[0] == "all")
        formats = transitionModelNames();

    // Resolve every model up front so bad names exit before any work
    // starts (and never from a worker thread).
    std::vector<std::unique_ptr<TransitionModel>> models;
    for (const std::string &name : formats) {
        auto model = makeNamedTransitionModel(name);
        if (!model) {
            std::fprintf(stderr, "morphverify: unknown format '%s'\n",
                         name.c_str());
            return 2;
        }
        models.push_back(std::move(model));
    }
    for (const std::string &name : broken) {
        auto model = makeBrokenModel(name);
        if (!model) {
            std::fprintf(stderr,
                         "morphverify: unknown broken variant '%s'\n",
                         name.c_str());
            return 2;
        }
        models.push_back(std::move(model));
    }

    bool prof_stderr = false;
    profApplyEnv(prof_out, prof_stderr);
    const bool profiling = !prof_out.empty() || prof_stderr;
    if (profiling)
        profEnable();

    // Recovery sweep cases ride the same engine: one shard per crash
    // injection, results collected in case order so the report is
    // byte-identical at any --jobs level.
    std::vector<RecoveryCase> crashes;
    if (recovery) {
        const auto cases =
            recoveryCases(false, recovery_cuts, recovery_accesses);
        crashes.insert(crashes.end(), cases.begin(), cases.end());
    }
    if (broken_recovery) {
        const auto cases =
            recoveryCases(true, recovery_cuts, recovery_accesses);
        crashes.insert(crashes.end(), cases.begin(), cases.end());
    }

    // One shard per model: each keeps its whole BFS (visited set,
    // frontier, budget), so results match the serial run exactly.
    // Reports flush in command-line order below.
    std::vector<ModelReport> reports;
    {
        SweepEngine engine(jobs);
        MORPH_PROF_SCOPE("verify.sweep");
        const std::size_t n_models = models.size();
        reports = engine.map<ModelReport>(
            n_models + crashes.size(), [&](std::size_t i) {
                if (i < n_models)
                    return runModel(*models[i], budget, quiet);
                return runRecoveryCase(crashes[i - n_models], quiet);
            });
    }

    int status = 0;
    for (const ModelReport &report : reports) {
        std::fputs(report.violations.c_str(), stderr);
        std::fputs(report.summary.c_str(), stdout);
        status |= report.status;
    }

    if (profiling) {
        ProfReport profile = profReport();
        profile.meta.set("tool", "morphverify");
        if (!prof_out.empty()) {
            std::string failed;
            if (!profWriteFiles(profile, prof_out, failed)) {
                std::fprintf(stderr, "morphverify: cannot write %s\n",
                             failed.c_str());
                return 2;
            }
        }
        if (prof_stderr) {
            std::ostringstream text;
            profile.dumpText(text);
            std::fputs(text.str().c_str(), stderr);
        }
    }
    return status;
}
