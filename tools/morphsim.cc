/**
 * @file
 * morphsim — command-line secure-memory simulator.
 *
 * Runs any named workload (or mix, or user trace file) against any
 * counter/tree configuration and prints the full statistics report:
 * IPC, traffic by category, overflow/rebase counts, metadata-cache
 * behaviour, DRAM activity and energy.
 *
 * Examples:
 *   morphsim --workload mcf --config morph
 *   morphsim --workload mix2 --config vault --cache-kb 64 --timing 0
 *   morphsim --trace my.trc --config sc64 --accesses 500000
 *   morphsim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "common/ini.hh"
#include "common/log.hh"
#include "sim/simulator.hh"
#include "workloads/trace_file.hh"

namespace
{

using namespace morph;

void
usage()
{
    std::printf(
        "usage: morphsim [options]\n"
        "  --workload NAME     Table-II workload or mix (see --list)\n"
        "  --config-file FILE  read options from an INI file\n"
        "  --trace FILE        replay a trace file on every core\n"
        "  --config NAME       sc64 | vault | morph | morph-zcc |\n"
        "                      sc128 | sgx | bmt  (default: morph)\n"
        "  --mem-gb N          protected capacity (default 16)\n"
        "  --cache-kb N        metadata cache size (default 128)\n"
        "  --accesses N        measured accesses per core\n"
        "  --warmup N          warm-up accesses per core\n"
        "  --scale F           footprint divisor (default 1)\n"
        "  --seed N            trace RNG seed\n"
        "  --timing 0|1        cycle timing on/off (default 1)\n"
        "  --separate-macs     model separate MAC storage\n"
        "  --spec-verify       speculative verification\n"
        "  --ctr-prefetch      next-entry counter prefetch\n"
        "  --demote-enc        type-aware cache insertion\n"
        "  --occupancy         report per-level cache occupancy\n"
        "  --list              list workloads and exit\n");
}

TreeConfig
configByName(const std::string &name)
{
    if (name == "sc64")
        return TreeConfig::sc64();
    if (name == "vault")
        return TreeConfig::vault();
    if (name == "morph")
        return TreeConfig::morph();
    if (name == "morph-zcc")
        return TreeConfig::morphZccOnly();
    if (name == "sc128")
        return TreeConfig::sc128();
    if (name == "sgx")
        return TreeConfig::sgx();
    if (name == "bmt")
        return TreeConfig::bonsaiMacTree();
    fatal("unknown config '%s'", name.c_str());
}

void
listWorkloads()
{
    std::printf("%-12s %-6s %8s %8s %10s  %s\n", "name", "suite",
                "rdPKI", "wrPKI", "footprint", "pattern");
    for (const auto &spec : workloadTable()) {
        const char *pattern =
            spec.pattern == Pattern::Streaming  ? "streaming"
            : spec.pattern == Pattern::Random   ? "random"
            : spec.pattern == Pattern::HotCold  ? "hot-cold"
                                                : "mixed";
        std::printf("%-12s %-6s %8.1f %8.1f %7.1f GB  %s\n",
                    spec.name.c_str(), spec.suite.c_str(), spec.readPki,
                    spec.writePki, spec.footprintGb, pattern);
    }
    for (const auto &mix : mixTable()) {
        std::printf("%-12s %-6s  {%s, %s, %s, %s}\n", mix.name.c_str(),
                    "MIX", mix.parts[0].c_str(), mix.parts[1].c_str(),
                    mix.parts[2].c_str(), mix.parts[3].c_str());
    }
}

} // namespace

namespace
{

/** Apply an INI config file onto the option structs. */
void
applyConfigFile(const std::string &path, std::string &workload,
                std::string &trace_path, std::string &config_name,
                morph::SecureModelConfig &secmem,
                morph::SimOptions &options)
{
    using morph::IniFile;
    const IniFile ini = IniFile::fromFile(path);

    static const char *known[] = {
        "system.workload", "system.trace", "system.config",
        "system.mem_gb", "system.cache_kb", "system.accesses",
        "system.warmup", "system.scale", "system.seed",
        "system.timing", "controller.separate_macs",
        "controller.spec_verify", "controller.ctr_prefetch",
        "controller.demote_enc", "dram.refresh",
        "dram.write_queueing", "dram.channels", "dram.ranks",
    };
    for (const std::string &key : ini.keys()) {
        bool ok = false;
        for (const char *candidate : known)
            ok = ok || key == candidate;
        if (!ok)
            morph::fatal("config %s: unknown key '%s'", path.c_str(),
                         key.c_str());
    }

    workload = ini.getString("system.workload", workload);
    trace_path = ini.getString("system.trace", trace_path);
    config_name = ini.getString("system.config", config_name);
    secmem.memBytes = std::uint64_t(
        ini.getDouble("system.mem_gb",
                      double(secmem.memBytes) / double(1ull << 30)) *
        double(1ull << 30));
    secmem.metadataCacheBytes = std::size_t(
        ini.getInt("system.cache_kb",
                   std::int64_t(secmem.metadataCacheBytes / 1024)) *
        1024);
    options.accessesPerCore = std::uint64_t(ini.getInt(
        "system.accesses", std::int64_t(options.accessesPerCore)));
    options.warmupPerCore = std::uint64_t(ini.getInt(
        "system.warmup", std::int64_t(options.warmupPerCore)));
    options.footprintScale =
        ini.getDouble("system.scale", options.footprintScale);
    options.seed = std::uint64_t(
        ini.getInt("system.seed", std::int64_t(options.seed)));
    options.timing = ini.getBool("system.timing", options.timing);
    secmem.inlineMacs =
        !ini.getBool("controller.separate_macs", !secmem.inlineMacs);
    secmem.speculativeVerification =
        ini.getBool("controller.spec_verify",
                    secmem.speculativeVerification);
    secmem.counterPrefetch =
        ini.getBool("controller.ctr_prefetch", secmem.counterPrefetch);
    secmem.demoteEncCounters =
        ini.getBool("controller.demote_enc", secmem.demoteEncCounters);
    options.dram.refresh =
        ini.getBool("dram.refresh", options.dram.refresh);
    options.dram.writeQueueing =
        ini.getBool("dram.write_queueing", options.dram.writeQueueing);
    options.dram.channels = unsigned(
        ini.getInt("dram.channels", options.dram.channels));
    options.dram.ranksPerChannel =
        unsigned(ini.getInt("dram.ranks", options.dram.ranksPerChannel));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string trace_path;
    std::string config_name = "morph";
    SecureModelConfig secmem;
    SimOptions options = SimOptions::fromEnv();
    bool report_occupancy = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = value();
        } else if (arg == "--config-file") {
            applyConfigFile(value(), workload, trace_path, config_name,
                            secmem, options);
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--config") {
            config_name = value();
        } else if (arg == "--mem-gb") {
            secmem.memBytes = std::uint64_t(std::atof(value()) *
                                            double(1ull << 30));
        } else if (arg == "--cache-kb") {
            secmem.metadataCacheBytes =
                std::size_t(std::atoll(value())) * 1024;
        } else if (arg == "--accesses") {
            options.accessesPerCore = std::uint64_t(std::atoll(value()));
        } else if (arg == "--warmup") {
            options.warmupPerCore = std::uint64_t(std::atoll(value()));
        } else if (arg == "--scale") {
            options.footprintScale = std::atof(value());
        } else if (arg == "--seed") {
            options.seed = std::uint64_t(std::atoll(value()));
        } else if (arg == "--timing") {
            options.timing = std::atoi(value()) != 0;
        } else if (arg == "--separate-macs") {
            secmem.inlineMacs = false;
        } else if (arg == "--spec-verify") {
            secmem.speculativeVerification = true;
        } else if (arg == "--ctr-prefetch") {
            secmem.counterPrefetch = true;
        } else if (arg == "--demote-enc") {
            secmem.demoteEncCounters = true;
        } else if (arg == "--occupancy") {
            report_occupancy = true;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    secmem.tree = configByName(config_name);

    SimResult result;
    std::vector<std::uint64_t> occupancy;
    if (!trace_path.empty()) {
        // Replay the same file on all four cores through the full
        // system (occupancy reporting needs direct system access).
        SystemConfig system_config;
        system_config.secmem = secmem;
        system_config.dram = options.dram;
        system_config.timing = options.timing;
        std::vector<std::unique_ptr<TraceSource>> traces;
        for (unsigned core = 0; core < system_config.numCores; ++core)
            traces.push_back(
                std::make_unique<FileTraceSource>(trace_path));
        SimSystem system(system_config, std::move(traces));
        if (options.warmupPerCore > 0)
            system.run(options.warmupPerCore);
        system.startMeasurement();
        system.run(options.accessesPerCore);
        result.workload = trace_path;
        result.configName = secmem.tree.name;
        result.ipc = system.aggregateIpc();
        result.cycles = system.measuredCycles();
        result.instructions = system.measuredInstructions();
        result.traffic = system.secmem().stats();
        result.metadataCache =
            system.secmem().metadataCache().stats();
        result.dram = system.dram().totalActivity();
        EnergyParams energy_params;
        result.energy = computeEnergy(
            energy_params, result.dram, result.cycles,
            system_config.dram.cpuFreqHz,
            system_config.dram.channels *
                system_config.dram.ranksPerChannel);
        occupancy = system.secmem().metadataCache().levelOccupancy();
    } else if (!workload.empty()) {
        result = runByName(workload, secmem, options);
    } else {
        usage();
        fatal("need --workload or --trace");
    }

    StatSet stats("morphsim");
    stats.set("ipc", result.ipc);
    stats.set("cycles", double(result.cycles));
    stats.set("instructions", double(result.instructions));
    result.traffic.report(stats);
    stats.set("overflows.per_million", result.overflowsPerMillion());
    stats.set("mdcache.hit_rate", result.metadataCache.hitRate());
    stats.set("mdcache.misses", double(result.metadataCache.misses));
    stats.set("dram.reads", double(result.dram.reads));
    stats.set("dram.writes", double(result.dram.writes));
    stats.set("dram.activates", double(result.dram.activates));
    stats.set("dram.row_hit_rate",
              result.dram.reads + result.dram.writes
                  ? double(result.dram.rowHits) /
                        double(result.dram.reads + result.dram.writes)
                  : 0.0);
    stats.set("energy.exec_seconds", result.energy.seconds);
    stats.set("energy.dram_joules", result.energy.dramJ);
    stats.set("energy.system_joules", result.energy.systemJ);
    stats.set("energy.system_watts", result.energy.systemPowerW);
    stats.set("energy.edp", result.energy.edp);

    std::printf("# %s on %s\n", result.configName.c_str(),
                result.workload.c_str());
    std::ostringstream os;
    stats.dump(os);
    std::fputs(os.str().c_str(), stdout);

    if (report_occupancy && !occupancy.empty()) {
        for (std::size_t level = 0; level + 1 < occupancy.size();
             ++level)
            std::printf("morphsim.mdcache.occupancy.level%zu %llu\n",
                        level,
                        (unsigned long long)occupancy[level]);
    }
    return 0;
}
