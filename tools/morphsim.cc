/**
 * @file
 * morphsim — command-line secure-memory simulator.
 *
 * Runs any named workload (or mix, or user trace file) against any
 * counter/tree configuration and prints the full statistics report:
 * IPC, traffic by category, overflow/rebase counts, metadata-cache
 * behaviour, DRAM activity, latency percentiles and energy. The same
 * run can export machine-readable telemetry (morphscope): a JSON/CSV
 * stats document, an epoch time series, and a Chrome trace of sampled
 * request lifecycles (see docs/OBSERVABILITY.md).
 *
 * --sweep runs one workload against a comma-separated list of
 * configurations (or "all") as independent parallel runs on a
 * RunPool (--jobs N). Each run owns its MorphScope/StatRegistry and
 * derives its RNG seed from the (workload, config) key via
 * sweepSeed(), so report text and exports are byte-identical at any
 * --jobs level; exports gain a ".<config>" suffix per run.
 *
 * Examples:
 *   morphsim --workload mcf --config morph
 *   morphsim --workload mix2 --config vault --cache-kb 64 --timing 0
 *   morphsim --trace my.trc --config sc64 --accesses 500000
 *   morphsim --workload mcf --epoch 50000 --stats-json out.json \
 *            --trace-out trace.json
 *   morphsim --workload mcf --sweep sc64,vault,morph --jobs 4
 *   morphsim --list
 *
 * Exit codes: 0 success, 2 bad command line, 3 bad configuration
 * (unknown workload/config, unreadable file, unknown INI key),
 * 4 runtime failure (export I/O, internal error).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/ini.hh"
#include "common/log.hh"
#include "common/prof.hh"
#include "common/run_pool.hh"
#include "sim/simulator.hh"

namespace
{

using namespace morph;

/** Exit codes (documented in docs/SIMULATOR.md). */
constexpr int exitBadFlag = 2;
constexpr int exitBadConfig = 3;
constexpr int exitRuntime = 4;

void
usage()
{
    std::printf(
        "usage: morphsim [options]\n"
        "  --workload NAME     Table-II workload or mix (see --list)\n"
        "  --config-file FILE  read options from an INI file\n"
        "  --trace FILE        replay a trace file on every core\n"
        "  --config NAME       sc64 | vault | morph | morph-zcc |\n"
        "                      sc128 | sgx | bmt  (default: morph)\n"
        "  --mem-gb N          protected capacity (default 16)\n"
        "  --cache-kb N        metadata cache size (default 128)\n"
        "  --accesses N        measured accesses per core\n"
        "  --warmup N          warm-up accesses per core\n"
        "  --scale F           footprint divisor (default 1)\n"
        "  --seed N            trace RNG seed\n"
        "  --timing 0|1        cycle timing on/off (default 1)\n"
        "  --separate-macs     model separate MAC storage\n"
        "  --persist MODE      NVM persistence model: strict | lazy |\n"
        "                      off (default off); see SIMULATOR.md\n"
        "  --persist-epoch N   lazy mode: data writes per epoch\n"
        "                      barrier (default 4096)\n"
        "  --spec-verify       speculative verification\n"
        "  --ctr-prefetch      next-entry counter prefetch\n"
        "  --demote-enc        type-aware cache insertion\n"
        "  --occupancy         report per-level cache occupancy\n"
        "  --epoch N           sample a stats epoch every N measured\n"
        "                      accesses per core (0 = off)\n"
        "  --stats-json FILE   write the stats document as JSON\n"
        "  --stats-csv FILE    write totals (or epoch series) as CSV\n"
        "  --trace-out FILE    write a Chrome trace of sampled\n"
        "                      request lifecycles\n"
        "  --trace-sample N    trace 1-in-N data accesses\n"
        "                      (default 64; 1 = every access)\n"
        "  --prof-out FILE     write a morphprof self-profile (JSON,\n"
        "                      FILE.collapsed, FILE.speedscope.json);\n"
        "                      MORPH_PROF=1 for a stderr summary\n"
        "  --sweep LIST        run the workload against a comma-\n"
        "                      separated config list (or 'all') as\n"
        "                      independent parallel runs\n"
        "  --jobs N            worker threads for --sweep (default:\n"
        "                      hardware concurrency)\n"
        "  --list              list workloads and exit\n");
}

/** Resolve a tree config name; false (no change) if unknown. */
bool
configByName(const std::string &name, TreeConfig &out)
{
    if (name == "sc64")
        out = TreeConfig::sc64();
    else if (name == "vault")
        out = TreeConfig::vault();
    else if (name == "morph")
        out = TreeConfig::morph();
    else if (name == "morph-zcc")
        out = TreeConfig::morphZccOnly();
    else if (name == "sc128")
        out = TreeConfig::sc128();
    else if (name == "sgx")
        out = TreeConfig::sgx();
    else if (name == "bmt")
        out = TreeConfig::bonsaiMacTree();
    else
        return false;
    return true;
}

/** Resolve a persistence mode name; false if unknown. */
bool
persistByName(const std::string &mode, PersistConfig &out)
{
    if (mode == "off") {
        out.enabled = false;
    } else if (mode == "strict") {
        out.enabled = true;
        out.policy = PersistPolicy::Strict;
    } else if (mode == "lazy") {
        out.enabled = true;
        out.policy = PersistPolicy::Lazy;
    } else {
        return false;
    }
    return true;
}

bool
knownWorkload(const std::string &name)
{
    if (findWorkload(name))
        return true;
    for (const MixSpec &mix : mixTable())
        if (mix.name == name)
            return true;
    return false;
}

bool
readableFile(const std::string &path)
{
    return bool(std::ifstream(path));
}

void
listWorkloads()
{
    std::printf("%-12s %-6s %8s %8s %10s  %s\n", "name", "suite",
                "rdPKI", "wrPKI", "footprint", "pattern");
    for (const auto &spec : workloadTable()) {
        const char *pattern =
            spec.pattern == Pattern::Streaming  ? "streaming"
            : spec.pattern == Pattern::Random   ? "random"
            : spec.pattern == Pattern::HotCold  ? "hot-cold"
                                                : "mixed";
        std::printf("%-12s %-6s %8.1f %8.1f %7.1f GB  %s\n",
                    spec.name.c_str(), spec.suite.c_str(), spec.readPki,
                    spec.writePki, spec.footprintGb, pattern);
    }
    for (const auto &mix : mixTable()) {
        std::printf("%-12s %-6s  {%s, %s, %s, %s}\n", mix.name.c_str(),
                    "MIX", mix.parts[0].c_str(), mix.parts[1].c_str(),
                    mix.parts[2].c_str(), mix.parts[3].c_str());
    }
}

/** Apply an INI config file onto the option structs; exits with
 *  exitBadConfig on unreadable files and unknown keys. */
void
applyConfigFile(const std::string &path, std::string &workload,
                std::string &trace_path, std::string &config_name,
                SecureModelConfig &secmem, SimOptions &options)
{
    if (!readableFile(path)) {
        std::fprintf(stderr, "morphsim: cannot read config file %s\n",
                     path.c_str());
        std::exit(exitBadConfig);
    }
    const IniFile ini = IniFile::fromFile(path);

    static const char *known[] = {
        "system.workload", "system.trace", "system.config",
        "system.mem_gb", "system.cache_kb", "system.accesses",
        "system.warmup", "system.scale", "system.seed",
        "system.timing", "controller.separate_macs",
        "controller.spec_verify", "controller.ctr_prefetch",
        "controller.demote_enc", "persist.mode",
        "persist.epoch_writes", "dram.refresh",
        "dram.write_queueing", "dram.channels", "dram.ranks",
    };
    for (const std::string &key : ini.keys()) {
        bool ok = false;
        for (const char *candidate : known)
            ok = ok || key == candidate;
        if (!ok) {
            std::fprintf(stderr,
                         "morphsim: config %s: unknown key '%s'\n",
                         path.c_str(), key.c_str());
            std::exit(exitBadConfig);
        }
    }

    workload = ini.getString("system.workload", workload);
    trace_path = ini.getString("system.trace", trace_path);
    config_name = ini.getString("system.config", config_name);
    secmem.memBytes = std::uint64_t(
        ini.getDouble("system.mem_gb",
                      double(secmem.memBytes) / double(1ull << 30)) *
        double(1ull << 30));
    secmem.metadataCacheBytes = std::size_t(
        ini.getInt("system.cache_kb",
                   std::int64_t(secmem.metadataCacheBytes / 1024)) *
        1024);
    options.accessesPerCore = std::uint64_t(ini.getInt(
        "system.accesses", std::int64_t(options.accessesPerCore)));
    options.warmupPerCore = std::uint64_t(ini.getInt(
        "system.warmup", std::int64_t(options.warmupPerCore)));
    options.footprintScale =
        ini.getDouble("system.scale", options.footprintScale);
    options.seed = std::uint64_t(
        ini.getInt("system.seed", std::int64_t(options.seed)));
    options.timing = ini.getBool("system.timing", options.timing);
    secmem.inlineMacs =
        !ini.getBool("controller.separate_macs", !secmem.inlineMacs);
    secmem.speculativeVerification =
        ini.getBool("controller.spec_verify",
                    secmem.speculativeVerification);
    secmem.counterPrefetch =
        ini.getBool("controller.ctr_prefetch", secmem.counterPrefetch);
    secmem.demoteEncCounters =
        ini.getBool("controller.demote_enc", secmem.demoteEncCounters);
    const std::string persist_mode =
        ini.getString("persist.mode", std::string());
    if (!persist_mode.empty() &&
        !persistByName(persist_mode, secmem.persist)) {
        std::fprintf(stderr,
                     "morphsim: config %s: persist.mode must be "
                     "strict, lazy or off (got '%s')\n",
                     path.c_str(), persist_mode.c_str());
        std::exit(exitBadConfig);
    }
    const std::int64_t epoch_writes =
        ini.getInt("persist.epoch_writes",
                   std::int64_t(secmem.persist.epochWrites));
    if (epoch_writes < 1) {
        std::fprintf(stderr,
                     "morphsim: config %s: persist.epoch_writes must "
                     "be >= 1\n",
                     path.c_str());
        std::exit(exitBadConfig);
    }
    secmem.persist.epochWrites = std::uint64_t(epoch_writes);
    options.dram.refresh =
        ini.getBool("dram.refresh", options.dram.refresh);
    options.dram.writeQueueing =
        ini.getBool("dram.write_queueing", options.dram.writeQueueing);
    options.dram.channels = unsigned(
        ini.getInt("dram.channels", options.dram.channels));
    options.dram.ranksPerChannel =
        unsigned(ini.getInt("dram.ranks", options.dram.ranksPerChannel));
}

[[noreturn]] void
badFlag(const char *fmt, const char *detail)
{
    std::fprintf(stderr, "morphsim: ");
    std::fprintf(stderr, fmt, detail);
    std::fprintf(stderr, " (--help for usage)\n");
    std::exit(exitBadFlag);
}

/** Parse a non-negative integer option value; exits with code 2 on
 *  junk or negative input (atoll would silently wrap "-3" to a huge
 *  unsigned count instead). */
std::uint64_t
parseCount(const std::string &arg, const char *text)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 0)
        badFlag("option %s needs a non-negative integer",
                arg.c_str());
    return std::uint64_t(v);
}

/** Expand a --sweep list ("all" or comma-separated names) into
 *  config names; exits with code 3 on an unknown name. */
std::vector<std::string>
sweepConfigs(const std::string &list)
{
    static const char *all[] = {"sc64",   "vault", "morph", "morph-zcc",
                                "sc128",  "sgx",   "bmt"};
    std::vector<std::string> names;
    if (list == "all") {
        names.assign(std::begin(all), std::end(all));
        return names;
    }
    std::stringstream stream(list);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty())
            names.push_back(item);
    if (names.empty()) {
        std::fprintf(stderr, "morphsim: --sweep needs a config list\n");
        std::exit(exitBadFlag);
    }
    for (const std::string &name : names) {
        TreeConfig probe;
        if (!configByName(name, probe)) {
            std::fprintf(stderr,
                         "morphsim: unknown config '%s' in --sweep\n",
                         name.c_str());
            std::exit(exitBadConfig);
        }
    }
    return names;
}

/** Everything one parallel sweep run produces, collected on the
 *  worker and emitted in config-list order by the driver. */
struct SweepRun
{
    std::string report;     ///< header + dumpText output
    std::string writeError; ///< first failed export path, if any
};

/** Run one workload against several configs as independent parallel
 *  runs. Per-run MorphScope/StatRegistry instances, seeds derived
 *  from the (workload, config) key, output flushed in list order:
 *  byte-identical at any --jobs level. */
int
runSweep(const std::vector<std::string> &configs,
         const std::string &workload, const std::string &trace_path,
         const SecureModelConfig &base_secmem,
         const SimOptions &base_options,
         const ScopeConfig &scope_config,
         const std::string &stats_json_path,
         const std::string &stats_csv_path, unsigned jobs)
{
    const std::string key_base =
        trace_path.empty() ? workload : trace_path;
    SweepEngine engine(jobs);
    std::vector<SweepRun> runs;
    try {
        MORPH_PROF_SCOPE("morphsim.sweep");
        runs = engine.map<SweepRun>(
            configs.size(), [&](std::size_t i) {
                const std::string &name = configs[i];
                SecureModelConfig secmem = base_secmem;
                configByName(name, secmem.tree);
                SimOptions options = base_options;
                options.seed =
                    sweepSeed(key_base + "/" + name, base_options.seed);

                MorphScope scope(scope_config);
                const SimResult result =
                    trace_path.empty()
                        ? runByName(workload, secmem, options, &scope)
                        : runTraceFile(trace_path, secmem, options,
                                       &scope);

                SweepRun run;
                std::ostringstream text;
                text << "# " << result.configName << " on "
                     << result.workload << "\n";
                scope.dumpText(text, "morphsim");
                run.report = text.str();

                if (!stats_json_path.empty()) {
                    const std::string path =
                        stats_json_path + "." + name;
                    if (!scope.writeStatsJson(path))
                        run.writeError = path;
                }
                if (!stats_csv_path.empty() &&
                    run.writeError.empty()) {
                    const std::string path =
                        stats_csv_path + "." + name;
                    if (!scope.writeStatsCsv(path))
                        run.writeError = path;
                }
                return run;
            });
    } catch (const std::exception &e) {
        std::fprintf(stderr, "morphsim: sweep failed: %s\n", e.what());
        return exitRuntime;
    }
    if (profEnabled())
        std::fprintf(stderr, "morphsim: sweep %s\n",
                     engine.utilization().c_str());

    for (const SweepRun &run : runs)
        std::fputs(run.report.c_str(), stdout);
    std::fflush(stdout);
    for (const SweepRun &run : runs) {
        if (!run.writeError.empty()) {
            std::fprintf(stderr, "morphsim: cannot write %s\n",
                         run.writeError.c_str());
            return exitRuntime;
        }
    }
    return 0;
}

/**
 * Finalize self-profiling: merge and freeze the profile, stamp run
 * metadata, optionally merge it into the Chrome trace (before the
 * driver writes it), export the --prof-out file set and print the
 * stderr summary. Returns false on an export I/O failure.
 */
bool
finishProfile(const std::string &prof_out, bool prof_stderr,
              const std::string &workload_key,
              const std::string &config_name, TraceLog *trace)
{
    ProfReport report = profReport();
    report.meta.set("tool", "morphsim");
    report.meta.set("workload", workload_key);
    report.meta.set("config", config_name);
    if (trace != nullptr)
        report.mergeIntoTrace(*trace);
    if (!prof_out.empty()) {
        std::string failed;
        if (!profWriteFiles(report, prof_out, failed)) {
            std::fprintf(stderr, "morphsim: cannot write %s\n",
                         failed.c_str());
            return false;
        }
    }
    if (prof_stderr) {
        std::ostringstream text;
        report.dumpText(text);
        std::fputs(text.str().c_str(), stderr);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string trace_path;
    std::string config_name = "morph";
    std::string stats_json_path;
    std::string stats_csv_path;
    std::string trace_out_path;
    SecureModelConfig secmem;
    SimOptions options = SimOptions::fromEnv();
    ScopeConfig scope_config;
    std::uint64_t trace_sample = 64;
    std::string sweep_list;
    std::string prof_out_path;
    unsigned jobs = 0; // 0 = RunPool::hardwareJobs()

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                badFlag("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = value();
        } else if (arg == "--config-file") {
            applyConfigFile(value(), workload, trace_path, config_name,
                            secmem, options);
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--config") {
            config_name = value();
        } else if (arg == "--mem-gb") {
            secmem.memBytes = std::uint64_t(std::atof(value()) *
                                            double(1ull << 30));
        } else if (arg == "--cache-kb") {
            secmem.metadataCacheBytes =
                std::size_t(std::atoll(value())) * 1024;
        } else if (arg == "--accesses") {
            options.accessesPerCore = std::uint64_t(std::atoll(value()));
        } else if (arg == "--warmup") {
            options.warmupPerCore = std::uint64_t(std::atoll(value()));
        } else if (arg == "--scale") {
            options.footprintScale = std::atof(value());
        } else if (arg == "--seed") {
            options.seed = std::uint64_t(std::atoll(value()));
        } else if (arg == "--timing") {
            options.timing = std::atoi(value()) != 0;
        } else if (arg == "--separate-macs") {
            secmem.inlineMacs = false;
        } else if (arg == "--persist") {
            if (!persistByName(value(), secmem.persist))
                badFlag("option %s needs strict, lazy or off",
                        arg.c_str());
        } else if (arg == "--persist-epoch") {
            const std::uint64_t v = parseCount(arg, value());
            if (v == 0)
                badFlag("option %s needs a value >= 1", arg.c_str());
            secmem.persist.epochWrites = v;
        } else if (arg == "--spec-verify") {
            secmem.speculativeVerification = true;
        } else if (arg == "--ctr-prefetch") {
            secmem.counterPrefetch = true;
        } else if (arg == "--demote-enc") {
            secmem.demoteEncCounters = true;
        } else if (arg == "--occupancy") {
            scope_config.occupancy = true;
        } else if (arg == "--epoch") {
            scope_config.epochAccesses = parseCount(arg, value());
        } else if (arg == "--stats-json") {
            stats_json_path = value();
        } else if (arg == "--stats-csv") {
            stats_csv_path = value();
        } else if (arg == "--trace-out") {
            trace_out_path = value();
        } else if (arg == "--trace-sample") {
            trace_sample = parseCount(arg, value());
            if (trace_sample == 0)
                badFlag("option %s needs a value >= 1", arg.c_str());
        } else if (arg == "--prof-out") {
            prof_out_path = value();
        } else if (arg == "--sweep") {
            sweep_list = value();
        } else if (arg == "--jobs") {
            const std::uint64_t v = parseCount(arg, value());
            if (v == 0)
                badFlag("option %s needs a value >= 1", arg.c_str());
            jobs = unsigned(v);
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            badFlag("unknown option '%s'", arg.c_str());
        }
    }

    if (workload.empty() && trace_path.empty()) {
        usage();
        std::fprintf(stderr, "morphsim: need --workload or --trace\n");
        return exitBadFlag;
    }

    // Validate the configuration before spending time simulating.
    if (!configByName(config_name, secmem.tree)) {
        std::fprintf(stderr, "morphsim: unknown config '%s'\n",
                     config_name.c_str());
        return exitBadConfig;
    }
    if (!workload.empty() && !knownWorkload(workload)) {
        std::fprintf(stderr,
                     "morphsim: unknown workload or mix '%s'"
                     " (see --list)\n",
                     workload.c_str());
        return exitBadConfig;
    }
    if (!trace_path.empty() && !readableFile(trace_path)) {
        std::fprintf(stderr, "morphsim: cannot read trace file %s\n",
                     trace_path.c_str());
        return exitBadConfig;
    }

    if (!trace_out_path.empty())
        scope_config.traceSampleEvery = trace_sample;

    bool prof_stderr = false;
    profApplyEnv(prof_out_path, prof_stderr);
    const bool profiling = !prof_out_path.empty() || prof_stderr;
    if (profiling)
        profEnable();
    const std::string workload_key =
        trace_path.empty() ? workload : trace_path;

    if (!sweep_list.empty()) {
        if (!trace_out_path.empty())
            badFlag("%s is not supported with --sweep", "--trace-out");
        const int code =
            runSweep(sweepConfigs(sweep_list), workload, trace_path,
                     secmem, options, scope_config, stats_json_path,
                     stats_csv_path, jobs);
        if (profiling &&
            !finishProfile(prof_out_path, prof_stderr, workload_key,
                           sweep_list, nullptr))
            return code == 0 ? exitRuntime : code;
        return code;
    }

    MorphScope scope(scope_config);
    SimResult result;
    try {
        MORPH_PROF_SCOPE("morphsim.run");
        result = trace_path.empty()
                     ? runByName(workload, secmem, options, &scope)
                     : runTraceFile(trace_path, secmem, options,
                                    &scope);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "morphsim: simulation failed: %s\n",
                     e.what());
        return exitRuntime;
    }

    std::printf("# %s on %s\n", result.configName.c_str(),
                result.workload.c_str());
    scope.dumpText(std::cout, "morphsim");
    std::cout.flush();

    if (!stats_json_path.empty() &&
        !scope.writeStatsJson(stats_json_path)) {
        std::fprintf(stderr, "morphsim: cannot write %s\n",
                     stats_json_path.c_str());
        return exitRuntime;
    }
    if (!stats_csv_path.empty() &&
        !scope.writeStatsCsv(stats_csv_path)) {
        std::fprintf(stderr, "morphsim: cannot write %s\n",
                     stats_csv_path.c_str());
        return exitRuntime;
    }
    if (profiling &&
        !finishProfile(prof_out_path, prof_stderr, workload_key,
                       config_name,
                       trace_out_path.empty() ? nullptr
                                              : &scope.trace()))
        return exitRuntime;
    if (!trace_out_path.empty()) {
        if (!scope.writeTrace(trace_out_path)) {
            std::fprintf(stderr, "morphsim: cannot write %s\n",
                         trace_out_path.c_str());
            return exitRuntime;
        }
        if (scope.trace().dropped() > 0)
            std::fprintf(stderr,
                         "morphsim: trace buffer full, dropped %llu"
                         " events (raise --trace-sample)\n",
                         (unsigned long long)scope.trace().dropped());
    }
    return 0;
}
