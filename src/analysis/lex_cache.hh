/**
 * @file
 * Token-stream cache for the batch analyzers.
 *
 * A morphflow + morphrace CI lane (and the ctest fixtures) feed the
 * same headers through the lexer repeatedly: every analyzer
 * construction used to re-lex its whole batch from scratch. LexCache
 * memoizes LexedSource by a caller-chosen key — the canonical file
 * path — so a file lexes exactly once per process no matter how many
 * analyses (or duplicate batch entries: a fixture named twice, a
 * header reached by both the compile-db walk and an explicit
 * argument) consume it. Entries live in a std::map, so references
 * returned by get() stay valid for the cache's lifetime.
 */

#ifndef MORPH_ANALYSIS_LEX_CACHE_HH
#define MORPH_ANALYSIS_LEX_CACHE_HH

#include <cstddef>
#include <map>
#include <string>

#include "analysis/lexer.hh"

namespace morph::analysis
{

/** Canonical-path-keyed memo of lexed token streams. */
class LexCache
{
  public:
    /** The lexed form of @p text, lexing at most once per @p key.
     *  @p path is the display path recorded in the tokens (used only
     *  on a miss — hits keep the first spelling). */
    const LexedSource &get(const std::string &key,
                           const std::string &path,
                           const std::string &text);

    std::size_t hits() const { return hits_; }
    std::size_t entries() const { return cache_.size(); }

  private:
    std::map<std::string, LexedSource> cache_;
    std::size_t hits_ = 0;
};

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_LEX_CACHE_HH
