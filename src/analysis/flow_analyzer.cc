#include "analysis/flow_analyzer.hh"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "analysis/lexer.hh"
#include "analysis/source_model.hh"

namespace morph::analysis
{

namespace
{

constexpr std::size_t npos = static_cast<std::size_t>(-1);

const char secretMarker[] = "MORPH_SECRET";
const char declassifyMarker[] = "MORPH_DECLASSIFY";

bool
isControlKeyword(const std::string &s)
{
    static const char *const kw[] = {
        "if",     "for",    "while",  "switch",        "catch",
        "return", "sizeof", "alignof", "static_assert", "assert",
        "new",    "delete", "throw",
    };
    return std::any_of(std::begin(kw), std::end(kw),
                       [&](const char *k) { return s == k; });
}

bool
isLogFunction(const std::string &s)
{
    static const char *const fns[] = {
        "printf", "fprintf", "sprintf",   "snprintf", "vprintf",
        "vfprintf", "vsnprintf", "puts",  "fputs",    "syslog",
        "inform", "warn",    "panic",     "fatal",
    };
    return std::any_of(std::begin(fns), std::end(fns),
                       [&](const char *k) { return s == k; });
}

bool
isBannedNondet(const std::string &s)
{
    static const char *const fns[] = {
        "rand",     "srand",        "random",       "drand48",
        "lrand48",  "mrand48",      "rand_r",       "time",
        "clock",    "gettimeofday", "clock_gettime", "localtime",
        "gmtime",
    };
    return std::any_of(std::begin(fns), std::end(fns),
                       [&](const char *k) { return s == k; });
}

bool
isAssignOp(const std::string &s)
{
    static const char *const ops[] = {
        "=",  "+=", "-=",  "*=",  "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>=",
    };
    return std::any_of(std::begin(ops), std::end(ops),
                       [&](const char *k) { return s == k; });
}

/** Member accesses on a secret object that yield public values:
 *  sizes and emptiness do not reveal secret contents. Note that
 *  .data() is NOT here — reading through the pointer it returns is
 *  exactly how secret bytes flow onward. */
bool
isPublicMember(const std::string &s)
{
    static const char *const members[] = {
        "size", "empty", "capacity", "locked",
    };
    return std::any_of(std::begin(members), std::end(members),
                       [&](const char *k) { return s == k; });
}

/** True if typeText names a self-wiping container. */
bool
selfWipingType(const std::string &type_text)
{
    return type_text.find("SecureBuf") != std::string::npos ||
           type_text.find("SecretArray") != std::string::npos;
}

/** One input file after lexing and modelling. The token stream may
 *  live in a shared LexCache; `lexed` points either there or into the
 *  analyzer's own storage. */
struct FileUnit
{
    SourceText meta;
    const LexedSource *lexed = nullptr;
    SourceModel model;
};

/** An explicitly annotated local, tracked for the wipe rule. */
struct AnnotatedLocal
{
    std::string name;
    std::string typeText;
    unsigned line = 0;
};

/** Per-function taint state. */
struct LocalState
{
    std::set<std::string> secrets;
    std::vector<AnnotatedLocal> locals;
};

class Analyzer
{
  public:
    explicit Analyzer(const std::vector<SourceText> &sources,
                      LexCache *cache = nullptr)
    {
        // Without a caller-provided cache, a local one both owns the
        // token streams (std::map entries are address-stable) and
        // de-duplicates same-path batch entries.
        LexCache &lexed = cache ? *cache : ownLex_;
        units_.reserve(sources.size());
        for (const SourceText &src : sources) {
            FileUnit unit;
            unit.meta = src;
            unit.lexed = &lexed.get(src.path, src.path, src.text);
            unit.model = buildModel(*unit.lexed);
            units_.push_back(std::move(unit));
        }
    }

    AnalysisResult
    run()
    {
        seed();
        propagate();
        for (const FileUnit &unit : units_) {
            secretRules(unit);
            memberWipeRule(unit);
            if (unit.meta.determinismScope)
                determinismRules(unit);
        }
        finish();
        return std::move(result_);
    }

  private:
    // ---- seeding -----------------------------------------------------

    void
    seed()
    {
        declassifiers_.insert(declassifyMarker);
        // Wiping consumes a secret; passing one to secureWipe is the
        // required disposal, not a leak, and must not taint its params.
        declassifiers_.insert("secureWipe");
        // Which files define each function name. Names defined in more
        // than one file (two file-local helpers both called `rotl`, say)
        // get file-qualified taint keys so taint cannot jump between
        // unrelated same-named functions.
        for (const FileUnit &unit : units_)
            for (const FunctionDef &f : unit.model.functions)
                defFiles_[f.name].insert(unit.meta.path);
        for (const FileUnit &unit : units_) {
            const SourceModel &m = unit.model;
            for (const SecretDecl &d : m.secretDecls)
                globalSecretNames_.insert(d.name);
            for (const std::string &n : m.unorderedNames)
                unorderedAll_.insert(n);
            // Header annotations apply to every definition of the name.
            for (const std::string &fn : m.secretReturnDecls)
                for (const std::string &key : keysForName(fn))
                    secretReturnFns_.insert(key);
            for (const auto &entry : m.secretParamDecls)
                for (const std::string &key : keysForName(entry.first))
                    secretParams_[key].insert(entry.second.begin(),
                                              entry.second.end());
            for (const FunctionDef &f : m.functions) {
                definedFns_.insert(f.name);
                if (f.secretReturn)
                    secretReturnFns_.insert(defKey(unit, f.name));
                for (std::size_t i = 0; i < f.params.size(); ++i)
                    if (f.params[i].secret)
                        secretParams_[defKey(unit, f.name)].insert(i);
            }
        }
        // Declassifier discovery is syntactic, so do it up front: a
        // function becomes a declassification boundary the moment its
        // source says `return MORPH_DECLASSIFY(...)`, regardless of the
        // order files are visited during taint propagation.
        for (const FileUnit &unit : units_) {
            const auto &t = unit.lexed->tokens;
            for (const FunctionDef &f : unit.model.functions)
                for (std::size_t i = f.bodyBegin + 1;
                     i + 1 < f.bodyEnd; ++i)
                    if (t[i].text == "return" &&
                        t[i + 1].text == declassifyMarker)
                        declassifiers_.insert(defKey(unit, f.name));
        }
        // Wipe mentions anywhere in the batch, for the member rule.
        for (const FileUnit &unit : units_) {
            const auto &t = unit.lexed->tokens;
            for (std::size_t i = 0; i + 1 < t.size(); ++i) {
                if (t[i].text == "secureWipe" && t[i + 1].text == "(") {
                    const std::size_t close = matchGroup(t, i + 1);
                    for (std::size_t j = i + 2;
                         j < close && j < t.size(); ++j)
                        if (t[j].kind == Tok::Ident)
                            wipedNames_.insert(t[j].text);
                } else if (t[i].kind == Tok::Ident && i + 2 < t.size() &&
                           (t[i + 1].text == "." ||
                            t[i + 1].text == "->") &&
                           t[i + 2].text == "wipe") {
                    wipedNames_.insert(t[i].text);
                }
            }
        }
    }

    // ---- taint fixed point -------------------------------------------

    void
    propagate()
    {
        for (int iter = 0; iter < 20; ++iter) {
            bool changed = false;
            for (const FileUnit &unit : units_)
                for (const FunctionDef &fn : unit.model.functions)
                    changed |= propagateFunction(unit, fn);
            if (!changed)
                return;
        }
    }

    bool
    propagateFunction(const FileUnit &unit, const FunctionDef &fn)
    {
        const LocalState state = localState(unit, fn);
        const auto &t = unit.lexed->tokens;
        bool changed = false;
        for (std::size_t i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
            if (t[i].kind != Tok::Ident)
                continue;
            if (t[i].text == "return") {
                if (i + 1 < fn.bodyEnd &&
                    t[i + 1].text == declassifyMarker)
                    continue; // declassified return, seeded up front
                const std::size_t end = statementEnd(t, i + 1, fn.bodyEnd);
                if (findSecretUse(unit, t, i + 1, end, state.secrets) !=
                    npos)
                    changed |= secretReturnFns_
                                   .insert(defKey(unit, fn.name))
                                   .second;
                continue;
            }
            // Call with a secret argument: taint the callee parameter.
            if (i + 1 < fn.bodyEnd && t[i + 1].text == "(" &&
                !isControlKeyword(t[i].text) &&
                definedFns_.count(t[i].text) != 0) {
                const std::string key = callKey(unit, t[i].text);
                if (key.empty() || declassifiers_.count(key) != 0)
                    continue;
                const std::size_t close = matchGroup(t, i + 1);
                std::size_t pos = 0;
                for (const auto &arg : argRanges(t, i + 1, close)) {
                    if (findSecretUse(unit, t, arg.first, arg.second,
                                      state.secrets) != npos)
                        changed |=
                            secretParams_[key].insert(pos).second;
                    ++pos;
                }
            }
        }
        return changed;
    }

    /** Local taint for one function: seeds plus an intra-procedural
     *  assignment fixed point. */
    LocalState
    localState(const FileUnit &unit, const FunctionDef &fn) const
    {
        LocalState state;
        state.secrets = globalSecretNames_;
        const auto pit = secretParams_.find(defKey(unit, fn.name));
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            const Param &p = fn.params[i];
            if (p.name.empty())
                continue;
            if (p.secret ||
                (pit != secretParams_.end() && pit->second.count(i)))
                state.secrets.insert(p.name);
        }
        const auto &t = unit.lexed->tokens;
        // Explicitly annotated locals.
        for (std::size_t i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
            if (t[i].text != secretMarker)
                continue;
            std::string type_text;
            std::size_t j = i + 1;
            while (j < fn.bodyEnd) {
                const std::string &s = t[j].text;
                if (s == ";" || s == "=" || s == "{" || s == "(")
                    break;
                if (t[j].kind == Tok::Ident || s == "::" || s == "<" ||
                    s == ">" || s == ">>") {
                    if (!type_text.empty())
                        type_text += ' ';
                    type_text += s;
                }
                ++j;
            }
            AnnotatedLocal local;
            local.name = declName(t, i + 1, j);
            local.typeText = type_text;
            local.line = t[i].line;
            if (!local.name.empty()) {
                state.secrets.insert(local.name);
                state.locals.push_back(std::move(local));
            }
        }
        // Assignment / copy propagation to a fixed point.
        for (int iter = 0; iter < 10; ++iter) {
            bool changed = false;
            for (std::size_t i = fn.bodyBegin + 1; i < fn.bodyEnd;
                 ++i) {
                if (t[i].kind == Tok::Ident && i + 1 < fn.bodyEnd &&
                    isAssignOp(t[i + 1].text) &&
                    state.secrets.count(t[i].text) == 0) {
                    const std::size_t end =
                        statementEnd(t, i + 2, fn.bodyEnd);
                    if (findSecretUse(unit, t, i + 2, end,
                                      state.secrets) != npos) {
                        state.secrets.insert(t[i].text);
                        changed = true;
                    }
                }
                // Subscripted store: `x[i] ^= secret` taints x.
                if (t[i].kind == Tok::Ident && i + 1 < fn.bodyEnd &&
                    t[i + 1].text == "[" &&
                    state.secrets.count(t[i].text) == 0) {
                    const std::size_t close = matchGroup(t, i + 1);
                    if (close + 1 < fn.bodyEnd &&
                        isAssignOp(t[close + 1].text)) {
                        const std::size_t end =
                            statementEnd(t, close + 2, fn.bodyEnd);
                        if (findSecretUse(unit, t, close + 2, end,
                                          state.secrets) != npos) {
                            state.secrets.insert(t[i].text);
                            changed = true;
                        }
                    }
                }
                if (t[i].kind == Tok::Ident &&
                    (t[i].text == "memcpy" || t[i].text == "memmove") &&
                    i + 1 < fn.bodyEnd && t[i + 1].text == "(") {
                    const std::size_t close = matchGroup(t, i + 1);
                    if (findSecretUse(unit, t, i + 2, close,
                                      state.secrets) == npos)
                        continue;
                    for (std::size_t j = i + 2; j < close; ++j) {
                        if (t[j].kind != Tok::Ident)
                            continue;
                        if (state.secrets.insert(t[j].text).second)
                            changed = true;
                        break;
                    }
                }
            }
            if (!changed)
                break;
        }
        return state;
    }

    // ---- shared scanning helpers -------------------------------------

    /** End (exclusive) of the statement starting at @p begin: the
     *  index of the first ';' at bracket depth zero. */
    static std::size_t
    statementEnd(const std::vector<Token> &t, std::size_t begin,
                 std::size_t limit)
    {
        int depth = 0;
        for (std::size_t i = begin; i < limit; ++i) {
            const std::string &s = t[i].text;
            if (s == "(" || s == "[" || s == "{")
                ++depth;
            else if (s == ")" || s == "]" || s == "}")
                --depth;
            else if (s == ";" && depth <= 0)
                return i;
        }
        return limit;
    }

    /** Top-level comma-separated argument ranges of the group opened
     *  at @p open (which closes at @p close). */
    static std::vector<std::pair<std::size_t, std::size_t>>
    argRanges(const std::vector<Token> &t, std::size_t open,
              std::size_t close)
    {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        if (close >= t.size() || close <= open + 1)
            return args;
        std::size_t begin = open + 1;
        int depth = 0;
        for (std::size_t i = begin; i <= close; ++i) {
            const std::string &s = t[i].text;
            const bool at_end = i == close;
            if (!at_end) {
                if (s == "(" || s == "[" || s == "{")
                    ++depth;
                else if (s == ")" || s == "]" || s == "}")
                    --depth;
            }
            if (at_end || (s == "," && depth == 0)) {
                if (i > begin)
                    args.emplace_back(begin, i);
                begin = i + 1;
            }
        }
        return args;
    }

    /** Declared name of a declarator run — thin wrapper over the same
     *  convention source_model uses (last identifier, arrays peeled). */
    static std::string
    declName(const std::vector<Token> &t, std::size_t begin,
             std::size_t end)
    {
        std::size_t last = end;
        while (last > begin) {
            --last;
            if (t[last].kind == Tok::Ident)
                return t[last].text;
            if (t[last].text == "]") {
                unsigned depth = 1;
                while (last > begin && depth > 0) {
                    --last;
                    if (t[last].text == "]")
                        ++depth;
                    else if (t[last].text == "[")
                        --depth;
                }
                continue;
            }
            if (t[last].text == "&" || t[last].text == "*" ||
                t[last].kind == Tok::Number)
                continue;
            break;
        }
        return {};
    }

    /** Interprocedural taint key for the definition of @p name in
     *  @p unit: the plain name when it is defined in at most one file,
     *  file-qualified when several files define it independently. */
    std::string
    defKey(const FileUnit &unit, const std::string &name) const
    {
        const auto it = defFiles_.find(name);
        if (it != defFiles_.end() && it->second.size() > 1)
            return unit.meta.path + "#" + name;
        return name;
    }

    /** Key a call to @p name from @p unit resolves to. For a name
     *  defined in several files, the call binds to the defining file
     *  it appears in; a cross-file call to such a name is ambiguous
     *  and returns "" (no propagation rather than wrong
     *  propagation). */
    std::string
    callKey(const FileUnit &unit, const std::string &name) const
    {
        const auto it = defFiles_.find(name);
        if (it == defFiles_.end() || it->second.size() <= 1)
            return name;
        if (it->second.count(unit.meta.path) != 0)
            return unit.meta.path + "#" + name;
        return {};
    }

    /** Every definition-side key for @p name, for annotations carried
     *  on declarations (a header does not say which file defines the
     *  function, so seed all of them). */
    std::vector<std::string>
    keysForName(const std::string &name) const
    {
        const auto it = defFiles_.find(name);
        if (it == defFiles_.end() || it->second.size() <= 1)
            return {name};
        std::vector<std::string> keys;
        for (const std::string &file : it->second)
            keys.push_back(file + "#" + name);
        return keys;
    }

    /** First secret use in [begin, end): an identifier in @p secrets,
     *  or a call to a secret-returning function. Declassifier call
     *  subtrees and public member accesses (x.size(), x.data()) are
     *  skipped. Returns npos when the range is clean. */
    std::size_t
    findSecretUse(const FileUnit &unit, const std::vector<Token> &t,
                  std::size_t begin, std::size_t end,
                  const std::set<std::string> &secrets) const
    {
        std::size_t i = begin;
        while (i < end && i < t.size()) {
            const Token &tok = t[i];
            if (tok.kind != Tok::Ident) {
                ++i;
                continue;
            }
            std::string call_key;
            if (i + 1 < end && t[i + 1].text == "(")
                call_key = callKey(unit, tok.text);
            if (!call_key.empty() &&
                declassifiers_.count(call_key) != 0) {
                const std::size_t close = matchGroup(t, i + 1);
                i = close >= t.size() ? end : close + 1;
                continue;
            }
            const bool is_secret = secrets.count(tok.text) != 0;
            if (is_secret && i + 2 < end &&
                (t[i + 1].text == "." || t[i + 1].text == "->") &&
                isPublicMember(t[i + 2].text)) {
                i += 3;
                continue;
            }
            if (is_secret)
                return i;
            if (!call_key.empty() &&
                secretReturnFns_.count(call_key) != 0)
                return i;
            ++i;
        }
        return npos;
    }

    // ---- secret rules ------------------------------------------------

    void
    secretRules(const FileUnit &unit)
    {
        for (const FunctionDef &fn : unit.model.functions)
            functionRules(unit, fn);
    }

    void
    functionRules(const FileUnit &unit, const FunctionDef &fn)
    {
        const LocalState state = localState(unit, fn);
        const auto &t = unit.lexed->tokens;
        for (std::size_t i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
            const std::string &s = t[i].text;
            if (t[i].kind == Tok::Ident &&
                (s == "if" || s == "while" || s == "switch") &&
                i + 1 < fn.bodyEnd && t[i + 1].text == "(") {
                checkCondition(unit, fn, state, i + 1,
                               matchGroup(t, i + 1));
                continue;
            }
            if (t[i].kind == Tok::Ident && s == "for" &&
                i + 1 < fn.bodyEnd && t[i + 1].text == "(") {
                checkForLoop(unit, fn, state, i + 1);
                continue;
            }
            if (s == "?" && t[i].kind == Tok::Punct) {
                checkTernary(unit, fn, state, i);
                continue;
            }
            if (s == "[" && t[i].kind == Tok::Punct && i > 0 &&
                (t[i - 1].kind == Tok::Ident || t[i - 1].text == ")" ||
                 t[i - 1].text == "]") &&
                !(i + 1 < fn.bodyEnd && t[i + 1].text == "[")) {
                const std::size_t close = matchGroup(t, i);
                const std::size_t hit = findSecretUse(
                    unit, t, i + 1, std::min(close, fn.bodyEnd),
                    state.secrets);
                if (hit != npos)
                    report(unit, "secret-subscript", t[hit].line,
                           t[hit].text,
                           "secret value '" + t[hit].text +
                               "' used as an array subscript "
                               "(data-dependent memory access)");
                continue;
            }
            if (t[i].kind == Tok::Ident && isLogFunction(s) &&
                i + 1 < fn.bodyEnd && t[i + 1].text == "(") {
                const std::size_t close = matchGroup(t, i + 1);
                const std::size_t hit = findSecretUse(
                    unit, t, i + 2, std::min(close, fn.bodyEnd),
                    state.secrets);
                if (hit != npos)
                    report(unit, "secret-log", t[hit].line,
                           t[hit].text,
                           "secret value '" + t[hit].text +
                               "' passed to logging call '" + s +
                               "'");
            }
        }
        wipeRule(unit, fn, state);
    }

    void
    checkCondition(const FileUnit &unit, const FunctionDef &fn,
                   const LocalState &state, std::size_t open,
                   std::size_t close)
    {
        const auto &t = unit.lexed->tokens;
        const std::size_t hit = findSecretUse(
            unit, t, open + 1, std::min(close, fn.bodyEnd),
            state.secrets);
        if (hit != npos)
            report(unit, "secret-branch", t[hit].line, t[hit].text,
                   "secret value '" + t[hit].text +
                       "' influences a branch condition");
    }

    void
    checkForLoop(const FileUnit &unit, const FunctionDef &fn,
                 const LocalState &state, std::size_t open)
    {
        const auto &t = unit.lexed->tokens;
        const std::size_t close = matchGroup(t, open);
        if (close >= fn.bodyEnd)
            return;
        // Range-for never branches on element values; the unordered
        // iteration hazard is the determinism family's concern.
        std::size_t first_semi = npos;
        int depth = 0;
        for (std::size_t i = open + 1; i < close; ++i) {
            const std::string &s = t[i].text;
            if (s == "(" || s == "[" || s == "{") {
                ++depth;
            } else if (s == ")" || s == "]" || s == "}") {
                --depth;
            } else if (s == ";" && depth == 0) {
                first_semi = i;
                break;
            } else if (s == ":" && depth == 0) {
                return; // range-for
            }
        }
        // Only the condition and increment parts can branch on data;
        // the init part is assignment, handled by taint propagation.
        const std::size_t begin =
            first_semi == npos ? open + 1 : first_semi + 1;
        const std::size_t hit =
            findSecretUse(unit, t, begin, close, state.secrets);
        if (hit != npos)
            report(unit, "secret-branch", t[hit].line, t[hit].text,
                   "secret value '" + t[hit].text +
                       "' influences a loop condition");
    }

    void
    checkTernary(const FileUnit &unit, const FunctionDef &fn,
                 const LocalState &state, std::size_t qpos)
    {
        const auto &t = unit.lexed->tokens;
        std::size_t begin = fn.bodyBegin + 1;
        int depth = 0;
        for (std::size_t i = qpos; i > fn.bodyBegin;) {
            --i;
            const std::string &s = t[i].text;
            if (s == ")" || s == "]" || s == "}") {
                ++depth;
                continue;
            }
            if (s == "(" || s == "[" || s == "{") {
                if (depth == 0) {
                    begin = i + 1;
                    break;
                }
                --depth;
                continue;
            }
            if (depth == 0 &&
                (s == ";" || s == "," || s == "=" || s == "return" ||
                 s == "?" || s == ":")) {
                begin = i + 1;
                break;
            }
        }
        const std::size_t hit =
            findSecretUse(unit, t, begin, qpos, state.secrets);
        if (hit != npos)
            report(unit, "secret-branch", t[hit].line, t[hit].text,
                   "secret value '" + t[hit].text +
                       "' selects a ternary result");
    }

    void
    wipeRule(const FileUnit &unit, const FunctionDef &fn,
             const LocalState &state)
    {
        const auto &t = unit.lexed->tokens;
        for (const AnnotatedLocal &local : state.locals) {
            if (selfWipingType(local.typeText))
                continue;
            bool wiped = false;
            bool escaped = false;
            for (std::size_t i = fn.bodyBegin + 1;
                 i < fn.bodyEnd && !wiped && !escaped; ++i) {
                if (t[i].kind != Tok::Ident)
                    continue;
                if (t[i].text == "secureWipe" && i + 1 < fn.bodyEnd &&
                    t[i + 1].text == "(") {
                    const std::size_t close = matchGroup(t, i + 1);
                    for (std::size_t j = i + 2;
                         j < close && j < fn.bodyEnd; ++j)
                        if (t[j].kind == Tok::Ident &&
                            t[j].text == local.name)
                            wiped = true;
                } else if (t[i].text == local.name &&
                           i + 2 < fn.bodyEnd &&
                           (t[i + 1].text == "." ||
                            t[i + 1].text == "->") &&
                           t[i + 2].text == "wipe") {
                    wiped = true;
                } else if (t[i].text == "return") {
                    const std::size_t end =
                        statementEnd(t, i + 1, fn.bodyEnd);
                    for (std::size_t j = i + 1; j < end; ++j)
                        if (t[j].kind == Tok::Ident &&
                            t[j].text == local.name)
                            escaped = true;
                }
            }
            if (!wiped && !escaped)
                report(unit, "secret-wipe", local.line, local.name,
                       "secret local '" + local.name +
                           "' leaves scope without secureWipe() "
                           "(use SecureBuf/SecretArray or wipe "
                           "explicitly)");
        }
    }

    void
    memberWipeRule(const FileUnit &unit)
    {
        for (const SecretDecl &d : unit.model.secretDecls) {
            if (selfWipingType(d.typeText))
                continue;
            if (wipedNames_.count(d.name) != 0)
                continue;
            report(unit, "secret-member-wipe", d.line, d.name,
                   "secret member '" + d.name +
                       "' has a raw type and is never wiped "
                       "(use SecretArray/SecureBuf or secureWipe in "
                       "a destructor)");
        }
    }

    // ---- determinism rules -------------------------------------------

    void
    determinismRules(const FileUnit &unit)
    {
        const auto &t = unit.lexed->tokens;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Tok::Ident)
                continue;
            const std::string &s = t[i].text;
            const bool member_call =
                i > 0 &&
                (t[i - 1].text == "." || t[i - 1].text == "->");
            if (s == "random_device") {
                if (!member_call)
                    report(unit, "nondet-call", t[i].line, s,
                           "std::random_device breaks run-to-run "
                           "determinism; seed a fixed-seed engine "
                           "instead");
                continue;
            }
            if (isBannedNondet(s) && i + 1 < t.size() &&
                t[i + 1].text == "(" && !member_call) {
                const bool qualified = i > 0 && t[i - 1].text == "::";
                if (qualified &&
                    (i < 2 || t[i - 2].text != "std"))
                    continue;
                // A preceding type name means this is the declaration
                // or definition of a same-named member ("Cycle
                // clock() const"), not a call to the libc function.
                if (!qualified && i > 0 &&
                    t[i - 1].kind == Tok::Ident &&
                    t[i - 1].text != "return" &&
                    t[i - 1].text != "case" &&
                    t[i - 1].text != "co_return")
                    continue;
                report(unit, "nondet-call", t[i].line, s,
                       "call to non-deterministic '" + s +
                           "' in a determinism-scoped path");
                continue;
            }
            if (s == "for" && i + 1 < t.size() &&
                t[i + 1].text == "(")
                checkRangeFor(unit, i + 1);
        }
    }

    void
    checkRangeFor(const FileUnit &unit, std::size_t open)
    {
        const auto &t = unit.lexed->tokens;
        const std::size_t close = matchGroup(t, open);
        if (close >= t.size())
            return;
        std::size_t colon = npos;
        int depth = 0;
        for (std::size_t i = open + 1; i < close; ++i) {
            const std::string &s = t[i].text;
            if (s == "(" || s == "[" || s == "{") {
                ++depth;
            } else if (s == ")" || s == "]" || s == "}") {
                --depth;
            } else if (s == ";" && depth == 0) {
                return; // classic for loop
            } else if (s == ":" && depth == 0) {
                colon = i;
                break;
            }
        }
        if (colon == npos)
            return;
        for (std::size_t i = colon + 1; i < close; ++i) {
            if (t[i].kind == Tok::Ident &&
                unorderedAll_.count(t[i].text) != 0) {
                report(unit, "nondet-iter", t[i].line, t[i].text,
                       "range-for over unordered container '" +
                           t[i].text +
                           "' feeds iteration-order-dependent "
                           "results; iterate a sorted view");
                return;
            }
        }
    }

    // ---- reporting ---------------------------------------------------

    void
    report(const FileUnit &unit, const std::string &rule,
           unsigned line, const std::string &symbol,
           const std::string &message)
    {
        const std::string key = unit.meta.path + ":" +
                                std::to_string(line) + ":" + rule +
                                ":" + symbol;
        if (!reported_.insert(key).second)
            return;
        Finding f;
        f.rule = rule;
        f.file = unit.meta.path;
        f.symbol = symbol;
        f.message = message;
        f.line = line;
        f.waived = unit.model.waived(rule, line);
        (f.waived ? result_.waived : result_.findings)
            .push_back(std::move(f));
    }

    void
    finish()
    {
        const auto order = [](const Finding &a, const Finding &b) {
            if (a.file != b.file)
                return a.file < b.file;
            if (a.line != b.line)
                return a.line < b.line;
            if (a.rule != b.rule)
                return a.rule < b.rule;
            return a.symbol < b.symbol;
        };
        std::sort(result_.findings.begin(), result_.findings.end(),
                  order);
        std::sort(result_.waived.begin(), result_.waived.end(), order);
    }

    LexCache ownLex_; ///< used when the caller passes no cache
    std::vector<FileUnit> units_;
    std::set<std::string> globalSecretNames_;
    std::set<std::string> secretReturnFns_;
    std::set<std::string> declassifiers_;
    std::set<std::string> definedFns_;
    std::map<std::string, std::set<std::string>> defFiles_;
    std::set<std::string> unorderedAll_;
    std::set<std::string> wipedNames_;
    std::map<std::string, std::set<std::size_t>> secretParams_;
    std::set<std::string> reported_;
    AnalysisResult result_;
};

} // namespace

AnalysisResult
analyzeSources(const std::vector<SourceText> &sources, LexCache *cache)
{
    return Analyzer(sources, cache).run();
}

} // namespace morph::analysis
