#include "analysis/compile_db.hh"

#include <algorithm>

#include "common/json.hh"

namespace morph::analysis
{

bool
readCompileDb(const std::string &json_text,
              std::vector<std::string> &files, std::string &error)
{
    bool ok = false;
    const JsonValue root = jsonParse(json_text, ok, error);
    if (!ok)
        return false;
    if (!root.isArray()) {
        error = "compile database root is not a JSON array";
        return false;
    }
    for (const JsonValue &entry : root.elements()) {
        if (!entry.isObject())
            continue;
        const JsonValue *file = entry.find("file");
        if (file == nullptr || !file->isString())
            continue;
        std::string path = file->asString();
        if (!path.empty() && path.front() != '/') {
            const JsonValue *dir = entry.find("directory");
            if (dir != nullptr && dir->isString())
                path = dir->asString() + "/" + path;
        }
        files.push_back(std::move(path));
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return true;
}

} // namespace morph::analysis
