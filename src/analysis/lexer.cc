#include "analysis/lexer.hh"

#include <cctype>

namespace morph::analysis
{

namespace
{

/** Multi-character operators we keep as single Punct tokens. The
 *  analyzer needs `::`, `->`, `==` vs `=`, and shift/compound-assign
 *  operators to stay whole; everything else can split. */
const char *const multiOps[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=",   "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "^=",   "&=",  "|=",
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    Lexer(const std::string &path, const std::string &text)
        : text_(text)
    {
        out_.path = path;
    }

    LexedSource
    run()
    {
        while (pos_ < text_.size())
            step();
        return std::move(out_);
    }

  private:
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }

    void
    advance()
    {
        if (text_[pos_] == '\n')
            ++line_;
        ++pos_;
    }

    void
    addComment(unsigned line, const std::string &body)
    {
        std::string &slot = out_.comments[line];
        if (!slot.empty())
            slot += ' ';
        slot += body;
    }

    /** True if the only tokens so far on this line are none (i.e. the
     *  '#' begins a directive). */
    bool
    atLineStart() const
    {
        return out_.tokens.empty() || out_.tokens.back().line != line_;
    }

    void
    skipLineComment()
    {
        const unsigned start = line_;
        std::string body;
        advance(); // first '/'
        advance(); // second '/'
        while (pos_ < text_.size() && peek() != '\n') {
            body += peek();
            advance();
        }
        addComment(start, body);
    }

    void
    skipBlockComment()
    {
        unsigned current = line_;
        std::string body;
        advance(); // '/'
        advance(); // '*'
        while (pos_ < text_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                advance();
                advance();
                break;
            }
            if (peek() == '\n') {
                addComment(current, body);
                body.clear();
                current = line_ + 1;
            } else {
                body += peek();
            }
            advance();
        }
        if (!body.empty())
            addComment(current, body);
    }

    /** Preprocessor directive: consume to end of line, honouring
     *  backslash continuations. Comments inside still register. */
    void
    skipDirective()
    {
        while (pos_ < text_.size()) {
            if (peek() == '/' && peek(1) == '/') {
                skipLineComment();
                continue;
            }
            if (peek() == '/' && peek(1) == '*') {
                skipBlockComment();
                continue;
            }
            if (peek() == '\\' && peek(1) == '\n') {
                advance();
                advance();
                continue;
            }
            if (peek() == '\n') {
                advance();
                return;
            }
            advance();
        }
    }

    void
    lexQuoted(char quote, Tok kind)
    {
        const unsigned start = line_;
        std::string body;
        body += peek();
        advance();
        while (pos_ < text_.size()) {
            const char c = peek();
            if (c == '\\') {
                body += c;
                advance();
                if (pos_ < text_.size()) {
                    body += peek();
                    advance();
                }
                continue;
            }
            body += c;
            advance();
            if (c == quote)
                break;
        }
        out_.tokens.push_back({kind, body, start});
    }

    void
    lexRawString()
    {
        const unsigned start = line_;
        std::string body = "R\"";
        advance(); // R
        advance(); // "
        std::string delim;
        while (pos_ < text_.size() && peek() != '(') {
            delim += peek();
            body += peek();
            advance();
        }
        const std::string close = ")" + delim + "\"";
        while (pos_ < text_.size()) {
            if (text_.compare(pos_, close.size(), close) == 0) {
                body += close;
                for (std::size_t i = 0; i < close.size(); ++i)
                    advance();
                break;
            }
            body += peek();
            advance();
        }
        out_.tokens.push_back({Tok::String, body, start});
    }

    void
    step()
    {
        const char c = peek();
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance();
            return;
        }
        if (c == '/' && peek(1) == '/') {
            skipLineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            skipBlockComment();
            return;
        }
        if (c == '#' && atLineStart()) {
            skipDirective();
            return;
        }
        if (c == 'R' && peek(1) == '"') {
            lexRawString();
            return;
        }
        if (c == '"') {
            lexQuoted('"', Tok::String);
            return;
        }
        if (c == '\'') {
            lexQuoted('\'', Tok::CharLit);
            return;
        }
        if (isIdentStart(c)) {
            const unsigned start = line_;
            std::string ident;
            while (pos_ < text_.size() && isIdentChar(peek())) {
                ident += peek();
                advance();
            }
            out_.tokens.push_back({Tok::Ident, ident, start});
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            const unsigned start = line_;
            std::string num;
            // pp-number: digits, idents, dots, and exponent signs.
            while (pos_ < text_.size()) {
                const char d = peek();
                if (isIdentChar(d) || d == '.' ||
                    ((d == '+' || d == '-') && !num.empty() &&
                     (num.back() == 'e' || num.back() == 'E' ||
                      num.back() == 'p' || num.back() == 'P'))) {
                    num += d;
                    advance();
                } else {
                    break;
                }
            }
            out_.tokens.push_back({Tok::Number, num, start});
            return;
        }
        // Punctuation: longest multi-char operator first.
        for (const char *op : multiOps) {
            const std::size_t n = std::char_traits<char>::length(op);
            if (text_.compare(pos_, n, op) == 0) {
                out_.tokens.push_back({Tok::Punct, op, line_});
                for (std::size_t i = 0; i < n; ++i)
                    advance();
                return;
            }
        }
        out_.tokens.push_back({Tok::Punct, std::string(1, c), line_});
        advance();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
    LexedSource out_;
};

} // namespace

const std::string &
LexedSource::commentOn(unsigned line) const
{
    static const std::string empty;
    const auto it = comments.find(line);
    return it == comments.end() ? empty : it->second;
}

LexedSource
lex(const std::string &path, const std::string &text)
{
    return Lexer(path, text).run();
}

} // namespace morph::analysis
