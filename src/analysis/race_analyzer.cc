#include "analysis/race_analyzer.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/source_model.hh"

namespace morph::analysis
{
namespace
{

/** One analyzed file: raw text metadata, token stream, model. */
struct FileUnit
{
    SourceText meta;
    const LexedSource *lexed = nullptr;
    SourceModel model;
};

/** A mutex key held at some brace depth inside a function body. */
struct HeldLock
{
    std::string key;
    int depth = 0;
};

/** Last identifier-ish word of an annotation argument or expression
 *  ("shard . lock" -> "lock", "lock_" -> "lock_"). Mutexes are
 *  identified by this terminal name everywhere: the analyzer matches
 *  lock *names*, not objects, the same name-based approximation the
 *  secret-flow analyzer uses for taint. */
std::string
terminalIdent(const std::string &text)
{
    std::string word;
    std::string last;
    for (const char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0 ||
            c == '_') {
            word += c;
        } else {
            if (!word.empty())
                last = word;
            word.clear();
        }
    }
    if (!word.empty())
        last = word;
    return last;
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

bool
mentionsAtomic(const std::string &typeText)
{
    return typeText.find("atomic") != std::string::npos;
}

bool
mentionsMutex(const std::string &typeText)
{
    return typeText.find("Mutex") != std::string::npos ||
           typeText.find("mutex") != std::string::npos;
}

/** RAII guard types whose construction acquires its mutex argument. */
const std::set<std::string> raiiGuards = {
    "lock_guard", "scoped_lock", "unique_lock",
    "shared_lock", "LockGuard",  "UniqueLock",
};

/** Index just past a `<...>` template-argument group starting at
 *  @p open, or @p open itself if the angles never close. */
std::size_t
skipAngleGroup(const std::vector<Token> &t, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].kind != Tok::Punct)
            continue;
        if (t[i].text == "<")
            ++depth;
        else if (t[i].text == ">")
            --depth;
        else if (t[i].text == ">>")
            depth -= 2;
        else if (t[i].text == ";" || t[i].text == "{")
            return open;
        if (depth <= 0)
            return i + 1;
    }
    return open;
}

class Analyzer
{
  public:
    explicit Analyzer(const std::vector<SourceText> &sources,
                      LexCache *cache = nullptr)
    {
        LexCache &lexed = cache ? *cache : ownLex_;
        units_.reserve(sources.size());
        for (const SourceText &src : sources) {
            FileUnit unit;
            unit.meta = src;
            unit.lexed = &lexed.get(src.path, src.path, src.text);
            unit.model = buildModel(*unit.lexed);
            units_.push_back(std::move(unit));
        }
    }

    AnalysisResult
    run()
    {
        seed();
        for (const FileUnit &unit : units_) {
            for (const FunctionDef &f : unit.model.functions)
                scanFunction(unit, f);
            workerEscapeRule(unit);
            if (unit.meta.staticScope)
                nakedStaticRule(unit);
        }
        lockOrderRule();
        finish();
        return std::move(result_);
    }

  private:
    // ---- seeding -----------------------------------------------------

    void
    mergeFnAnnotations(const std::string &name,
                       const std::vector<Annotation> &anns)
    {
        for (const Annotation &a : anns) {
            for (const std::string &arg : a.args) {
                const std::string key = terminalIdent(arg);
                if (key.empty())
                    continue;
                if (a.macro == "MORPH_REQUIRES")
                    fnRequires_[name].insert(key);
                else if (a.macro == "MORPH_EXCLUDES")
                    fnExcludes_[name].insert(key);
            }
        }
    }

    void
    seed()
    {
        for (const FileUnit &unit : units_) {
            const SourceModel &m = unit.model;
            for (const VarDecl &v : m.varDecls) {
                for (const Annotation &a : v.annotations) {
                    if (a.macro == "MORPH_GUARDED_BY" &&
                        !a.args.empty()) {
                        const std::string key =
                            terminalIdent(a.args.front());
                        if (!key.empty())
                            guardedBy_[v.name].insert(key);
                    } else if (a.macro == "MORPH_SHARD_LOCAL") {
                        shardLocal_.insert(v.name);
                    } else if (a.macro == "MORPH_MAIN_THREAD") {
                        mainThread_.insert(v.name);
                    }
                }
                if (mentionsAtomic(v.typeText))
                    atomicVars_.insert(v.name);
                if (mentionsMutex(v.typeText))
                    mutexVars_.insert(v.name);
            }
            // Contract annotations bind by function name whether they
            // sit on the declaration (headers) or the definition.
            for (const FunctionDef &f : m.functions)
                mergeFnAnnotations(f.name, f.annotations);
            for (const FunctionAnnotations &fa : m.fnAnnotations)
                mergeFnAnnotations(fa.name, fa.annotations);
        }
    }

    // ---- held-lock tracking ------------------------------------------

    static bool
    heldHas(const std::vector<HeldLock> &held, const std::string &key)
    {
        for (const HeldLock &h : held)
            if (h.key == key)
                return true;
        return false;
    }

    static void
    popScope(std::vector<HeldLock> &held, int depth)
    {
        while (!held.empty() && held.back().depth > depth)
            held.pop_back();
    }

    void
    acquire(const FileUnit &unit, unsigned line,
            std::vector<HeldLock> &held, const std::string &key,
            int depth, bool recordEdges)
    {
        if (heldHas(held, key)) {
            report(unit, "race-lock-order", line, key,
                   "mutex '" + key + "' acquired while already held");
            return;
        }
        if (recordEdges)
            for (const HeldLock &h : held)
                edges_.emplace(std::make_pair(h.key, key),
                               EdgeSite{&unit, line});
        held.push_back({key, depth});
    }

    static void
    release(std::vector<HeldLock> &held, const std::string &key)
    {
        for (std::size_t i = held.size(); i-- > 0;) {
            if (held[i].key == key) {
                held.erase(held.begin() +
                           static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    /** Mutex keys named by a guard-constructor argument list
     *  `(open..close)`: the terminal identifier of each top-level
     *  argument (all of them for std::scoped_lock, the first one for
     *  single-mutex guards). */
    static std::vector<std::string>
    guardArgKeys(const std::vector<Token> &t, std::size_t open,
                 std::size_t close, bool allArgs)
    {
        std::vector<std::string> keys;
        std::string last;
        int depth = 0;
        for (std::size_t i = open + 1; i < close && i < t.size(); ++i) {
            if (t[i].kind == Tok::Punct) {
                const std::string &p = t[i].text;
                if (p == "(" || p == "[" || p == "{")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}")
                    --depth;
                else if (p == "," && depth == 0) {
                    if (!last.empty())
                        keys.push_back(last);
                    last.clear();
                    if (!allArgs)
                        break;
                }
                continue;
            }
            if (t[i].kind == Tok::Ident && t[i].text != "std")
                last = t[i].text;
        }
        if (!last.empty())
            keys.push_back(last);
        if (!allArgs && keys.size() > 1)
            keys.resize(1);
        return keys;
    }

    /** If the tokens at @p i spell a RAII guard declaration
     *  (`LockGuard g(mu)`, `std::unique_lock<std::mutex> g(mu)`, ...),
     *  acquire its keys, remember the guard variable, and return the
     *  index of the closing ')'. Returns 0 when @p i is no guard. */
    std::size_t
    guardDeclAt(const FileUnit &unit, std::size_t i, std::size_t end,
                std::vector<HeldLock> &held,
                std::map<std::string, std::vector<std::string>> &guards,
                int depth, bool recordEdges)
    {
        const auto &t = unit.lexed->tokens;
        if (raiiGuards.count(t[i].text) == 0)
            return 0;
        std::size_t j = i + 1;
        if (j < end && t[j].kind == Tok::Punct && t[j].text == "<")
            j = skipAngleGroup(t, j);
        if (j >= end || t[j].kind != Tok::Ident || j + 1 >= end ||
            t[j + 1].text != "(")
            return 0;
        const std::size_t close = matchGroup(t, j + 1);
        if (close >= t.size())
            return 0;
        const bool allArgs = t[i].text == "scoped_lock";
        const std::vector<std::string> keys =
            guardArgKeys(t, j + 1, close, allArgs);
        if (keys.empty())
            return 0;
        for (const std::string &key : keys)
            acquire(unit, t[i].line, held, key, depth, recordEdges);
        guards[t[j].text] = keys;
        return close;
    }

    /** If the tokens at @p i spell `base.lock()` / `base.unlock()` on
     *  a known mutex or guard variable, update @p held and return the
     *  index of the '(' (the caller continues after it). Returns 0
     *  otherwise. */
    std::size_t
    explicitLockAt(const FileUnit &unit, std::size_t i, std::size_t end,
                   std::vector<HeldLock> &held,
                   const std::map<std::string,
                                  std::vector<std::string>> &guards,
                   int depth, bool recordEdges)
    {
        const auto &t = unit.lexed->tokens;
        const std::string &s = t[i].text;
        if (s != "lock" && s != "unlock")
            return 0;
        if (i < 2 || i + 1 >= end || t[i + 1].text != "(")
            return 0;
        if (t[i - 1].text != "." && t[i - 1].text != "->")
            return 0;
        if (t[i - 2].kind != Tok::Ident)
            return 0;
        const std::string &base = t[i - 2].text;
        std::vector<std::string> keys;
        const auto g = guards.find(base);
        if (g != guards.end())
            keys = g->second;
        else if (mutexVars_.count(base) != 0)
            keys.push_back(base);
        if (keys.empty())
            return 0;
        for (const std::string &key : keys) {
            if (s == "lock")
                acquire(unit, t[i].line, held, key, depth, recordEdges);
            else
                release(held, key);
        }
        return i + 1;
    }

    // ---- per-function contract scan ----------------------------------

    void
    scanFunction(const FileUnit &unit, const FunctionDef &f)
    {
        const auto &t = unit.lexed->tokens;
        if (f.bodyEnd <= f.bodyBegin || f.bodyEnd >= t.size())
            return;
        std::vector<HeldLock> held;
        std::map<std::string, std::vector<std::string>> guards;
        // MORPH_REQUIRES locks are held for the whole body (depth 0
        // never pops).
        const auto req = fnRequires_.find(f.name);
        if (req != fnRequires_.end())
            for (const std::string &key : req->second)
                held.push_back({key, 0});
        int depth = 1;
        for (std::size_t i = f.bodyBegin + 1; i < f.bodyEnd; ++i) {
            const Token &tok = t[i];
            if (tok.kind == Tok::Punct) {
                if (tok.text == "{") {
                    ++depth;
                } else if (tok.text == "}") {
                    --depth;
                    popScope(held, depth);
                }
                continue;
            }
            if (tok.kind != Tok::Ident)
                continue;
            if (const std::size_t close = guardDeclAt(
                    unit, i, f.bodyEnd, held, guards, depth, true)) {
                i = close;
                continue;
            }
            if (const std::size_t open = explicitLockAt(
                    unit, i, f.bodyEnd, held, guards, depth, true)) {
                i = open;
                continue;
            }
            const auto guarded = guardedBy_.find(tok.text);
            if (guarded != guardedBy_.end()) {
                bool ok = false;
                for (const std::string &key : guarded->second)
                    if (heldHas(held, key))
                        ok = true;
                if (!ok)
                    report(unit, "race-unguarded", tok.line, tok.text,
                           "'" + tok.text + "' (MORPH_GUARDED_BY " +
                               joinKeys(guarded->second) +
                               ") accessed without the lock held");
            }
            if (i + 1 < f.bodyEnd && t[i + 1].text == "(") {
                const auto r = fnRequires_.find(tok.text);
                if (r != fnRequires_.end())
                    for (const std::string &key : r->second)
                        if (!heldHas(held, key))
                            report(unit, "race-requires", tok.line,
                                   tok.text,
                                   "call to '" + tok.text +
                                       "' (MORPH_REQUIRES " + key +
                                       ") without '" + key +
                                       "' held");
                const auto e = fnExcludes_.find(tok.text);
                if (e != fnExcludes_.end())
                    for (const std::string &key : e->second)
                        if (heldHas(held, key))
                            report(unit, "race-exclude", tok.line,
                                   tok.text,
                                   "call to '" + tok.text +
                                       "' (MORPH_EXCLUDES " + key +
                                       ") while '" + key + "' held");
            }
        }
    }

    static std::string
    joinKeys(const std::set<std::string> &keys)
    {
        std::string out;
        for (const std::string &k : keys) {
            if (!out.empty())
                out += ", ";
            out += k;
        }
        return out;
    }

    // ---- race-lock-order ----------------------------------------------

    void
    lockOrderRule()
    {
        std::map<std::string, std::set<std::string>> adj;
        for (const auto &entry : edges_)
            adj[entry.first.first].insert(entry.first.second);
        for (const auto &entry : edges_) {
            const std::string &from = entry.first.first;
            const std::string &to = entry.first.second;
            if (!reaches(adj, to, from))
                continue;
            report(*entry.second.unit, "race-lock-order",
                   entry.second.line, to,
                   "acquiring '" + to + "' while holding '" + from +
                       "' closes a lock-order cycle ('" + to +
                       "' is also taken before '" + from +
                       "' elsewhere in the batch)");
        }
    }

    static bool
    reaches(const std::map<std::string, std::set<std::string>> &adj,
            const std::string &from, const std::string &to)
    {
        std::set<std::string> seen;
        std::vector<std::string> stack = {from};
        while (!stack.empty()) {
            const std::string cur = stack.back();
            stack.pop_back();
            if (cur == to)
                return true;
            if (!seen.insert(cur).second)
                continue;
            const auto it = adj.find(cur);
            if (it == adj.end())
                continue;
            for (const std::string &next : it->second)
                stack.push_back(next);
        }
        return false;
    }

    // ---- race-worker-escape --------------------------------------------

    void
    workerEscapeRule(const FileUnit &unit)
    {
        const auto &t = unit.lexed->tokens;
        // Lambdas bound to variables in this file: name -> '[' index.
        std::map<std::string, std::size_t> lambdaVars;
        for (std::size_t i = 0; i + 2 < t.size(); ++i)
            if (t[i].kind == Tok::Ident && t[i + 1].text == "=" &&
                t[i + 2].text == "[")
                lambdaVars.emplace(t[i].text, i + 2);
        for (std::size_t i = 2; i + 1 < t.size(); ++i) {
            if (t[i].kind != Tok::Ident || t[i].text != "forEach")
                continue;
            if (t[i - 1].text != "." && t[i - 1].text != "->")
                continue;
            if (t[i - 2].kind != Tok::Ident || t[i + 1].text != "(")
                continue;
            const std::string recv = lowered(t[i - 2].text);
            if (recv.find("pool") == std::string::npos &&
                recv.find("engine") == std::string::npos)
                continue;
            const std::size_t close = matchGroup(t, i + 1);
            if (close >= t.size())
                continue;
            // Walk the top-level arguments for worker bodies.
            int depth = 0;
            for (std::size_t j = i + 2; j < close; ++j) {
                if (t[j].kind == Tok::Punct) {
                    const std::string &p = t[j].text;
                    if (p == "(" || p == "{")
                        ++depth;
                    else if (p == ")" || p == "}")
                        --depth;
                    else if (p == "[" && depth == 0) {
                        scanWorkerLambda(unit, j);
                        j = matchGroup(t, j);
                        depth = 0;
                    }
                    continue;
                }
                if (depth == 0 && t[j].kind == Tok::Ident) {
                    const auto lam = lambdaVars.find(t[j].text);
                    if (lam != lambdaVars.end())
                        scanWorkerLambda(unit, lam->second);
                }
            }
        }
    }

    /** Analyze one worker lambda whose capture list opens at
     *  @p openBracket. Lock state is tracked fresh: locks held where
     *  the lambda is *defined* are not held when a worker *runs* it. */
    void
    scanWorkerLambda(const FileUnit &unit, std::size_t openBracket)
    {
        const auto &t = unit.lexed->tokens;
        const std::size_t captureEnd = matchGroup(t, openBracket);
        if (captureEnd >= t.size())
            return;
        std::set<std::string> locals;
        std::size_t j = captureEnd + 1;
        if (j < t.size() && t[j].text == "(") {
            const std::size_t parmClose = matchGroup(t, j);
            if (parmClose >= t.size())
                return;
            collectParams(t, j, parmClose, locals);
            j = parmClose + 1;
        }
        while (j < t.size() && t[j].text != "{") {
            if (t[j].text == ";")
                return; // declaration-ish, no body
            ++j;
        }
        if (j >= t.size())
            return;
        const std::size_t bodyBegin = j;
        const std::size_t bodyEnd = matchGroup(t, bodyBegin);
        if (bodyEnd >= t.size())
            return;
        std::vector<HeldLock> held;
        std::map<std::string, std::vector<std::string>> guards;
        int depth = 1;
        for (std::size_t i = bodyBegin + 1; i < bodyEnd; ++i) {
            const Token &tok = t[i];
            if (tok.kind == Tok::Punct) {
                if (tok.text == "{") {
                    ++depth;
                } else if (tok.text == "}") {
                    --depth;
                    popScope(held, depth);
                } else if (tok.text == "=" || isCompoundAssign(tok)) {
                    checkMutation(unit, i, tok.text == "=", locals,
                                  held);
                } else if (tok.text == "++" || tok.text == "--") {
                    checkIncrement(unit, i, bodyEnd, locals, held);
                }
                continue;
            }
            if (tok.kind != Tok::Ident)
                continue;
            if (const std::size_t close =
                    guardDeclAt(unit, i, bodyEnd, held, guards, depth,
                                false)) {
                i = close;
                continue;
            }
            if (const std::size_t open =
                    explicitLockAt(unit, i, bodyEnd, held, guards,
                                   depth, false)) {
                i = open;
                continue;
            }
            if (tok.text == "for" && i + 1 < bodyEnd &&
                t[i + 1].text == "(")
                collectForLoopVar(t, i + 1, bodyEnd, locals);
        }
    }

    static bool
    isCompoundAssign(const Token &tok)
    {
        static const std::set<std::string> ops = {
            "+=", "-=", "*=", "/=",  "%=",
            "&=", "|=", "^=", "<<=", ">>=",
        };
        return tok.kind == Tok::Punct && ops.count(tok.text) != 0;
    }

    /** Declared parameter names of a lambda: the last identifier of
     *  each top-level comma segment of `(open..close)`. */
    static void
    collectParams(const std::vector<Token> &t, std::size_t open,
                  std::size_t close, std::set<std::string> &out)
    {
        std::string last;
        int depth = 0;
        for (std::size_t i = open + 1; i < close; ++i) {
            if (t[i].kind == Tok::Punct) {
                const std::string &p = t[i].text;
                if (p == "(" || p == "[" || p == "{" || p == "<")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}" || p == ">")
                    --depth;
                else if (p == "," && depth == 0) {
                    if (!last.empty())
                        out.insert(last);
                    last.clear();
                }
                continue;
            }
            if (t[i].kind == Tok::Ident)
                last = t[i].text;
        }
        if (!last.empty())
            out.insert(last);
    }

    /** The loop variable of `for (...)` with the '(' at @p open:
     *  the identifier before the first top-level '=' (classic form)
     *  or before the ':' (range form). */
    static void
    collectForLoopVar(const std::vector<Token> &t, std::size_t open,
                      std::size_t end, std::set<std::string> &out)
    {
        std::string last;
        int depth = 1;
        for (std::size_t i = open + 1; i < end; ++i) {
            if (t[i].kind == Tok::Punct) {
                const std::string &p = t[i].text;
                if (p == "(")
                    ++depth;
                else if (p == ")") {
                    if (--depth == 0)
                        break;
                } else if (depth == 1 &&
                           (p == "=" || p == ":" || p == ";")) {
                    break;
                }
                continue;
            }
            if (t[i].kind == Tok::Ident)
                last = t[i].text;
        }
        if (!last.empty())
            out.insert(last);
    }

    /** Walk left from the token before an assignment operator at
     *  @p opIdx to the base identifier of the target expression
     *  (`shard.count` -> "shard"), noting subscripts on the way.
     *  Returns "" when the target is not a plain member chain. */
    static std::string
    assignTargetBase(const std::vector<Token> &t, std::size_t opIdx,
                     bool &subscripted, std::size_t &baseIdx)
    {
        subscripted = false;
        std::size_t j = opIdx;
        while (j > 0) {
            --j;
            if (t[j].kind == Tok::Punct && t[j].text == "]") {
                subscripted = true;
                int depth = 1;
                while (j > 0 && depth > 0) {
                    --j;
                    if (t[j].text == "]")
                        ++depth;
                    else if (t[j].text == "[")
                        --depth;
                }
                if (depth != 0)
                    return "";
                continue; // token before the '[' is next
            }
            if (t[j].kind == Tok::Ident) {
                if (j >= 2 && (t[j - 1].text == "." ||
                               t[j - 1].text == "->")) {
                    --j; // keep walking the member chain
                    continue;
                }
                baseIdx = j;
                return t[j].text;
            }
            return "";
        }
        return "";
    }

    /** True when the identifier at @p idx is being *declared* (type
     *  tokens precede it), so `auto sum = 0;` is a local, not a
     *  mutation of outer state. */
    static bool
    looksLikeDecl(const std::vector<Token> &t, std::size_t idx)
    {
        if (idx == 0)
            return false;
        const Token &prev = t[idx - 1];
        if (prev.kind == Tok::Ident)
            return prev.text != "return" && prev.text != "co_return" &&
                   prev.text != "else" && prev.text != "delete";
        return prev.kind == Tok::Punct &&
               (prev.text == "*" || prev.text == "&" ||
                prev.text == "&&" || prev.text == ">");
    }

    void
    checkMutation(const FileUnit &unit, std::size_t opIdx,
                  bool plainAssign, std::set<std::string> &locals,
                  const std::vector<HeldLock> &held)
    {
        const auto &t = unit.lexed->tokens;
        bool subscripted = false;
        std::size_t baseIdx = 0;
        const std::string base =
            assignTargetBase(t, opIdx, subscripted, baseIdx);
        if (base.empty())
            return;
        // A declaration initializer introduces a worker-local name.
        if (plainAssign && baseIdx + 1 == opIdx &&
            looksLikeDecl(t, baseIdx)) {
            locals.insert(base);
            return;
        }
        reportEscape(unit, t[opIdx].line, base, subscripted, locals,
                     held);
    }

    void
    checkIncrement(const FileUnit &unit, std::size_t opIdx,
                   std::size_t end, const std::set<std::string> &locals,
                   const std::vector<HeldLock> &held)
    {
        const auto &t = unit.lexed->tokens;
        bool subscripted = false;
        std::size_t baseIdx = 0;
        std::string base;
        if (opIdx > 0 && (t[opIdx - 1].kind == Tok::Ident ||
                          t[opIdx - 1].text == "]")) {
            // post-increment: walk the chain left of the operator
            base = assignTargetBase(t, opIdx, subscripted, baseIdx);
        } else if (opIdx + 1 < end && t[opIdx + 1].kind == Tok::Ident) {
            // pre-increment: the base is the first chain identifier
            base = t[opIdx + 1].text;
        }
        if (base.empty())
            return;
        reportEscape(unit, t[opIdx].line, base, subscripted, locals,
                     held);
    }

    void
    reportEscape(const FileUnit &unit, unsigned line,
                 const std::string &base, bool subscripted,
                 const std::set<std::string> &locals,
                 const std::vector<HeldLock> &held)
    {
        if (subscripted)
            return; // index-addressed store, the sanctioned pattern
        if (locals.count(base) != 0)
            return; // worker-local state
        if (!held.empty())
            return; // mutation under a lock the worker itself takes
        if (shardLocal_.count(base) != 0 ||
            guardedBy_.count(base) != 0 || atomicVars_.count(base) != 0)
            return;
        report(unit, "race-worker-escape", line, base,
               "worker lambda mutates captured '" + base +
                   "' without a lock, atomic type, or "
                   "MORPH_SHARD_LOCAL annotation");
    }

    // ---- race-naked-static ----------------------------------------------

    void
    nakedStaticRule(const FileUnit &unit)
    {
        const SourceModel &m = unit.model;
        for (const VarDecl &v : m.varDecls) {
            const bool fileScope = v.klass.empty();
            if (!fileScope && !v.isStatic)
                continue; // instance members are per-object state
            if (v.isConst || v.isThreadLocal)
                continue;
            if (mentionsAtomic(v.typeText) || mentionsMutex(v.typeText))
                continue;
            bool annotated = false;
            for (const Annotation &a : v.annotations)
                if (a.macro == "MORPH_GUARDED_BY" ||
                    a.macro == "MORPH_SHARD_LOCAL" ||
                    a.macro == "MORPH_MAIN_THREAD")
                    annotated = true;
            if (annotated)
                continue;
            report(unit, "race-naked-static", v.line, v.name,
                   "mutable " +
                       std::string(fileScope ? "namespace-scope"
                                             : "static member") +
                       " '" + v.name +
                       "' has no MORPH_GUARDED_BY / MORPH_SHARD_LOCAL "
                       "/ MORPH_MAIN_THREAD annotation");
        }
        // Function-local statics.
        const auto &t = unit.lexed->tokens;
        for (const FunctionDef &f : m.functions) {
            for (std::size_t i = f.bodyBegin + 1; i < f.bodyEnd; ++i) {
                if (t[i].kind != Tok::Ident || t[i].text != "static")
                    continue;
                std::size_t stop = i + 1;
                bool safe = false;
                std::string name;
                while (stop < f.bodyEnd && t[stop].text != ";" &&
                       t[stop].text != "=" && t[stop].text != "{") {
                    if (t[stop].kind == Tok::Ident) {
                        const std::string &w = t[stop].text;
                        if (w == "const" || w == "constexpr" ||
                            w == "thread_local" ||
                            w.find("atomic") != std::string::npos ||
                            w == "once_flag")
                            safe = true;
                        else
                            name = w;
                    }
                    ++stop;
                }
                if (!safe && !name.empty())
                    report(unit, "race-naked-static", t[i].line, name,
                           "mutable function-local static '" + name +
                               "' has no concurrency annotation "
                               "(use std::atomic, const, or guard "
                               "it)");
                i = stop;
            }
        }
    }

    // ---- reporting ------------------------------------------------------

    void
    report(const FileUnit &unit, const std::string &rule, unsigned line,
           const std::string &symbol, const std::string &message)
    {
        const std::string key = unit.meta.path + ":" +
                                std::to_string(line) + ":" + rule +
                                ":" + symbol;
        if (!reported_.insert(key).second)
            return;
        Finding f;
        f.rule = rule;
        f.file = unit.meta.path;
        f.symbol = symbol;
        f.message = message;
        f.line = line;
        f.waived = unit.model.waived(rule, line);
        (f.waived ? result_.waived : result_.findings)
            .push_back(std::move(f));
    }

    void
    finish()
    {
        const auto order = [](const Finding &a, const Finding &b) {
            if (a.file != b.file)
                return a.file < b.file;
            if (a.line != b.line)
                return a.line < b.line;
            if (a.rule != b.rule)
                return a.rule < b.rule;
            return a.symbol < b.symbol;
        };
        std::sort(result_.findings.begin(), result_.findings.end(),
                  order);
        std::sort(result_.waived.begin(), result_.waived.end(), order);
    }

    struct EdgeSite
    {
        const FileUnit *unit = nullptr;
        unsigned line = 0;
    };

    LexCache ownLex_; ///< used when the caller passes no cache
    std::vector<FileUnit> units_;
    std::map<std::string, std::set<std::string>> guardedBy_;
    std::set<std::string> shardLocal_;
    std::set<std::string> mainThread_;
    std::set<std::string> atomicVars_;
    std::set<std::string> mutexVars_;
    std::map<std::string, std::set<std::string>> fnRequires_;
    std::map<std::string, std::set<std::string>> fnExcludes_;
    /** held -> acquired, with the first site that created the edge. */
    std::map<std::pair<std::string, std::string>, EdgeSite> edges_;
    std::set<std::string> reported_;
    AnalysisResult result_;
};

} // namespace

AnalysisResult
analyzeRaces(const std::vector<SourceText> &sources, LexCache *cache)
{
    return Analyzer(sources, cache).run();
}

} // namespace morph::analysis
