/**
 * @file
 * Interprocedural secret-flow and determinism analysis for morphflow.
 *
 * The analyzer consumes a batch of source files, builds the per-file
 * structural model (source_model.hh), and runs a name-based taint
 * fixed point across the whole batch: MORPH_SECRET annotations seed
 * taint; assignments, calls, and returns propagate it; functions that
 * `return MORPH_DECLASSIFY(...)` are declassification boundaries whose
 * call sites yield public values.
 *
 * Rule families (IDs are what waiver comments name):
 *  - secret-branch     secret value in a branch/loop/ternary condition
 *  - secret-subscript  secret value used as an array subscript
 *  - secret-log        secret value passed to a logging/printf call
 *  - secret-wipe       annotated local leaves scope without a wipe
 *  - secret-member-wipe annotated member/global with no wipe anywhere
 *  - nondet-call       rand()/time()/std::random_device and friends
 *  - nondet-iter       range-for over an unordered container
 *
 * The determinism family only runs on files whose `determinismScope`
 * flag is set (src/sim, src/secmem, bench/, tools/, and any file named
 * explicitly on the morphflow command line).
 */

#ifndef MORPH_ANALYSIS_FLOW_ANALYZER_HH
#define MORPH_ANALYSIS_FLOW_ANALYZER_HH

#include <vector>

#include "analysis/findings.hh"
#include "analysis/lex_cache.hh"

namespace morph::analysis
{

/** Analyze @p sources as one batch (taint propagates across files).
 *  A non-null @p cache memoizes the lexed token streams (keyed by
 *  path) so repeated analyses of the same files lex once. */
AnalysisResult analyzeSources(const std::vector<SourceText> &sources,
                              LexCache *cache = nullptr);

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_FLOW_ANALYZER_HH
