/**
 * @file
 * Per-file structural model for the morphflow and morphrace
 * analyzers: function definitions with their parameter lists, body
 * token ranges and MORPH_* annotations; class/struct definitions
 * (including nested ones) with their data-member declarations; and
 * the declaration scans the rules need (MORPH_SECRET-annotated names,
 * names declared with unordered-container types, GUARDED_BY /
 * SHARD_LOCAL / MAIN_THREAD concurrency annotations).
 *
 * Function extraction is a brace/paren matcher, not a parser: a
 * definition is an identifier (or `operator` followed by its symbol)
 * and a balanced parenthesis group, optional qualifiers (`const`,
 * `noexcept`, trailing return, MORPH_* annotation groups, constructor
 * member-init list), and a balanced brace body. Code the matcher
 * cannot shape (macro-generated bodies, say) is simply not analyzed
 * for secret flow — the determinism rules run on the raw token stream
 * and are unaffected.
 */

#ifndef MORPH_ANALYSIS_SOURCE_MODEL_HH
#define MORPH_ANALYSIS_SOURCE_MODEL_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.hh"

namespace morph::analysis
{

/** One parameter of a function definition. */
struct Param
{
    std::string name;
    bool secret = false; ///< declared with MORPH_SECRET
};

/** One MORPH_* annotation attached to a declaration. */
struct Annotation
{
    std::string macro;             ///< e.g. "MORPH_GUARDED_BY"
    std::vector<std::string> args; ///< raw text per argument
    unsigned line = 0;
};

/** One function definition found in a source file. */
struct FunctionDef
{
    std::string name;            ///< unqualified name (last component)
    std::string qualName;        ///< as written, e.g. "Aes128::encrypt"
    bool secretReturn = false;   ///< MORPH_SECRET in the return type
    std::vector<Param> params;
    std::vector<Annotation> annotations; ///< between params and body
    std::size_t headerBegin = 0; ///< token index of the name
    std::size_t bodyBegin = 0;   ///< token index of the opening '{'
    std::size_t bodyEnd = 0;     ///< token index of the closing '}'
    unsigned line = 0;           ///< line of the name token
};

/** One class/struct definition (including nested ones). */
struct ClassDef
{
    std::string name;        ///< qualified by outer classes
    std::size_t bodyBegin = 0; ///< token index of the opening '{'
    std::size_t bodyEnd = 0;   ///< token index of the closing '}'
    unsigned line = 0;
};

/** A data-member or namespace-scope variable declaration. Class
 *  members are always modelled; file-scope variables only when they
 *  are static / thread_local or carry a MORPH_* annotation (the cases
 *  the concurrency rules care about). */
struct VarDecl
{
    std::string klass;    ///< enclosing class, "" at file scope
    std::string name;
    std::string typeText; ///< identifier tokens left of the name
    unsigned line = 0;
    bool isStatic = false;
    bool isConst = false;       ///< const/constexpr value
    bool isThreadLocal = false;
    std::vector<Annotation> annotations;
};

/** MORPH_* annotations on a function declaration (no body). */
struct FunctionAnnotations
{
    std::string name; ///< unqualified function name
    unsigned line = 0;
    std::vector<Annotation> annotations;
};

/** A declaration outside any function body carrying MORPH_SECRET. */
struct SecretDecl
{
    std::string name;
    std::string typeText; ///< tokens between MORPH_SECRET and the name
    unsigned line = 0;
};

/** The structural model of one lexed file. */
struct SourceModel
{
    const LexedSource *src = nullptr;
    std::vector<FunctionDef> functions;
    std::vector<ClassDef> classes;       ///< incl. nested, in order
    std::vector<VarDecl> varDecls;       ///< members + flagged globals
    std::vector<FunctionAnnotations> fnAnnotations; ///< decl-site
    std::vector<SecretDecl> secretDecls; ///< members/globals/statics
    /** Names declared (anywhere in the file) with a type mentioning
     *  std::unordered_map / std::unordered_set. */
    std::set<std::string> unorderedNames;
    /** Functions whose declaration (no body) carries MORPH_SECRET on
     *  the return type — how headers mark secret-returning APIs. */
    std::set<std::string> secretReturnDecls;
    /** Rules waived for the whole file via `allow-file(<rule>)`. */
    std::set<std::string> fileWaivers;
    /** MORPH_SECRET on a parameter of a function *declaration* (no
     *  body): function name -> zero-based secret parameter indices.
     *  Definitions carry the annotation in their own Param list. */
    std::map<std::string, std::set<std::size_t>> secretParamDecls;

    /** True if @p line (or the line above) carries a
     *  `morphflow: allow(<rule>)` waiver, or the file carries
     *  `morphflow: allow-file(<rule>)`. */
    bool waived(const std::string &rule, unsigned line) const;
};

/** Build the structural model for @p src. */
SourceModel buildModel(const LexedSource &src);

/** Find the index of the Punct matching the opener at @p open
 *  ('(' / '{' / '['); returns tokens.size() if unbalanced. */
std::size_t matchGroup(const std::vector<Token> &tokens,
                       std::size_t open);

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_SOURCE_MODEL_HH
