/**
 * @file
 * Reader for CMake's compile_commands.json: the authoritative list of
 * translation units morphflow analyzes. Only the `file` and
 * `directory` fields are consumed — the analyzer does not run the
 * compiler, it just needs the resolved source paths.
 */

#ifndef MORPH_ANALYSIS_COMPILE_DB_HH
#define MORPH_ANALYSIS_COMPILE_DB_HH

#include <string>
#include <vector>

namespace morph::analysis
{

/** Parse @p json_text (contents of a compile_commands.json) and
 *  return the sorted, de-duplicated list of absolute source paths.
 *  Relative `file` entries are resolved against their `directory`.
 *  Returns false and sets @p error on malformed input. */
bool readCompileDb(const std::string &json_text,
                   std::vector<std::string> &files, std::string &error);

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_COMPILE_DB_HH
