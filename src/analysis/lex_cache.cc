#include "analysis/lex_cache.hh"

namespace morph::analysis
{

const LexedSource &
LexCache::get(const std::string &key, const std::string &path,
              const std::string &text)
{
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    return cache_.emplace(key, lex(path, text)).first->second;
}

} // namespace morph::analysis
