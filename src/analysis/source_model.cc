#include "analysis/source_model.hh"

#include <algorithm>

namespace morph::analysis
{

namespace
{

const char secretMarker[] = "MORPH_SECRET";

bool
isControlKeyword(const std::string &s)
{
    static const char *const kw[] = {
        "if",     "for",    "while",         "switch", "catch",
        "return", "sizeof", "alignof",       "decltype", "new",
        "delete", "throw",  "static_assert", "assert",
    };
    return std::any_of(std::begin(kw), std::end(kw),
                       [&](const char *k) { return s == k; });
}

/** Last identifier of a declarator token run: the declared name.
 *  Handles trailing `&` / `*` (unnamed params) and `[N]` arrays. */
std::string
declaratorName(const std::vector<Token> &tokens, std::size_t begin,
               std::size_t end)
{
    std::size_t last = end;
    while (last > begin) {
        --last;
        const Token &t = tokens[last];
        if (t.kind == Tok::Ident)
            return t.text;
        if (t.text == "]") {
            // Skip back over the bracket group to the element name.
            unsigned depth = 1;
            while (last > begin && depth > 0) {
                --last;
                if (tokens[last].text == "]")
                    ++depth;
                else if (tokens[last].text == "[")
                    --depth;
            }
            continue;
        }
        if (t.text == "&" || t.text == "*" || t.text == "." ||
            t.kind == Tok::Number)
            continue;
        break;
    }
    return {};
}

class ModelBuilder
{
  public:
    explicit ModelBuilder(const LexedSource &src) : src_(src)
    {
        model_.src = &src;
    }

    SourceModel
    run()
    {
        findFunctions();
        scanDeclarations();
        scanUnorderedNames();
        scanFileWaivers();
        return std::move(model_);
    }

  private:
    const std::vector<Token> &
    toks() const
    {
        return src_.tokens;
    }

    /** Token ranges [header, bodyEnd] already claimed by functions. */
    bool
    insideFunction(std::size_t idx) const
    {
        return std::any_of(
            model_.functions.begin(), model_.functions.end(),
            [&](const FunctionDef &f) {
                return idx >= f.headerBegin && idx <= f.bodyEnd;
            });
    }

    void
    findFunctions()
    {
        const auto &t = toks();
        std::size_t i = 0;
        while (i + 1 < t.size()) {
            if (t[i].kind == Tok::Ident && t[i + 1].text == "(" &&
                !isControlKeyword(t[i].text) &&
                !(i > 0 &&
                  (t[i - 1].text == "." || t[i - 1].text == "->"))) {
                FunctionDef def;
                if (matchFunction(i, def)) {
                    const std::size_t next = def.bodyEnd + 1;
                    model_.functions.push_back(std::move(def));
                    i = next;
                    continue;
                }
            }
            ++i;
        }
    }

    /** Try to shape a function definition with its name at @p i. */
    bool
    matchFunction(std::size_t i, FunctionDef &def)
    {
        const auto &t = toks();
        const std::size_t close = matchGroup(t, i + 1);
        if (close >= t.size())
            return false;

        std::size_t j = close + 1;
        // Qualifiers, trailing return, constructor init list — then '{'.
        while (j < t.size()) {
            const std::string &s = t[j].text;
            if (s == "const" || s == "override" || s == "final" ||
                s == "mutable" || s == "&" || s == "&&") {
                ++j;
                continue;
            }
            if (s == "noexcept" || s == "throw") {
                ++j;
                if (j < t.size() && t[j].text == "(") {
                    j = matchGroup(t, j);
                    if (j >= t.size())
                        return false;
                    ++j;
                }
                continue;
            }
            if (s == "->") {
                // Trailing return type: scan to the body brace.
                ++j;
                while (j < t.size() && t[j].text != "{" &&
                       t[j].text != ";")
                    ++j;
                continue;
            }
            if (s == ":") {
                if (!skipInitList(j))
                    return false;
                continue;
            }
            break;
        }
        if (j >= t.size() || t[j].text != "{")
            return false;

        const std::size_t body_end = matchGroup(t, j);
        if (body_end >= t.size())
            return false;

        def.name = t[i].text;
        def.qualName = qualifiedName(i);
        def.headerBegin = headerStart(i);
        def.bodyBegin = j;
        def.bodyEnd = body_end;
        def.line = t[i].line;
        def.secretReturn = returnIsSecret(def.headerBegin, i);
        parseParams(i + 1, close, def);
        return true;
    }

    /** Constructor member-init list: `: a_(x), b_{y} ... {`. Leaves
     *  @p j on the body '{'. */
    bool
    skipInitList(std::size_t &j)
    {
        const auto &t = toks();
        ++j; // ':'
        while (j < t.size()) {
            // Initializer name (possibly qualified / templated).
            while (j < t.size() && t[j].text != "(" &&
                   t[j].text != "{" && t[j].text != ";")
                ++j;
            if (j >= t.size() || t[j].text == ";")
                return false;
            // A '{' directly here could be the body (empty init name
            // cannot happen, so '{' after a name is a brace init —
            // distinguish by what follows the matched group).
            const std::size_t group_close = matchGroup(t, j);
            if (group_close >= t.size())
                return false;
            const std::size_t after = group_close + 1;
            if (after < t.size() && t[after].text == ",") {
                j = after + 1;
                continue;
            }
            // Init list exhausted: the body brace must follow.
            j = after;
            return j < t.size() && t[j].text == "{";
        }
        return false;
    }

    std::string
    qualifiedName(std::size_t i) const
    {
        const auto &t = toks();
        std::string name = t[i].text;
        while (i >= 2 && t[i - 1].text == "::" &&
               t[i - 2].kind == Tok::Ident) {
            name = t[i - 2].text + "::" + name;
            i -= 2;
        }
        return name;
    }

    /** First token of the declaration containing the name at @p i. */
    std::size_t
    headerStart(std::size_t i) const
    {
        const auto &t = toks();
        std::size_t j = i;
        while (j >= 2 && t[j - 1].text == "::" &&
               t[j - 2].kind == Tok::Ident)
            j -= 2;
        while (j > 0) {
            const std::string &s = t[j - 1].text;
            if (s == ";" || s == "}" || s == "{" || s == ":" ||
                s == ")" || s == ",")
                break;
            --j;
        }
        return j;
    }

    bool
    returnIsSecret(std::size_t begin, std::size_t name_idx) const
    {
        const auto &t = toks();
        for (std::size_t j = begin; j < name_idx; ++j)
            if (t[j].text == secretMarker)
                return true;
        return false;
    }

    void
    parseParams(std::size_t open, std::size_t close, FunctionDef &def)
    {
        const auto &t = toks();
        std::size_t begin = open + 1;
        int paren = 0, angle = 0, brace = 0;
        for (std::size_t j = begin; j <= close; ++j) {
            const std::string &s = t[j].text;
            const bool at_end = j == close;
            if (!at_end) {
                if (s == "(" || s == "[")
                    ++paren;
                else if (s == ")" || s == "]")
                    --paren;
                else if (s == "{")
                    ++brace;
                else if (s == "}")
                    --brace;
                else if (s == "<")
                    ++angle;
                else if (s == ">" && angle > 0)
                    --angle;
                else if (s == ">>" && angle > 0)
                    angle = angle >= 2 ? angle - 2 : 0;
            }
            if (at_end ||
                (s == "," && paren == 0 && angle == 0 && brace == 0)) {
                if (j > begin)
                    addParam(begin, j, def);
                begin = j + 1;
            }
        }
    }

    void
    addParam(std::size_t begin, std::size_t end, FunctionDef &def)
    {
        const auto &t = toks();
        Param param;
        std::size_t name_end = end;
        for (std::size_t j = begin; j < end; ++j) {
            if (t[j].text == secretMarker)
                param.secret = true;
            if (t[j].text == "=") {
                name_end = j;
                break;
            }
            if (t[j].text == "...")
                return; // variadic marker, not a parameter
        }
        if (end - begin == 1 && t[begin].text == "void")
            return;
        param.name = declaratorName(t, begin, name_end);
        // An unnamed parameter whose "name" is really the type: the
        // final token being '&' or '*' means no declarator followed.
        if (name_end > begin) {
            const std::string &tail = t[name_end - 1].text;
            if (tail == "&" || tail == "*" || tail == "&&")
                param.name.clear();
        }
        def.params.push_back(std::move(param));
    }

    void
    scanDeclarations()
    {
        const auto &t = toks();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].text != secretMarker || insideFunction(i))
                continue;
            // Scan the declarator; a '(' before any terminator means
            // this annotates a function declaration's return type.
            // Template arguments (commas, parens inside <>) are part
            // of the type, not terminators.
            std::size_t j = i + 1;
            bool is_function = false;
            std::string type_text;
            int angle = 0;
            while (j < t.size()) {
                const std::string &s = t[j].text;
                if (t[j].kind == Tok::Ident) {
                    if (!type_text.empty())
                        type_text += ' ';
                    type_text += s;
                }
                if (s == "<") {
                    ++angle;
                } else if (s == ">") {
                    if (angle > 0)
                        --angle;
                } else if (s == ">>") {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (angle == 0) {
                    if (s == ";" || s == "=" || s == "{" || s == "," ||
                        s == ")")
                        break;
                    if (s == "(") {
                        is_function = true;
                        break;
                    }
                }
                ++j;
            }
            if (j >= t.size())
                continue;
            if (t[j].text == "," || t[j].text == ")") {
                recordDeclParam(i, j);
                continue;
            }
            if (is_function) {
                const std::string fn = declaratorName(t, i + 1, j);
                if (!fn.empty())
                    model_.secretReturnDecls.insert(fn);
                continue;
            }
            SecretDecl decl;
            decl.name = declaratorName(t, i + 1, j);
            decl.typeText = type_text;
            decl.line = t[i].line;
            if (!decl.name.empty())
                model_.secretDecls.push_back(std::move(decl));
        }
    }

    /** MORPH_SECRET at @p marker annotates a parameter of a function
     *  declaration (the declarator scan hit ',' or ')'): find the
     *  enclosing call parens, the function name, and the zero-based
     *  parameter index of the annotation. */
    void
    recordDeclParam(std::size_t marker, std::size_t name_end)
    {
        const auto &t = toks();
        // Walk back to the unmatched '(' that opens the parameter list.
        std::size_t open = marker;
        int depth = 0;
        while (open > 0) {
            --open;
            const std::string &s = t[open].text;
            if (s == ")" || s == "]" || s == "}") {
                ++depth;
            } else if (s == "(" || s == "[" || s == "{") {
                if (depth == 0) {
                    if (s != "(")
                        return;
                    break;
                }
                --depth;
            } else if (s == ";") {
                return;
            }
        }
        if (open == 0 || t[open - 1].kind != Tok::Ident)
            return;
        const std::string fname = t[open - 1].text;
        // Parameter index: commas at depth 0 before the marker.
        std::size_t index = 0;
        depth = 0;
        for (std::size_t k = open + 1; k < marker; ++k) {
            const std::string &s = t[k].text;
            if (s == "(" || s == "[" || s == "{" || s == "<")
                ++depth;
            else if (s == ")" || s == "]" || s == "}" ||
                     (s == ">" && depth > 0))
                --depth;
            else if (s == "," && depth == 0)
                ++index;
        }
        (void)name_end;
        model_.secretParamDecls[fname].insert(index);
    }

    void
    scanUnorderedNames()
    {
        const auto &t = toks();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].text != "unordered_map" &&
                t[i].text != "unordered_set")
                continue;
            // Back up to the start of the enclosing declaration...
            std::size_t begin = i;
            while (begin > 0) {
                const std::string &s = t[begin - 1].text;
                if (s == ";" || s == "{" || s == "}" || s == "(" ||
                    s == "," || s == ":")
                    break;
                --begin;
            }
            // ...then forward across the template arguments to the
            // declarator, tracking angle depth (">>" closes two).
            int angle = 0;
            std::size_t j = begin;
            for (; j < t.size(); ++j) {
                const std::string &s = t[j].text;
                if (s == "<") {
                    ++angle;
                } else if (s == ">") {
                    if (angle > 0)
                        --angle;
                } else if (s == ">>") {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (angle == 0 &&
                           (s == ";" || s == "=" || s == "{" ||
                            s == "," || s == ")" || s == "(")) {
                    break;
                }
            }
            const std::string name = declaratorName(t, begin, j);
            if (!name.empty())
                model_.unorderedNames.insert(name);
        }
    }

    void
    scanFileWaivers()
    {
        for (const auto &entry : src_.comments) {
            const std::string &text = entry.second;
            std::size_t pos = 0;
            while ((pos = text.find("allow-file(", pos)) !=
                   std::string::npos) {
                const std::size_t open = pos + 11;
                const std::size_t close = text.find(')', open);
                if (close == std::string::npos)
                    break;
                model_.fileWaivers.insert(
                    text.substr(open, close - open));
                pos = close;
            }
        }
    }

    const LexedSource &src_;
    SourceModel model_;
};

} // namespace

bool
SourceModel::waived(const std::string &rule, unsigned line) const
{
    if (fileWaivers.count(rule) != 0)
        return true;
    const std::string needle = "allow(" + rule + ")";
    if (src->commentOn(line).find(needle) != std::string::npos)
        return true;
    return line > 1 &&
           src->commentOn(line - 1).find(needle) != std::string::npos;
}

SourceModel
buildModel(const LexedSource &src)
{
    return ModelBuilder(src).run();
}

std::size_t
matchGroup(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &o = tokens[open].text;
    const char *closer = o == "(" ? ")" : o == "{" ? "}" : "]";
    unsigned depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == o)
            ++depth;
        else if (tokens[i].text == closer && --depth == 0)
            return i;
    }
    return tokens.size();
}

} // namespace morph::analysis
