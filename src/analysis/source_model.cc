#include "analysis/source_model.hh"

#include <algorithm>

namespace morph::analysis
{

namespace
{

const char secretMarker[] = "MORPH_SECRET";

/** All MORPH_* annotation macros share this prefix; anything carrying
 *  it is skipped as a qualifier and recorded as an annotation. */
bool
isAnnotationName(const std::string &s)
{
    return s.rfind("MORPH_", 0) == 0;
}

bool
isControlKeyword(const std::string &s)
{
    static const char *const kw[] = {
        "if",     "for",    "while",         "switch", "catch",
        "return", "sizeof", "alignof",       "decltype", "new",
        "delete", "throw",  "static_assert", "assert",
    };
    return std::any_of(std::begin(kw), std::end(kw),
                       [&](const char *k) { return s == k; });
}

/** Last identifier of a declarator token run: the declared name.
 *  Handles trailing `&` / `*` (unnamed params) and `[N]` arrays. */
std::string
declaratorName(const std::vector<Token> &tokens, std::size_t begin,
               std::size_t end)
{
    std::size_t last = end;
    while (last > begin) {
        --last;
        const Token &t = tokens[last];
        if (t.kind == Tok::Ident)
            return t.text;
        if (t.text == "]") {
            // Skip back over the bracket group to the element name.
            unsigned depth = 1;
            while (last > begin && depth > 0) {
                --last;
                if (tokens[last].text == "]")
                    ++depth;
                else if (tokens[last].text == "[")
                    --depth;
            }
            continue;
        }
        if (t.text == "&" || t.text == "*" || t.text == "." ||
            t.kind == Tok::Number)
            continue;
        break;
    }
    return {};
}

class ModelBuilder
{
  public:
    explicit ModelBuilder(const LexedSource &src) : src_(src)
    {
        model_.src = &src;
    }

    SourceModel
    run()
    {
        findFunctions();
        findClasses();
        scanMembers();
        scanFileScopeDecls();
        scanDeclarations();
        scanUnorderedNames();
        scanFileWaivers();
        return std::move(model_);
    }

  private:
    const std::vector<Token> &
    toks() const
    {
        return src_.tokens;
    }

    /** Token ranges [header, bodyEnd] already claimed by functions. */
    bool
    insideFunction(std::size_t idx) const
    {
        return std::any_of(
            model_.functions.begin(), model_.functions.end(),
            [&](const FunctionDef &f) {
                return idx >= f.headerBegin && idx <= f.bodyEnd;
            });
    }

    void
    findFunctions()
    {
        const auto &t = toks();
        std::size_t i = 0;
        while (i + 1 < t.size()) {
            // Operator overloads first: the generic Ident-then-paren
            // shape cannot see past the operator's symbol tokens.
            if (t[i].kind == Tok::Ident && t[i].text == "operator") {
                FunctionDef def;
                if (matchOperator(i, def)) {
                    const std::size_t next = def.bodyEnd + 1;
                    model_.functions.push_back(std::move(def));
                    i = next;
                    continue;
                }
            }
            if (t[i].kind == Tok::Ident && t[i + 1].text == "(" &&
                !isControlKeyword(t[i].text) &&
                !isAnnotationName(t[i].text) &&
                !(i > 0 &&
                  (t[i - 1].text == "." || t[i - 1].text == "->"))) {
                FunctionDef def;
                if (matchFunction(i, def)) {
                    const std::size_t next = def.bodyEnd + 1;
                    model_.functions.push_back(std::move(def));
                    i = next;
                    continue;
                }
            }
            ++i;
        }
    }

    /** Try to shape a function definition with its name at @p i. */
    bool
    matchFunction(std::size_t i, FunctionDef &def)
    {
        if (!matchFunctionShape(i, i + 1, def))
            return false;
        def.name = toks()[i].text;
        def.qualName = qualifiedName(i);
        return true;
    }

    /** Try to shape an operator-overload definition: `operator` at
     *  @p i, its symbol / conversion type, then the parameter list.
     *  Handles `operator==`, `operator()`, `operator[]`,
     *  `operator bool`, `operator std::size_t`, ... */
    bool
    matchOperator(std::size_t i, FunctionDef &def)
    {
        const auto &t = toks();
        if (i + 2 >= t.size())
            return false;
        std::string op;
        std::size_t open;
        if (t[i + 1].text == "(" && t[i + 2].text == ")") {
            op = "()";
            open = i + 3;
        } else if (t[i + 1].text == "[" && t[i + 2].text == "]") {
            op = "[]";
            open = i + 3;
        } else if (t[i + 1].kind == Tok::Punct) {
            // Symbol operators are one token: the lexer keeps ==, <=,
            // <<, ->, ... whole.
            op = t[i + 1].text;
            open = i + 2;
        } else {
            // Conversion (or new/delete) operator: the target type
            // runs up to the parameter list.
            std::size_t j = i + 1;
            while (j < t.size() && t[j].text != "(" &&
                   (t[j].kind == Tok::Ident || t[j].text == "::" ||
                    t[j].text == "*" || t[j].text == "&")) {
                if (!op.empty())
                    op += ' ';
                op += t[j].text;
                ++j;
            }
            if (op.empty())
                return false;
            op = " " + op;
            open = j;
        }
        if (open >= t.size() || t[open].text != "(")
            return false;
        if (!matchFunctionShape(i, open, def))
            return false;
        def.name = "operator" + op;
        def.qualName = qualifiedPrefix(i) + def.name;
        return true;
    }

    /** Shape the common tail of a function definition: parameter
     *  group at @p open, qualifiers / annotations / init list, body.
     *  @p name_idx is the token the definition is anchored on (the
     *  name, or `operator`). Fills everything but name/qualName. */
    bool
    matchFunctionShape(std::size_t name_idx, std::size_t open,
                       FunctionDef &def)
    {
        const auto &t = toks();
        const std::size_t close = matchGroup(t, open);
        if (close >= t.size())
            return false;

        std::size_t j = close + 1;
        // Qualifiers, annotations, trailing return, constructor init
        // list — then '{'.
        while (j < t.size()) {
            const std::string &s = t[j].text;
            if (s == "const" || s == "override" || s == "final" ||
                s == "mutable" || s == "&" || s == "&&") {
                ++j;
                continue;
            }
            if (t[j].kind == Tok::Ident && isAnnotationName(s)) {
                j = collectAnnotation(j, def.annotations) + 1;
                continue;
            }
            if (s == "noexcept" || s == "throw") {
                ++j;
                if (j < t.size() && t[j].text == "(") {
                    j = matchGroup(t, j);
                    if (j >= t.size())
                        return false;
                    ++j;
                }
                continue;
            }
            if (s == "->") {
                // Trailing return type: scan to the body brace.
                ++j;
                while (j < t.size() && t[j].text != "{" &&
                       t[j].text != ";")
                    ++j;
                continue;
            }
            if (s == ":") {
                if (!skipInitList(j))
                    return false;
                continue;
            }
            break;
        }
        if (j >= t.size() || t[j].text != "{")
            return false;

        const std::size_t body_end = matchGroup(t, j);
        if (body_end >= t.size())
            return false;

        def.headerBegin = headerStart(name_idx);
        def.bodyBegin = j;
        def.bodyEnd = body_end;
        def.line = t[name_idx].line;
        def.secretReturn = returnIsSecret(def.headerBegin, name_idx);
        parseParams(open, close, def);
        return true;
    }

    /** Constructor member-init list: `: a_(x), b_{y} ... {`. Leaves
     *  @p j on the body '{'. */
    bool
    skipInitList(std::size_t &j)
    {
        const auto &t = toks();
        ++j; // ':'
        while (j < t.size()) {
            // Initializer name (possibly qualified / templated).
            while (j < t.size() && t[j].text != "(" &&
                   t[j].text != "{" && t[j].text != ";")
                ++j;
            if (j >= t.size() || t[j].text == ";")
                return false;
            // A '{' directly here could be the body (empty init name
            // cannot happen, so '{' after a name is a brace init —
            // distinguish by what follows the matched group).
            const std::size_t group_close = matchGroup(t, j);
            if (group_close >= t.size())
                return false;
            const std::size_t after = group_close + 1;
            if (after < t.size() && t[after].text == ",") {
                j = after + 1;
                continue;
            }
            // Init list exhausted: the body brace must follow.
            j = after;
            return j < t.size() && t[j].text == "{";
        }
        return false;
    }

    std::string
    qualifiedName(std::size_t i) const
    {
        return qualifiedPrefix(i) + toks()[i].text;
    }

    /** The `Outer::` qualification chain written before token @p i
     *  ("" when unqualified). */
    std::string
    qualifiedPrefix(std::size_t i) const
    {
        const auto &t = toks();
        std::string prefix;
        while (i >= 2 && t[i - 1].text == "::" &&
               t[i - 2].kind == Tok::Ident) {
            prefix = t[i - 2].text + "::" + prefix;
            i -= 2;
        }
        return prefix;
    }

    /** Record the MORPH_* annotation at @p i into @p out; returns the
     *  last token index consumed (macro name, or its closing ')'). */
    std::size_t
    collectAnnotation(std::size_t i, std::vector<Annotation> &out)
    {
        const auto &t = toks();
        Annotation ann;
        ann.macro = t[i].text;
        ann.line = t[i].line;
        std::size_t last = i;
        if (i + 1 < t.size() && t[i + 1].text == "(") {
            const std::size_t close = matchGroup(t, i + 1);
            if (close < t.size()) {
                splitArgs(i + 2, close, ann.args);
                last = close;
            }
        }
        out.push_back(std::move(ann));
        return last;
    }

    /** Split [begin, end) on top-level commas; each argument's token
     *  texts are joined with single spaces. */
    void
    splitArgs(std::size_t begin, std::size_t end,
              std::vector<std::string> &args) const
    {
        const auto &t = toks();
        std::string cur;
        int depth = 0;
        for (std::size_t j = begin; j < end; ++j) {
            const std::string &s = t[j].text;
            if (s == "(" || s == "[" || s == "{" || s == "<")
                ++depth;
            else if (s == ")" || s == "]" || s == "}" ||
                     (s == ">" && depth > 0))
                --depth;
            if (s == "," && depth == 0) {
                if (!cur.empty())
                    args.push_back(cur);
                cur.clear();
                continue;
            }
            if (!cur.empty())
                cur += ' ';
            cur += s;
        }
        if (!cur.empty())
            args.push_back(cur);
    }

    /** Index of the '>' closing the '<' at @p open (angle depth,
     *  ">>" closes two); tokens.size() if unbalanced. */
    std::size_t
    skipAngles(std::size_t open) const
    {
        const auto &t = toks();
        int depth = 0;
        for (std::size_t j = open; j < t.size(); ++j) {
            const std::string &s = t[j].text;
            if (s == "<") {
                ++depth;
            } else if (s == ">") {
                if (--depth == 0)
                    return j;
            } else if (s == ">>") {
                depth -= 2;
                if (depth <= 0)
                    return j;
            } else if (s == ";" || s == "{") {
                break; // not a template argument list after all
            }
        }
        return t.size();
    }

    void
    findClasses()
    {
        const auto &t = toks();
        // Stack of enclosing class bodies, for nested qualification.
        std::vector<std::pair<std::size_t, std::string>> stack;
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            while (!stack.empty() && i > stack.back().first)
                stack.pop_back();
            const std::string &s = t[i].text;
            if (s == "template" && t[i + 1].text == "<") {
                // `template <class T>`: T is a parameter, not a class.
                const std::size_t close = skipAngles(i + 1);
                if (close < t.size())
                    i = close;
                continue;
            }
            if (s != "class" && s != "struct")
                continue;
            if (i > 0 && t[i - 1].text == "enum")
                continue;
            std::size_t j = i + 1;
            // Attribute macros between the keyword and the name
            // (class MORPH_CAPABILITY("mutex") Mutex).
            std::vector<Annotation> anns;
            while (j < t.size() && t[j].kind == Tok::Ident &&
                   isAnnotationName(t[j].text))
                j = collectAnnotation(j, anns) + 1;
            if (j >= t.size() || t[j].kind != Tok::Ident)
                continue; // anonymous — not modelled
            const std::size_t name_idx = j;
            ++j;
            // Base clause / nothing, then the body; ';' = fwd decl.
            while (j < t.size() && t[j].text != "{" &&
                   t[j].text != ";" && t[j].text != "(" &&
                   t[j].text != "=")
                ++j;
            if (j >= t.size() || t[j].text != "{")
                continue;
            const std::size_t body_end = matchGroup(t, j);
            if (body_end >= t.size())
                continue;
            ClassDef def;
            def.name = stack.empty()
                           ? t[name_idx].text
                           : stack.back().second +
                                 "::" + t[name_idx].text;
            def.bodyBegin = j;
            def.bodyEnd = body_end;
            def.line = t[name_idx].line;
            stack.emplace_back(body_end, def.name);
            model_.classes.push_back(std::move(def));
            i = j; // continue inside the body: nested classes
        }
    }

    /** The function claiming token @p idx, if any. */
    const FunctionDef *
    functionAt(std::size_t idx) const
    {
        for (const FunctionDef &f : model_.functions)
            if (idx >= f.headerBegin && idx <= f.bodyEnd)
                return &f;
        return nullptr;
    }

    /** The class whose body opens exactly at @p idx, if any. */
    const ClassDef *
    classBodyAt(std::size_t idx) const
    {
        for (const ClassDef &c : model_.classes)
            if (c.bodyBegin == idx)
                return &c;
        return nullptr;
    }

    void
    scanMembers()
    {
        // Iterate by index: classifyStatement appends to the model.
        const std::size_t count = model_.classes.size();
        for (std::size_t c = 0; c < count; ++c) {
            const ClassDef cls = model_.classes[c];
            scanStatements(cls.bodyBegin + 1, cls.bodyEnd, cls.name);
        }
    }

    void
    scanFileScopeDecls()
    {
        scanStatements(0, toks().size(), std::string());
    }

    /** Walk declaration statements in [begin, end): the member level
     *  of a class body (@p klass non-empty) or file scope. Function
     *  definitions and nested class bodies are skipped whole;
     *  namespace blocks are entered. */
    void
    scanStatements(std::size_t begin, std::size_t end,
                   const std::string &klass)
    {
        const auto &t = toks();
        const bool file_scope = klass.empty();
        std::size_t i = begin;
        std::size_t stmt = begin;
        while (i < end) {
            if (const FunctionDef *f = functionAt(i)) {
                i = f->bodyEnd + 1;
                stmt = i;
                continue;
            }
            const std::string &s = t[i].text;
            if (s == "{") {
                if (const ClassDef *cd = classBodyAt(i)) {
                    // Nested class: members get their own pass; the
                    // statement ends at the trailing ';' and is
                    // dropped by the starts-with-class filter.
                    i = cd->bodyEnd + 1;
                    continue;
                }
                if (file_scope &&
                    stmtStartsWith(stmt, i, "namespace")) {
                    ++i;
                    stmt = i;
                    continue;
                }
                i = matchGroup(t, i) + 1; // brace init / enum body
                continue;
            }
            if (s == "}") {
                ++i;
                stmt = i;
                continue;
            }
            if (s == "(" || s == "[") {
                i = matchGroup(t, i) + 1;
                continue;
            }
            if (s == ";") {
                classifyStatement(stmt, i, klass);
                ++i;
                stmt = i;
                continue;
            }
            if (s == ":" && !file_scope && i > begin &&
                (t[i - 1].text == "public" ||
                 t[i - 1].text == "private" ||
                 t[i - 1].text == "protected")) {
                ++i;
                stmt = i; // access specifier resets the statement
                continue;
            }
            ++i;
        }
    }

    bool
    stmtStartsWith(std::size_t stmt, std::size_t at,
                   const char *kw) const
    {
        return stmt < at && toks()[stmt].text == kw;
    }

    /** Classify one declaration statement: function declaration
     *  (record its annotations) or variable declaration (record a
     *  VarDecl). Statements the shape cannot be trusted on are
     *  dropped — the concurrency rules only consume declarations
     *  whose annotations or storage class single them out. */
    void
    classifyStatement(std::size_t begin, std::size_t end,
                      const std::string &klass)
    {
        const auto &t = toks();
        while (begin < end &&
               (t[begin].text == "public" ||
                t[begin].text == "private" ||
                t[begin].text == "protected" ||
                t[begin].text == ":"))
            ++begin;
        if (begin >= end)
            return;
        static const char *const dropped[] = {
            "using",   "typedef", "friend",  "template",
            "static_assert",      "namespace", "class",  "struct",
            "enum",    "union",   "extern",  "return",  "if",
            "for",     "while",   "switch",  "do",      "case",
            "break",   "continue", "goto",   "throw",   "delete",
            "default", "operator",
        };
        const std::string &first = t[begin].text;
        if (std::any_of(std::begin(dropped), std::end(dropped),
                        [&](const char *k) { return first == k; }))
            return;

        std::vector<Annotation> anns;
        const std::size_t none = end;
        std::size_t first_ann = none, assign = none, paren = none,
                    brace = none;
        int angle = 0;
        for (std::size_t j = begin; j < end; ++j) {
            const std::string &s = t[j].text;
            if (t[j].kind == Tok::Ident && isAnnotationName(s)) {
                if (first_ann == none)
                    first_ann = j;
                j = collectAnnotation(j, anns);
                continue;
            }
            if (s == "<") {
                ++angle;
            } else if (s == ">") {
                if (angle > 0)
                    --angle;
            } else if (s == ">>") {
                angle = angle >= 2 ? angle - 2 : 0;
            } else if (angle == 0) {
                if (s == "(") {
                    if (paren == none && assign == none)
                        paren = j;
                    j = matchGroup(t, j);
                    continue;
                }
                if (s == "[" || s == "{") {
                    if (s == "{" && brace == none)
                        brace = j;
                    j = matchGroup(t, j);
                    continue;
                }
                if (s == "=" && assign == none) {
                    // `operator=` is part of a function name.
                    if (j > begin && t[j - 1].text == "operator")
                        continue;
                    assign = j;
                }
            }
        }

        if (paren != none && paren < assign) {
            // Function declaration: only its annotations matter.
            if (anns.empty())
                return;
            FunctionAnnotations fa;
            fa.name = declaratorName(t, begin, paren);
            fa.line = t[begin].line;
            fa.annotations = std::move(anns);
            if (!fa.name.empty())
                model_.fnAnnotations.push_back(std::move(fa));
            return;
        }

        VarDecl v;
        v.klass = klass;
        const std::size_t name_end =
            std::min(std::min(first_ann, assign), brace);
        v.name = declaratorName(t, begin, std::min(name_end, end));
        if (v.name.empty())
            return;
        std::size_t last_const = 0, last_star = 0;
        bool saw_const = false, saw_star = false;
        for (std::size_t j = begin; j < std::min(name_end, end);
             ++j) {
            const std::string &s = t[j].text;
            if (s == "static") {
                v.isStatic = true;
            } else if (s == "thread_local") {
                v.isThreadLocal = true;
            } else if (s == "constexpr" || s == "consteval") {
                v.isConst = true;
            } else if (s == "const") {
                saw_const = true;
                last_const = j;
            } else if (s == "*") {
                saw_star = true;
                last_star = j;
            }
            if (t[j].kind == Tok::Ident && s != v.name &&
                !isAnnotationName(s)) {
                if (!v.typeText.empty())
                    v.typeText += ' ';
                v.typeText += s;
            }
        }
        // `const char *p` is a mutable pointer; `char *const p` and
        // plain `const T v` are immutable: the const that counts is
        // the one right of the last '*'.
        if (saw_const && (!saw_star || last_const > last_star))
            v.isConst = true;
        v.line = t[begin].line;
        v.annotations = std::move(anns);
        const bool file_scope = klass.empty();
        // File scope only models the declarations the rules consume:
        // static / thread_local storage, annotated names, and
        // initialized definitions (anonymous-namespace globals).
        if (file_scope && !v.isStatic && !v.isThreadLocal &&
            v.annotations.empty() && assign == none)
            return;
        model_.varDecls.push_back(std::move(v));
    }

    /** First token of the declaration containing the name at @p i. */
    std::size_t
    headerStart(std::size_t i) const
    {
        const auto &t = toks();
        std::size_t j = i;
        while (j >= 2 && t[j - 1].text == "::" &&
               t[j - 2].kind == Tok::Ident)
            j -= 2;
        while (j > 0) {
            const std::string &s = t[j - 1].text;
            if (s == ";" || s == "}" || s == "{" || s == ":" ||
                s == ")" || s == ",")
                break;
            --j;
        }
        return j;
    }

    bool
    returnIsSecret(std::size_t begin, std::size_t name_idx) const
    {
        const auto &t = toks();
        for (std::size_t j = begin; j < name_idx; ++j)
            if (t[j].text == secretMarker)
                return true;
        return false;
    }

    void
    parseParams(std::size_t open, std::size_t close, FunctionDef &def)
    {
        const auto &t = toks();
        std::size_t begin = open + 1;
        int paren = 0, angle = 0, brace = 0;
        for (std::size_t j = begin; j <= close; ++j) {
            const std::string &s = t[j].text;
            const bool at_end = j == close;
            if (!at_end) {
                if (s == "(" || s == "[")
                    ++paren;
                else if (s == ")" || s == "]")
                    --paren;
                else if (s == "{")
                    ++brace;
                else if (s == "}")
                    --brace;
                else if (s == "<")
                    ++angle;
                else if (s == ">" && angle > 0)
                    --angle;
                else if (s == ">>" && angle > 0)
                    angle = angle >= 2 ? angle - 2 : 0;
            }
            if (at_end ||
                (s == "," && paren == 0 && angle == 0 && brace == 0)) {
                if (j > begin)
                    addParam(begin, j, def);
                begin = j + 1;
            }
        }
    }

    void
    addParam(std::size_t begin, std::size_t end, FunctionDef &def)
    {
        const auto &t = toks();
        Param param;
        std::size_t name_end = end;
        for (std::size_t j = begin; j < end; ++j) {
            if (t[j].text == secretMarker)
                param.secret = true;
            if (t[j].text == "=") {
                name_end = j;
                break;
            }
            if (t[j].text == "...")
                return; // variadic marker, not a parameter
        }
        if (end - begin == 1 && t[begin].text == "void")
            return;
        param.name = declaratorName(t, begin, name_end);
        // An unnamed parameter whose "name" is really the type: the
        // final token being '&' or '*' means no declarator followed.
        if (name_end > begin) {
            const std::string &tail = t[name_end - 1].text;
            if (tail == "&" || tail == "*" || tail == "&&")
                param.name.clear();
        }
        def.params.push_back(std::move(param));
    }

    void
    scanDeclarations()
    {
        const auto &t = toks();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].text != secretMarker || insideFunction(i))
                continue;
            // Scan the declarator; a '(' before any terminator means
            // this annotates a function declaration's return type.
            // Template arguments (commas, parens inside <>) are part
            // of the type, not terminators.
            std::size_t j = i + 1;
            bool is_function = false;
            std::string type_text;
            int angle = 0;
            while (j < t.size()) {
                const std::string &s = t[j].text;
                if (t[j].kind == Tok::Ident) {
                    if (!type_text.empty())
                        type_text += ' ';
                    type_text += s;
                }
                if (s == "<") {
                    ++angle;
                } else if (s == ">") {
                    if (angle > 0)
                        --angle;
                } else if (s == ">>") {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (angle == 0) {
                    if (s == ";" || s == "=" || s == "{" || s == "," ||
                        s == ")")
                        break;
                    if (s == "(") {
                        is_function = true;
                        break;
                    }
                }
                ++j;
            }
            if (j >= t.size())
                continue;
            if (t[j].text == "," || t[j].text == ")") {
                recordDeclParam(i, j);
                continue;
            }
            if (is_function) {
                const std::string fn = declaratorName(t, i + 1, j);
                if (!fn.empty())
                    model_.secretReturnDecls.insert(fn);
                continue;
            }
            SecretDecl decl;
            decl.name = declaratorName(t, i + 1, j);
            decl.typeText = type_text;
            decl.line = t[i].line;
            if (!decl.name.empty())
                model_.secretDecls.push_back(std::move(decl));
        }
    }

    /** MORPH_SECRET at @p marker annotates a parameter of a function
     *  declaration (the declarator scan hit ',' or ')'): find the
     *  enclosing call parens, the function name, and the zero-based
     *  parameter index of the annotation. */
    void
    recordDeclParam(std::size_t marker, std::size_t name_end)
    {
        const auto &t = toks();
        // Walk back to the unmatched '(' that opens the parameter list.
        std::size_t open = marker;
        int depth = 0;
        while (open > 0) {
            --open;
            const std::string &s = t[open].text;
            if (s == ")" || s == "]" || s == "}") {
                ++depth;
            } else if (s == "(" || s == "[" || s == "{") {
                if (depth == 0) {
                    if (s != "(")
                        return;
                    break;
                }
                --depth;
            } else if (s == ";") {
                return;
            }
        }
        if (open == 0 || t[open - 1].kind != Tok::Ident)
            return;
        const std::string fname = t[open - 1].text;
        // Parameter index: commas at depth 0 before the marker.
        std::size_t index = 0;
        depth = 0;
        for (std::size_t k = open + 1; k < marker; ++k) {
            const std::string &s = t[k].text;
            if (s == "(" || s == "[" || s == "{" || s == "<")
                ++depth;
            else if (s == ")" || s == "]" || s == "}" ||
                     (s == ">" && depth > 0))
                --depth;
            else if (s == "," && depth == 0)
                ++index;
        }
        (void)name_end;
        model_.secretParamDecls[fname].insert(index);
    }

    void
    scanUnorderedNames()
    {
        const auto &t = toks();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].text != "unordered_map" &&
                t[i].text != "unordered_set")
                continue;
            // Back up to the start of the enclosing declaration...
            std::size_t begin = i;
            while (begin > 0) {
                const std::string &s = t[begin - 1].text;
                if (s == ";" || s == "{" || s == "}" || s == "(" ||
                    s == "," || s == ":")
                    break;
                --begin;
            }
            // ...then forward across the template arguments to the
            // declarator, tracking angle depth (">>" closes two).
            int angle = 0;
            std::size_t j = begin;
            for (; j < t.size(); ++j) {
                const std::string &s = t[j].text;
                if (s == "<") {
                    ++angle;
                } else if (s == ">") {
                    if (angle > 0)
                        --angle;
                } else if (s == ">>") {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (angle == 0 &&
                           (s == ";" || s == "=" || s == "{" ||
                            s == "," || s == ")" || s == "(")) {
                    break;
                }
            }
            const std::string name = declaratorName(t, begin, j);
            if (!name.empty())
                model_.unorderedNames.insert(name);
        }
    }

    void
    scanFileWaivers()
    {
        for (const auto &entry : src_.comments) {
            const std::string &text = entry.second;
            std::size_t pos = 0;
            while ((pos = text.find("allow-file(", pos)) !=
                   std::string::npos) {
                const std::size_t open = pos + 11;
                const std::size_t close = text.find(')', open);
                if (close == std::string::npos)
                    break;
                model_.fileWaivers.insert(
                    text.substr(open, close - open));
                pos = close;
            }
        }
    }

    const LexedSource &src_;
    SourceModel model_;
};

} // namespace

bool
SourceModel::waived(const std::string &rule, unsigned line) const
{
    if (fileWaivers.count(rule) != 0)
        return true;
    const std::string needle = "allow(" + rule + ")";
    if (src->commentOn(line).find(needle) != std::string::npos)
        return true;
    return line > 1 &&
           src->commentOn(line - 1).find(needle) != std::string::npos;
}

SourceModel
buildModel(const LexedSource &src)
{
    return ModelBuilder(src).run();
}

std::size_t
matchGroup(const std::vector<Token> &tokens, std::size_t open)
{
    const std::string &o = tokens[open].text;
    const char *closer = o == "(" ? ")" : o == "{" ? "}" : "]";
    unsigned depth = 0;
    for (std::size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].text == o)
            ++depth;
        else if (tokens[i].text == closer && --depth == 0)
            return i;
    }
    return tokens.size();
}

} // namespace morph::analysis
