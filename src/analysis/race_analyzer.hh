/**
 * @file
 * Concurrency-contract analysis for morphrace.
 *
 * The analyzer consumes a batch of source files, builds the per-file
 * structural model (source_model.hh), and enforces the locking
 * discipline declared with the MORPH_* concurrency annotations
 * (common/annotations.hh) by name-based heuristics over the token
 * stream — the same approximation level as morphflow, tuned to this
 * codebase's idiom (RAII guards, trailing-underscore members, one
 * RunPool).
 *
 * Rule families (IDs are what waiver comments name):
 *  - race-unguarded     MORPH_GUARDED_BY member touched without its
 *                       mutex held
 *  - race-requires      call to a MORPH_REQUIRES function without the
 *                       required mutex held
 *  - race-exclude       call to a MORPH_EXCLUDES function while the
 *                       excluded mutex is held
 *  - race-lock-order    batch-wide mutex acquisition graph has a
 *                       cycle (or a mutex is re-acquired while held)
 *  - race-worker-escape non-atomic, unlocked mutation of captured
 *                       outer state inside a RunPool / SweepEngine
 *                       worker lambda
 *  - race-naked-static  mutable static (or namespace-scope) variable
 *                       in a staticScope file with no concurrency
 *                       annotation
 *
 * race-naked-static only runs on files whose `staticScope` flag is
 * set (src/common, src/sim, src/secmem, and any file named explicitly
 * on the morphrace command line); every other rule runs batch-wide.
 */

#ifndef MORPH_ANALYSIS_RACE_ANALYZER_HH
#define MORPH_ANALYSIS_RACE_ANALYZER_HH

#include <vector>

#include "analysis/findings.hh"
#include "analysis/lex_cache.hh"

namespace morph::analysis
{

/** Analyze @p sources as one batch (annotations on declarations in
 *  one file bind call sites and accesses in every other file; the
 *  lock-order graph spans the batch). A non-null @p cache memoizes
 *  the lexed token streams (keyed by path) so repeated analyses of
 *  the same files lex once. */
AnalysisResult analyzeRaces(const std::vector<SourceText> &sources,
                            LexCache *cache = nullptr);

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_RACE_ANALYZER_HH
