/**
 * @file
 * Shared input/output types for the src/analysis batch analyzers
 * (morphflow's secret-flow/determinism engine and morphrace's
 * concurrency engine): one input file, one finding, one batch result.
 * Keeping them in one header pins the two tools to identical finding
 * semantics — same waiver behavior, same JSON artifact shape, same
 * exit-code contract (0 clean, 1 findings, 2 usage/IO error).
 */

#ifndef MORPH_ANALYSIS_FINDINGS_HH
#define MORPH_ANALYSIS_FINDINGS_HH

#include <string>
#include <vector>

namespace morph::analysis
{

/** One input file for an analysis batch. */
struct SourceText
{
    std::string path;
    std::string text;
    /** morphflow: apply the nondet-call / nondet-iter rules here. */
    bool determinismScope = false;
    /** morphrace: apply the race-naked-static rule here
     *  (src/{common,sim,secmem} and explicit file arguments). */
    bool staticScope = false;
};

/** One rule violation (or waived violation). */
struct Finding
{
    std::string rule;    ///< rule ID, e.g. "secret-branch"
    std::string file;
    std::string symbol;  ///< offending identifier, may be empty
    std::string message; ///< human-readable description
    unsigned line = 0;
    bool waived = false;
};

/** The outcome of analyzing a batch of sources. */
struct AnalysisResult
{
    std::vector<Finding> findings; ///< unwaived — these fail the run
    std::vector<Finding> waived;   ///< suppressed by allow() comments
};

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_FINDINGS_HH
