/**
 * @file
 * Lightweight C++ tokenizer for the morphflow static analyzer.
 *
 * This is deliberately NOT a compiler front end: it produces a flat
 * token stream (identifiers, literals, punctuation) with line numbers,
 * skips preprocessor directives wholesale (so `#define MORPH_SECRET`
 * does not register as an annotation site), and records comment text
 * per line so waiver markers (`morphflow: allow(...)`) can be matched
 * against findings. The analysis layers on top (source_model.hh,
 * flow_analyzer.hh) are heuristic by design; the rules they enforce
 * are chosen so that a token-level approximation is reliable on this
 * codebase's idiom.
 */

#ifndef MORPH_ANALYSIS_LEXER_HH
#define MORPH_ANALYSIS_LEXER_HH

#include <map>
#include <string>
#include <vector>

namespace morph::analysis
{

/** Kind of one lexed token. */
enum class Tok
{
    Ident,   ///< identifier or keyword
    Number,  ///< integer or floating literal (pp-number)
    String,  ///< string literal, including raw strings
    CharLit, ///< character literal
    Punct,   ///< operator or punctuation (multi-char ops kept whole)
};

/** One token with its source line (1-based). */
struct Token
{
    Tok kind;
    std::string text;
    unsigned line;
};

/** A tokenized source file. */
struct LexedSource
{
    std::string path;
    std::vector<Token> tokens;
    /** Comment text by line, concatenated when a line holds several. */
    std::map<unsigned, std::string> comments;

    /** Comment on @p line, or an empty string. */
    const std::string &commentOn(unsigned line) const;
};

/** Tokenize @p text (the contents of @p path). */
LexedSource lex(const std::string &path, const std::string &text);

} // namespace morph::analysis

#endif // MORPH_ANALYSIS_LEXER_HH
