/**
 * @file
 * Message Authentication Codes for data and counter-tree entries.
 *
 * A MAC binds together {address, counter, payload} so that splicing
 * (moving a line), tampering (changing bytes), and replay (restoring
 * an old {data, MAC, counter} tuple) are all detectable — replay is
 * detectable only because the counter itself is protected by the
 * integrity tree (see src/integrity).
 *
 * The paper uses Carter-Wegman style MACs (SGX) / AES-GCM (Yan et al.);
 * we use SipHash-2-4 as the PRF. Tags can be truncated: the Synergy
 * in-line layout stores 54-bit MACs alongside a SEC code, tree entries
 * store 64-bit MACs (Fig 8).
 */

#ifndef MORPH_CRYPTO_MAC_HH
#define MORPH_CRYPTO_MAC_HH

#include <cstdint>

#include "common/annotations.hh"
#include "common/secure_buf.hh"
#include "common/types.hh"
#include "crypto/siphash.hh"

namespace morph
{

/** Keyed MAC engine over (address, counter, payload) tuples. */
class MacEngine
{
  public:
    explicit MacEngine(MORPH_SECRET const SipKey &key) : key_(key) {}

    /**
     * MAC of a data or metadata cacheline.
     *
     * @param line    address of the protected line
     * @param counter effective counter value protecting the line
     * @param payload the 64-byte line contents (plaintext or encoded
     *                counter block, per the caller's convention)
     * @param tag_bits tag truncation width (1..64)
     */
    std::uint64_t compute(LineAddr line, std::uint64_t counter,
                          const CachelineData &payload,
                          unsigned tag_bits = 64) const;

    /**
     * Constant-time comparison of two tags of @p tag_bits width
     * (ctEqual64 under the truncation mask). The result is an
     * explicit declassification boundary: pass/fail is the one bit
     * the verifier is allowed to reveal.
     *
     * @retval true if the tags match
     */
    static bool equal(std::uint64_t a, std::uint64_t b,
                      unsigned tag_bits = 64);

  private:
    MORPH_SECRET SecretArray<std::uint8_t, 16> key_;
};

} // namespace morph

#endif // MORPH_CRYPTO_MAC_HH
