#include "crypto/mac.hh"

#include <cstring>

#include "common/check.hh"
#include "common/prof.hh"

namespace morph
{

std::uint64_t
MacEngine::compute(LineAddr line, std::uint64_t counter,
                   const CachelineData &payload, unsigned tag_bits) const
{
    MORPH_PROF_SCOPE("crypto.mac");
    MORPH_CHECK(tag_bits >= 1 && tag_bits <= 64);

    // Serialize (line || counter || payload) and PRF the buffer.
    std::uint8_t buf[8 + 8 + lineBytes];
    std::memcpy(buf, &line, 8);
    std::memcpy(buf + 8, &counter, 8);
    std::memcpy(buf + 16, payload.data(), lineBytes);

    const std::uint64_t tag = siphash24(buf, sizeof(buf), key_.raw());
    return tag_bits == 64 ? tag : (tag & ((1ull << tag_bits) - 1));
}

bool
MacEngine::equal(std::uint64_t a, std::uint64_t b, unsigned tag_bits)
{
    MORPH_CHECK(tag_bits >= 1 && tag_bits <= 64);
    const std::uint64_t mask =
        tag_bits == 64 ? ~0ull : ((1ull << tag_bits) - 1);
    // Constant-time compare; the pass/fail bit is deliberately public.
    return MORPH_DECLASSIFY(ctEqual64(a & mask, b & mask));
}

} // namespace morph
