#include "crypto/siphash.hh"

#include <cstring>

namespace morph
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int b)
{
    return (x << b) | (x >> (64 - b));
}

inline std::uint64_t
readLe64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    // Host is little-endian on all supported platforms; memcpy suffices.
    return v;
}

inline void
sipround(std::uint64_t &v0, std::uint64_t &v1, std::uint64_t &v2,
         std::uint64_t &v3)
{
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
}

} // namespace

std::uint64_t
siphash24(const void *data, std::size_t len, MORPH_SECRET const SipKey &key)
{
    const std::uint64_t k0 = readLe64(key.data());
    const std::uint64_t k1 = readLe64(key.data() + 8);

    std::uint64_t v0 = 0x736f6d6570736575ull ^ k0;
    std::uint64_t v1 = 0x646f72616e646f6dull ^ k1;
    std::uint64_t v2 = 0x6c7967656e657261ull ^ k0;
    std::uint64_t v3 = 0x7465646279746573ull ^ k1;

    const auto *in = static_cast<const std::uint8_t *>(data);
    const std::size_t whole = len / 8;
    for (std::size_t i = 0; i < whole; ++i) {
        const std::uint64_t m = readLe64(in + 8 * i);
        v3 ^= m;
        sipround(v0, v1, v2, v3);
        sipround(v0, v1, v2, v3);
        v0 ^= m;
    }

    std::uint64_t last = std::uint64_t(len & 0xff) << 56;
    const std::uint8_t *tail = in + 8 * whole;
    for (std::size_t i = 0; i < (len & 7); ++i)
        last |= std::uint64_t(tail[i]) << (8 * i);

    v3 ^= last;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= last;

    v2 ^= 0xff;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);

    // The tag is stored in untrusted memory: it is a public output of
    // the keyed PRF, not secret data (key recovery from tags is the
    // PRF security assumption).
    return MORPH_DECLASSIFY(v0 ^ v1 ^ v2 ^ v3);
}

} // namespace morph
