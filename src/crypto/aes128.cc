#include "crypto/aes128.hh"

#include <cstdlib>
#include <cstring>

#include "common/check.hh"
#include "common/secure_buf.hh"
#include "crypto/aes_ni.hh"

// This functional AES model uses table lookups indexed by key-mixed
// state — the classic cache side channel, out of scope for a
// simulator whose timing model never executes AES on secret-adjacent
// hardware. docs/SECURITY.md documents the accepted risk.
// morphflow: allow-file(secret-subscript): table-based S-box/InvSbox
// lookups are inherent to this functional AES model.

namespace morph
{

namespace
{

// FIPS-197 S-box.
constexpr std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

// Inverse S-box, computed at startup from sbox.
struct InvSbox
{
    std::uint8_t table[256];
    InvSbox()
    {
        for (unsigned i = 0; i < 256; ++i)
            table[sbox[i]] = std::uint8_t(i);
    }
};
const InvSbox invSbox;

// Multiply by x in GF(2^8) with the AES polynomial.
inline std::uint8_t
xtime(std::uint8_t a)
{
    // Same accepted-risk class as the S-box lookups above.
    // morphflow: allow(secret-branch): value-dependent reduce select
    return std::uint8_t((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

// General GF(2^8) multiply (used by InvMixColumns).
inline std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

constexpr std::uint8_t rcon[10] = {
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

inline std::uint32_t
subWord(std::uint32_t w)
{
    return (std::uint32_t(sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(sbox[w & 0xff]);
}

inline std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

// State is column-major: state[4*c + r] = byte at row r, column c.
void
addRoundKey(std::uint8_t *state, const std::uint32_t *rk)
{
    for (int c = 0; c < 4; ++c) {
        const std::uint32_t w = rk[c];
        state[4 * c + 0] ^= std::uint8_t(w >> 24);
        state[4 * c + 1] ^= std::uint8_t(w >> 16);
        state[4 * c + 2] ^= std::uint8_t(w >> 8);
        state[4 * c + 3] ^= std::uint8_t(w);
    }
}

void
subBytes(std::uint8_t *state)
{
    for (int i = 0; i < 16; ++i)
        state[i] = sbox[state[i]];
}

void
invSubBytes(std::uint8_t *state)
{
    for (int i = 0; i < 16; ++i)
        state[i] = invSbox.table[state[i]];
}

void
shiftRows(std::uint8_t *state)
{
    std::uint8_t tmp[16];
    std::memcpy(tmp, state, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            state[4 * c + r] = tmp[4 * ((c + r) % 4) + r];
}

void
invShiftRows(std::uint8_t *state)
{
    std::uint8_t tmp[16];
    std::memcpy(tmp, state, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            state[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
}

void
mixColumns(std::uint8_t *state)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = state + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                           a3 = col[3];
        const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = std::uint8_t(a0 ^ all ^ xtime(std::uint8_t(a0 ^ a1)));
        col[1] = std::uint8_t(a1 ^ all ^ xtime(std::uint8_t(a1 ^ a2)));
        col[2] = std::uint8_t(a2 ^ all ^ xtime(std::uint8_t(a2 ^ a3)));
        col[3] = std::uint8_t(a3 ^ all ^ xtime(std::uint8_t(a3 ^ a0)));
    }
}

void
invMixColumns(std::uint8_t *state)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = state + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                           a3 = col[3];
        col[0] = std::uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                              gmul(a3, 9));
        col[1] = std::uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                              gmul(a3, 13));
        col[2] = std::uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                              gmul(a3, 11));
        col[3] = std::uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                              gmul(a3, 14));
    }
}

} // namespace

bool
Aes128::aesniAvailable()
{
#ifdef MORPH_HAVE_AESNI
    static const bool supported = aesni::cpuSupported();
    return supported;
#else
    return false;
#endif
}

AesImpl
Aes128::dispatched()
{
    // Resolved exactly once per process (thread-safe magic-static
    // init); const thereafter, so there is no mutable dispatch state
    // for morphrace's race-naked-static rule to object to. The env
    // override is read at latch time only — flipping it later in the
    // same process has no effect (docs/PERFORMANCE.md).
    static const AesImpl resolved = [] {
        const char *force = std::getenv("MORPH_FORCE_PORTABLE_AES");
        const bool forced = force != nullptr && force[0] != '\0' &&
                            !(force[0] == '0' && force[1] == '\0');
        if (forced)
            return AesImpl::Portable;
        return aesniAvailable() ? AesImpl::Aesni : AesImpl::Portable;
    }();
    return resolved;
}

const char *
Aes128::implName(AesImpl impl)
{
    switch (impl) {
      case AesImpl::Auto:
        return "auto";
      case AesImpl::Aesni:
        return "aesni";
      case AesImpl::Portable:
      default:
        return "portable";
    }
}

Aes128::Aes128(MORPH_SECRET const Key &key, AesImpl impl)
    : impl_(impl == AesImpl::Auto ? dispatched() : impl)
{
    MORPH_CHECK(impl_ != AesImpl::Aesni || aesniAvailable());
    // First four words come straight from the key (big-endian words).
    for (int i = 0; i < 4; ++i) {
        roundKeys_[std::size_t(i)] =
            (std::uint32_t(key[std::size_t(4 * i)]) << 24) |
            (std::uint32_t(key[std::size_t(4 * i + 1)]) << 16) |
            (std::uint32_t(key[std::size_t(4 * i + 2)]) << 8) |
            std::uint32_t(key[std::size_t(4 * i + 3)]);
    }
    for (unsigned i = 4; i < 4 * (rounds + 1); ++i) {
        std::uint32_t temp = roundKeys_[i - 1];
        if (i % 4 == 0) {
            temp = subWord(rotWord(temp)) ^
                   (std::uint32_t(rcon[i / 4 - 1]) << 24);
        }
        roundKeys_[i] = roundKeys_[i - 4] ^ temp;
    }

    if (impl_ == AesImpl::Aesni) {
        // Serialize the word schedule to the byte order AES-NI loads:
        // byte 4c+j of round r is byte j (big-endian) of word 4r+c —
        // exactly the FIPS-197 byte stream, column-major like the
        // portable state. The decryption schedule is emitted in
        // aesdec application order with InvMixColumns folded into the
        // nine middle keys (the aesimc transform, computed here with
        // the same portable invMixColumns the table path uses).
        for (unsigned r = 0; r <= rounds; ++r) {
            for (unsigned c = 0; c < 4; ++c) {
                const std::uint32_t w = roundKeys_[4 * r + c];
                std::uint8_t *out = encKeysNi_.data() + 16 * r + 4 * c;
                out[0] = std::uint8_t(w >> 24);
                out[1] = std::uint8_t(w >> 16);
                out[2] = std::uint8_t(w >> 8);
                out[3] = std::uint8_t(w);
            }
        }
        for (unsigned slot = 0; slot <= rounds; ++slot) {
            std::memcpy(decKeysNi_.data() + 16 * slot,
                        encKeysNi_.data() + 16 * (rounds - slot), 16);
            if (slot != 0 && slot != rounds)
                invMixColumns(decKeysNi_.data() + 16 * slot);
        }
    }
}

Aes128::Block
Aes128::encrypt(const Block &plaintext) const
{
#ifdef MORPH_HAVE_AESNI
    if (impl_ == AesImpl::Aesni)
        return aesni::encryptBlock(encKeysNi_.data(), plaintext);
#endif
    MORPH_SECRET std::uint8_t state[16];
    std::memcpy(state, plaintext.data(), 16);

    addRoundKey(state, &roundKeys_[0]);
    for (unsigned round = 1; round < rounds; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, &roundKeys_[4 * round]);
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, &roundKeys_[4 * rounds]);

    Block out;
    std::memcpy(out.data(), state, 16);
    secureWipe(state, sizeof(state));
    // Ciphertext lives in untrusted memory; callers that use a block
    // as OTP pad material re-annotate it MORPH_SECRET at the use site.
    return MORPH_DECLASSIFY(out);
}

Aes128::Block
Aes128::decrypt(const Block &ciphertext) const
{
#ifdef MORPH_HAVE_AESNI
    if (impl_ == AesImpl::Aesni)
        return aesni::decryptBlock(decKeysNi_.data(), ciphertext);
#endif
    MORPH_SECRET std::uint8_t state[16];
    std::memcpy(state, ciphertext.data(), 16);

    addRoundKey(state, &roundKeys_[4 * rounds]);
    for (unsigned round = rounds - 1; round >= 1; --round) {
        invShiftRows(state);
        invSubBytes(state);
        addRoundKey(state, &roundKeys_[4 * round]);
        invMixColumns(state);
    }
    invShiftRows(state);
    invSubBytes(state);
    addRoundKey(state, &roundKeys_[0]);

    Block out;
    std::memcpy(out.data(), state, 16);
    secureWipe(state, sizeof(state));
    // Same boundary as encrypt(): the recovered plaintext cacheline is
    // ordinary program data, not key material.
    return MORPH_DECLASSIFY(out);
}

void
Aes128::encrypt4(const Block in[4], Block out[4]) const
{
#ifdef MORPH_HAVE_AESNI
    if (impl_ == AesImpl::Aesni) {
        aesni::encryptBlocks4(encKeysNi_.data(), in, out);
        return;
    }
#endif
    for (unsigned i = 0; i < 4; ++i)
        out[i] = encrypt(in[i]);
}

} // namespace morph
