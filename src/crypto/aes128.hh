/**
 * @file
 * AES-128 block cipher (FIPS-197) with runtime-dispatched backends.
 *
 * Used as the block cipher for counter-mode encryption of data
 * cachelines (Fig 2 of the paper). Two interchangeable, bit-identical
 * implementations sit behind one API:
 *
 *  - a portable S-box/table software path (the original model, kept
 *    as the fallback and as the differential-testing oracle), and
 *  - an AES-NI path (src/crypto/aes128_ni.cc) selected by a one-time
 *    CPUID probe when the build and the CPU both support it.
 *
 * Dispatch contract (docs/PERFORMANCE.md): construction with
 * AesImpl::Auto resolves the backend exactly once per process via
 * dispatched() — CPUID probe plus the MORPH_FORCE_PORTABLE_AES
 * environment override (any non-empty value other than "0" forces the
 * portable path; used by CI to keep the fallback covered on AES-NI
 * machines). Tests pin a specific backend by passing it explicitly.
 * FIPS-197 KATs plus randomized cross-checks in tests/test_aes.cc
 * prove the two paths byte-identical.
 *
 * Note: this software AES models *functionality* only. In the timing
 * model the AES latency is assumed hidden by OTP precomputation,
 * exactly as in the paper and in SGX.
 */

#ifndef MORPH_CRYPTO_AES128_HH
#define MORPH_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "common/annotations.hh"
#include "common/secure_buf.hh"

namespace morph
{

/** AES backend selector (see the dispatch contract above). */
enum class AesImpl : std::uint8_t
{
    Auto,     ///< resolve via CPUID + MORPH_FORCE_PORTABLE_AES, once
    Portable, ///< S-box/table software path
    Aesni,    ///< hardware AES-NI path (requires aesniAvailable())
};

/** AES-128: 16-byte block, 16-byte key, 10 rounds. */
class Aes128
{
  public:
    static constexpr std::size_t blockBytes = 16;
    static constexpr std::size_t keyBytes = 16;

    using Block = std::array<std::uint8_t, blockBytes>;
    using Key = std::array<std::uint8_t, keyBytes>;

    /**
     * Expand @p key into the round-key schedule.
     *
     * @param impl backend to use; Auto (the default) latches the
     *             process-wide dispatched() choice. Passing Aesni on
     *             a machine without AES-NI support is a contract
     *             violation (MORPH_CHECK).
     */
    explicit Aes128(MORPH_SECRET const Key &key,
                    AesImpl impl = AesImpl::Auto);

    /** Encrypt one 16-byte block. */
    Block encrypt(const Block &plaintext) const;

    /** Decrypt one 16-byte block. */
    Block decrypt(const Block &ciphertext) const;

    /**
     * Encrypt four independent blocks. Same result as four encrypt()
     * calls; the AES-NI backend interleaves the rounds so the four
     * streams hide each other's instruction latency — this is the
     * OtpEngine cacheline-pad fast path.
     */
    void encrypt4(const Block in[4], Block out[4]) const;

    /** The backend this instance uses (never Auto). */
    AesImpl impl() const { return impl_; }

    /** True if the build and the CPU both support the AES-NI path. */
    static bool aesniAvailable();

    /**
     * The backend AesImpl::Auto resolves to: Aesni when available and
     * not overridden by MORPH_FORCE_PORTABLE_AES, else Portable.
     * Latched on first use for the life of the process.
     */
    static AesImpl dispatched();

    /** Short stable name of a backend ("portable" / "aesni"). */
    static const char *implName(AesImpl impl);

  private:
    static constexpr unsigned rounds = 10;

    // Round keys: (rounds + 1) x 4 big-endian words, wiped on
    // destruction. Both backends derive from this one schedule.
    MORPH_SECRET SecretArray<std::uint32_t, 4 * (rounds + 1)> roundKeys_;

    // AES-NI key material, byte-serialized (see aes128.cc): the
    // encryption schedule in round order and the decryption schedule
    // in aesdec application order (with InvMixColumns folded into the
    // middle round keys). Wiped on destruction like the word schedule;
    // only populated when impl_ == Aesni.
    MORPH_SECRET SecretArray<std::uint8_t, 16 * (rounds + 1)> encKeysNi_;
    MORPH_SECRET SecretArray<std::uint8_t, 16 * (rounds + 1)> decKeysNi_;

    AesImpl impl_;
};

} // namespace morph

#endif // MORPH_CRYPTO_AES128_HH
