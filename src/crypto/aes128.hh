/**
 * @file
 * AES-128 block cipher (FIPS-197), software implementation.
 *
 * Used as the block cipher for counter-mode encryption of data
 * cachelines (Fig 2 of the paper). The implementation favours clarity
 * and portability: S-box based SubBytes with table-accelerated
 * MixColumns. Verified against the FIPS-197 appendix vectors in the
 * test suite.
 *
 * Note: this software AES models *functionality* only. In the timing
 * model the AES latency is assumed hidden by OTP precomputation,
 * exactly as in the paper and in SGX.
 */

#ifndef MORPH_CRYPTO_AES128_HH
#define MORPH_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "common/annotations.hh"
#include "common/secure_buf.hh"

namespace morph
{

/** AES-128: 16-byte block, 16-byte key, 10 rounds. */
class Aes128
{
  public:
    static constexpr std::size_t blockBytes = 16;
    static constexpr std::size_t keyBytes = 16;

    using Block = std::array<std::uint8_t, blockBytes>;
    using Key = std::array<std::uint8_t, keyBytes>;

    /** Expand @p key into the round-key schedule. */
    explicit Aes128(MORPH_SECRET const Key &key);

    /** Encrypt one 16-byte block. */
    Block encrypt(const Block &plaintext) const;

    /** Decrypt one 16-byte block. */
    Block decrypt(const Block &ciphertext) const;

  private:
    // Round keys: (rounds + 1) x 4 words, wiped on destruction.
    static constexpr unsigned rounds = 10;
    MORPH_SECRET SecretArray<std::uint32_t, 4 * (rounds + 1)> roundKeys_;
};

} // namespace morph

#endif // MORPH_CRYPTO_AES128_HH
