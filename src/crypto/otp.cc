#include "crypto/otp.hh"

#include <cstring>

#include "common/check.hh"
#include "common/secure_buf.hh"

namespace morph
{

CachelineData
OtpEngine::pad(LineAddr line, std::uint64_t counter) const
{
    // Effective counters are at most 56 bits wide in every counter
    // format, leaving the top byte of the seed free for the block index.
    MORPH_CHECK_EQ(counter >> 56, 0u);
    CachelineData out;
    for (unsigned block = 0; block < lineBytes / Aes128::blockBytes;
         ++block) {
        Aes128::Block seed{};
        std::memcpy(seed.data(), &line, 8);
        std::uint64_t ctr_and_block = counter;
        std::memcpy(seed.data() + 8, &ctr_and_block, 8);
        // Fold the block index into the last byte: counters are <= 56
        // bits, so the top byte of the second word is free.
        seed[15] = std::uint8_t(block);
        MORPH_SECRET Aes128::Block pad_block = cipher_.encrypt(seed);
        std::memcpy(out.data() + block * Aes128::blockBytes,
                    pad_block.data(), Aes128::blockBytes);
        secureWipe(pad_block.data(), pad_block.size());
    }
    return out;
}

void
OtpEngine::xorPad(CachelineData &data, LineAddr line,
                  std::uint64_t counter) const
{
    MORPH_SECRET CachelineData p = pad(line, counter);
    for (std::size_t i = 0; i < lineBytes; ++i)
        data[i] ^= p[i];
    secureWipe(p.data(), p.size());
}

} // namespace morph
