#include "crypto/otp.hh"

#include <cstring>

#include "common/check.hh"
#include "common/prof.hh"
#include "common/secure_buf.hh"

namespace morph
{

CachelineData
OtpEngine::pad(LineAddr line, std::uint64_t counter) const
{
    MORPH_PROF_SCOPE("crypto.otp_pad");
    // Effective counters are at most 56 bits wide in every counter
    // format, leaving the top byte of the seed free for the block index.
    MORPH_CHECK_EQ(counter >> 56, 0u);
    constexpr unsigned nblocks = lineBytes / Aes128::blockBytes;
    static_assert(nblocks == 4, "pad batching assumes 4 AES blocks");

    Aes128::Block seeds[nblocks];
    for (unsigned block = 0; block < nblocks; ++block) {
        seeds[block] = {};
        std::memcpy(seeds[block].data(), &line, 8);
        std::uint64_t ctr_and_block = counter;
        std::memcpy(seeds[block].data() + 8, &ctr_and_block, 8);
        // Fold the block index into the last byte: counters are <= 56
        // bits, so the top byte of the second word is free.
        seeds[block][15] = std::uint8_t(block);
    }
    // All four blocks in one batched call: the AES-NI backend
    // interleaves the rounds so the streams hide each other's latency.
    MORPH_SECRET Aes128::Block pad_blocks[nblocks];
    cipher_.encrypt4(seeds, pad_blocks);

    CachelineData out;
    for (unsigned block = 0; block < nblocks; ++block)
        std::memcpy(out.data() + block * Aes128::blockBytes,
                    pad_blocks[block].data(), Aes128::blockBytes);
    secureWipe(pad_blocks, sizeof(pad_blocks));
    return out;
}

void
OtpEngine::xorPad(CachelineData &data, LineAddr line,
                  std::uint64_t counter) const
{
    MORPH_SECRET CachelineData p = pad(line, counter);
    for (std::size_t i = 0; i < lineBytes; ++i)
        data[i] ^= p[i];
    secureWipe(p.data(), p.size());
}

} // namespace morph
