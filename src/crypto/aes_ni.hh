/**
 * @file
 * Internal interface to the AES-NI backend (src/crypto/aes128_ni.cc).
 *
 * The backend is a separate translation unit because it must be
 * compiled with -maes while the rest of the tree stays baseline-ISA;
 * callers reach it only through Aes128, which gates every call on the
 * one-time CPUID dispatch (aes128.cc). When the toolchain or target
 * cannot build the backend, CMake simply omits the TU and aes128.cc
 * compiles the calls away (MORPH_HAVE_AESNI undefined), so the
 * declarations below are always safe to include.
 *
 * Key material crosses this boundary as the byte-serialized schedules
 * Aes128 stores in SecretArray members — the backend never owns or
 * copies key bytes, it only streams them into registers.
 */

#ifndef MORPH_CRYPTO_AES_NI_HH
#define MORPH_CRYPTO_AES_NI_HH

#include <cstdint>

#include "crypto/aes128.hh"

namespace morph
{
namespace aesni
{

/** CPUID probe: true when the CPU executes AES-NI instructions. */
bool cpuSupported();

/** Encrypt one block with the byte-serialized encryption schedule. */
Aes128::Block encryptBlock(const std::uint8_t *enc_keys,
                           const Aes128::Block &in);

/**
 * Decrypt one block with the aesdec-ordered decryption schedule
 * (round 10 key first, InvMixColumns-folded middle keys, round 0
 * key last — the order buildNiSchedules in aes128.cc emits).
 */
Aes128::Block decryptBlock(const std::uint8_t *dec_keys,
                           const Aes128::Block &in);

/** Encrypt four independent blocks with the rounds interleaved. */
void encryptBlocks4(const std::uint8_t *enc_keys,
                    const Aes128::Block in[4], Aes128::Block out[4]);

} // namespace aesni
} // namespace morph

#endif // MORPH_CRYPTO_AES_NI_HH
