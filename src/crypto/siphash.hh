/**
 * @file
 * SipHash-2-4 keyed pseudo-random function (Aumasson & Bernstein).
 *
 * Serves as the MAC primitive for data and counter-tree entries. The
 * paper's designs use truncated MACs (54-bit in the Synergy in-line
 * layout, 64-bit in tree entries); SipHash's 64-bit output truncates
 * cleanly. Verified against the reference test vectors in the tests.
 */

#ifndef MORPH_CRYPTO_SIPHASH_HH
#define MORPH_CRYPTO_SIPHASH_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/annotations.hh"

namespace morph
{

/** 128-bit key for SipHash. */
using SipKey = std::array<std::uint8_t, 16>;

/**
 * Compute SipHash-2-4 of @p len bytes at @p data under @p key.
 *
 * @return the 64-bit tag
 */
std::uint64_t siphash24(const void *data, std::size_t len,
                        MORPH_SECRET const SipKey &key);

} // namespace morph

#endif // MORPH_CRYPTO_SIPHASH_HH
