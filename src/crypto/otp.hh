/**
 * @file
 * Counter-mode encryption of 64-byte cachelines (Fig 2 of the paper).
 *
 * A One-Time Pad is derived per line as AES_K(line_addr || counter ||
 * block_index) for each of the four 16-byte blocks in the line; the
 * line is encrypted/decrypted by XOR with the pad. Security rests on
 * never reusing a (line_addr, counter) pair — the property the counter
 * organizations in src/counters must preserve.
 */

#ifndef MORPH_CRYPTO_OTP_HH
#define MORPH_CRYPTO_OTP_HH

#include <cstdint>

#include "common/annotations.hh"
#include "common/types.hh"
#include "crypto/aes128.hh"

namespace morph
{

/** Counter-mode cacheline encryption engine. */
class OtpEngine
{
  public:
    explicit OtpEngine(MORPH_SECRET const Aes128::Key &key)
        : cipher_(key)
    {
    }

    /**
     * Generate the 64-byte pad for (line, counter).
     *
     * The pad for encryption equals the pad for decryption, so callers
     * use xorPad for both directions. The pad is secret material: a
     * disclosed pad decrypts its line forever (counters never repeat,
     * but lines are re-read), so callers must wipe it after use.
     */
    MORPH_SECRET CachelineData pad(LineAddr line,
                                   std::uint64_t counter) const;

    /** XOR @p data in place with the pad for (line, counter). */
    void xorPad(CachelineData &data, LineAddr line,
                std::uint64_t counter) const;

  private:
    Aes128 cipher_;
};

} // namespace morph

#endif // MORPH_CRYPTO_OTP_HH
