/**
 * @file
 * AES-NI backend: hardware AES rounds, no table lookups.
 *
 * Compiled with -maes (see src/CMakeLists.txt); only ever entered
 * through the Aes128 dispatch after aesni::cpuSupported() returned
 * true. Unlike the portable table path, every byte of state and key
 * stays in SSE registers and the instruction sequence is independent
 * of the data, so this path has no cache side channel to waive — the
 * allow-file(secret-subscript) of aes128.cc does not apply here.
 */

#include "crypto/aes_ni.hh"

#include <wmmintrin.h>

namespace morph
{
namespace aesni
{

namespace
{

inline __m128i
loadKey(const std::uint8_t *keys, unsigned round)
{
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(keys) + round);
}

} // namespace

bool
cpuSupported()
{
    return __builtin_cpu_supports("aes") != 0;
}

Aes128::Block
encryptBlock(const std::uint8_t *enc_keys, const Aes128::Block &in)
{
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in.data()));
    b = _mm_xor_si128(b, loadKey(enc_keys, 0));
    for (unsigned round = 1; round < 10; ++round)
        b = _mm_aesenc_si128(b, loadKey(enc_keys, round));
    b = _mm_aesenclast_si128(b, loadKey(enc_keys, 10));

    Aes128::Block out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), b);
    return out;
}

Aes128::Block
decryptBlock(const std::uint8_t *dec_keys, const Aes128::Block &in)
{
    // dec_keys is already in application order: [k10, imc(k9) ..
    // imc(k1), k0], so the loop is a straight stream like encryption.
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in.data()));
    b = _mm_xor_si128(b, loadKey(dec_keys, 0));
    for (unsigned round = 1; round < 10; ++round)
        b = _mm_aesdec_si128(b, loadKey(dec_keys, round));
    b = _mm_aesdeclast_si128(b, loadKey(dec_keys, 10));

    Aes128::Block out;
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), b);
    return out;
}

void
encryptBlocks4(const std::uint8_t *enc_keys, const Aes128::Block in[4],
               Aes128::Block out[4])
{
    // Four independent streams per round: aesenc has multi-cycle
    // latency but single-cycle throughput, so interleaving hides the
    // dependency chains almost entirely (the OTP pad win).
    __m128i b0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[0].data()));
    __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[1].data()));
    __m128i b2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[2].data()));
    __m128i b3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(in[3].data()));

    __m128i k = loadKey(enc_keys, 0);
    b0 = _mm_xor_si128(b0, k);
    b1 = _mm_xor_si128(b1, k);
    b2 = _mm_xor_si128(b2, k);
    b3 = _mm_xor_si128(b3, k);
    for (unsigned round = 1; round < 10; ++round) {
        k = loadKey(enc_keys, round);
        b0 = _mm_aesenc_si128(b0, k);
        b1 = _mm_aesenc_si128(b1, k);
        b2 = _mm_aesenc_si128(b2, k);
        b3 = _mm_aesenc_si128(b3, k);
    }
    k = loadKey(enc_keys, 10);
    b0 = _mm_aesenclast_si128(b0, k);
    b1 = _mm_aesenclast_si128(b1, k);
    b2 = _mm_aesenclast_si128(b2, k);
    b3 = _mm_aesenclast_si128(b3, k);

    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[0].data()), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[1].data()), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[2].data()), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out[3].data()), b3);
}

} // namespace aesni
} // namespace morph
