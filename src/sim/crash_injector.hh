/**
 * @file
 * Crash injector: cut a persistent-memory run at an arbitrary access
 * index and replay recovery from the durable state.
 *
 * The injector streams a workload trace straight through a
 * SecureMemoryModel with the persist domain enabled — no DRAM timing,
 * no warm-up — and "crashes" after exactly `cutAccesses` data
 * accesses: everything volatile (metadata cache, on-chip counters,
 * the persist domain's pending set as pending) is lost, and recovery
 * is replayed from what had reached NVM. The resulting CrashReport is
 * pure data, so a run_pool sweep over cut points and seeds is
 * deterministic at any --jobs count (pinned by durableFingerprint).
 *
 * morphverify's --recovery invariant sweeps this over strict and lazy
 * policies: every reachable post-crash durable state must reconstruct
 * a tree whose re-derived root digest matches the persisted root.
 */

#ifndef MORPH_SIM_CRASH_INJECTOR_HH
#define MORPH_SIM_CRASH_INJECTOR_HH

#include <string>

#include "secmem/secure_memory_model.hh"

namespace morph
{

/** One crash experiment: workload, model, and where to cut. */
struct CrashInjectorOptions
{
    std::string workload = "mcf"; ///< workload name (fatal if unknown)
    SecureModelConfig model;      ///< persist.enabled must be set
    std::uint64_t seed = 1;       ///< trace seed (sweepSeed output)
    std::uint64_t cutAccesses = 10'000; ///< data accesses before crash
    double footprintScale = 1.0;
};

/** Durable state and recovery outcome at the cut point. */
struct CrashReport
{
    std::uint64_t cutAccesses = 0;
    PersistStats persist;     ///< persist traffic up to the cut
    RecoveryReport recovery;  ///< replayed post-crash recovery
    std::uint64_t fingerprint = 0; ///< durable-state determinism pin
};

/**
 * Run @p options.workload through a fresh model and crash it after
 * @p options.cutAccesses data accesses. Fatal if the workload is
 * unknown or the model's persist domain is disabled.
 */
CrashReport injectCrash(const CrashInjectorOptions &options);

} // namespace morph

#endif // MORPH_SIM_CRASH_INJECTOR_HH
