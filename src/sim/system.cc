#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace morph
{

SimSystem::SimSystem(const SystemConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config), traces_(std::move(traces)),
      secmem_(config.secmem), dram_(config.dram)
{
    if (traces_.size() != config_.numCores)
        fatal("system: %zu traces for %u cores", traces_.size(),
              config_.numCores);
    cores_.reserve(config_.numCores);
    for (unsigned i = 0; i < config_.numCores; ++i)
        cores_.emplace_back(i, *traces_[i], config_.core);
    scratch_.reserve(512);
}

void
SimSystem::step(Core &core)
{
    const TraceEntry entry = core.beginEntry();

    scratch_.clear();
    secmem_.onDataAccess(entry.line, entry.type, scratch_);

    Cycle done = core.clock();
    if (config_.timing) {
        for (const MemAccess &access : scratch_) {
            const Cycle finish =
                dram_.access(access.line, access.type, core.clock());
            if (access.critical)
                done = std::max(done, finish);
        }
    }
    core.completeEntry(entry, done);
}

void
SimSystem::run(std::uint64_t accesses_per_core)
{
    std::vector<std::uint64_t> targets(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i)
        targets[i] = cores_[i].accesses() + accesses_per_core;

    if (!config_.timing) {
        // Traffic-only mode: DRAM untouched, core order immaterial.
        for (std::size_t i = 0; i < cores_.size(); ++i)
            while (cores_[i].accesses() < targets[i])
                step(cores_[i]);
        return;
    }

    // Time-ordered interleaving: always advance the core whose local
    // clock is furthest behind.
    while (true) {
        Core *next = nullptr;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (cores_[i].accesses() >= targets[i])
                continue;
            if (!next || cores_[i].clock() < next->clock())
                next = &cores_[i];
        }
        if (!next)
            break;
        step(*next);
    }
    for (auto &core : cores_)
        core.drain();
}

void
SimSystem::startMeasurement()
{
    secmem_.resetStats();
    dram_.resetActivity();
    for (auto &core : cores_)
        core.markMeasurementStart();
}

double
SimSystem::aggregateIpc() const
{
    double total = 0.0;
    for (const auto &core : cores_) {
        const Cycle cycles = core.measuredCycles();
        if (cycles > 0)
            total += double(core.measuredInstructions()) /
                     double(cycles);
    }
    return total;
}

Cycle
SimSystem::measuredCycles() const
{
    Cycle longest = 0;
    for (const auto &core : cores_)
        longest = std::max(longest, core.measuredCycles());
    return longest;
}

std::uint64_t
SimSystem::measuredInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core.measuredInstructions();
    return total;
}

} // namespace morph
