#include "sim/system.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "common/prof.hh"

namespace morph
{

SimSystem::SimSystem(const SystemConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> traces)
    : config_(config), traces_(std::move(traces)),
      secmem_(config.secmem), dram_(config.dram)
{
    if (traces_.size() != config_.numCores)
        fatal("system: %zu traces for %u cores", traces_.size(),
              config_.numCores);
    cores_.reserve(config_.numCores);
    for (unsigned i = 0; i < config_.numCores; ++i)
        cores_.emplace_back(i, *traces_[i], config_.core);
    scratch_.reserve(512);
}

void
SimSystem::step(Core &core)
{
    MORPH_PROF_SCOPE("sim.step");
    const TraceEntry entry = core.beginEntry();

    scratch_.clear();
    secmem_.onDataAccess(entry.line, entry.type, scratch_);

    const bool traced = takeTraceSample();
    const Cycle start = core.clock();
    Cycle done = start;
    if (config_.timing) {
        for (const MemAccess &access : scratch_) {
            DramAccessTiming timing;
            const Cycle finish =
                dram_.access(access.line, access.type, core.clock(),
                             traced ? &timing : nullptr);
            if (access.critical)
                done = std::max(done, finish);
            if (traced)
                traceDramAccess(core, access, timing);
        }
        if (measuring_ && entry.type == AccessType::Read)
            readLatency_.record(done - start);
    }
    if (traced)
        traceEntryDone(core, entry, start, done);
    core.completeEntry(entry, done);
}

bool
SimSystem::takeTraceSample()
{
    if (!scope_ || !measuring_ || !scope_->tracing())
        return false;
    return ++traceTick_ % scope_->config().traceSampleEvery == 0;
}

void
SimSystem::traceDramAccess(const Core &core, const MemAccess &access,
                           const DramAccessTiming &timing)
{
    TraceLog &trace = scope_->trace();
    // Walk span on the requesting core's track: one per generated
    // access, named by traffic category.
    const char *cat =
        access.category == Traffic::Data ? "data" : "walk";
    trace.complete(trafficKey(access.category), cat, core.id(),
                   timing.submit, timing.complete - timing.submit,
                   access.line);
    // Service spans on the owning channel's track: full occupancy
    // (queue + service) and the data burst nested inside it.
    const std::uint32_t tid = channelTidBase + timing.channel;
    trace.complete(access.type == AccessType::Read ? "rd" : "wr",
                   "dram", tid, timing.submit,
                   timing.complete - timing.submit, access.line);
    if (!timing.queued && timing.burstStart > timing.submit)
        trace.complete("burst", "dram", tid, timing.burstStart,
                       timing.complete - timing.burstStart,
                       access.line);
}

void
SimSystem::traceEntryDone(const Core &core, const TraceEntry &entry,
                          Cycle start, Cycle done)
{
    TraceLog &trace = scope_->trace();
    const bool read = entry.type == AccessType::Read;
    trace.complete(read ? "read" : "write", "access", core.id(),
                   start, done - start, entry.line);
    if (read)
        trace.instant("verify", "access", core.id(), done);
}

void
SimSystem::run(std::uint64_t accesses_per_core)
{
    MORPH_PROF_SCOPE("sim.run");
    std::vector<std::uint64_t> targets(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i)
        targets[i] = cores_[i].accesses() + accesses_per_core;

    if (!config_.timing) {
        // Traffic-only mode: DRAM untouched, core order immaterial.
        for (std::size_t i = 0; i < cores_.size(); ++i)
            while (cores_[i].accesses() < targets[i])
                step(cores_[i]);
        return;
    }

    // Time-ordered interleaving: always advance the core whose local
    // clock is furthest behind.
    while (true) {
        Core *next = nullptr;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            if (cores_[i].accesses() >= targets[i])
                continue;
            if (!next || cores_[i].clock() < next->clock())
                next = &cores_[i];
        }
        if (!next)
            break;
        step(*next);
    }
    for (auto &core : cores_)
        core.drain();
}

void
SimSystem::startMeasurement()
{
    secmem_.resetStats();
    dram_.resetActivity();
    for (auto &core : cores_)
        core.markMeasurementStart();
    readLatency_.reset();
    measuring_ = true;
}

void
SimSystem::attachScope(MorphScope *scope)
{
    scope_ = scope;
    if (!scope_)
        return;
    StatRegistry &reg = scope_->registry();

    reg.gauge(
        "sim.ipc", [this]() { return aggregateIpc(); },
        "sum of per-core IPCs over the measured interval");
    reg.counter(
        "sim.cycles", [this]() { return measuredCycles(); },
        "longest measured per-core cycle count");
    reg.counter(
        "sim.instructions",
        [this]() { return measuredInstructions(); },
        "measured instructions across all cores");

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core *core = &cores_[i];
        const std::string prefix = "core" + std::to_string(i);
        reg.counter(
            prefix + ".instructions",
            [core]() { return core->measuredInstructions(); },
            "measured instructions");
        reg.counter(
            prefix + ".cycles",
            [core]() { return core->measuredCycles(); },
            "measured cycles");
        reg.counter(
            prefix + ".accesses",
            [core]() { return core->measuredAccesses(); },
            "measured data accesses");
    }

    secmem_.registerStats(reg, "", scope_->config().occupancy);

    reg.gauge(
        "overflows.per_million",
        [this]() {
            const TrafficStats &s = secmem_.stats();
            const double data = double(s.accesses(Traffic::Data));
            if (data == 0.0)
                return 0.0;
            return double(s.totalOverflows()) * 1e6 / data;
        },
        "overflow resets per million data accesses");

    dram_.registerStats(reg, "dram");

    if (config_.timing)
        reg.histogram("latency.read_cycles", &readLatency_,
                      "end-to-end read latency in CPU cycles");

    if (scope_->tracing()) {
        TraceLog &trace = scope_->trace();
        for (std::size_t i = 0; i < cores_.size(); ++i)
            trace.nameTrack(std::uint32_t(i),
                            "core" + std::to_string(i));
        for (unsigned ch = 0; ch < dram_.config().channels; ++ch)
            trace.nameTrack(channelTidBase + ch,
                            "dram.ch" + std::to_string(ch));
        // Registered only for tracing runs so non-traced stat output
        // (bench baselines, byte-identity legs) is untouched.
        const TraceLog *tracePtr = &trace;
        reg.counter(
            "trace.dropped_events",
            [tracePtr]() { return double(tracePtr->dropped()); },
            "trace events discarded after the event cap was hit");
    }
}

double
SimSystem::aggregateIpc() const
{
    double total = 0.0;
    for (const auto &core : cores_) {
        const Cycle cycles = core.measuredCycles();
        if (cycles > 0)
            total += double(core.measuredInstructions()) /
                     double(cycles);
    }
    return total;
}

Cycle
SimSystem::measuredCycles() const
{
    Cycle longest = 0;
    for (const auto &core : cores_)
        longest = std::max(longest, core.measuredCycles());
    return longest;
}

std::uint64_t
SimSystem::measuredInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core.measuredInstructions();
    return total;
}

} // namespace morph
