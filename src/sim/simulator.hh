/**
 * @file
 * High-level experiment runner: one call per (workload, tree config).
 *
 * Wraps trace construction, warm-up (the paper warms counters before
 * measuring), measurement, and result collection. Benchmark harnesses
 * in bench/ call these entry points for every bar of every figure.
 *
 * Scale knobs (paper: 25 B warm-up + 5 B measured instructions; here
 * the unit is per-core memory accesses) can be overridden with the
 * MORPH_SIM_ACCESSES / MORPH_SIM_WARMUP environment variables to
 * trade fidelity for runtime.
 */

#ifndef MORPH_SIM_SIMULATOR_HH
#define MORPH_SIM_SIMULATOR_HH

#include <string>

#include "dram/dram_config.hh"
#include "sim/energy.hh"
#include "sim/system.hh"
#include "workloads/workload_db.hh"

namespace morph
{

/** Scale and seed of one simulation. */
struct SimOptions
{
    std::uint64_t accessesPerCore = 150'000;
    std::uint64_t warmupPerCore = 75'000;
    std::uint64_t seed = 1;
    bool timing = true; ///< false = traffic/overflow statistics only

    /** Footprint divisor (overflow experiments; see
     *  makeWorkloadTrace). */
    double footprintScale = 1.0;

    /** DRAM organization/timing (refresh and write-queueing live
     *  here; see docs/SIMULATOR.md). */
    DramConfig dram;

    /** Apply MORPH_SIM_ACCESSES / MORPH_SIM_WARMUP overrides. */
    static SimOptions fromEnv(SimOptions defaults);

    /** Defaults plus environment overrides. */
    static SimOptions fromEnv() { return fromEnv(SimOptions{}); }
};

/** Results of one measured simulation. */
struct SimResult
{
    std::string workload;
    std::string configName;
    double ipc = 0;               ///< aggregate (sum of per-core) IPC
    std::uint64_t cycles = 0;     ///< measured execution cycles
    std::uint64_t instructions = 0;
    TrafficStats traffic;
    CacheStats metadataCache;
    ChannelActivity dram;
    EnergyReport energy;
    PersistStats persist; ///< zeros unless the persist domain is on

    /** NVM line-persists per data write (strict-vs-lazy cost axis);
     *  0 when the persist domain is off or nothing was written. */
    double persistsPerWrite() const;

    /** Overflow events per million data accesses. */
    double overflowsPerMillion() const;

    /** Memory accesses per data access (Figs 5b / 16). */
    double bloat() const { return traffic.bloat(); }
};

/**
 * Simulate @p workload (rate mode: all cores run copies).
 *
 * When @p scope is non-null, every component's statistics register
 * into its registry, the measured window is sampled into its epoch
 * series (ScopeConfig::epochAccesses), sampled accesses trace into
 * its trace log, and the registry is frozen before return — the scope
 * is safe to export after the call.
 */
SimResult runWorkload(const WorkloadSpec &workload,
                      const SecureModelConfig &secmem,
                      const SimOptions &options,
                      MorphScope *scope = nullptr);

/** Simulate a 4-core mix. @copydetails runWorkload */
SimResult runMix(const MixSpec &mix, const SecureModelConfig &secmem,
                 const SimOptions &options,
                 MorphScope *scope = nullptr);

/** Simulate a workload or mix by name (fatal if unknown).
 *  @copydetails runWorkload */
SimResult runByName(const std::string &name,
                    const SecureModelConfig &secmem,
                    const SimOptions &options,
                    MorphScope *scope = nullptr);

/** Simulate a trace file (every core replays a copy; fatal if the
 *  file cannot be parsed). @copydetails runWorkload */
SimResult runTraceFile(const std::string &path,
                       const SecureModelConfig &secmem,
                       const SimOptions &options,
                       MorphScope *scope = nullptr);

/** All 28 evaluation targets: 16 SPEC + 6 mixes + 6 GAP, the paper's
 *  Fig 15 x-axis order. */
std::vector<std::string> evaluationWorkloads();

/** Geometric mean of a list of positive values. */
double geomean(const std::vector<double> &values);

} // namespace morph

#endif // MORPH_SIM_SIMULATOR_HH
