/**
 * @file
 * The simulated system: cores + secure memory controller + DRAM.
 *
 * Cores are interleaved in local-time order (the earliest core runs
 * its next trace entry first), so bank and bus contention between
 * cores is modelled. Every data access expands through the
 * SecureMemoryModel into its metadata/overflow accesses, all of which
 * are scheduled on the DRAM system; reads complete for the core when
 * their critical accesses (data + counter-fetch walk) finish.
 */

#ifndef MORPH_SIM_SYSTEM_HH
#define MORPH_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "dram/dram_system.hh"
#include "secmem/secure_memory_model.hh"
#include "sim/core.hh"
#include "sim/morphscope.hh"

namespace morph
{

/** Full-system configuration. */
struct SystemConfig
{
    unsigned numCores = 4;
    CoreConfig core;
    SecureModelConfig secmem;
    DramConfig dram;

    /** If false, DRAM timing is skipped: traces stream through the
     *  controller for traffic/overflow statistics only (used by the
     *  overflow-rate experiments, ~10x faster). */
    bool timing = true;
};

/** A 4-core secure system executing per-core traces. */
class SimSystem
{
  public:
    /**
     * @param config system parameters
     * @param traces one trace per core (size must equal numCores)
     */
    SimSystem(const SystemConfig &config,
              std::vector<std::unique_ptr<TraceSource>> traces);

    /** Run until every core has performed @p accesses_per_core
     *  accesses beyond its current position. */
    void run(std::uint64_t accesses_per_core);

    /** End warm-up: zero statistics, snapshot per-core baselines. */
    void startMeasurement();

    /** End of run: drain the persist domain's pending mutations so
     *  persist-traffic counts are complete (no-op without
     *  persistence). Call before the final statistics sample. */
    void finishRun() { secmem_.finishRun(); }

    /**
     * Attach a morphscope observability context: registers every
     * component's statistics (sim.*, coreN.*, traffic.*, mdcache.*,
     * dram.*, latency.*) into its registry, names its trace tracks,
     * and — when tracing is enabled — emits lifecycle spans for
     * 1-in-N measured data accesses. The scope must outlive this
     * system (or the registry be frozen before destruction).
     */
    void attachScope(MorphScope *scope);

    /** Sum of per-core IPCs over the measured interval. */
    double aggregateIpc() const;

    /** Longest measured per-core cycle count (execution time). */
    Cycle measuredCycles() const;

    /** Total measured instructions across cores. */
    std::uint64_t measuredInstructions() const;

    SecureMemoryModel &secmem() { return secmem_; }
    const SecureMemoryModel &secmem() const { return secmem_; }
    DramSystem &dram() { return dram_; }
    const DramSystem &dram() const { return dram_; }
    const SystemConfig &config() const { return config_; }
    const Core &core(unsigned i) const { return cores_[i]; }

  private:
    void step(Core &core);
    bool takeTraceSample();
    void traceDramAccess(const Core &core, const MemAccess &access,
                         const DramAccessTiming &timing);
    void traceEntryDone(const Core &core, const TraceEntry &entry,
                        Cycle start, Cycle done);

    /** Trace tracks 16+ belong to DRAM channels (0..15 to cores). */
    static constexpr std::uint32_t channelTidBase = 16;

    SystemConfig config_;
    std::vector<std::unique_ptr<TraceSource>> traces_;
    std::vector<Core> cores_;
    SecureMemoryModel secmem_;
    DramSystem dram_;
    std::vector<MemAccess> scratch_;

    MorphScope *scope_ = nullptr;
    bool measuring_ = false;
    std::uint64_t traceTick_ = 0;
    ExpHistogram readLatency_; ///< end-to-end read latency, cycles
};

} // namespace morph

#endif // MORPH_SIM_SYSTEM_HH
