/**
 * @file
 * System power / energy / EDP reporting (paper Fig 18).
 *
 * System energy combines a static core+uncore power with the DRAM
 * energy model. A design that finishes the same work in less time
 * shows slightly higher average power but lower energy and a
 * substantially better energy-delay product — the paper's Fig 18
 * relationship.
 */

#ifndef MORPH_SIM_ENERGY_HH
#define MORPH_SIM_ENERGY_HH

#include "dram/dram_power.hh"

namespace morph
{

/** Power-model constants beyond the DRAM event energies. */
struct EnergyParams
{
    DramPowerParams dram;
    double staticSystemWatts = 12.0; ///< 4 cores + caches + uncore
};

/** Energy report for one measured execution interval. */
struct EnergyReport
{
    double seconds = 0;       ///< measured execution time
    double dramJ = 0;         ///< DRAM energy
    double systemJ = 0;       ///< static + DRAM energy
    double systemPowerW = 0;  ///< average system power
    double edp = 0;           ///< energy-delay product (J*s)
};

/**
 * Build the energy report for an interval.
 *
 * @param params     power-model constants
 * @param activity   DRAM activity during the interval
 * @param cycles     measured CPU cycles
 * @param cpu_hz     CPU frequency
 * @param total_ranks powered DRAM ranks
 */
EnergyReport computeEnergy(const EnergyParams &params,
                           const ChannelActivity &activity,
                           std::uint64_t cycles, double cpu_hz,
                           unsigned total_ranks);

} // namespace morph

#endif // MORPH_SIM_ENERGY_HH
