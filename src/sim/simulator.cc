#include "sim/simulator.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"
#include "common/prof.hh"
#include "workloads/trace_file.hh"

namespace morph
{

SimOptions
SimOptions::fromEnv(SimOptions defaults)
{
    if (const char *env = std::getenv("MORPH_SIM_ACCESSES")) {
        const long long v = std::atoll(env);
        if (v > 0)
            defaults.accessesPerCore = std::uint64_t(v);
    }
    if (const char *env = std::getenv("MORPH_SIM_WARMUP")) {
        const long long v = std::atoll(env);
        if (v >= 0)
            defaults.warmupPerCore = std::uint64_t(v);
    }
    return defaults;
}

double
SimResult::overflowsPerMillion() const
{
    const std::uint64_t data = traffic.accesses(Traffic::Data);
    if (data == 0)
        return 0.0;
    return double(traffic.totalOverflows()) * 1e6 / double(data);
}

double
SimResult::persistsPerWrite() const
{
    const std::uint64_t writes = traffic.writes[unsigned(Traffic::Data)];
    if (writes == 0)
        return 0.0;
    return double(persist.linePersists) / double(writes);
}

namespace
{

SimResult
runTraces(const std::string &name,
          std::vector<std::unique_ptr<TraceSource>> traces,
          const SecureModelConfig &secmem, const SimOptions &options,
          MorphScope *scope)
{
    SystemConfig config;
    config.secmem = secmem;
    config.dram = options.dram;
    config.timing = options.timing;
    config.numCores = unsigned(traces.size());

    SimSystem system(config, std::move(traces));
    system.attachScope(scope);

    if (options.warmupPerCore > 0) {
        MORPH_PROF_SCOPE("sim.warmup");
        system.run(options.warmupPerCore);
    }
    system.startMeasurement();

    {
        MORPH_PROF_SCOPE("sim.measure");
        const std::uint64_t epoch =
            scope ? scope->config().epochAccesses : 0;
        if (epoch > 0) {
            // Epoch-sampled measurement: run in epoch-sized chunks
            // and record counter deltas after each, so per-epoch
            // deltas sum exactly to the run totals (the final chunk
            // may be short).
            scope->epochs().baseline(scope->registry());
            std::uint64_t remaining = options.accessesPerCore;
            while (remaining > 0) {
                const std::uint64_t chunk = std::min(epoch, remaining);
                system.run(chunk);
                remaining -= chunk;
                // Drain the persist domain before the last sample so
                // the final barrier's persists land inside the series
                // (per-epoch deltas must sum exactly to the totals).
                if (remaining == 0)
                    system.finishRun();
                scope->epochs().sample(scope->registry(), chunk);
            }
        } else {
            system.run(options.accessesPerCore);
            system.finishRun();
        }
    }

    SimResult result;
    result.workload = name;
    result.configName = secmem.tree.name;
    result.ipc = system.aggregateIpc();
    result.cycles = system.measuredCycles();
    result.instructions = system.measuredInstructions();
    result.traffic = system.secmem().stats();
    result.metadataCache = system.secmem().metadataCache().stats();
    result.dram = system.dram().totalActivity();
    if (const PersistDomain *domain = system.secmem().persistDomain())
        result.persist = domain->stats();

    EnergyParams energy_params;
    const DramConfig &dram = config.dram;
    result.energy = computeEnergy(
        energy_params, result.dram, result.cycles, dram.cpuFreqHz,
        dram.channels * dram.ranksPerChannel);

    if (scope) {
        // Post-run scalars: registered after the epoch baseline, so
        // they appear in the totals but not in the time series.
        StatRegistry &reg = scope->registry();
        reg.scalar("energy.exec_seconds", result.energy.seconds,
                   "measured execution time");
        reg.scalar("energy.dram_joules", result.energy.dramJ,
                   "DRAM energy over the measured interval");
        reg.scalar("energy.system_joules", result.energy.systemJ,
                   "system energy over the measured interval");
        reg.scalar("energy.system_watts", result.energy.systemPowerW,
                   "average system power");
        reg.scalar("energy.edp", result.energy.edp,
                   "energy-delay product");

        scope->meta.set("workload", name);
        scope->meta.set("config", secmem.tree.name);
        scope->meta.set("accesses_per_core",
                        std::to_string(options.accessesPerCore));
        scope->meta.set("warmup_per_core",
                        std::to_string(options.warmupPerCore));
        scope->meta.set("seed", std::to_string(options.seed));
        scope->meta.set("timing", options.timing ? "true" : "false");

        // The registry points into `system`, which dies with this
        // frame; materialize every value so the scope outlives it.
        reg.freeze();
    }
    return result;
}

constexpr unsigned numCores = 4;

} // namespace

SimResult
runWorkload(const WorkloadSpec &workload, const SecureModelConfig &secmem,
            const SimOptions &options, MorphScope *scope)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(numCores);
    for (unsigned core = 0; core < numCores; ++core)
        traces.push_back(makeWorkloadTrace(workload, core, numCores,
                                           secmem.memBytes,
                                           options.seed,
                                           options.footprintScale));
    return runTraces(workload.name, std::move(traces), secmem,
                     options, scope);
}

SimResult
runMix(const MixSpec &mix, const SecureModelConfig &secmem,
       const SimOptions &options, MorphScope *scope)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(numCores);
    for (unsigned core = 0; core < numCores; ++core) {
        const WorkloadSpec *spec = findWorkload(mix.parts[core]);
        if (!spec)
            fatal("mix %s: unknown workload %s", mix.name.c_str(),
                  mix.parts[core].c_str());
        traces.push_back(makeWorkloadTrace(*spec, core, numCores,
                                           secmem.memBytes,
                                           options.seed,
                                           options.footprintScale));
    }
    return runTraces(mix.name, std::move(traces), secmem, options,
                     scope);
}

SimResult
runByName(const std::string &name, const SecureModelConfig &secmem,
          const SimOptions &options, MorphScope *scope)
{
    if (const WorkloadSpec *spec = findWorkload(name))
        return runWorkload(*spec, secmem, options, scope);
    for (const MixSpec &mix : mixTable())
        if (mix.name == name)
            return runMix(mix, secmem, options, scope);
    fatal("unknown workload or mix: %s", name.c_str());
}

SimResult
runTraceFile(const std::string &path, const SecureModelConfig &secmem,
             const SimOptions &options, MorphScope *scope)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(numCores);
    for (unsigned core = 0; core < numCores; ++core)
        traces.push_back(std::make_unique<FileTraceSource>(path));
    return runTraces(path, std::move(traces), secmem, options, scope);
}

std::vector<std::string>
evaluationWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : workloadTable())
        if (spec.suite == "SPEC")
            names.push_back(spec.name);
    for (const auto &mix : mixTable())
        names.push_back(mix.name);
    for (const auto &spec : workloadTable())
        if (spec.suite == "GAP")
            names.push_back(spec.name);
    return names;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

} // namespace morph
