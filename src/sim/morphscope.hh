/**
 * @file
 * MorphScope: the per-run observability context.
 *
 * Bundles the three morphscope surfaces — the stat registry, the
 * epoch time series, and the request-lifecycle trace — plus run
 * metadata, and owns their export paths. A scope is created by the
 * caller (morphsim, morphbench, tests), handed to the run entry
 * points in sim/simulator.hh, and read back after the run:
 *
 *   MorphScope scope({.epochAccesses = 50'000,
 *                     .traceSampleEvery = 64});
 *   SimResult r = runByName("mcf", secmem, options, &scope);
 *   scope.writeStatsJson("out.json");
 *   scope.writeTrace("trace.json");
 *
 * The runner registers every component's stats into the registry,
 * samples an epoch every `epochAccesses` per-core accesses of the
 * measured window, traces 1-in-`traceSampleEvery` data accesses, and
 * freezes the registry before the simulated system is destroyed — a
 * scope returned from a run entry point is always safe to export.
 */

#ifndef MORPH_SIM_MORPHSCOPE_HH
#define MORPH_SIM_MORPHSCOPE_HH

#include <string>

#include "common/annotations.hh"
#include "common/stat_registry.hh"
#include "common/trace_log.hh"

namespace morph
{

/** What the scope observes (all observation is off by default). */
struct ScopeConfig
{
    /** Epoch length in measured accesses per core; 0 disables the
     *  time series. */
    std::uint64_t epochAccesses = 0;

    /** Trace every Nth data access (1 = all); 0 disables tracing. */
    std::uint64_t traceSampleEvery = 0;

    /** Register per-level metadata-cache occupancy gauges. */
    bool occupancy = false;
};

/** Observability context of one simulation run. */
class MorphScope
{
  public:
    explicit MorphScope(const ScopeConfig &config = ScopeConfig{})
        : config_(config)
    {}

    const ScopeConfig &config() const { return config_; }
    bool tracing() const { return config_.traceSampleEvery > 0; }

    StatRegistry &registry() { return registry_; }
    const StatRegistry &registry() const { return registry_; }
    EpochSeries &epochs() { return epochs_; }
    const EpochSeries &epochs() const { return epochs_; }
    TraceLog &trace() { return trace_; }
    const TraceLog &trace() const { return trace_; }

    /** Run metadata exported into the JSON "meta" object. */
    RunMeta meta;

    /** Write the morphscope JSON document; false on I/O failure. */
    bool writeStatsJson(const std::string &path) const;

    /** Write the epoch (or totals) CSV; false on I/O failure. */
    bool writeStatsCsv(const std::string &path) const;

    /** Write the Chrome trace; false on I/O failure. */
    bool writeTrace(const std::string &path) const;

    /** Print the text report ("prefix.name value" lines). */
    void dumpText(std::ostream &os, const std::string &prefix) const;

  private:
    // A MorphScope is the per-run observability context: the sweep
    // engine builds one inside each worker task, so the members are
    // shard-local by ownership (see docs/CONCURRENCY.md).
    ScopeConfig config_ MORPH_SHARD_LOCAL;
    StatRegistry registry_ MORPH_SHARD_LOCAL;
    EpochSeries epochs_ MORPH_SHARD_LOCAL;
    TraceLog trace_ MORPH_SHARD_LOCAL;
};

} // namespace morph

#endif // MORPH_SIM_MORPHSCOPE_HH
