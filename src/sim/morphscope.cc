#include "sim/morphscope.hh"

#include <fstream>

namespace morph
{

bool
MorphScope::writeStatsJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    morph::writeStatsJson(out, registry_, meta,
                          epochs_.active() ? &epochs_ : nullptr);
    return bool(out);
}

bool
MorphScope::writeStatsCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    morph::writeStatsCsv(out, registry_,
                         epochs_.active() ? &epochs_ : nullptr);
    return bool(out);
}

bool
MorphScope::writeTrace(const std::string &path) const
{
    return trace_.writeTo(path);
}

void
MorphScope::dumpText(std::ostream &os, const std::string &prefix) const
{
    registry_.dumpText(os, prefix);
}

} // namespace morph
