#include "sim/energy.hh"

namespace morph
{

EnergyReport
computeEnergy(const EnergyParams &params, const ChannelActivity &activity,
              std::uint64_t cycles, double cpu_hz, unsigned total_ranks)
{
    EnergyReport report;
    report.seconds = double(cycles) / cpu_hz;
    const DramEnergy dram = dramEnergy(params.dram, activity,
                                       report.seconds, total_ranks);
    report.dramJ = dram.totalJ();
    report.systemJ = report.dramJ +
                     params.staticSystemWatts * report.seconds;
    report.systemPowerW =
        report.seconds > 0 ? report.systemJ / report.seconds : 0.0;
    report.edp = report.systemJ * report.seconds;
    return report;
}

} // namespace morph
