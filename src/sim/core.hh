/**
 * @file
 * Trace-driven out-of-order core model (USIMM-style, paper Table I).
 *
 * Each core replays its post-LLC trace: non-memory instructions retire
 * at `retireWidth` per CPU cycle; reads are issued to the secure
 * memory system and occupy the reorder buffer until their data
 * returns; the core may run ahead at most `robSize` instructions past
 * the oldest incomplete read (in-order retirement through a 192-entry
 * ROB). Write-backs are posted and never block.
 */

#ifndef MORPH_SIM_CORE_HH
#define MORPH_SIM_CORE_HH

#include <deque>

#include "common/types.hh"
#include "workloads/trace.hh"

namespace morph
{

/** Core microarchitecture parameters. */
struct CoreConfig
{
    unsigned robSize = 192;
    unsigned retireWidth = 4; ///< instructions per CPU cycle
};

/** One trace-driven core. */
class Core
{
  public:
    Core(unsigned id, TraceSource &trace, const CoreConfig &config)
        : id_(id), trace_(&trace), config_(config)
    {}

    /** Fetch the next trace entry and account its instruction gap;
     *  the caller issues the access and reports back. */
    TraceEntry beginEntry();

    /**
     * Finish the entry: for reads, record the outstanding miss with
     * completion cycle @p done; stalls are applied when the ROB window
     * fills.
     */
    void completeEntry(const TraceEntry &entry, Cycle done);

    /** Core-local clock (CPU cycles). */
    Cycle clock() const { return clock_; }

    /** Instructions issued so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** Data accesses performed. */
    std::uint64_t accesses() const { return accesses_; }

    /** Drain all outstanding reads (advances the clock). */
    void drain();

    /** Snapshot baseline at the end of warm-up. */
    void markMeasurementStart();

    /** Instructions since the measurement baseline. */
    std::uint64_t measuredInstructions() const
    {
        return instructions_ - baseInstructions_;
    }

    /** Data accesses since the measurement baseline. */
    std::uint64_t measuredAccesses() const
    {
        return accesses_ - baseAccesses_;
    }

    /** Cycles since the measurement baseline. */
    Cycle measuredCycles() const { return clock_ - baseClock_; }

    unsigned id() const { return id_; }

  private:
    void retireUpTo(std::uint64_t window_floor);

    unsigned id_;
    TraceSource *trace_;
    CoreConfig config_;

    Cycle clock_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t accesses_ = 0;
    Cycle baseClock_ = 0;
    std::uint64_t baseInstructions_ = 0;
    std::uint64_t baseAccesses_ = 0;

    /** Outstanding reads: (instruction position, completion cycle). */
    std::deque<std::pair<std::uint64_t, Cycle>> outstanding_;
};

} // namespace morph

#endif // MORPH_SIM_CORE_HH
