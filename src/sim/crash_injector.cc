#include "sim/crash_injector.hh"

#include <vector>

#include "common/check.hh"
#include "common/log.hh"
#include "workloads/workload_db.hh"

namespace morph
{

CrashReport
injectCrash(const CrashInjectorOptions &options)
{
    if (!options.model.persist.enabled)
        fatal("crash injector: the model's persist domain is disabled");
    const WorkloadSpec *spec = findWorkload(options.workload);
    if (!spec)
        fatal("crash injector: unknown workload %s",
              options.workload.c_str());

    // One core, no DRAM timing: the persist domain only observes the
    // controller, so the cheapest faithful drive is the raw access
    // stream. Crashing *is* stopping — nothing is drained.
    SecureMemoryModel model(options.model);
    auto trace = makeWorkloadTrace(*spec, 0, 1, options.model.memBytes,
                                   options.seed,
                                   options.footprintScale);

    std::vector<MemAccess> scratch;
    for (std::uint64_t i = 0; i < options.cutAccesses; ++i) {
        const TraceEntry entry = trace->next();
        scratch.clear();
        model.onDataAccess(entry.line, entry.type, scratch);
    }

    const PersistDomain *domain = model.persistDomain();
    MORPH_CHECK(domain != nullptr);

    CrashReport report;
    report.cutAccesses = options.cutAccesses;
    report.persist = domain->stats();
    report.recovery = domain->recover();
    report.fingerprint = domain->durableFingerprint();
    return report;
}

} // namespace morph
