#include "sim/core.hh"

#include <algorithm>

namespace morph
{

TraceEntry
Core::beginEntry()
{
    const TraceEntry entry = trace_->next();
    // The gap instructions retire at full width.
    clock_ += (entry.gap + config_.retireWidth - 1) / config_.retireWidth;
    instructions_ += entry.gap + 1;
    // The ROB admits this access only once it is within robSize
    // instructions of the oldest incomplete read.
    if (instructions_ > config_.robSize)
        retireUpTo(instructions_ - config_.robSize);
    return entry;
}

void
Core::retireUpTo(std::uint64_t window_floor)
{
    while (!outstanding_.empty() &&
           outstanding_.front().first <= window_floor) {
        clock_ = std::max(clock_, outstanding_.front().second);
        outstanding_.pop_front();
    }
}

void
Core::completeEntry(const TraceEntry &entry, Cycle done)
{
    ++accesses_;
    if (entry.type == AccessType::Read)
        outstanding_.emplace_back(instructions_, done);
    // Writes are posted: the write queue absorbs them.
}

void
Core::drain()
{
    while (!outstanding_.empty()) {
        clock_ = std::max(clock_, outstanding_.front().second);
        outstanding_.pop_front();
    }
}

void
Core::markMeasurementStart()
{
    baseClock_ = clock_;
    baseInstructions_ = instructions_;
    baseAccesses_ = accesses_;
}

} // namespace morph
