#include "workloads/trace_generators.hh"

#include <cmath>
#include <numeric>

#include "common/check.hh"
#include "common/log.hh"

namespace morph
{

namespace
{

/** Greatest common divisor (for coprime multiplier search). */
std::uint64_t
gcd64(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Common machinery: gap sampling, type selection, page mapping. */
class PatternBase : public TraceSource
{
  public:
    explicit PatternBase(const GeneratorParams &params)
        : params_(params), rng_(params.seed),
          pages_(std::max<std::uint64_t>(1,
                     params.footprintLines / linesPerPage)),
          perm_(pages_, params.seed ^ 0xfeedfaceull)
    {
        MORPH_CHECK_LE(params.footprintLines, params.regionLines);
        const double pki = params.readPki + params.writePki;
        MORPH_CHECK(pki > 0);
        meanGap_ = 1000.0 / pki;
        writeFraction_ = params.writePki / pki;
    }

    TraceEntry
    next() override
    {
        TraceEntry entry;
        entry.gap = sampleGap();
        entry.type = rng_.chance(writeFraction_) ? AccessType::Write
                                                 : AccessType::Read;
        entry.line = mapLine(nextVirtualLine(entry.type));
        return entry;
    }

  protected:
    /** Next virtual line in [0, footprintLines). */
    virtual std::uint64_t nextVirtualLine(AccessType type) = 0;

    /** Apply the physical page permutation. */
    LineAddr
    mapLine(std::uint64_t vline) const
    {
        const std::uint64_t vpage = vline / linesPerPage;
        const std::uint64_t offset = vline % linesPerPage;
        const std::uint64_t ppage = perm_(vpage % pages_);
        const LineAddr line =
            params_.regionBaseLine + ppage * linesPerPage + offset;
        MORPH_CHECK(line <
               params_.regionBaseLine + params_.regionLines);
        return line;
    }

    std::uint32_t
    sampleGap()
    {
        // Geometric inter-arrival around the PKI-derived mean.
        const double u = rng_.uniform();
        const double gap = -meanGap_ * std::log1p(-u);
        return std::uint32_t(std::min(gap, 1e6));
    }

    GeneratorParams params_;
    Rng rng_;
    std::uint64_t pages_;
    PagePermutation perm_;
    double meanGap_;
    double writeFraction_;
};

/**
 * Sequential sweep over the footprint. Reads and writes advance
 * independent sequential cursors: streaming codes read one array while
 * writing another, so the write stream touches every line of its pages
 * in order — the uniform counter usage that makes rebasing effective.
 */
class StreamingGenerator : public PatternBase
{
  public:
    explicit StreamingGenerator(const GeneratorParams &params)
        : PatternBase(params),
          writeCursor_(pages_ * linesPerPage / 2)
    {}

  protected:
    std::uint64_t
    nextVirtualLine(AccessType type) override
    {
        const std::uint64_t span = pages_ * linesPerPage;
        if (type == AccessType::Write) {
            const std::uint64_t line = writeCursor_;
            writeCursor_ = (writeCursor_ + 1) % span;
            return line;
        }
        const std::uint64_t line = readCursor_;
        readCursor_ = (readCursor_ + 1) % span;
        return line;
    }

  private:
    std::uint64_t readCursor_ = 0;
    std::uint64_t writeCursor_;
};

/**
 * Samples write targets from a concentrated working set: a
 * popularity-skewed set of *hot pages* scattered across the footprint
 * (random OS placement intersperses them with cold pages — sparse
 * integrity-tree counter usage), and within each hot page a small
 * fixed subset of lines (sparse encryption-counter usage). This is
 * the paper's Fig 7 left mode: "< 25% counters used in cacheline".
 */
class WriteWorkingSet
{
  public:
    WriteWorkingSet(const GeneratorParams &params, std::uint64_t pages)
        : enabled_(params.writeHotFraction < 1.0),
          hotPages_(enabled_
                        ? std::max<std::uint64_t>(
                              1, std::uint64_t(double(pages) *
                                               params.writeHotFraction))
                        : 1),
          zipf_(hotPages_, params.writeZipfExponent),
          scatter_(pages, params.seed ^ 0x5ca77e12ull)
    {}

    bool enabled() const { return enabled_; }

    std::uint64_t
    sample(Rng &rng) const
    {
        // Rank by popularity, scatter across the footprint's pages,
        // then pick one of the page's few hot line offsets.
        const std::uint64_t page = scatter_(zipf_.sample(rng));
        const std::uint64_t phase =
            (page * 0x9e3779b97f4a7c15ull) >> 58;
        const std::uint64_t which = rng.below(hotLinesPerPage);
        const std::uint64_t offset =
            (phase + which * offsetStride) % linesPerPage;
        return page * linesPerPage + offset;
    }

  private:
    /** Distinct write-hot lines per hot page (< 25% of 64). */
    static constexpr std::uint64_t hotLinesPerPage = 6;
    static constexpr std::uint64_t offsetStride = 11; // odd: distinct

    bool enabled_;
    std::uint64_t hotPages_;
    ZipfSampler zipf_;
    PagePermutation scatter_;
};

/** Uniform random lines over the footprint. */
class RandomGenerator : public PatternBase
{
  public:
    explicit RandomGenerator(const GeneratorParams &params)
        : PatternBase(params), writes_(params, pages_)
    {}

  protected:
    std::uint64_t
    nextVirtualLine(AccessType type) override
    {
        if (type == AccessType::Write && writes_.enabled())
            return writes_.sample(rng_);
        return rng_.below(pages_ * linesPerPage);
    }

  private:
    WriteWorkingSet writes_;
};

/** Zipf-popular pages, uniform lines within a page. */
class HotColdGenerator : public PatternBase
{
  public:
    explicit HotColdGenerator(const GeneratorParams &params)
        : PatternBase(params), zipf_(pages_, params.zipfExponent),
          writes_(params, pages_)
    {}

  protected:
    std::uint64_t
    nextVirtualLine(AccessType type) override
    {
        if (type == AccessType::Write && writes_.enabled())
            return writes_.sample(rng_);
        const std::uint64_t page = zipf_.sample(rng_);
        return page * linesPerPage + rng_.below(linesPerPage);
    }

  private:
    ZipfSampler zipf_;
    WriteWorkingSet writes_;
};

/**
 * Sequential page sweep touching a fixed ~40% subset of each page's
 * lines (mid-range counter-usage fraction).
 */
class MixedGenerator : public PatternBase
{
  public:
    using PatternBase::PatternBase;

  protected:
    std::uint64_t
    nextVirtualLine(AccessType) override
    {
        // `usedPerPage` distinct offsets per page, derived from a
        // per-page phase so different pages use different subsets.
        const std::uint64_t page = page_;
        const std::uint64_t phase =
            (page * 0x9e3779b97f4a7c15ull) >> 58; // 6-bit page phase
        const std::uint64_t offset =
            (phase + subCursor_ * stride) % linesPerPage;
        if (++subCursor_ >= usedPerPage) {
            subCursor_ = 0;
            page_ = (page_ + 1) % pages_;
        }
        return page * linesPerPage + offset;
    }

  private:
    static constexpr std::uint64_t usedPerPage = 26;
    static constexpr std::uint64_t stride = 5; // odd: distinct offsets
    std::uint64_t page_ = 0;
    std::uint64_t subCursor_ = 0;
};

} // namespace

PagePermutation::PagePermutation(std::uint64_t num_pages,
                                 std::uint64_t seed)
    : n_(num_pages)
{
    MORPH_CHECK(num_pages > 0);
    // Multiplier coprime to n gives a bijection v -> (a*v + b) mod n.
    std::uint64_t a = (seed | 1) % n_;
    if (a == 0)
        a = 1;
    while (gcd64(a, n_) != 1)
        a = (a + 1) % n_ == 0 ? 1 : a + 1;
    multiplier_ = a;
    offset_ = (seed >> 7) % n_;
}

std::uint64_t
PagePermutation::operator()(std::uint64_t vpage) const
{
    MORPH_CHECK_LT(vpage, n_);
    return std::uint64_t((static_cast<unsigned __int128>(vpage) *
                              multiplier_ +
                          offset_) %
                         n_);
}

std::unique_ptr<TraceSource>
makeGenerator(Pattern pattern, const GeneratorParams &params)
{
    switch (pattern) {
      case Pattern::Streaming:
        return std::make_unique<StreamingGenerator>(params);
      case Pattern::Random:
        return std::make_unique<RandomGenerator>(params);
      case Pattern::HotCold:
        return std::make_unique<HotColdGenerator>(params);
      case Pattern::Mixed:
        return std::make_unique<MixedGenerator>(params);
    }
    panic("unknown pattern %d", int(pattern));
}

} // namespace morph
