/**
 * @file
 * Post-LLC trace abstraction (USIMM-style).
 *
 * The simulator is trace-driven at the main-memory boundary: a trace
 * entry is one LLC miss (read) or dirty write-back (write) together
 * with the number of non-memory instructions the core executed since
 * the previous entry. Synthetic generators (trace_generators.hh)
 * produce unbounded streams matching published workload
 * characteristics.
 */

#ifndef MORPH_WORKLOADS_TRACE_HH
#define MORPH_WORKLOADS_TRACE_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace morph
{

/** One post-LLC memory event. */
struct TraceEntry
{
    std::uint32_t gap;  ///< instructions executed before this access
    AccessType type;    ///< read (demand miss) or write (write-back)
    LineAddr line;      ///< physical data line accessed
};

/** An unbounded source of trace entries. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next entry. */
    virtual TraceEntry next() = 0;
};

} // namespace morph

#endif // MORPH_WORKLOADS_TRACE_HH
