#include "workloads/trace_file.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace morph
{

FileTraceSource::FileTraceSource(const std::string &path)
{
    std::ifstream input(path);
    if (!input)
        fatal("trace: cannot open %s", path.c_str());
    parse(input, path);
}

FileTraceSource::FileTraceSource(std::istream &input,
                                 const std::string &name)
{
    parse(input, name);
}

void
FileTraceSource::parse(std::istream &input, const std::string &name)
{
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);

        std::istringstream fields(line);
        std::string gap_text;
        std::string type;
        std::string addr_hex;
        if (!(fields >> gap_text))
            continue; // blank or comment-only line
        // The gap parses strictly: a malformed first field (e.g. a
        // truncated "R 12" record) is a broken trace, not a comment.
        char *gap_end = nullptr;
        const std::uint64_t gap =
            std::strtoull(gap_text.c_str(), &gap_end, 10);
        if (gap_text[0] == '-' || gap_end == gap_text.c_str() ||
            *gap_end != '\0') {
            fatal("trace %s:%zu: bad gap '%s'; expected "
                  "'<gap> <R|W> <hex-line>'",
                  name.c_str(), line_number, gap_text.c_str());
        }
        if (!(fields >> type >> addr_hex) ||
            (type != "R" && type != "W")) {
            fatal("trace %s:%zu: expected '<gap> <R|W> <hex-line>'",
                  name.c_str(), line_number);
        }
        TraceEntry entry;
        if (gap > ~std::uint32_t(0))
            warn("trace %s:%zu: gap %llu exceeds 32 bits, clamped to "
                 "%u",
                 name.c_str(), line_number,
                 static_cast<unsigned long long>(gap), ~std::uint32_t(0));
        entry.gap = std::uint32_t(std::min<std::uint64_t>(gap, ~0u));
        entry.type = type == "W" ? AccessType::Write : AccessType::Read;
        char *end = nullptr;
        entry.line = std::strtoull(addr_hex.c_str(), &end, 16);
        if (end == addr_hex.c_str() || *end != '\0')
            fatal("trace %s:%zu: bad line address '%s'", name.c_str(),
                  line_number, addr_hex.c_str());
        entries_.push_back(entry);
    }
    if (entries_.empty())
        fatal("trace %s: no events", name.c_str());
}

TraceEntry
FileTraceSource::next()
{
    const TraceEntry entry = entries_[position_];
    position_ = (position_ + 1) % entries_.size();
    return entry;
}

void
writeTrace(std::ostream &output, const std::vector<TraceEntry> &entries)
{
    for (const TraceEntry &entry : entries) {
        output << entry.gap << ' '
               << (entry.type == AccessType::Write ? 'W' : 'R') << ' '
               << std::hex << entry.line << std::dec << '\n';
    }
}

std::vector<TraceEntry>
captureTrace(TraceSource &source, std::size_t count)
{
    std::vector<TraceEntry> entries;
    entries.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        entries.push_back(source.next());
    return entries;
}

} // namespace morph
