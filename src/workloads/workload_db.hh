/**
 * @file
 * Workload database: the paper's Table II, as synthetic-trace specs.
 *
 * 22 named workloads (16 SPEC2006 + 6 GAP) with the published
 * read-PKI, write-PKI and 4-core memory footprints, plus the 6 mixed
 * workloads. Pattern classes are assigned from the paper's qualitative
 * descriptions (random-access vs streaming vs skewed-graph); see
 * DESIGN.md for the mapping rationale.
 */

#ifndef MORPH_WORKLOADS_WORKLOAD_DB_HH
#define MORPH_WORKLOADS_WORKLOAD_DB_HH

#include <array>
#include <string>
#include <vector>

#include "workloads/trace_generators.hh"

namespace morph
{

/** One named workload (all four cores run copies of it: rate mode). */
struct WorkloadSpec
{
    std::string name;
    std::string suite; ///< "SPEC" or "GAP"
    double readPki;
    double writePki;
    double footprintGb; ///< 4-core footprint (paper Table II)
    Pattern pattern;
    double zipfExponent = 0.8;

    /** Write working set as a fraction of footprint lines (Random /
     *  HotCold patterns; see GeneratorParams::writeHotFraction). */
    double writeHotFraction = 1.0;

    /** Popularity skew over the write working set. */
    double writeZipfExponent = 0.7;
};

/** A 4-core heterogeneous mix. */
struct MixSpec
{
    std::string name;
    std::array<std::string, 4> parts; ///< workload name per core
};

/** The 22 named workloads of Table II. */
const std::vector<WorkloadSpec> &workloadTable();

/** The 6 mixes of the paper's evaluation. */
const std::vector<MixSpec> &mixTable();

/** Find a workload by name; nullptr if unknown. */
const WorkloadSpec *findWorkload(const std::string &name);

/**
 * Build the per-core trace for @p spec.
 *
 * @param spec      workload characteristics
 * @param core      core id (0..cores-1); selects the address region
 * @param cores     number of cores sharing @p mem_bytes
 * @param mem_bytes protected memory capacity
 * @param seed      base RNG seed (deterministic traces)
 * @param footprint_scale divide the Table-II footprint by this factor;
 *        used by the overflow-rate experiments to reach counter
 *        steady state within a tractable access budget (the paper
 *        warms counters for 25 B instructions instead)
 */
std::unique_ptr<TraceSource> makeWorkloadTrace(const WorkloadSpec &spec,
                                               unsigned core,
                                               unsigned cores,
                                               std::uint64_t mem_bytes,
                                               std::uint64_t seed,
                                               double footprint_scale = 1.0);

} // namespace morph

#endif // MORPH_WORKLOADS_WORKLOAD_DB_HH
