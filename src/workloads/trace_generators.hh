/**
 * @file
 * Synthetic post-LLC trace generators.
 *
 * The paper's workloads are characterized (its Table II) by read/write
 * PKI, footprint, and an access-pattern class that determines counter
 * usage (its Fig 7): streaming workloads write uniformly to most lines
 * of write-heavy pages; random workloads scatter accesses; graph
 * workloads show heavy page-popularity skew. Generators reproduce
 * those regimes:
 *
 *  Streaming — a sequential cursor sweeps the footprint; every line of
 *      a page is touched, driving uniform encryption-counter usage.
 *  Random    — uniform random lines over the footprint; sparse counter
 *      usage at every level.
 *  HotCold   — Zipf-popular pages with uniform lines inside; hot pages
 *      interspersed with cold pages in physical memory.
 *  Mixed     — sequential page sweep touching only a fixed ~40% subset
 *      of each page's lines: the mid-range usage fraction for which
 *      neither ZCC nor rebasing is ideal (GemsFDTD in the paper).
 *
 * All generators apply a page-granularity physical placement
 * permutation modelling the paper's "Random" OS page-allocation
 * policy, which intersperses hot and cold pages in physical space —
 * the cause of sparse integrity-tree counter usage.
 */

#ifndef MORPH_WORKLOADS_TRACE_GENERATORS_HH
#define MORPH_WORKLOADS_TRACE_GENERATORS_HH

#include <memory>

#include "common/rng.hh"
#include "workloads/trace.hh"

namespace morph
{

/** Access-pattern classes. */
enum class Pattern { Streaming, Random, HotCold, Mixed };

/** Parameters shared by all pattern generators. */
struct GeneratorParams
{
    LineAddr regionBaseLine = 0;   ///< first line of this core's region
    std::uint64_t regionLines = 0; ///< lines available to this core
    std::uint64_t footprintLines = 0; ///< lines actually used (<= region)
    double readPki = 10.0;
    double writePki = 5.0;
    double zipfExponent = 0.8; ///< HotCold page-popularity skew

    /**
     * Write working set, as a fraction of the footprint's lines
     * (Random / HotCold patterns only; Streaming and Mixed writes
     * follow their sweep). Real workloads write a much smaller, more
     * popular set of lines than they read — the source of the
     * concentrated counter increments behind the paper's overflow
     * rates. 1.0 disables the distinction.
     */
    double writeHotFraction = 1.0;

    /** Popularity skew over the write working set's lines. */
    double writeZipfExponent = 0.7;

    std::uint64_t seed = 1;
};

/** Construct a generator of the given pattern class. */
std::unique_ptr<TraceSource> makeGenerator(Pattern pattern,
                                           const GeneratorParams &params);

/**
 * Page-placement permutation: maps virtual page v in [0, n) to a
 * physical page in [0, n) bijectively via a multiplicative hash with
 * a multiplier coprime to n. Deterministic in (n, seed).
 */
class PagePermutation
{
  public:
    PagePermutation(std::uint64_t num_pages, std::uint64_t seed);

    std::uint64_t operator()(std::uint64_t vpage) const;

    std::uint64_t size() const { return n_; }

  private:
    std::uint64_t n_;
    std::uint64_t multiplier_;
    std::uint64_t offset_;
};

} // namespace morph

#endif // MORPH_WORKLOADS_TRACE_GENERATORS_HH
