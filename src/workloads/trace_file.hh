/**
 * @file
 * Trace file I/O: bring-your-own LLC-miss traces.
 *
 * The simulator is trace-driven; besides the synthetic generators, a
 * user with real USIMM-style traces can replay them. The format is
 * one event per line, whitespace separated:
 *
 *     <gap> <R|W> <line-address-hex>
 *
 * e.g. "37 R 1a2b3c" — 37 non-memory instructions, then a read of
 * cacheline 0x1a2b3c. '#' starts a comment; blank and comment-only
 * lines are skipped. Any other malformed line — a non-numeric or
 * negative gap, a bad type, a bad address — is fatal: a truncated
 * record must never be silently dropped. Gaps wider than 32 bits are
 * clamped to the uint32 maximum with a warning.
 *
 * FileTraceSource loads the whole trace into memory and replays it
 * cyclically (simulations usually need more events than a captured
 * trace holds; cycling a long trace is the standard USIMM practice).
 */

#ifndef MORPH_WORKLOADS_TRACE_FILE_HH
#define MORPH_WORKLOADS_TRACE_FILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workloads/trace.hh"

namespace morph
{

/** Replays a trace file cyclically. */
class FileTraceSource : public TraceSource
{
  public:
    /** Load from a file path; fatal() on open/parse errors. */
    explicit FileTraceSource(const std::string &path);

    /** Load from a stream (tests); fatal() on parse errors. */
    FileTraceSource(std::istream &input, const std::string &name);

    TraceEntry next() override;

    /** Number of distinct events loaded. */
    std::size_t size() const { return entries_.size(); }

  private:
    void parse(std::istream &input, const std::string &name);

    std::vector<TraceEntry> entries_;
    std::size_t position_ = 0;
};

/** Write trace entries in the file format (round-trip with above). */
void writeTrace(std::ostream &output,
                const std::vector<TraceEntry> &entries);

/**
 * Capture @p count entries from @p source into a vector (trace
 * snapshotting: synthesize once, replay identically elsewhere).
 */
std::vector<TraceEntry> captureTrace(TraceSource &source,
                                     std::size_t count);

} // namespace morph

#endif // MORPH_WORKLOADS_TRACE_FILE_HH
