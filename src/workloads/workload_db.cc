#include "workloads/workload_db.hh"

#include <algorithm>

#include "common/log.hh"

namespace morph
{

const std::vector<WorkloadSpec> &
workloadTable()
{
    // Read/write PKI and footprints are the paper's Table II; pattern
    // classes follow its qualitative workload descriptions: mcf /
    // omnetpp / xalancbmk and the Twitter graph kernels make random
    // accesses over large working sets; libquantum / gcc / lbm and
    // most HPC codes stream; web graphs are heavily skewed; GemsFDTD
    // is the paper's "neither sparse nor uniform" outlier.
    // Fields: name, suite, readPKI, writePKI, footprintGB, pattern,
    // page-zipf, write-hot-fraction, write-zipf. Random and skewed
    // workloads write a small popular subset of their lines (sparse
    // counter usage); streaming workloads write their whole sweep
    // (uniform usage).
    static const std::vector<WorkloadSpec> table = {
        {"mcf", "SPEC", 69, 2, 7.5, Pattern::Random, 0.8, 0.01, 0.8},
        {"omnetpp", "SPEC", 18, 9, 0.6, Pattern::Random, 0.8, 0.01, 0.8},
        {"xalancbmk", "SPEC", 4, 3, 1.1, Pattern::Random, 0.8, 0.01,
         0.8},
        {"GemsFDTD", "SPEC", 19, 8, 3.1, Pattern::Mixed, 0.8},
        {"milc", "SPEC", 19, 7, 2.3, Pattern::Streaming, 0.8},
        {"soplex", "SPEC", 28, 6, 1.0, Pattern::HotCold, 0.8, 0.05,
         0.9},
        {"bzip2", "SPEC", 5, 1.4, 1.2, Pattern::Streaming, 0.8},
        {"zeusmp", "SPEC", 5, 1.9, 1.9, Pattern::Streaming, 0.8},
        {"sphinx", "SPEC", 14, 1.4, 0.1, Pattern::HotCold, 0.8, 0.05,
         0.9},
        {"leslie3d", "SPEC", 16, 5, 0.3, Pattern::Streaming, 0.8},
        {"libquantum", "SPEC", 24, 10, 0.1, Pattern::Streaming, 0.8},
        {"gcc", "SPEC", 48, 53, 0.7, Pattern::Streaming, 0.8},
        {"lbm", "SPEC", 28, 21, 1.6, Pattern::Streaming, 0.8},
        {"wrf", "SPEC", 4, 2, 1.6, Pattern::Streaming, 0.8},
        {"cactusADM", "SPEC", 5, 1.5, 1.6, Pattern::Streaming, 0.8},
        {"dealII", "SPEC", 1.7, 0.5, 0.2, Pattern::HotCold, 0.8, 0.05,
         0.9},
        {"bc-twit", "GAP", 61, 24, 9.3, Pattern::Random, 0.8, 0.02,
         0.8},
        {"pr-twit", "GAP", 94, 4, 11.2, Pattern::Random, 0.8, 0.02,
         0.8},
        {"cc-twit", "GAP", 89, 7, 7.0, Pattern::Random, 0.8, 0.02, 0.8},
        {"bc-web", "GAP", 13, 7, 12.0, Pattern::HotCold, 0.95, 0.05,
         0.9},
        {"pr-web", "GAP", 16, 3, 12.2, Pattern::HotCold, 0.95, 0.05,
         0.9},
        {"cc-web", "GAP", 9, 1.5, 7.8, Pattern::HotCold, 0.95, 0.05,
         0.9},
    };
    return table;
}

const std::vector<MixSpec> &
mixTable()
{
    static const std::vector<MixSpec> table = {
        {"mix1", {"mcf", "libquantum", "soplex", "GemsFDTD"}},
        {"mix2", {"omnetpp", "gcc", "milc", "bc-twit"}},
        {"mix3", {"xalancbmk", "lbm", "sphinx", "pr-web"}},
        {"mix4", {"mcf", "bzip2", "leslie3d", "cc-twit"}},
        {"mix5", {"libquantum", "zeusmp", "dealII", "bc-web"}},
        {"mix6", {"soplex", "wrf", "cactusADM", "pr-twit"}},
    };
    return table;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    const auto &table = workloadTable();
    const auto it = std::find_if(table.begin(), table.end(),
                                 [&](const WorkloadSpec &spec) {
                                     return spec.name == name;
                                 });
    return it == table.end() ? nullptr : &*it;
}

std::unique_ptr<TraceSource>
makeWorkloadTrace(const WorkloadSpec &spec, unsigned core,
                  unsigned cores, std::uint64_t mem_bytes,
                  std::uint64_t seed, double footprint_scale)
{
    if (core >= cores)
        fatal("workload: core %u out of range (%u cores)", core, cores);
    if (footprint_scale < 1.0)
        fatal("workload: footprint scale must be >= 1");

    const std::uint64_t region_lines = mem_bytes / lineBytes / cores;
    // Table II footprints cover all four cores; each rate-mode copy
    // owns a quarter, clamped to its region.
    const double per_core_gb =
        spec.footprintGb / double(cores) / footprint_scale;
    std::uint64_t footprint_lines =
        std::uint64_t(per_core_gb * (1ull << 30) / lineBytes);
    footprint_lines = std::clamp<std::uint64_t>(
        footprint_lines, linesPerPage, region_lines);

    GeneratorParams params;
    params.regionBaseLine = LineAddr(core) * region_lines;
    params.regionLines = region_lines;
    params.footprintLines = footprint_lines;
    params.readPki = spec.readPki;
    params.writePki = spec.writePki;
    params.zipfExponent = spec.zipfExponent;
    params.writeHotFraction = spec.writeHotFraction;
    params.writeZipfExponent = spec.writeZipfExponent;
    params.seed = seed * 0x1000193u + core * 0x9e370001u + 0x811c9dc5u;
    return makeGenerator(spec.pattern, params);
}

} // namespace morph
