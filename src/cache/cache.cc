#include "cache/cache.hh"

#include "common/log.hh"

namespace morph
{

Cache::Cache(std::size_t size_bytes, unsigned ways) : ways_(ways)
{
    if (ways == 0 || size_bytes == 0 ||
        size_bytes % (std::size_t(ways) * lineBytes) != 0) {
        fatal("cache: size %zu not divisible into %u-way sets of 64B "
              "lines", size_bytes, ways);
    }
    numSets_ = size_bytes / (std::size_t(ways) * lineBytes);
    lines_.resize(numSets_ * ways_);
}

Cache::Way *
Cache::find(LineAddr line)
{
    Way *base = &lines_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const Cache::Way *
Cache::find(LineAddr line) const
{
    const Way *base = &lines_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

bool
Cache::access(LineAddr line, bool write)
{
    Way *way = find(line);
    if (way) {
        way->lastUse = ++useClock_;
        way->dirty = way->dirty || write;
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
Cache::contains(LineAddr line) const
{
    return find(line) != nullptr;
}

std::optional<Eviction>
Cache::insert(LineAddr line, bool dirty, InsertPosition position)
{
    if (Way *hit = find(line)) {
        hit->lastUse = ++useClock_;
        hit->dirty = hit->dirty || dirty;
        return std::nullopt;
    }

    Way *base = &lines_[setOf(line) * ways_];
    Way *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    std::optional<Eviction> evicted;
    if (victim->valid) {
        evicted = Eviction{victim->line, victim->dirty};
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.dirtyEvictions;
    }

    victim->line = line;
    victim->valid = true;
    victim->dirty = dirty;
    if (position == InsertPosition::Mru) {
        victim->lastUse = ++useClock_;
    } else {
        // Demoted insertion: place below every valid way in the set.
        Way *base2 = &lines_[setOf(line) * ways_];
        std::uint64_t lowest = ~std::uint64_t(0);
        for (unsigned w = 0; w < ways_; ++w) {
            if (base2[w].valid && &base2[w] != victim)
                lowest = std::min(lowest, base2[w].lastUse);
        }
        victim->lastUse = lowest == ~std::uint64_t(0) || lowest == 0
                              ? 0
                              : lowest - 1;
    }
    return evicted;
}

bool
Cache::markDirty(LineAddr line)
{
    if (Way *way = find(line)) {
        way->dirty = true;
        return true;
    }
    return false;
}

std::optional<Eviction>
Cache::invalidate(LineAddr line)
{
    if (Way *way = find(line)) {
        const Eviction ev{way->line, way->dirty};
        way->valid = false;
        way->dirty = false;
        return ev;
    }
    return std::nullopt;
}

void
Cache::flush()
{
    for (auto &way : lines_) {
        way.valid = false;
        way.dirty = false;
    }
}

} // namespace morph
