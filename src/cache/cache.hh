/**
 * @file
 * Generic set-associative write-back cache model.
 *
 * Models presence and dirtiness only — payloads live in the backing
 * stores of the components that use the cache. Used for the shared
 * metadata cache that holds encryption-counter and integrity-tree
 * lines (128 KB, 8-way in the paper's baseline).
 *
 * Replacement is true LRU. Dirty evictions are reported to the caller
 * through the return value of insert()/access() so that the secure
 * memory controller can propagate counter write-back traffic up the
 * integrity tree.
 */

#ifndef MORPH_CACHE_CACHE_HH
#define MORPH_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace morph
{

/** A line evicted from the cache. */
struct Eviction
{
    LineAddr line;
    bool dirty;
};

/** Replacement-stack position for newly inserted lines. */
enum class InsertPosition : std::uint8_t
{
    Mru, ///< normal insertion (most recently used)
    Lru, ///< demoted insertion: first victim unless re-referenced
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }
};

/** Set-associative LRU cache over 64-byte lines. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity; must be a multiple of
     *                   ways * lineBytes
     * @param ways       associativity
     */
    Cache(std::size_t size_bytes, unsigned ways);

    /**
     * Look up @p line; updates LRU on hit.
     *
     * @param line  line to access
     * @param write if true and the line hits, mark it dirty
     * @retval true on hit
     */
    bool access(LineAddr line, bool write = false);

    /** Probe without updating replacement state or statistics. */
    bool contains(LineAddr line) const;

    /**
     * Insert @p line (assumed missing; inserting a present line just
     * updates its dirty bit and LRU position).
     *
     * @param position stack position for the new line; Lru implements
     *        type-aware demotion (metadata classes with little reuse
     *        can be inserted as the next victim)
     * @return the victim line if a valid line had to be evicted
     */
    std::optional<Eviction> insert(LineAddr line, bool dirty,
                                   InsertPosition position =
                                       InsertPosition::Mru);

    /** Mark a (present) line dirty; returns false if absent. */
    bool markDirty(LineAddr line);

    /** Remove a line if present; returns its eviction record. */
    std::optional<Eviction> invalidate(LineAddr line);

    /** Drop all contents (statistics are preserved). */
    void flush();

    /** Walk all valid lines, invoking @p fn(line, dirty). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &way : lines_)
            if (way.valid)
                fn(way.line, way.dirty);
    }

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    std::size_t sizeBytes() const { return numSets_ * ways_ * lineBytes; }
    unsigned ways() const { return ways_; }
    std::size_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        LineAddr line = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t setOf(LineAddr line) const { return line % numSets_; }
    Way *find(LineAddr line);
    const Way *find(LineAddr line) const;

    std::size_t numSets_;
    unsigned ways_;
    std::vector<Way> lines_; // numSets_ * ways_, set-major
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace morph

#endif // MORPH_CACHE_CACHE_HH
