#include "secmem/secure_memory.hh"

#include <cstring>

#include "common/check.hh"
#include "common/log.hh"
#include "common/prof.hh"

namespace morph
{

SecureMemory::SecureMemory(const SecureMemoryConfig &config)
    : config_(config), otp_(config.encryptionKey),
      macEngine_(config.macKey),
      tree_(config.memBytes, config.tree, config.macKey)
{
    if (config.macBits == 0 || config.macBits > 64)
        fatal("secure memory: MAC width must be 1..64 bits");
    if (config_.freshness == FreshnessScheme::MerkleMacTree) {
        merkle_.emplace(geometry().levels()[0].entries, config.macKey);
        merkleFormat_ = makeCounterFormat(config.tree.encryption);
    }
}

MacTree &
SecureMemory::macTree()
{
    if (!merkle_)
        fatal("secure memory: MacTree requested under the counter-tree "
              "scheme");
    return *merkle_;
}

CachelineData &
SecureMemory::merkleEntry(std::uint64_t entry_index)
{
    auto it = merkleEntries_.find(entry_index);
    if (it != merkleEntries_.end())
        return it->second;
    CachelineData image;
    merkleFormat_->init(image);
    merkle_->updateLeaf(entry_index, image); // publish the birth state
    return merkleEntries_.emplace(entry_index, image).first->second;
}

std::uint64_t
SecureMemory::counterOf(LineAddr line)
{
    if (!merkle_)
        return tree_.counterOf(line);
    const std::uint64_t entry = geometry().parentIndex(0, line);
    const unsigned slot = geometry().childSlot(0, line);
    return merkleFormat_->read(merkleEntry(entry), slot);
}

bool
SecureMemory::verifyFreshness(LineAddr line)
{
    if (!merkle_)
        return tree_.verify(line);
    const std::uint64_t entry = geometry().parentIndex(0, line);
    return merkle_->verifyLeaf(entry, merkleEntry(entry));
}

IntegrityTree::BumpResult
SecureMemory::bumpCounter(LineAddr line)
{
    if (!merkle_)
        return tree_.bumpCounter(line);

    const std::uint64_t entry = geometry().parentIndex(0, line);
    const unsigned slot = geometry().childSlot(0, line);
    CachelineData &image = merkleEntry(entry);

    IntegrityTree::BumpResult out;
    const WriteResult res = merkleFormat_->increment(image, slot);
    if (res.rebase)
        ++out.rebases;
    if (res.overflow) {
        out.overflowed = true;
        const std::uint64_t base =
            entry * geometry().levels()[0].arity;
        for (unsigned c = res.reencBegin; c < res.reencEnd; ++c) {
            const LineAddr child = base + c;
            if (child < geometry().dataLines())
                out.reencrypt.push_back(child);
        }
    }
    merkle_->updateLeaf(entry, image);
    out.newCounter = merkleFormat_->read(image, slot);
    return out;
}

CachelineData
SecureMemory::counterEntryOf(std::uint64_t entry_index)
{
    if (!merkle_)
        return tree_.rawEntry(0, entry_index);
    return merkleEntry(entry_index);
}

void
SecureMemory::tamperCounterEntry(std::uint64_t entry_index,
                                 const CachelineData &image)
{
    if (!merkle_) {
        tree_.injectEntry(0, entry_index, image);
        return;
    }
    // A physical overwrite of the stored entry: the Merkle tree is
    // NOT updated (the attacker cannot recompute on-chip hashes).
    merkleEntries_[entry_index] = image;
}

void
SecureMemory::auditEncrypt([[maybe_unused]] LineAddr line,
                           [[maybe_unused]] std::uint64_t counter)
{
#ifdef MORPH_AUDIT_PADS
    padAuditor_.recordEncrypt(line, counter);
#endif
}

std::uint64_t
SecureMemory::dataMac(LineAddr line, std::uint64_t counter,
                      const CachelineData &ciphertext) const
{
    return macEngine_.compute(line, counter, ciphertext,
                              config_.macBits);
}

SecureMemory::StoredLine &
SecureMemory::materialize(LineAddr line)
{
    auto it = store_.find(line);
    if (it != store_.end())
        return it->second;

    // First touch: the line logically holds zeros, encrypted under
    // its current counter (0 for virgin lines; possibly higher if an
    // overflow reset swept this child before its first use).
    const std::uint64_t counter = counterOf(line);
    CachelineData ciphertext{};
    auditEncrypt(line, counter);
    otp_.xorPad(ciphertext, line, counter);
    StoredLine stored{ciphertext, dataMac(line, counter, ciphertext)};
    return store_.emplace(line, stored).first->second;
}

void
SecureMemory::writeLine(LineAddr line, const CachelineData &plaintext)
{
    MORPH_PROF_SCOPE("secmem.write_line");
    MORPH_CHECK_LT(line, geometry().dataLines());
    ++stats_.writes;

    // Snapshot the pre-bump counters of every sibling under the same
    // level-0 entry: if the bump overflows, the controller re-encrypts
    // each sibling from its old counter to its new one.
    const auto &geom = geometry();
    const unsigned arity = geom.levels()[0].arity;
    const std::uint64_t entry = geom.parentIndex(0, line);
    const LineAddr first_child = entry * arity;
    std::vector<std::uint64_t> old_counters(arity);
    for (unsigned c = 0; c < arity; ++c) {
        const LineAddr child = first_child + c;
        if (child < geom.dataLines())
            old_counters[c] = counterOf(child);
    }

    const IntegrityTree::BumpResult bump = bumpCounter(line);
    stats_.treeOverflows += bump.treeOverflows;
    stats_.rebases += bump.rebases;
    if (bump.overflowed) {
        ++stats_.counterOverflows;
        for (const LineAddr child : bump.reencrypt) {
            if (child == line)
                continue; // rewritten below with fresh plaintext
            auto it = store_.find(child);
            if (it == store_.end())
                continue; // never materialized; nothing to re-encrypt
            // Decrypt under the old counter, re-encrypt under the new.
            CachelineData data = it->second.ciphertext;
            otp_.xorPad(data, child, old_counters[child - first_child]);
            const std::uint64_t fresh = counterOf(child);
            auditEncrypt(child, fresh);
            otp_.xorPad(data, child, fresh);
            it->second.ciphertext = data;
            it->second.mac = dataMac(child, fresh, data);
            ++stats_.reencryptedLines;
        }
    }

    CachelineData ciphertext = plaintext;
    auditEncrypt(line, bump.newCounter);
    otp_.xorPad(ciphertext, line, bump.newCounter);
    StoredLine stored{ciphertext,
                      dataMac(line, bump.newCounter, ciphertext)};
    store_[line] = stored;
}

std::optional<CachelineData>
SecureMemory::readLine(LineAddr line, Verdict &verdict)
{
    MORPH_PROF_SCOPE("secmem.read_line");
    MORPH_CHECK_LT(line, geometry().dataLines());
    ++stats_.reads;

    // Freshness: the counter protecting this line must verify against
    // the tree all the way to the on-chip root.
    if (!verifyFreshness(line)) {
        verdict = Verdict::TreeMacMismatch;
        ++stats_.integrityFailures;
        return std::nullopt;
    }

    const StoredLine &stored = materialize(line);
    const std::uint64_t counter = counterOf(line);
    if (!MacEngine::equal(stored.mac,
                          dataMac(line, counter, stored.ciphertext),
                          config_.macBits)) {
        verdict = Verdict::DataMacMismatch;
        ++stats_.integrityFailures;
        return std::nullopt;
    }

    CachelineData plaintext = stored.ciphertext;
    otp_.xorPad(plaintext, line, counter);
    verdict = Verdict::Ok;
    return plaintext;
}

std::optional<CachelineData>
SecureMemory::readLine(LineAddr line)
{
    Verdict verdict;
    return readLine(line, verdict);
}

void
SecureMemory::writeBytes(Addr addr, const void *src, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const LineAddr line = lineOf(addr);
        const std::size_t offset = addr % lineBytes;
        const std::size_t chunk = std::min(len, lineBytes - offset);

        CachelineData plaintext{};
        if (auto existing = readLine(line))
            plaintext = *existing;
        std::memcpy(plaintext.data() + offset, bytes, chunk);
        writeLine(line, plaintext);

        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
}

bool
SecureMemory::readBytes(Addr addr, void *dst, std::size_t len)
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const LineAddr line = lineOf(addr);
        const std::size_t offset = addr % lineBytes;
        const std::size_t chunk = std::min(len, lineBytes - offset);

        const auto plaintext = readLine(line);
        if (!plaintext)
            return false;
        std::memcpy(bytes, plaintext->data() + offset, chunk);

        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
    return true;
}

CachelineData
SecureMemory::ciphertextOf(LineAddr line)
{
    return materialize(line).ciphertext;
}

std::uint64_t
SecureMemory::macOf(LineAddr line)
{
    return materialize(line).mac;
}

void
SecureMemory::tamperCiphertext(LineAddr line, const CachelineData &value)
{
    materialize(line).ciphertext = value;
}

void
SecureMemory::tamperMac(LineAddr line, std::uint64_t value)
{
    materialize(line).mac = value;
}

} // namespace morph
