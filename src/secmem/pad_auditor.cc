#include "secmem/pad_auditor.hh"

#include <sstream>

#include "common/check.hh"

namespace morph
{

void
PadAuditor::recordEncrypt(LineAddr line, std::uint64_t counter)
{
    const bool fresh = used_[line].insert(counter).second;
    if (!fresh) {
        std::ostringstream os;
        os << "  pad reuse: line " << line
           << " re-encrypted under counter " << counter
           << " — counter-mode confidentiality is broken";
        check_detail::failCheck(__FILE__, __LINE__,
                                "PadAuditor: (line, counter) unique",
                                os.str());
    }
    ++padsIssued_;
}

void
PadAuditor::reset()
{
    used_.clear();
    padsIssued_ = 0;
}

} // namespace morph
