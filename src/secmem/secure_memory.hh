/**
 * @file
 * Functional secure memory: encryption + MACs + integrity tree.
 *
 * The full SGX-style protection stack over a sparse backing store:
 *
 *  - confidentiality: counter-mode AES encryption of every data line
 *    (src/crypto/otp.hh) under per-line effective counters supplied by
 *    the configured counter organization;
 *  - integrity: a truncated per-line MAC binding {address, counter,
 *    ciphertext} (54-bit, the Synergy in-line layout);
 *  - freshness: the counter integrity tree (src/integrity) protecting
 *    the encryption counters against replay.
 *
 * This is the component examples and correctness tests use: real
 * ciphertext, real tags, real tamper/replay detection, and real
 * re-encryption when counters overflow. The cycle-level cost model
 * lives separately in SecureMemoryModel.
 */

#ifndef MORPH_SECMEM_SECURE_MEMORY_HH
#define MORPH_SECMEM_SECURE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/annotations.hh"
#include "crypto/otp.hh"
#include "integrity/integrity_tree.hh"
#include "integrity/mac_tree.hh"

#ifdef MORPH_AUDIT_PADS
#include "secmem/pad_auditor.hh"
#endif

namespace morph
{

/** How counter freshness is anchored to the chip. */
enum class FreshnessScheme
{
    CounterTree,   ///< Bonsai counter tree (SGX/VAULT/MorphTree style)
    MerkleMacTree, ///< 8-ary tree of MACs over the counter entries
};

/** Configuration of a functional secure memory. */
struct SecureMemoryConfig
{
    std::uint64_t memBytes = 1ull << 30;
    TreeConfig tree = TreeConfig::morph();
    // Raw key material in a by-value setup carrier: the crypto engines
    // copy these into wiped storage (SecretArray) on construction.
    // morphflow: allow(secret-member-wipe): config carrier only
    MORPH_SECRET Aes128::Key encryptionKey{};
    // morphflow: allow(secret-member-wipe): config carrier only
    MORPH_SECRET SipKey macKey{};
    unsigned macBits = 54; ///< Synergy in-line MAC width

    /** Replay-protection structure. With MerkleMacTree, tree.treeLevels
     *  is ignored: the encryption-counter organization still comes
     *  from tree.encryption, but freshness is a MacTree (8 x 64-bit
     *  hashes per node — the paper's §VIII-B1 alternative). */
    FreshnessScheme freshness = FreshnessScheme::CounterTree;
};

/** Functional secure memory device. */
class SecureMemory
{
  public:
    /** Why a read failed verification. */
    enum class Verdict
    {
        Ok,
        DataMacMismatch, ///< data line tampered or replayed
        TreeMacMismatch, ///< counter entry tampered or replayed
    };

    /** Aggregate functional statistics. */
    struct Stats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t reencryptedLines = 0;
        std::uint64_t counterOverflows = 0;
        std::uint64_t treeOverflows = 0;
        std::uint64_t rebases = 0;
        std::uint64_t integrityFailures = 0;
    };

    explicit SecureMemory(const SecureMemoryConfig &config);

    /** Encrypt and store one line; updates counters, MACs, the tree. */
    void writeLine(LineAddr line, const CachelineData &plaintext);

    /**
     * Verify and decrypt one line.
     *
     * @return the plaintext, or std::nullopt on integrity failure
     */
    std::optional<CachelineData> readLine(LineAddr line);

    /** As readLine, but reports why verification failed. */
    std::optional<CachelineData> readLine(LineAddr line,
                                          Verdict &verdict);

    /** Byte-granular convenience write (line-splitting, RMW). */
    void writeBytes(Addr addr, const void *src, std::size_t len);

    /** Byte-granular convenience read; false on integrity failure. */
    bool readBytes(Addr addr, void *dst, std::size_t len);

    // ---- Adversary interface (physical attacker on the DIMM) ----

    /** Raw stored ciphertext of a line (materializing it if needed). */
    CachelineData ciphertextOf(LineAddr line);

    /** Stored truncated MAC of a line. */
    std::uint64_t macOf(LineAddr line);

    /** Overwrite stored ciphertext, bypassing protection. */
    void tamperCiphertext(LineAddr line, const CachelineData &value);

    /** Overwrite a stored MAC, bypassing protection. */
    void tamperMac(LineAddr line, std::uint64_t value);

    /** Access to the integrity tree (tamper/replay of counters).
     *  Only meaningful under FreshnessScheme::CounterTree. */
    IntegrityTree &tree() { return tree_; }

    /** Access to the Merkle tree (MerkleMacTree scheme only). */
    MacTree &macTree();

    /** Current encryption counter of a line (either scheme). */
    std::uint64_t counterOf(LineAddr line);

    /** Overwrite a stored counter entry, bypassing protection
     *  (physical attack on the counter region; either scheme). */
    void tamperCounterEntry(std::uint64_t entry_index,
                            const CachelineData &image);

    /** Raw stored counter entry (either scheme). */
    CachelineData counterEntryOf(std::uint64_t entry_index);

    const TreeGeometry &geometry() const { return tree_.geometry(); }
    const Stats &stats() const { return stats_; }
    const SecureMemoryConfig &config() const { return config_; }

#ifdef MORPH_AUDIT_PADS
    /** Pad-uniqueness auditor (audit builds only): every encryption
     *  pad this device has issued, CHECK-failing on any reuse. */
    const PadAuditor &padAuditor() const { return padAuditor_; }
#endif

  private:
    struct StoredLine
    {
        CachelineData ciphertext;
        std::uint64_t mac;
    };

    StoredLine &materialize(LineAddr line);
    std::uint64_t dataMac(LineAddr line, std::uint64_t counter,
                          const CachelineData &ciphertext) const;

    /** MacTree scheme: the counter entry image (published on birth). */
    CachelineData &merkleEntry(std::uint64_t entry_index);

    /** Bump the counter of @p line, under either freshness scheme;
     *  fills the re-encryption work exactly as the tree would. */
    IntegrityTree::BumpResult bumpCounter(LineAddr line);

    /** Freshness check for the counter protecting @p line. */
    bool verifyFreshness(LineAddr line);

    /** Audit hook called at every *encryption* pad issue (decryption
     *  legitimately re-derives pads). No-op unless MORPH_AUDIT_PADS. */
    void auditEncrypt(LineAddr line, std::uint64_t counter);

    SecureMemoryConfig config_;
    OtpEngine otp_;
    MacEngine macEngine_;
    IntegrityTree tree_;
    std::optional<MacTree> merkle_;
    std::unordered_map<std::uint64_t, CachelineData> merkleEntries_;
    std::unique_ptr<CounterFormat> merkleFormat_;
    std::unordered_map<LineAddr, StoredLine> store_;
    Stats stats_;

#ifdef MORPH_AUDIT_PADS
    PadAuditor padAuditor_;
#endif
};

} // namespace morph

#endif // MORPH_SECMEM_SECURE_MEMORY_HH
