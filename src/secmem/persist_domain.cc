#include "secmem/persist_domain.hh"

#include <cstring>

#include "common/check.hh"
#include "common/stat_registry.hh"
#include "crypto/siphash.hh"

namespace morph
{

namespace
{

/** Fixed fingerprint key: the digest is an integrity *model*, not a
 *  cryptographic root of trust — same idiom as morphverify's visited
 *  set. A real controller would hold a device-unique secret here. */
const SipKey persistKey = {0x6d, 0x6f, 0x72, 0x70, 0x68, 0x70,
                           0x65, 0x72, 0x73, 0x69, 0x73, 0x74,
                           0x6b, 0x65, 0x79, 0x30};

std::uint64_t
mix64(std::uint64_t h, std::uint64_t v)
{
    // splitmix64 finalizer over the running hash — order-sensitive,
    // used only where sequence matters (the undo log).
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return h;
}

} // namespace

void
PersistStats::registerStats(StatRegistry &registry,
                            const std::string &prefix) const
{
    registry.counter(prefix + ".line_persists", &linePersists,
                     "metadata lines written to NVM");
    registry.counter(prefix + ".root_persists", &rootPersists,
                     "atomic root re-commits");
    registry.counter(prefix + ".log_appends", &logAppends,
                     "write-ahead undo-log records");
    registry.counter(prefix + ".barriers", &barriers,
                     "lazy epoch barriers completed");
    registry.counter(prefix + ".barrier_flushes", &barrierFlushes,
                     "pending lines flushed at barriers");
    registry.counter(prefix + ".entry_mutations", &entryMutations,
                     "volatile entry mutations observed");
}

PersistDomain::PersistDomain(const PersistConfig &config)
    : config_(config)
{
    MORPH_CHECK(config_.enabled);
    if (config_.policy == PersistPolicy::Lazy)
        MORPH_CHECK(config_.epochWrites >= 1);
}

std::uint64_t
PersistDomain::entryHash(LineAddr line, const CachelineData &image) const
{
    std::uint8_t buf[sizeof(LineAddr) + lineBytes];
    std::memcpy(buf, &line, sizeof(line));
    std::memcpy(buf + sizeof(line), image.data(), lineBytes);
    return siphash24(buf, sizeof(buf), persistKey);
}

void
PersistDomain::persistLine(LineAddr line, const CachelineData &image,
                           bool foldDigest)
{
    auto it = durable_.find(line);
    if (foldDigest) {
        if (it != durable_.end())
            durableDigest_ ^= entryHash(line, it->second);
        durableDigest_ ^= entryHash(line, image);
    }
    if (it != durable_.end())
        it->second = image;
    else
        durable_.emplace(line, image);
    ++stats_.linePersists;
}

void
PersistDomain::appendUndo(LineAddr line)
{
    UndoRecord record;
    record.line = line;
    const auto it = durable_.find(line);
    record.hadPrev = it != durable_.end();
    if (record.hadPrev)
        record.prev = it->second;
    else
        record.prev = CachelineData{};
    undoLog_.push_back(record);
    ++stats_.logAppends;
}

void
PersistDomain::commitRoot()
{
    persistedRoot_ = durableDigest_;
    mutationsSinceRoot_ = 0;
    ++stats_.rootPersists;
}

void
PersistDomain::onEntryUpdate(unsigned level, LineAddr line,
                             const CachelineData &image)
{
    ++stats_.entryMutations;
    ++mutationsSinceRoot_;
    if (config_.policy == PersistPolicy::Strict) {
        // Write-ahead ordering: the line reaches NVM, then the root
        // atomically re-commits — durable state tracks volatile state
        // mutation by mutation. The broken fixture persists the line
        // but commits a root computed *before* the tree write, the
        // classic unpersisted-tree-write bug.
        const bool fold = !(config_.brokenSkipTreePersist && level >= 1);
        persistLine(line, image, fold);
        commitRoot();
        return;
    }
    // Lazy: the mutation stays on-chip until eviction or a barrier.
    pendingLines_[line] = image;
}

void
PersistDomain::onDirtyWriteback(unsigned level, LineAddr line,
                                const CachelineData &image)
{
    if (config_.policy == PersistPolicy::Strict)
        return; // already persisted at mutation time
    // The dirty line leaves the chip, so NVM takes the new image now,
    // ahead of the root: log the durable pre-image first so recovery
    // can roll back to the state the persisted root covers. The
    // broken fixture drops the log record for tree-level lines.
    if (!(config_.brokenSkipTreePersist && level >= 1))
        appendUndo(line);
    persistLine(line, image, true);
    pendingLines_.erase(line);
}

void
PersistDomain::onDataWrite()
{
    if (config_.policy != PersistPolicy::Lazy)
        return;
    if (++epochClock_ < config_.epochWrites)
        return;
    epochClock_ = 0;
    barrier();
}

void
PersistDomain::barrier()
{
    // Flush every pending mutation (XOR digest: iteration order is
    // irrelevant), truncate the log, re-commit the root.
    // morphflow: allow(nondet-iter): XOR digest is order-independent
    for (const auto &[line, image] : pendingLines_) {
        persistLine(line, image, true);
        ++stats_.barrierFlushes;
    }
    pendingLines_.clear();
    undoLog_.clear();
    commitRoot();
    ++stats_.barriers;
}

void
PersistDomain::finish()
{
    if (config_.policy != PersistPolicy::Lazy)
        return;
    if (pendingLines_.empty() && undoLog_.empty() &&
        mutationsSinceRoot_ == 0)
        return;
    epochClock_ = 0;
    barrier();
}

RecoveryReport
PersistDomain::recover() const
{
    RecoveryReport report;

    // Roll the write-ahead log back, newest record first; repeated
    // records for one line restore the oldest pre-image last.
    std::unordered_map<LineAddr, CachelineData> recovered = durable_;
    for (auto it = undoLog_.rbegin(); it != undoLog_.rend(); ++it) {
        if (it->hadPrev)
            recovered[it->line] = it->prev;
        else
            recovered.erase(it->line);
        ++report.rolledBack;
    }

    // Re-derive the root from the recovered lines, exactly as a
    // post-crash verifier must (it cannot trust any cached digest).
    std::uint64_t digest = 0;
    // morphflow: allow(nondet-iter): XOR fold is order-independent
    for (const auto &[line, image] : recovered)
        digest ^= entryHash(line, image);

    report.durableEntries = recovered.size();
    report.recoveredDigest = digest;
    report.persistedRoot = persistedRoot_;
    report.consistent = digest == persistedRoot_;
    report.lostWrites = mutationsSinceRoot_;
    return report;
}

std::uint64_t
PersistDomain::durableFingerprint() const
{
    std::uint64_t fp = durableDigest_;
    fp = mix64(fp, persistedRoot_);
    fp = mix64(fp, std::uint64_t(undoLog_.size()));
    for (const UndoRecord &record : undoLog_)
        fp = mix64(fp, entryHash(record.line, record.prev) ^
                           (record.hadPrev ? 1u : 0u));
    // Pending set: XOR fold, order-independent by construction.
    std::uint64_t pendingHash = 0;
    // morphflow: allow(nondet-iter): XOR fold is order-independent
    for (const auto &[line, image] : pendingLines_)
        pendingHash ^= entryHash(line, image);
    fp = mix64(fp, pendingHash);
    fp = mix64(fp, mutationsSinceRoot_);
    return fp;
}

} // namespace morph
