#include "secmem/metadata_cache.hh"

namespace morph
{

std::vector<std::uint64_t>
MetadataCache::levelOccupancy() const
{
    std::vector<std::uint64_t> occupancy(geom_->levels().size() + 1, 0);
    cache_.forEach([&](LineAddr line, bool) {
        unsigned level;
        std::uint64_t index;
        if (geom_->entryOfLine(line, level, index))
            ++occupancy[level];
        else
            ++occupancy.back();
    });
    return occupancy;
}

} // namespace morph
