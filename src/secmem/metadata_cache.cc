#include "secmem/metadata_cache.hh"

#include "common/stat_registry.hh"

namespace morph
{

std::vector<std::uint64_t>
MetadataCache::levelOccupancy() const
{
    std::vector<std::uint64_t> occupancy(geom_->levels().size() + 1, 0);
    cache_.forEach([&](LineAddr line, bool) {
        unsigned level;
        std::uint64_t index;
        if (geom_->entryOfLine(line, level, index))
            ++occupancy[level];
        else
            ++occupancy.back();
    });
    return occupancy;
}

std::uint64_t
MetadataCache::dirtyLineCount() const
{
    std::uint64_t dirty = 0;
    cache_.forEach([&](LineAddr, bool is_dirty) {
        if (is_dirty)
            ++dirty;
    });
    return dirty;
}

void
MetadataCache::registerStats(StatRegistry &registry,
                             const std::string &prefix,
                             bool occupancy) const
{
    const CacheStats &s = cache_.stats();
    registry.counter(prefix + ".hits", &s.hits, "metadata-cache hits");
    registry.counter(prefix + ".misses", &s.misses,
                     "metadata-cache misses");
    registry.counter(prefix + ".evictions", &s.evictions,
                     "metadata-cache evictions");
    registry.counter(prefix + ".dirty_evictions", &s.dirtyEvictions,
                     "dirty evictions (write-back propagation)");
    registry.gauge(
        prefix + ".hit_rate", [&s]() { return s.hitRate(); },
        "hits / (hits + misses)");
    registry.gauge(
        prefix + ".dirty_lines",
        [this]() { return double(dirtyLineCount()); },
        "resident dirty lines (unflushed at sample time)");
    if (!occupancy)
        return;
    const std::size_t levels = geom_->levels().size();
    for (std::size_t level = 0; level <= levels; ++level) {
        const std::string name =
            level < levels
                ? prefix + ".occupancy.level" + std::to_string(level)
                : prefix + ".occupancy.other";
        registry.gauge(
            name,
            [this, level]() {
                return double(levelOccupancy()[level]);
            },
            level < levels
                ? "resident lines of this tree level"
                : "resident non-metadata (MAC) lines");
    }
}

} // namespace morph
