/**
 * @file
 * Crash-consistent persistence model for counter/tree metadata (NVM).
 *
 * The paper's design assumes the metadata cache is volatile and DRAM
 * loses state with the machine; on NVM the counters, tree entries and
 * the root must instead survive a crash in a *mutually consistent*
 * state, or the whole protected region is unverifiable at reboot —
 * the problem attacked by Phoenix and "Streamlining Integrity Tree
 * Updates for Secure Persistent Non-Volatile Memory".
 *
 * PersistDomain models the durable half of that system as a pure
 * observer of the volatile SecureMemoryModel: it never feeds back
 * into counter values, cache behaviour or traffic, so enabling it
 * cannot perturb any existing result (pinned by tests). It tracks
 *
 *  - the durable metadata image: every counter/tree line as last
 *    written to NVM,
 *  - the persisted root: a digest of the durable image, standing in
 *    for the on-chip root register that an atomic root update commits
 *    to a persistent register (battery-backed or flushed-on-crash),
 *  - a write-ahead undo log (lazy policy) of durable pre-images, so
 *    recovery can roll uncommitted line persists back to the state
 *    the persisted root covers.
 *
 * Two root-update policies (paper-adjacent design points):
 *
 *  strict: every volatile entry mutation persists the line and
 *    atomically re-commits the root. Durable state always equals
 *    volatile state — recovery is trivial and loses nothing, but
 *    every counter bump costs a line persist + root persist.
 *
 *  lazy: mutations stay volatile. A line reaches NVM only when the
 *    metadata cache evicts it dirty (write-ahead: its durable
 *    pre-image is logged first), and every `epochWrites` data writes
 *    an epoch barrier flushes all pending mutations, re-commits the
 *    root and truncates the log. Recovery rolls the log back and
 *    loses at most one epoch of writes.
 *
 * recover() replays exactly what a post-crash verifier would do:
 * undo the log, re-derive the root digest from the durable lines, and
 * compare it against the persisted root. morphverify's --recovery
 * sweep drives this from crash cuts at arbitrary access indexes.
 */

#ifndef MORPH_SECMEM_PERSIST_DOMAIN_HH
#define MORPH_SECMEM_PERSIST_DOMAIN_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace morph
{

class StatRegistry;

/** Tree-root update policy of the persist domain. */
enum class PersistPolicy : std::uint8_t
{
    Strict, ///< persist line + root on every entry mutation
    Lazy,   ///< persist on dirty eviction; root at epoch barriers
};

/** Configuration of the persistence model (off by default). */
struct PersistConfig
{
    bool enabled = false;
    PersistPolicy policy = PersistPolicy::Strict;

    /** Lazy policy: data writes between epoch barriers. */
    std::uint64_t epochWrites = 4096;

    /**
     * WILL_FAIL fixture: tree-level (level >= 1) persists skip their
     * write-ahead obligation — strict omits the root re-commit, lazy
     * omits the undo-log record — so recovery after a crash in the
     * exposure window reconstructs an inconsistent tree. Used to
     * prove the morphverify recoverability check actually fires.
     */
    bool brokenSkipTreePersist = false;
};

/** Persist-traffic counters (the strict-vs-lazy cost axis). */
struct PersistStats
{
    std::uint64_t linePersists = 0;   ///< metadata lines written to NVM
    std::uint64_t rootPersists = 0;   ///< atomic root re-commits
    std::uint64_t logAppends = 0;     ///< undo-log records (write-ahead)
    std::uint64_t barriers = 0;       ///< lazy epoch barriers completed
    std::uint64_t barrierFlushes = 0; ///< pending lines flushed at barriers
    std::uint64_t entryMutations = 0; ///< volatile mutations observed

    /** Register counters under @p prefix (morphscope naming). */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    void reset() { *this = PersistStats{}; }
};

/** Outcome of replaying recovery from the current durable state. */
struct RecoveryReport
{
    bool consistent = false;      ///< recovered digest == persisted root
    std::uint64_t durableEntries = 0; ///< durable lines after rollback
    std::uint64_t rolledBack = 0; ///< undo records applied in reverse
    std::uint64_t lostWrites = 0; ///< mutations the recovered state drops
    std::uint64_t recoveredDigest = 0;
    std::uint64_t persistedRoot = 0;
};

/** Durable-state tracker for one SecureMemoryModel (see file header). */
class PersistDomain
{
  public:
    explicit PersistDomain(const PersistConfig &config);

    /** A volatile entry mutated (counter bump / overflow reset).
     *  @p line is the entry's physical line, @p level its tree level,
     *  @p image the post-mutation contents. */
    void onEntryUpdate(unsigned level, LineAddr line,
                       const CachelineData &image);

    /** A dirty metadata line left the chip (cache eviction). */
    void onDirtyWriteback(unsigned level, LineAddr line,
                          const CachelineData &image);

    /** A data write retired (the lazy epoch clock). */
    void onDataWrite();

    /** End of run: drain pending mutations through a final barrier so
     *  persist counts are complete and the durable state is clean. */
    void finish();

    /**
     * Replay post-crash recovery from the current durable state:
     * apply the undo log in reverse, re-derive the root digest from
     * the recovered lines, compare against the persisted root. Pure —
     * the live state is not modified, so a run can be probed at any
     * cut point.
     */
    RecoveryReport recover() const;

    /** Order-independent digest over (durable image, persisted root,
     *  undo log, pending set): the crash-injector determinism pin. */
    std::uint64_t durableFingerprint() const;

    /** Volatile mutations not yet persisted (lazy exposure window). */
    std::uint64_t pendingEntries() const { return pendingLines_.size(); }

    const PersistStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    const PersistConfig &config() const { return config_; }

  private:
    /** One write-ahead undo record: the durable pre-image of a line
     *  persisted between barriers. */
    struct UndoRecord
    {
        LineAddr line;
        bool hadPrev;
        CachelineData prev;
    };

    std::uint64_t entryHash(LineAddr line,
                            const CachelineData &image) const;
    /** Write @p image to the durable store, maintaining the digest.
     *  @p foldDigest false models the broken unpersisted-tree-write. */
    void persistLine(LineAddr line, const CachelineData &image,
                     bool foldDigest);
    void appendUndo(LineAddr line);
    void commitRoot();
    void barrier();

    PersistConfig config_;
    std::unordered_map<LineAddr, CachelineData> durable_;
    std::unordered_map<LineAddr, CachelineData> pendingLines_;
    std::vector<UndoRecord> undoLog_;
    std::uint64_t durableDigest_ = 0; ///< XOR set-hash over durable_
    std::uint64_t persistedRoot_ = 0;
    std::uint64_t epochClock_ = 0;    ///< data writes since last barrier
    std::uint64_t mutationsSinceRoot_ = 0;
    PersistStats stats_;
};

} // namespace morph

#endif // MORPH_SECMEM_PERSIST_DOMAIN_HH
