/**
 * @file
 * Cycle-model secure memory controller (traffic and cache behaviour).
 *
 * Translates each post-LLC data access into the set of DRAM accesses
 * secure execution generates, following the paper's model:
 *
 *  read:  fetch the encryption-counter entry through the metadata
 *         cache; on a miss, walk the integrity tree upward, fetching
 *         entries from memory until one is found cached (or the
 *         on-chip root is reached). These fetches are on the load's
 *         critical path.
 *
 *  write: fetch the counter entry likewise, increment the written
 *         line's counter in place and mark the entry dirty in the
 *         metadata cache. Writes propagate up the tree only when a
 *         dirty entry is evicted: the write-back increments the parent
 *         counter (fetching the parent if needed), which is why levels
 *         that fit in the cache never see overflow pressure.
 *
 *  overflow: an overflow reset at level L generates one read + one
 *         write per affected child (re-encryption of data lines for
 *         L = 0, re-hash of child entries for L >= 1), categorized as
 *         Overflow traffic.
 *
 * Counter entries are maintained bit-exactly (real ZCC/MCR/SC images)
 * so overflow rates, format morphs and rebases are faithful; data
 * payloads and MAC values are not modelled here (SecureMemory does
 * that functionally).
 */

#ifndef MORPH_SECMEM_SECURE_MEMORY_MODEL_HH
#define MORPH_SECMEM_SECURE_MEMORY_MODEL_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "secmem/metadata_cache.hh"
#include "secmem/persist_domain.hh"
#include "secmem/traffic_stats.hh"

namespace morph
{

/** One DRAM access produced by the controller. */
struct MemAccess
{
    LineAddr line;     ///< physical line address (data or metadata)
    AccessType type;   ///< read or write
    Traffic category;  ///< attribution for Figs 5/16
    bool critical;     ///< completion blocks the requesting load
};

/** Configuration of the cycle-model controller. */
struct SecureModelConfig
{
    std::uint64_t memBytes = 16ull << 30;
    TreeConfig tree = TreeConfig::sc64();
    std::size_t metadataCacheBytes = 128 * 1024;
    unsigned metadataCacheWays = 8;
    bool inlineMacs = true; ///< Synergy in-line MACs (Fig 20 toggles)
    bool secure = true;     ///< false models the non-secure baseline

    /**
     * PoisonIvy/ASE-style speculative verification: data is consumed
     * while the tree walk completes in the background, so walk reads
     * above the counter entry leave the load's critical path. The
     * bandwidth cost remains — exactly the distinction the paper
     * draws (§VIII-B2).
     */
    bool speculativeVerification = false;

    /**
     * Next-entry counter prefetch: a miss on encryption-counter entry
     * N also fetches entry N+1 (non-critical, unverified until used).
     * Helps streaming workloads; pure bandwidth overhead for random
     * ones.
     */
    bool counterPrefetch = false;

    /**
     * Type-aware metadata-cache insertion (Lee et al., §VIII-B2):
     * encryption-counter entries — the class with the least reuse per
     * byte — insert at LRU so tree entries keep residency.
     */
    bool demoteEncCounters = false;

    /**
     * NVM persistence model (off by default). When enabled, a
     * PersistDomain observes counter/tree mutations and dirty
     * writebacks to track the durable metadata image — a pure
     * observer, so every volatile statistic is bit-identical with
     * persistence on or off. Separate-mode MAC images are not
     * modelled and sit outside the domain; under the default Synergy
     * in-line organization MACs ride in the data lines, which NVM
     * makes durable with the data itself.
     */
    PersistConfig persist;
};

/** Trace-level secure memory controller model. */
class SecureMemoryModel
{
  public:
    explicit SecureMemoryModel(const SecureModelConfig &config);
    ~SecureMemoryModel();

    /**
     * Process one data access and append every DRAM access it
     * generates to @p out (the data access itself included).
     */
    void onDataAccess(LineAddr data_line, AccessType type,
                      std::vector<MemAccess> &out);

    const TrafficStats &stats() const { return stats_; }
    void resetStats();

    /**
     * Register traffic and metadata-cache statistics into
     * @p registry under @p prefix ("traffic.*", "mdcache.*"). With
     * @p occupancy, per-tree-level residency gauges are included
     * (linear cache walks at sample time — reporting only).
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix,
                       bool occupancy = false) const;

    const TreeGeometry &geometry() const { return geom_; }
    const MetadataCache &metadataCache() const { return mdcache_; }
    const SecureModelConfig &config() const { return config_; }

    /** Effective counter of @p data_line (model introspection). */
    std::uint64_t counterOf(LineAddr data_line);

    /** End of run: drain the persist domain's pending mutations
     *  through a final barrier (no-op without persistence). */
    void finishRun();

    /** The persistence model, or nullptr when disabled. */
    const PersistDomain *persistDomain() const { return persist_.get(); }

  private:
    CachelineData &entryImage(unsigned level, std::uint64_t index);
    void ensureCached(unsigned level, std::uint64_t index,
                      std::vector<MemAccess> &out, bool critical);
    void insertMetadata(LineAddr line, bool dirty,
                        std::vector<MemAccess> &out);
    void handleDirtyWriteback(unsigned level, std::uint64_t index,
                              std::vector<MemAccess> &out);
    void bumpEntryCounter(unsigned level, std::uint64_t child_index,
                          std::vector<MemAccess> &out);
    void emitOverflowTraffic(unsigned level, std::uint64_t entry_index,
                             unsigned begin, unsigned end,
                             std::vector<MemAccess> &out);
    LineAddr macLineOf(LineAddr data_line) const;

    SecureModelConfig config_;
    TreeGeometry geom_;
    MetadataCache mdcache_;
    TrafficStats stats_;
    std::vector<std::unique_ptr<CounterFormat>> formats_;
    std::vector<std::unordered_map<std::uint64_t, CachelineData>> store_;
    std::unique_ptr<PersistDomain> persist_;
    LineAddr macBaseLine_ = 0;
};

} // namespace morph

#endif // MORPH_SECMEM_SECURE_MEMORY_MODEL_HH
