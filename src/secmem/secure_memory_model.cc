#include "secmem/secure_memory_model.hh"


#include "common/check.hh"
#include "common/prof.hh"
#include "common/stat_registry.hh"

namespace morph
{

SecureMemoryModel::SecureMemoryModel(const SecureModelConfig &config)
    : config_(config), geom_(config.memBytes, config.tree),
      mdcache_(config.metadataCacheBytes, config.metadataCacheWays,
               geom_)
{
    const auto &levels = geom_.levels();
    formats_.reserve(levels.size());
    store_.resize(levels.size());
    for (const auto &info : levels)
        formats_.push_back(makeCounterFormat(info.kind));

    // Separate-MAC mode: one 64-bit MAC per data line, 8 per MAC line,
    // in a slab above all other metadata.
    macBaseLine_ = geom_.totalBytes() / lineBytes;

    if (config_.persist.enabled)
        persist_ = std::make_unique<PersistDomain>(config_.persist);
}

SecureMemoryModel::~SecureMemoryModel() = default;

void
SecureMemoryModel::resetStats()
{
    stats_.reset();
    mdcache_.resetStats();
    if (persist_)
        persist_->resetStats();
}

void
SecureMemoryModel::finishRun()
{
    if (persist_)
        persist_->finish();
}

void
SecureMemoryModel::registerStats(StatRegistry &registry,
                                 const std::string &prefix,
                                 bool occupancy) const
{
    const std::string scope = prefix.empty() ? "" : prefix + ".";
    stats_.registerStats(registry, scope + "traffic");
    mdcache_.registerStats(registry, scope + "mdcache", occupancy);
    if (persist_)
        persist_->stats().registerStats(registry, scope + "persist");
}

CachelineData &
SecureMemoryModel::entryImage(unsigned level, std::uint64_t index)
{
    auto &level_store = store_[level];
    auto it = level_store.find(index);
    if (it != level_store.end())
        return it->second;
    CachelineData image;
    formats_[level]->init(image);
    return level_store.emplace(index, image).first->second;
}

std::uint64_t
SecureMemoryModel::counterOf(LineAddr data_line)
{
    const std::uint64_t index = geom_.parentIndex(0, data_line);
    const unsigned slot = geom_.childSlot(0, data_line);
    return formats_[0]->read(entryImage(0, index), slot);
}

LineAddr
SecureMemoryModel::macLineOf(LineAddr data_line) const
{
    return macBaseLine_ + data_line / 8;
}

/**
 * Guarantee the metadata entry is on-chip, generating the read +
 * upward verification walk on a miss (paper §II-B): the walk stops at
 * the first cached ancestor or the root.
 */
void
SecureMemoryModel::ensureCached(unsigned level, std::uint64_t index,
                                std::vector<MemAccess> &out,
                                bool critical)
{
    if (level == geom_.rootLevel())
        return; // root registers live on-chip

    // Recursion shows up as nested secmem.tree_walk chains in a
    // profile: depth == levels actually walked past the cache.
    MORPH_PROF_SCOPE("secmem.tree_walk");
    const LineAddr line = geom_.lineOfEntry(level, index);
    if (mdcache_.access(line))
        return; // found securely cached: traversal terminates

    out.push_back({line, AccessType::Read, trafficForLevel(level),
                   critical});
    stats_.count(trafficForLevel(level), false);
    insertMetadata(line, false, out);

    if (config_.counterPrefetch && level == 0 &&
        index + 1 < geom_.levels()[0].entries) {
        const LineAddr next = geom_.lineOfEntry(0, index + 1);
        if (!mdcache_.contains(next)) {
            out.push_back({next, AccessType::Read, Traffic::CtrEncr,
                           false});
            stats_.count(Traffic::CtrEncr, false);
            insertMetadata(next, false, out);
        }
    }

    // Verification walk: with speculative verification the ancestor
    // reads still consume bandwidth but no longer gate the load.
    ensureCached(level + 1, geom_.parentIndex(level + 1, index), out,
                 critical && !config_.speculativeVerification);
}

/** Insert a metadata line, handling a possible dirty victim. */
void
SecureMemoryModel::insertMetadata(LineAddr line, bool dirty,
                                  std::vector<MemAccess> &out)
{
    InsertPosition position = InsertPosition::Mru;
    if (config_.demoteEncCounters) {
        unsigned level;
        std::uint64_t index;
        if (geom_.entryOfLine(line, level, index) && level == 0)
            position = InsertPosition::Lru;
    }
    const auto evicted = mdcache_.insert(line, dirty, position);
    if (!evicted || !evicted->dirty)
        return;

    unsigned ev_level;
    std::uint64_t ev_index;
    if (geom_.entryOfLine(evicted->line, ev_level, ev_index)) {
        handleDirtyWriteback(ev_level, ev_index, out);
    } else {
        // A dirty separate-mode MAC line: plain write-back.
        out.push_back({evicted->line, AccessType::Write, Traffic::Mac,
                       false});
        stats_.count(Traffic::Mac, true);
    }
}

/**
 * A dirty metadata entry leaves the chip: write it back and propagate
 * the write up the tree by incrementing its parent counter.
 */
void
SecureMemoryModel::handleDirtyWriteback(unsigned level,
                                        std::uint64_t index,
                                        std::vector<MemAccess> &out)
{
    out.push_back({geom_.lineOfEntry(level, index), AccessType::Write,
                   trafficForLevel(level), false});
    stats_.count(trafficForLevel(level), true);

    // The line leaves the chip: under the lazy persist policy this is
    // the moment NVM takes the new image, ahead of the root commit.
    if (persist_)
        persist_->onDirtyWriteback(level, geom_.lineOfEntry(level, index),
                                   entryImage(level, index));

    if (level == geom_.rootLevel())
        return;
    bumpEntryCounter(level + 1, index, out);
}

/**
 * Increment the counter at @p level covering child entry
 * @p child_index of the level below, fetching the entry and handling
 * overflow resets.
 */
void
SecureMemoryModel::bumpEntryCounter(unsigned level,
                                    std::uint64_t child_index,
                                    std::vector<MemAccess> &out)
{
    MORPH_CHECK(level >= 1);
    if (level > geom_.rootLevel())
        return;

    MORPH_PROF_SCOPE("secmem.ctr_bump");
    const std::uint64_t index = geom_.parentIndex(level, child_index);
    const unsigned slot = geom_.childSlot(level, child_index);

    ensureCached(level, index, out, false);

    const WriteResult res =
        formats_[level]->increment(entryImage(level, index), slot);
    if (level != geom_.rootLevel())
        mdcache_.markDirty(geom_.lineOfEntry(level, index));
    if (persist_)
        persist_->onEntryUpdate(level, geom_.lineOfEntry(level, index),
                                entryImage(level, index));

    const unsigned bin = std::min<unsigned>(level, 7);
    if (res.rebase)
        ++stats_.rebasesByLevel[bin];
    if (res.formatSwitch)
        ++stats_.morphsByLevel[bin];
    if (res.overflow) {
        ++stats_.overflowsByLevel[bin];
        stats_.usageAtOverflow.record(double(res.usedBefore) /
                                      double(formats_[level]->arity()));
        // Re-hash every affected child entry: read + write each.
        emitOverflowTraffic(level, index, res.reencBegin, res.reencEnd,
                            out);
    }
}

/**
 * Overflow reset at @p level: children [begin, end) of entry
 * @p entry_index changed protecting counters — each is read, updated
 * (re-encrypted for level 0 children, re-MACed for metadata children)
 * and written back. The children's counter images are unchanged (only
 * data payloads / MACs refresh, which this model does not store), so
 * these writes are persist-neutral: the durable copies stay valid.
 */
void
SecureMemoryModel::emitOverflowTraffic(unsigned level,
                                       std::uint64_t entry_index,
                                       unsigned begin, unsigned end,
                                       std::vector<MemAccess> &out)
{
    MORPH_PROF_SCOPE("secmem.overflow");
    const unsigned arity = geom_.levels()[level].arity;
    const std::uint64_t child_base = entry_index * arity;

    // Children of a level-L entry live at level L-1; children of a
    // level-0 (encryption counter) entry are the data lines.
    std::uint64_t child_count;
    LineAddr child_line_base;
    if (level == 0) {
        child_count = geom_.dataLines();
        child_line_base = 0;
    } else {
        child_count = geom_.levels()[level - 1].entries;
        child_line_base = geom_.levels()[level - 1].baseLine;
    }

    for (unsigned c = begin; c < end; ++c) {
        const std::uint64_t child = child_base + c;
        if (child >= child_count)
            break;
        const LineAddr line = child_line_base + child;
        out.push_back({line, AccessType::Read, Traffic::Overflow,
                       false});
        out.push_back({line, AccessType::Write, Traffic::Overflow,
                       false});
        stats_.count(Traffic::Overflow, false);
        stats_.count(Traffic::Overflow, true);
    }
}

void
SecureMemoryModel::onDataAccess(LineAddr data_line, AccessType type,
                                std::vector<MemAccess> &out)
{
    MORPH_PROF_SCOPE("secmem.data_access");
    MORPH_CHECK_LT(data_line, geom_.dataLines());
    const bool is_write = type == AccessType::Write;

    out.push_back({data_line, type, Traffic::Data, !is_write});
    stats_.count(Traffic::Data, is_write);

    if (!config_.secure)
        return;

    const std::uint64_t index = geom_.parentIndex(0, data_line);
    const unsigned slot = geom_.childSlot(0, data_line);

    // The encryption counter is needed for both directions: OTP
    // generation on reads (critical), counter bump on writes (posted).
    ensureCached(0, index, out, !is_write);

    if (is_write) {
        const WriteResult res =
            formats_[0]->increment(entryImage(0, index), slot);
        mdcache_.markDirty(geom_.lineOfEntry(0, index));
        if (persist_)
            persist_->onEntryUpdate(0, geom_.lineOfEntry(0, index),
                                    entryImage(0, index));
        if (res.rebase)
            ++stats_.rebasesByLevel[0];
        if (res.formatSwitch)
            ++stats_.morphsByLevel[0];
        if (res.overflow) {
            ++stats_.overflowsByLevel[0];
            stats_.usageAtOverflow.record(
                double(res.usedBefore) / double(formats_[0]->arity()));
            emitOverflowTraffic(0, index, res.reencBegin, res.reencEnd,
                                out);
        }
    }

    if (!config_.inlineMacs) {
        // Separate-MAC organization: every data access also touches
        // the MAC line (reads verify, writes update).
        const LineAddr mac_line = macLineOf(data_line);
        if (!mdcache_.access(mac_line, is_write)) {
            out.push_back({mac_line, AccessType::Read, Traffic::Mac,
                           !is_write});
            stats_.count(Traffic::Mac, false);
            insertMetadata(mac_line, is_write, out);
        }
    }

    // Retired data write: advances the lazy policy's epoch clock
    // (and may fire a barrier). Last so the barrier covers every
    // metadata mutation this access generated.
    if (persist_ && is_write)
        persist_->onDataWrite();
}

} // namespace morph
