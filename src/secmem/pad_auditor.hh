/**
 * @file
 * Pad-uniqueness audit layer for counter-mode encryption.
 *
 * Counter-mode security is void the moment one (line, counter) pair is
 * used to encrypt twice: XOR of the two ciphertexts cancels the pad
 * and leaks plaintext. The codecs' monotonicity and accountability
 * invariants exist precisely to make that impossible — morphverify
 * proves them on the codec state machines, and this auditor checks the
 * end-to-end consequence inside a running SecureMemory: it records
 * every pad issued for *encryption* and aborts on the first repeat.
 *
 * The OTP engine derives one pad block per 16-byte AES block, seeded
 * with (line, counter, block). SecureMemory always encrypts whole
 * lines, so blocks 0..3 of a line are issued together and a
 * (line, counter) pair stands for all four (line, counter, block)
 * tuples; recording the pair is exactly as strong as recording the
 * tuples. Decryption legitimately re-derives a previously issued pad
 * and is not recorded.
 *
 * The auditor itself is always compiled; SecureMemory only calls it
 * when built with -DMORPH_AUDIT_PADS=ON (the `audit` CMake preset), as
 * the per-encryption hash-set insert is pure overhead in normal runs.
 */

#ifndef MORPH_SECMEM_PAD_AUDITOR_HH
#define MORPH_SECMEM_PAD_AUDITOR_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/annotations.hh"
#include "common/types.hh"

namespace morph
{

/** Records issued encryption pads and aborts on any reuse. */
class PadAuditor
{
  public:
    /**
     * Record that @p line is being encrypted under @p counter.
     * Panics (via MORPH_CHECK machinery) if this pair was already used
     * for an encryption — that is a counter-reuse security violation,
     * never a recoverable condition.
     */
    void recordEncrypt(LineAddr line, std::uint64_t counter);

    /** Distinct (line, counter) pads issued so far. */
    std::uint64_t padsIssued() const { return padsIssued_; }

    /** Lines that have been encrypted at least once. */
    std::uint64_t linesTracked() const
    {
        return std::uint64_t(used_.size());
    }

    /** Forget all recorded pads (new key / reset device). */
    void reset();

  private:
    // One auditor per SecureMemory per run; sweep workers each own
    // their whole simulated system, so this state is never shared.
    std::unordered_map<LineAddr, std::unordered_set<std::uint64_t>>
        used_ MORPH_SHARD_LOCAL;
    std::uint64_t padsIssued_ MORPH_SHARD_LOCAL = 0;
};

} // namespace morph

#endif // MORPH_SECMEM_PAD_AUDITOR_HH
