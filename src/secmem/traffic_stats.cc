#include "secmem/traffic_stats.hh"

#include "common/stat_registry.hh"

namespace morph
{

const char *
trafficName(Traffic category)
{
    switch (category) {
      case Traffic::Data:
        return "Data";
      case Traffic::CtrEncr:
        return "Ctr_Encr";
      case Traffic::Ctr1:
        return "Ctr_1";
      case Traffic::Ctr2:
        return "Ctr_2";
      case Traffic::Ctr3Up:
        return "Ctr_3&Up";
      case Traffic::Overflow:
        return "Overflow";
      case Traffic::Mac:
        return "MAC";
    }
    return "?";
}

const char *
trafficKey(Traffic category)
{
    switch (category) {
      case Traffic::Data:
        return "data";
      case Traffic::CtrEncr:
        return "ctr_encr";
      case Traffic::Ctr1:
        return "ctr_1";
      case Traffic::Ctr2:
        return "ctr_2";
      case Traffic::Ctr3Up:
        return "ctr_3up";
      case Traffic::Overflow:
        return "overflow";
      case Traffic::Mac:
        return "mac";
    }
    return "unknown";
}

Traffic
trafficForLevel(unsigned level)
{
    switch (level) {
      case 0:
        return Traffic::CtrEncr;
      case 1:
        return Traffic::Ctr1;
      case 2:
        return Traffic::Ctr2;
      default:
        return Traffic::Ctr3Up;
    }
}

std::uint64_t
TrafficStats::total() const
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < numTrafficCategories; ++i)
        sum += reads[i] + writes[i];
    return sum;
}

std::uint64_t
TrafficStats::totalOverflows() const
{
    std::uint64_t sum = 0;
    for (auto v : overflowsByLevel)
        sum += v;
    return sum;
}

std::uint64_t
TrafficStats::totalRebases() const
{
    std::uint64_t sum = 0;
    for (auto v : rebasesByLevel)
        sum += v;
    return sum;
}

std::uint64_t
TrafficStats::totalMorphs() const
{
    std::uint64_t sum = 0;
    for (auto v : morphsByLevel)
        sum += v;
    return sum;
}

double
TrafficStats::bloat() const
{
    const std::uint64_t data = accesses(Traffic::Data);
    return data ? double(total()) / double(data) : 0.0;
}

void
TrafficStats::reset()
{
    reads.fill(0);
    writes.fill(0);
    overflowsByLevel.fill(0);
    rebasesByLevel.fill(0);
    morphsByLevel.fill(0);
    usageAtOverflow.reset();
}

void
TrafficStats::report(StatSet &out) const
{
    for (unsigned i = 0; i < numTrafficCategories; ++i) {
        const auto cat = Traffic(i);
        out.set(std::string("traffic.") + trafficName(cat) + ".reads",
                double(reads[i]));
        out.set(std::string("traffic.") + trafficName(cat) + ".writes",
                double(writes[i]));
    }
    out.set("traffic.total", double(total()));
    out.set("traffic.bloat", bloat());
    out.set("overflows.total", double(totalOverflows()));
    out.set("rebases.total", double(totalRebases()));
    for (unsigned level = 0; level < overflowsByLevel.size(); ++level) {
        if (overflowsByLevel[level])
            out.set("overflows.level" + std::to_string(level),
                    double(overflowsByLevel[level]));
    }
}

void
TrafficStats::registerStats(StatRegistry &registry,
                            const std::string &prefix) const
{
    for (unsigned i = 0; i < numTrafficCategories; ++i) {
        const std::string base =
            prefix + "." + trafficKey(Traffic(i));
        registry.counter(base + ".reads", &reads[i],
                         "DRAM reads in this traffic category");
        registry.counter(base + ".writes", &writes[i],
                         "DRAM writes in this traffic category");
    }
    registry.counter(
        prefix + ".total", [this]() { return total(); },
        "total DRAM accesses, all categories");
    registry.gauge(
        prefix + ".bloat", [this]() { return bloat(); },
        "memory accesses per data access (paper Figs 5b/16)");
    for (unsigned level = 0; level < overflowsByLevel.size();
         ++level) {
        const std::string suffix = ".level" + std::to_string(level);
        registry.counter(prefix + ".overflows" + suffix,
                         &overflowsByLevel[level],
                         "overflow resets at this tree level");
        registry.counter(prefix + ".rebases" + suffix,
                         &rebasesByLevel[level],
                         "MCR rebases at this tree level");
        registry.counter(prefix + ".morphs" + suffix,
                         &morphsByLevel[level],
                         "representation switches at this tree level");
    }
    registry.counter(
        prefix + ".overflows.total",
        [this]() { return totalOverflows(); },
        "overflow resets, all levels");
    registry.counter(
        prefix + ".rebases.total", [this]() { return totalRebases(); },
        "MCR rebases, all levels");
    registry.counter(
        prefix + ".morphs.total", [this]() { return totalMorphs(); },
        "representation switches, all levels");
    registry.histogram(prefix + ".usage_at_overflow", &usageAtOverflow,
                       "counter-usage fraction at overflow (Fig 7)");
}

} // namespace morph
