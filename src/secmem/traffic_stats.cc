#include "secmem/traffic_stats.hh"

namespace morph
{

const char *
trafficName(Traffic category)
{
    switch (category) {
      case Traffic::Data:
        return "Data";
      case Traffic::CtrEncr:
        return "Ctr_Encr";
      case Traffic::Ctr1:
        return "Ctr_1";
      case Traffic::Ctr2:
        return "Ctr_2";
      case Traffic::Ctr3Up:
        return "Ctr_3&Up";
      case Traffic::Overflow:
        return "Overflow";
      case Traffic::Mac:
        return "MAC";
    }
    return "?";
}

Traffic
trafficForLevel(unsigned level)
{
    switch (level) {
      case 0:
        return Traffic::CtrEncr;
      case 1:
        return Traffic::Ctr1;
      case 2:
        return Traffic::Ctr2;
      default:
        return Traffic::Ctr3Up;
    }
}

std::uint64_t
TrafficStats::total() const
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < numTrafficCategories; ++i)
        sum += reads[i] + writes[i];
    return sum;
}

std::uint64_t
TrafficStats::totalOverflows() const
{
    std::uint64_t sum = 0;
    for (auto v : overflowsByLevel)
        sum += v;
    return sum;
}

std::uint64_t
TrafficStats::totalRebases() const
{
    std::uint64_t sum = 0;
    for (auto v : rebasesByLevel)
        sum += v;
    return sum;
}

double
TrafficStats::bloat() const
{
    const std::uint64_t data = accesses(Traffic::Data);
    return data ? double(total()) / double(data) : 0.0;
}

void
TrafficStats::reset()
{
    reads.fill(0);
    writes.fill(0);
    overflowsByLevel.fill(0);
    rebasesByLevel.fill(0);
    usageAtOverflow.reset();
}

void
TrafficStats::report(StatSet &out) const
{
    for (unsigned i = 0; i < numTrafficCategories; ++i) {
        const auto cat = Traffic(i);
        out.set(std::string("traffic.") + trafficName(cat) + ".reads",
                double(reads[i]));
        out.set(std::string("traffic.") + trafficName(cat) + ".writes",
                double(writes[i]));
    }
    out.set("traffic.total", double(total()));
    out.set("traffic.bloat", bloat());
    out.set("overflows.total", double(totalOverflows()));
    out.set("rebases.total", double(totalRebases()));
    for (unsigned level = 0; level < overflowsByLevel.size(); ++level) {
        if (overflowsByLevel[level])
            out.set("overflows.level" + std::to_string(level),
                    double(overflowsByLevel[level]));
    }
}

} // namespace morph
