/**
 * @file
 * The shared on-chip metadata cache (paper Table I: 128 KB, 8-way).
 *
 * Holds encryption-counter entries, integrity-tree entries and (in
 * separate-MAC mode) MAC lines. A thin wrapper over the generic Cache
 * that adds per-tree-level occupancy accounting — the mechanism behind
 * the paper's central observation that compact trees keep their upper
 * levels fully resident, terminating traversals early.
 */

#ifndef MORPH_SECMEM_METADATA_CACHE_HH
#define MORPH_SECMEM_METADATA_CACHE_HH

#include <vector>

#include "cache/cache.hh"
#include "integrity/tree_geometry.hh"

namespace morph
{

class StatRegistry;

/** Metadata cache with per-level occupancy introspection. */
class MetadataCache
{
  public:
    /**
     * @param size_bytes capacity (64 KB / 128 KB / 256 KB in Fig 19)
     * @param ways       associativity
     * @param geom       geometry used to attribute lines to levels
     */
    MetadataCache(std::size_t size_bytes, unsigned ways,
                  const TreeGeometry &geom)
        : cache_(size_bytes, ways), geom_(&geom)
    {}

    /** @copydoc Cache::access */
    bool
    access(LineAddr line, bool write = false)
    {
        return cache_.access(line, write);
    }

    /** @copydoc Cache::insert */
    std::optional<Eviction>
    insert(LineAddr line, bool dirty,
           InsertPosition position = InsertPosition::Mru)
    {
        return cache_.insert(line, dirty, position);
    }

    /** @copydoc Cache::markDirty */
    bool markDirty(LineAddr line) { return cache_.markDirty(line); }

    /** @copydoc Cache::contains */
    bool contains(LineAddr line) const { return cache_.contains(line); }

    /** @copydoc Cache::flush */
    void flush() { cache_.flush(); }

    const CacheStats &stats() const { return cache_.stats(); }
    void resetStats() { cache_.resetStats(); }
    std::size_t sizeBytes() const { return cache_.sizeBytes(); }

    /**
     * Register hit/miss/eviction counters and the hit-rate gauge into
     * @p registry under @p prefix; with @p occupancy, per-tree-level
     * residency gauges ("<prefix>.occupancy.levelN" plus ".other" for
     * MAC lines) are included. Occupancy gauges walk the whole cache
     * at sample time — reporting only, never the simulation fast path.
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix,
                       bool occupancy = false) const;

    /**
     * Number of resident lines per tree level (index = level; one
     * extra trailing slot counts non-metadata lines such as MAC
     * lines). Linear in cache size — intended for reporting, not the
     * simulation fast path.
     */
    std::vector<std::uint64_t> levelOccupancy() const;

    /**
     * Resident lines currently dirty — mutations that never left the
     * chip. Reported as the end-of-run "<prefix>.dirty_lines" gauge so
     * dirty_evictions plus this accounts for every dirty line; the
     * persist domain's final barrier drains the same set into the
     * durable image. Linear in cache size — reporting only.
     */
    std::uint64_t dirtyLineCount() const;

  private:
    Cache cache_;
    const TreeGeometry *geom_;
};

} // namespace morph

#endif // MORPH_SECMEM_METADATA_CACHE_HH
