/**
 * @file
 * Minimal INI-style configuration files (USIMM reads its system and
 * power parameters from files; morphsim does the same).
 *
 * Grammar:
 *
 *     ; comment       # comment
 *     [section]
 *     key = value
 *
 * Keys outside any section live in the "" section. Lookups are by
 * "section.key" (or bare "key" for the default section). Values are
 * strings with typed accessors; unknown keys can be enumerated so
 * callers can reject typos.
 */

#ifndef MORPH_COMMON_INI_HH
#define MORPH_COMMON_INI_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace morph
{

/** A parsed INI file. */
class IniFile
{
  public:
    IniFile() = default;

    /** Parse a file from disk; fatal() on open/parse errors. */
    static IniFile fromFile(const std::string &path);

    /** Parse from a stream (tests); fatal() on parse errors. */
    static IniFile fromStream(std::istream &input,
                              const std::string &name);

    /** True if "section.key" (or "key") is present. */
    bool has(const std::string &dotted_key) const;

    /** String value; @p fallback if absent. */
    std::string getString(const std::string &dotted_key,
                          const std::string &fallback = "") const;

    /** Integer value; fatal() if present but unparsable. */
    std::int64_t getInt(const std::string &dotted_key,
                        std::int64_t fallback) const;

    /** Double value; fatal() if present but unparsable. */
    double getDouble(const std::string &dotted_key,
                     double fallback) const;

    /** Boolean: true/false/1/0/yes/no/on/off. */
    bool getBool(const std::string &dotted_key, bool fallback) const;

    /** All keys, dotted, in file order (for typo checking). */
    const std::vector<std::string> &keys() const { return order_; }

  private:
    const std::string *find(const std::string &dotted_key) const;

    std::vector<std::string> order_;
    std::vector<std::pair<std::string, std::string>> values_;
    std::string name_ = "<none>";
};

} // namespace morph

#endif // MORPH_COMMON_INI_HH
