/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic components of the simulator (trace generators, mixes,
 * page placement) draw from explicitly seeded generators so that every
 * experiment is bit-reproducible. We use xoshiro256** which is fast,
 * high quality, and trivially seedable from a 64-bit value.
 */

#ifndef MORPH_COMMON_RNG_HH
#define MORPH_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hh"

namespace morph
{

/** xoshiro256** pseudo-random generator (Blackman & Vigna). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        MORPH_DCHECK(bound > 0);
        // Unbiased rejection sampling via 128-bit multiply (Lemire).
        while (true) {
            const std::uint64_t x = next();
            const unsigned __int128 m = (unsigned __int128)x * bound;
            const std::uint64_t low = std::uint64_t(m);
            if (low >= bound || low >= std::uint64_t(-bound) % bound)
                return std::uint64_t(m >> 64);
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

/**
 * Zipf-distributed sampler over [0, n).
 *
 * Used to model hot/cold page popularity: a small exponent produces
 * mild skew, exponents near 1 produce the heavy page-popularity skew
 * seen in graph workloads. Sampling is O(log n) via a precomputed CDF
 * for small n, or approximate inverse-CDF for large n.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double exponent)
        : n_(n), exponent_(exponent)
    {
        MORPH_CHECK(n > 0);
        if (n_ <= cdfLimit) {
            cdf_.reserve(n_);
            double sum = 0.0;
            for (std::uint64_t i = 0; i < n_; ++i) {
                sum += 1.0 / std::pow(double(i + 1), exponent_);
                cdf_.push_back(sum);
            }
            norm_ = sum;
        } else {
            // Harmonic approximation H(n,s) for the continuous tail.
            norm_ = generalizedHarmonic(double(n_), exponent_);
        }
    }

    /** Draw one sample (rank 0 is the most popular item). */
    std::uint64_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform() * norm_;
        if (!cdf_.empty()) {
            // Binary search the precomputed CDF.
            std::uint64_t lo = 0, hi = n_ - 1;
            while (lo < hi) {
                const std::uint64_t mid = (lo + hi) / 2;
                if (cdf_[mid] < u)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            return lo;
        }
        // Invert the continuous approximation of the CDF.
        const double s = exponent_;
        double x;
        if (s == 1.0) {
            x = std::exp(u) - 1.0;
        } else {
            x = std::pow(u * (1.0 - s) + 1.0, 1.0 / (1.0 - s)) - 1.0;
        }
        std::uint64_t idx = std::uint64_t(x);
        return idx >= n_ ? n_ - 1 : idx;
    }

    std::uint64_t size() const { return n_; }

  private:
    static constexpr std::uint64_t cdfLimit = 1u << 20;

    static double
    generalizedHarmonic(double n, double s)
    {
        if (s == 1.0)
            return std::log(n + 1.0);
        return (std::pow(n + 1.0, 1.0 - s) - 1.0) / (1.0 - s);
    }

    std::uint64_t n_;
    double exponent_;
    double norm_ = 1.0;
    std::vector<double> cdf_;
};

} // namespace morph

#endif // MORPH_COMMON_RNG_HH
