/**
 * @file
 * Request-lifecycle tracing in Chrome trace_event JSON.
 *
 * Collects duration ("X"), instant ("i") and metadata ("M") events and
 * writes the JSON-array format that chrome://tracing and Perfetto load
 * directly. Timestamps are in CPU cycles, displayed as microseconds
 * (1 cycle == 1 us on the timeline) — absolute times are simulated
 * cycles, only relative structure matters.
 *
 * The simulator samples 1-in-N data accesses (see
 * ScopeConfig::traceSampleEvery); each sampled access emits a nested
 * span tree: the access span on the core's track, tree-walk fetch
 * spans per level, and DRAM service spans (queue + burst) on the
 * owning channel's track.
 *
 * Event storage is bounded (maxEvents); once full, further events are
 * dropped and dropped() reports how many, so a runaway trace can never
 * exhaust memory. Loss is never silent: the drop count rides in the
 * written document's "morph" metadata block, surfaces as the
 * trace.dropped_events stat, and the drivers warn on stderr when it
 * is nonzero.
 */

#ifndef MORPH_COMMON_TRACE_LOG_HH
#define MORPH_COMMON_TRACE_LOG_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/annotations.hh"

namespace morph
{

/** Chrome trace_event collector. */
class TraceLog
{
  public:
    /** @param max_events hard cap on stored events. */
    explicit TraceLog(std::size_t max_events = 2'000'000)
        : maxEvents_(max_events)
    {}

    /**
     * Duration event ("ph":"X") on track @p tid.
     *
     * @param name static display name (must outlive the log)
     * @param cat  static category string
     * @param ts   start, in cycles
     * @param dur  duration, in cycles
     * @param arg_line line-address argument; emitted when != noLine
     */
    void complete(const char *name, const char *cat, std::uint32_t tid,
                  std::uint64_t ts, std::uint64_t dur,
                  std::uint64_t arg_line = noLine);

    /**
     * Duration event whose name is copied into an internal pool
     * (for dynamically built names, e.g. the morphprof tree merge).
     * Pooled names survive moves of the log but not copies; append
     * owned-name events only on a log that will no longer be copied
     * (in practice: at export time).
     */
    void completeOwned(const std::string &name, const char *cat,
                       std::uint32_t tid, std::uint64_t ts,
                       std::uint64_t dur);

    /** Instant event ("ph":"i", thread scope). */
    void instant(const char *name, const char *cat, std::uint32_t tid,
                 std::uint64_t ts);

    /** Name track @p tid ("thread_name" metadata event). */
    void nameTrack(std::uint32_t tid, const std::string &name);

    /** Stored events (metadata included). */
    std::size_t size() const;

    /** Events discarded after the cap was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Write the complete JSON document. */
    void write(std::ostream &os) const;

    /** Write to @p path; false (with errno intact) on I/O failure. */
    bool writeTo(const std::string &path) const;

    static constexpr std::uint64_t noLine = ~std::uint64_t(0);

  private:
    struct Event
    {
        const char *name;
        const char *cat;
        std::uint64_t ts;
        std::uint64_t dur;
        std::uint64_t line;
        std::uint32_t tid;
        char phase; // 'X' or 'i'
    };

    bool roomFor();

    // A TraceLog belongs to one run's MorphScope; sweep workers never
    // share one (each run owns its whole observability context).
    std::size_t maxEvents_ MORPH_SHARD_LOCAL;
    std::vector<Event> events_ MORPH_SHARD_LOCAL;
    std::vector<std::pair<std::uint32_t, std::string>> trackNames_
        MORPH_SHARD_LOCAL;
    // Deque: stable element addresses for the Event::name pointers
    // handed out by completeOwned (and preserved across moves).
    std::deque<std::string> ownedNames_ MORPH_SHARD_LOCAL;
    std::uint64_t dropped_ MORPH_SHARD_LOCAL = 0;
};

} // namespace morph

#endif // MORPH_COMMON_TRACE_LOG_HH
