#include "common/prof.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "common/check.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/mutex.hh"
#include "common/trace_log.hh"

namespace morph
{

std::atomic<bool> profEnabledFlag{false};

/** One node of a thread's call tree. Children are found by site
 *  pointer with a linear scan: instrumented functions have a handful
 *  of distinct callees, so the scan beats any map. */
struct ProfNode
{
    const ProfSite *site = nullptr; ///< nullptr only at the root
    ProfNode *parent = nullptr;
    std::uint64_t calls = 0;
    std::uint64_t inclusiveNs = 0;
    std::vector<std::unique_ptr<ProfNode>> children;
};

namespace
{

struct ThreadState
{
    std::string name;
    ProfNode root;
    ProfNode *current = &root;
};

struct PoolEntry
{
    std::size_t token = 0;
    std::string label;
    ProfPoolSnapshotFn snapshot;
};

struct Registry
{
    Mutex lock;
    // Thread states are created once per thread and never destroyed:
    // the owning thread keeps a raw pointer in TLS, so the list only
    // grows (bounded by the process's lifetime thread count).
    std::vector<std::unique_ptr<ThreadState>> threadStates
        MORPH_GUARDED_BY(lock);
    std::vector<const ProfSite *> sites MORPH_GUARDED_BY(lock);
    std::vector<PoolEntry> poolEntries MORPH_GUARDED_BY(lock);
    std::vector<ProfWorkerStats> retired MORPH_GUARDED_BY(lock);
    bool frozen MORPH_GUARDED_BY(lock) = false;
    std::uint64_t startNs MORPH_GUARDED_BY(lock) = 0;
    std::uint64_t windowNs MORPH_GUARDED_BY(lock) = 0;
    std::size_t nextPoolToken MORPH_GUARDED_BY(lock) = 0;
    std::size_t poolCount MORPH_GUARDED_BY(lock) = 0;
};

Registry &
registry()
{
    // C++11 guarantees race-free one-time construction; every
    // mutable member is guarded by the contained lock (annotated).
    // morphrace: allow(race-naked-static): guarded members, see above
    static Registry reg;
    return reg;
}

thread_local ThreadState *tlsThread = nullptr;

std::atomic<std::uint64_t (*)()> clockOverride{nullptr};

ThreadState *
initThread()
{
    auto owned = std::make_unique<ThreadState>();
    ThreadState *state = owned.get();
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    state->name = reg.threadStates.empty()
                      ? std::string("main")
                      : "thread" + std::to_string(reg.threadStates.size());
    reg.threadStates.push_back(std::move(owned));
    tlsThread = state;
    return state;
}

} // namespace

bool
isValidProfName(const std::string &name)
{
    // Same contract as morphscope stat names: [a-z0-9_.]+.
    return isValidStatName(name);
}

ProfSite::ProfSite(const char *name) : name_(name)
{
    if (!isValidProfName(name_))
        panic("prof scope name '%s' violates the [a-z0-9_.]+ contract",
              name_.c_str());
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    for (const ProfSite *site : reg.sites) {
        if (site->name() == name_)
            panic("duplicate prof scope name '%s'", name_.c_str());
    }
    reg.sites.push_back(this);
}

std::uint64_t
profNowNs()
{
    const auto override = clockOverride.load(std::memory_order_relaxed);
    if (override != nullptr)
        return override();
    const auto now = std::chrono::steady_clock::now();
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

ProfNode *
profEnter(const ProfSite &site)
{
    ThreadState *state = tlsThread != nullptr ? tlsThread : initThread();
    ProfNode *parent = state->current;
    ProfNode *node = nullptr;
    for (const auto &child : parent->children) {
        if (child->site == &site) {
            node = child.get();
            break;
        }
    }
    if (node == nullptr) {
        parent->children.push_back(std::make_unique<ProfNode>());
        node = parent->children.back().get();
        node->site = &site;
        node->parent = parent;
    }
    state->current = node;
    return node;
}

void
profLeave(ProfNode *node, std::uint64_t elapsed_ns)
{
    node->calls += 1;
    node->inclusiveNs += elapsed_ns;
    tlsThread->current = node->parent;
}

void
profEnable()
{
    // Register the calling thread before any worker can: the first
    // registered thread is the one reports name "main".
    if (tlsThread == nullptr)
        initThread();
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    if (reg.frozen)
        return;
    if (!profEnabledFlag.load(std::memory_order_relaxed)) {
        reg.startNs = profNowNs();
        profEnabledFlag.store(true, std::memory_order_relaxed);
    }
}

void
profSetThreadName(const std::string &name)
{
    ThreadState *state = tlsThread != nullptr ? tlsThread : initThread();
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    state->name = name;
}

std::vector<std::string>
profSiteNames()
{
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    std::vector<std::string> names;
    names.reserve(reg.sites.size());
    for (const ProfSite *site : reg.sites)
        names.push_back(site->name());
    return names;
}

std::size_t
profRegisterPool(const ProfPoolSnapshotFn &snapshot)
{
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    PoolEntry entry;
    entry.token = reg.nextPoolToken++;
    entry.label = "pool" + std::to_string(reg.poolCount++);
    entry.snapshot = snapshot;
    reg.poolEntries.push_back(std::move(entry));
    return reg.poolEntries.back().token;
}

void
profUnregisterPool(std::size_t token)
{
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    for (auto it = reg.poolEntries.begin();
         it != reg.poolEntries.end(); ++it) {
        if (it->token != token)
            continue;
        // Keep the final telemetry only if a profile window is (or
        // was) open; otherwise nobody will ever report it.
        if (profEnabledFlag.load(std::memory_order_relaxed) ||
            reg.frozen) {
            std::vector<ProfWorkerStats> stats = it->snapshot();
            for (ProfWorkerStats &ws : stats) {
                ws.pool = it->label;
                reg.retired.push_back(std::move(ws));
            }
        }
        reg.poolEntries.erase(it);
        return;
    }
}

namespace
{

/** Cross-thread merge node (threads with equal names fold together). */
struct MergedNode
{
    const ProfSite *site = nullptr;
    std::uint64_t calls = 0;
    std::uint64_t inclusiveNs = 0;
    std::vector<std::unique_ptr<MergedNode>> children;
};

void
mergeTree(MergedNode &dst, const ProfNode &src)
{
    dst.calls += src.calls;
    dst.inclusiveNs += src.inclusiveNs;
    for (const auto &child : src.children) {
        MergedNode *slot = nullptr;
        for (const auto &existing : dst.children) {
            if (existing->site == child->site) {
                slot = existing.get();
                break;
            }
        }
        if (slot == nullptr) {
            dst.children.push_back(std::make_unique<MergedNode>());
            slot = dst.children.back().get();
            slot->site = child->site;
        }
        mergeTree(*slot, *child);
    }
}

void
emitEntries(const MergedNode &node, const std::string &thread,
            const std::string &parent_path, unsigned depth,
            std::vector<ProfEntry> &out)
{
    std::vector<const MergedNode *> ordered;
    ordered.reserve(node.children.size());
    for (const auto &child : node.children)
        ordered.push_back(child.get());
    std::sort(ordered.begin(), ordered.end(),
              [](const MergedNode *a, const MergedNode *b) {
                  return a->site->name() < b->site->name();
              });
    for (const MergedNode *child : ordered) {
        std::uint64_t childSum = 0;
        for (const auto &grand : child->children)
            childSum += grand->inclusiveNs;
        ProfEntry entry;
        entry.thread = thread;
        entry.name = child->site->name();
        entry.path = parent_path.empty()
                         ? entry.name
                         : parent_path + ";" + entry.name;
        entry.depth = depth;
        entry.calls = child->calls;
        entry.inclusiveNs = child->inclusiveNs;
        entry.exclusiveNs = child->inclusiveNs > childSum
                                ? child->inclusiveNs - childSum
                                : 0;
        out.push_back(entry);
        // Pass the local copy: pushing into `out` during the recursion
        // can reallocate and would dangle a reference into the vector.
        emitEntries(*child, thread, entry.path, depth + 1, out);
    }
}

} // namespace

ProfReport
profReport()
{
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    if (!reg.frozen) {
        if (profEnabledFlag.load(std::memory_order_relaxed))
            reg.windowNs = profNowNs() - reg.startNs;
        profEnabledFlag.store(false, std::memory_order_relaxed);
        reg.frozen = true;
    }

    ProfReport report;
    report.wallNs = reg.windowNs;

    // Fold threads with the same display name (every pool names its
    // workers worker0..workerN-1) and order "main" first.
    std::vector<std::pair<std::string, MergedNode>> merged;
    for (const auto &state : reg.threadStates) {
        if (state->root.children.empty())
            continue;
        MergedNode *slot = nullptr;
        for (auto &kv : merged) {
            if (kv.first == state->name) {
                slot = &kv.second;
                break;
            }
        }
        if (slot == nullptr) {
            merged.emplace_back(state->name, MergedNode{});
            slot = &merged.back().second;
        }
        mergeTree(*slot, state->root);
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto &a, const auto &b) {
                  const bool amain = a.first == "main";
                  const bool bmain = b.first == "main";
                  if (amain != bmain)
                      return amain;
                  return a.first < b.first;
              });
    for (const auto &kv : merged) {
        report.threads.push_back(kv.first);
        emitEntries(kv.second, kv.first, "", 0, report.entries);
    }

    for (const PoolEntry &pool : reg.poolEntries) {
        std::vector<ProfWorkerStats> stats = pool.snapshot();
        for (ProfWorkerStats &ws : stats) {
            ws.pool = pool.label;
            report.workers.push_back(std::move(ws));
        }
    }
    for (const ProfWorkerStats &ws : reg.retired)
        report.workers.push_back(ws);
    std::sort(report.workers.begin(), report.workers.end(),
              [](const ProfWorkerStats &a, const ProfWorkerStats &b) {
                  if (a.pool.size() != b.pool.size())
                      return a.pool.size() < b.pool.size();
                  if (a.pool != b.pool)
                      return a.pool < b.pool;
                  return a.worker < b.worker;
              });
    return report;
}

void
profResetForTest()
{
    Registry &reg = registry();
    LockGuard guard(reg.lock);
    profEnabledFlag.store(false, std::memory_order_relaxed);
    reg.frozen = false;
    reg.startNs = 0;
    reg.windowNs = 0;
    reg.retired.clear();
    for (auto &state : reg.threadStates) {
        // Reset requires quiescence: no thread may be inside a scope.
        MORPH_CHECK(state->current == &state->root);
        state->root.children.clear();
        state->root.calls = 0;
        state->root.inclusiveNs = 0;
    }
}

void
profSetClockForTest(std::uint64_t (*now_ns)())
{
    clockOverride.store(now_ns, std::memory_order_relaxed);
}

std::uint64_t
ProfReport::rootInclusiveNs(const std::string &thread) const
{
    std::uint64_t total = 0;
    for (const ProfEntry &entry : entries) {
        if (entry.thread == thread && entry.depth == 0)
            total += entry.inclusiveNs;
    }
    return total;
}

double
ProfReport::coverage() const
{
    if (wallNs == 0 || threads.empty())
        return 0.0;
    return double(rootInclusiveNs(threads.front())) / double(wallNs);
}

void
ProfReport::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"morphprof-v1\",\n  \"meta\": {";
    bool first = true;
    for (const auto &kv : meta.entries) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << jsonEscape(kv.first) << "\": \""
           << jsonEscape(kv.second) << "\"";
    }
    os << (first ? "" : "\n  ") << "},\n";
    os << "  \"wall_ns\": " << wallNs << ",\n";
    os << "  \"coverage\": " << jsonNumber(coverage()) << ",\n";
    os << "  \"threads\": [";
    bool firstThread = true;
    for (const std::string &thread : threads) {
        if (!firstThread)
            os << ",";
        firstThread = false;
        os << "\n    {\"name\": \"" << jsonEscape(thread)
           << "\", \"root_inclusive_ns\": " << rootInclusiveNs(thread)
           << ", \"scopes\": [";
        bool firstScope = true;
        for (const ProfEntry &entry : entries) {
            if (entry.thread != thread)
                continue;
            if (!firstScope)
                os << ",";
            firstScope = false;
            os << "\n      {\"path\": \"" << jsonEscape(entry.path)
               << "\", \"name\": \"" << jsonEscape(entry.name)
               << "\", \"depth\": " << entry.depth
               << ", \"calls\": " << entry.calls
               << ", \"inclusive_ns\": " << entry.inclusiveNs
               << ", \"exclusive_ns\": " << entry.exclusiveNs << "}";
        }
        os << (firstScope ? "" : "\n    ") << "]}";
    }
    os << (firstThread ? "" : "\n  ") << "],\n";
    os << "  \"pools\": [";
    bool firstPool = true;
    std::string current;
    for (const ProfWorkerStats &ws : workers) {
        if (ws.pool != current) {
            if (!current.empty())
                os << "\n    ]}";
            if (!firstPool)
                os << ",";
            firstPool = false;
            current = ws.pool;
            os << "\n    {\"pool\": \"" << jsonEscape(ws.pool)
               << "\", \"workers\": [";
        } else {
            os << ",";
        }
        os << "\n      {\"worker\": " << ws.worker
           << ", \"tasks\": " << ws.tasks
           << ", \"steals\": " << ws.steals
           << ", \"steal_fails\": " << ws.stealFails
           << ", \"idle_ns\": " << ws.idleNs << "}";
    }
    if (!current.empty())
        os << "\n    ]}";
    os << (firstPool ? "" : "\n  ") << "]\n}\n";
}

void
ProfReport::writeCollapsed(std::ostream &os) const
{
    for (const ProfEntry &entry : entries) {
        if (entry.exclusiveNs == 0)
            continue;
        os << entry.thread << ";" << entry.path << " "
           << entry.exclusiveNs << "\n";
    }
}

void
ProfReport::writeSpeedscope(std::ostream &os) const
{
    // Frame table: one frame per distinct scope name.
    std::vector<std::string> frames;
    auto frameIndex = [&frames](const std::string &name) {
        for (std::size_t i = 0; i < frames.size(); ++i) {
            if (frames[i] == name)
                return i;
        }
        frames.push_back(name);
        return frames.size() - 1;
    };
    // Resolve every entry's stack up front so the frame table is
    // complete before the header is written.
    struct Sample
    {
        std::string thread;
        std::vector<std::size_t> stack;
        std::uint64_t weight;
    };
    std::vector<Sample> samples;
    for (const ProfEntry &entry : entries) {
        if (entry.exclusiveNs == 0)
            continue;
        Sample sample;
        sample.thread = entry.thread;
        sample.weight = entry.exclusiveNs;
        std::size_t pos = 0;
        while (pos <= entry.path.size()) {
            const std::size_t sep = entry.path.find(';', pos);
            const std::size_t end =
                sep == std::string::npos ? entry.path.size() : sep;
            sample.stack.push_back(
                frameIndex(entry.path.substr(pos, end - pos)));
            if (sep == std::string::npos)
                break;
            pos = sep + 1;
        }
        samples.push_back(std::move(sample));
    }

    os << "{\n  \"$schema\": "
          "\"https://www.speedscope.app/file-format-schema.json\",\n";
    os << "  \"exporter\": \"morphprof\",\n";
    os << "  \"name\": \"" << jsonEscape(meta.get("tool").empty()
                                             ? std::string("morphprof")
                                             : meta.get("tool"))
       << "\",\n";
    os << "  \"activeProfileIndex\": 0,\n";
    os << "  \"shared\": {\"frames\": [";
    for (std::size_t i = 0; i < frames.size(); ++i) {
        os << (i == 0 ? "" : ",") << "\n    {\"name\": \""
           << jsonEscape(frames[i]) << "\"}";
    }
    os << (frames.empty() ? "" : "\n  ") << "]},\n";
    os << "  \"profiles\": [";
    bool firstProfile = true;
    for (const std::string &thread : threads) {
        std::uint64_t total = 0;
        for (const Sample &sample : samples) {
            if (sample.thread == thread)
                total += sample.weight;
        }
        if (!firstProfile)
            os << ",";
        firstProfile = false;
        os << "\n    {\"type\": \"sampled\", \"name\": \""
           << jsonEscape(thread)
           << "\", \"unit\": \"nanoseconds\", \"startValue\": 0, "
              "\"endValue\": "
           << total << ",\n     \"samples\": [";
        bool firstSample = true;
        for (const Sample &sample : samples) {
            if (sample.thread != thread)
                continue;
            os << (firstSample ? "" : ",") << "[";
            firstSample = false;
            for (std::size_t i = 0; i < sample.stack.size(); ++i)
                os << (i == 0 ? "" : ",") << sample.stack[i];
            os << "]";
        }
        os << "],\n     \"weights\": [";
        firstSample = true;
        for (const Sample &sample : samples) {
            if (sample.thread != thread)
                continue;
            os << (firstSample ? "" : ",") << sample.weight;
            firstSample = false;
        }
        os << "]}";
    }
    os << (firstProfile ? "" : "\n  ") << "]\n}\n";
}

void
ProfReport::mergeIntoTrace(TraceLog &trace, std::uint32_t tid_base) const
{
    // The merged tree has no real timestamps (calls at one site are
    // folded together), so lay siblings out sequentially: a node
    // starts where its previous sibling ended, inside its parent.
    // Timestamps are microsecond offsets from 0 on prof.* tracks.
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const std::uint32_t tid =
            tid_base + std::uint32_t(t);
        trace.nameTrack(tid, "prof." + threads[t]);
        // cursor[d] = next free start offset (us) at depth d while
        // walking the pre-order entry list.
        std::vector<std::uint64_t> cursor(1, 0);
        for (const ProfEntry &entry : entries) {
            if (entry.thread != threads[t])
                continue;
            cursor.resize(std::size_t(entry.depth) + 1);
            const std::uint64_t start = cursor[entry.depth];
            const std::uint64_t durUs =
                std::max<std::uint64_t>(1, entry.inclusiveNs / 1000);
            trace.completeOwned(entry.name, "prof", tid, start, durUs);
            cursor[entry.depth] = start + durUs;
            cursor.push_back(start); // children start where we start
        }
    }
}

void
ProfReport::dumpText(std::ostream &os) const
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "morphprof: wall %.3f ms, coverage %.1f%%\n",
                  double(wallNs) / 1e6, coverage() * 100.0);
    os << buf;
    for (const std::string &thread : threads) {
        const std::uint64_t root = rootInclusiveNs(thread);
        std::snprintf(buf, sizeof buf,
                      "thread %s (root %.3f ms)\n", thread.c_str(),
                      double(root) / 1e6);
        os << buf;
        std::snprintf(buf, sizeof buf, "  %-40s %10s %12s %12s %7s\n",
                      "scope", "calls", "incl_ms", "excl_ms", "incl%");
        os << buf;
        for (const ProfEntry &entry : entries) {
            if (entry.thread != thread)
                continue;
            std::string label(std::size_t(entry.depth) * 2, ' ');
            label += entry.name;
            const double pct =
                root == 0 ? 0.0
                          : 100.0 * double(entry.inclusiveNs) /
                                double(root);
            std::snprintf(buf, sizeof buf,
                          "  %-40s %10llu %12.3f %12.3f %6.1f%%\n",
                          label.c_str(),
                          static_cast<unsigned long long>(entry.calls),
                          double(entry.inclusiveNs) / 1e6,
                          double(entry.exclusiveNs) / 1e6, pct);
            os << buf;
        }
    }
    std::string current;
    std::uint64_t tasks = 0, steals = 0, fails = 0;
    unsigned count = 0;
    auto flush = [&]() {
        if (current.empty())
            return;
        std::snprintf(buf, sizeof buf,
                      "pool %s: %u workers, %llu tasks, %llu steals, "
                      "%llu failed scans\n",
                      current.c_str(), count,
                      static_cast<unsigned long long>(tasks),
                      static_cast<unsigned long long>(steals),
                      static_cast<unsigned long long>(fails));
        os << buf;
    };
    for (const ProfWorkerStats &ws : workers) {
        if (ws.pool != current) {
            flush();
            current = ws.pool;
            tasks = steals = fails = 0;
            count = 0;
        }
        ++count;
        tasks += ws.tasks;
        steals += ws.steals;
        fails += ws.stealFails;
        std::snprintf(buf, sizeof buf,
                      "  %s worker %u: tasks %llu, steals %llu, "
                      "steal_fails %llu, idle %.3f ms\n",
                      ws.pool.c_str(), ws.worker,
                      static_cast<unsigned long long>(ws.tasks),
                      static_cast<unsigned long long>(ws.steals),
                      static_cast<unsigned long long>(ws.stealFails),
                      double(ws.idleNs) / 1e6);
        os << buf;
    }
    flush();
}

void
profApplyEnv(std::string &prof_out, bool &stderr_summary)
{
    if (!prof_out.empty())
        return;
    const char *env = std::getenv("MORPH_PROF");
    if (env == nullptr || *env == '\0')
        return;
    const std::string value(env);
    if (value == "0")
        return;
    if (value == "1" || value == "stderr")
        stderr_summary = true;
    else
        prof_out = value;
}

bool
profWriteFiles(const ProfReport &report, const std::string &base,
               std::string &failed)
{
    struct Sink
    {
        std::string path;
        void (ProfReport::*writer)(std::ostream &) const;
    };
    const Sink sinks[] = {
        {base, &ProfReport::writeJson},
        {base + ".collapsed", &ProfReport::writeCollapsed},
        {base + ".speedscope.json", &ProfReport::writeSpeedscope},
    };
    for (const Sink &sink : sinks) {
        std::ofstream out(sink.path);
        if (out) {
            (report.*sink.writer)(out);
            out.flush();
        }
        if (!out) {
            failed = sink.path;
            return false;
        }
    }
    return true;
}

} // namespace morph
