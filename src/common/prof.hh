/**
 * @file
 * morphprof: the simulator's self-profiling layer.
 *
 * morphscope (stat_registry.hh) observes the *simulated* machine;
 * morphprof observes the *simulator*. Code marks phases with RAII
 * scopes:
 *
 *   void SimSystem::step(Core &core) {
 *       MORPH_PROF_SCOPE("sim.step");
 *       ...
 *   }
 *
 * Each macro site creates one immutable ProfSite (registered once,
 * process-wide) and times every dynamic entry into a per-thread call
 * tree: nested scopes become child nodes, recursion becomes same-site
 * chains, and every node accumulates a call count and inclusive
 * wall-clock nanoseconds. Thread-local trees are merged at report
 * time, keyed by thread name, with exclusive time derived as
 * inclusive minus the children's inclusive.
 *
 * The layer is always compiled and off by default: a disabled scope
 * costs one relaxed atomic load and a branch, and profiling never
 * feeds back into simulation state, so outputs with profiling off are
 * byte-identical to outputs with profiling on (pinned by the
 * morphsim_prof_noninterference tier-1 test).
 *
 * Scope names follow the morphscope naming contract — [a-z0-9_.]+ and
 * unique per site (enforced at registration, re-derived by morphlint
 * rule 7). Keep MORPH_PROF_SCOPE out of headers and inline functions:
 * a site duplicated across translation units registers its name twice
 * and panics.
 *
 * Lifecycle: profEnable() starts the wall-clock window, profReport()
 * merges and freezes (further enables are refused, later scope entries
 * are invisible). Call profReport() only when instrumented work is
 * quiesced — after pools drain, never mid-run. RunPool instances
 * self-register so every report also carries per-worker telemetry
 * (tasks run, steals, failed steal scans, idle ns).
 *
 * Exporters: morphprof JSON (the morphprof CLI's input), collapsed
 * stacks (flamegraph.pl), speedscope JSON, a Chrome-trace merge into
 * an existing TraceLog, and a text tree for stderr summaries. See
 * docs/OBSERVABILITY.md, "Profiling the simulator itself".
 */

#ifndef MORPH_COMMON_PROF_HH
#define MORPH_COMMON_PROF_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/stat_registry.hh"

namespace morph
{

class TraceLog;

/** True if @p name satisfies the scope-name contract [a-z0-9_.]+. */
bool isValidProfName(const std::string &name);

struct ProfNode;

/**
 * One static instrumentation site. Construct through
 * MORPH_PROF_SCOPE only: the constructor validates the name and
 * registers the site process-wide (panics on a contract violation or
 * a duplicate name).
 */
class ProfSite
{
  public:
    explicit ProfSite(const char *name);

    ProfSite(const ProfSite &) = delete;
    ProfSite &operator=(const ProfSite &) = delete;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

// Hot-path hooks behind the enabled check (implemented in prof.cc).
ProfNode *profEnter(const ProfSite &site);
void profLeave(ProfNode *node, std::uint64_t elapsed_ns);
std::uint64_t profNowNs();

/** Global on/off latch; relaxed reads on the scope fast path. */
extern std::atomic<bool> profEnabledFlag;

inline bool
profEnabled()
{
    return profEnabledFlag.load(std::memory_order_relaxed);
}

/** RAII phase timer; inert (one load + branch) while profiling is
 *  off or after the profile is frozen. */
class ProfScope
{
  public:
    explicit ProfScope(const ProfSite &site)
        : node_(profEnabled() ? profEnter(site) : nullptr),
          startNs_(node_ != nullptr ? profNowNs() : 0)
    {}

    ~ProfScope()
    {
        if (node_ != nullptr)
            profLeave(node_, profNowNs() - startNs_);
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfNode *node_;
    std::uint64_t startNs_;
};

#define MORPH_PROF_CONCAT2(a, b) a##b
#define MORPH_PROF_CONCAT(a, b) MORPH_PROF_CONCAT2(a, b)

/**
 * Time the enclosing block as profiler phase @p name.
 * One site per source line; use only in .cc files (see file header).
 */
#define MORPH_PROF_SCOPE(name)                                          \
    static const ::morph::ProfSite MORPH_PROF_CONCAT(                   \
        morphProfSite_, __LINE__){name};                                \
    const ::morph::ProfScope MORPH_PROF_CONCAT(morphProfScope_,         \
                                               __LINE__)(               \
        MORPH_PROF_CONCAT(morphProfSite_, __LINE__))

/** Start profiling (opens the wall-clock window). Refused after a
 *  report froze the profile. */
void profEnable();

/** Name the calling thread in reports ("main", "worker3", ...). */
void profSetThreadName(const std::string &name);

/** Names of every site registered so far, in registration order
 *  (morphlint rule 7 enumerates these after an instrumented run). */
std::vector<std::string> profSiteNames();

/** Per-worker RunPool telemetry as it appears in a profile. */
struct ProfWorkerStats
{
    std::string pool;              ///< registration-order label
    unsigned worker = 0;           ///< worker index within the pool
    std::uint64_t tasks = 0;       ///< tasks executed
    std::uint64_t steals = 0;      ///< tasks obtained from a sibling
    std::uint64_t stealFails = 0;  ///< full steal scans finding nothing
    std::uint64_t idleNs = 0;      ///< wall ns blocked awaiting work
};

/** Snapshot callback a pool registers; called only while quiesced. */
using ProfPoolSnapshotFn = std::function<std::vector<ProfWorkerStats>()>;

/** Register a live pool's telemetry source; returns an unregister
 *  token. The pool label ("pool0", ...) is assigned here. */
std::size_t profRegisterPool(const ProfPoolSnapshotFn &snapshot);

/** Unregister a pool; its final telemetry is retained in the profile
 *  when profiling is (or was) enabled. */
void profUnregisterPool(std::size_t token);

/** One merged scope in a report (pre-order within its thread). */
struct ProfEntry
{
    std::string thread;          ///< owning thread name
    std::string path;            ///< ";"-joined stack, root-first
    std::string name;            ///< leaf scope name
    unsigned depth = 0;          ///< 0 = top-level scope
    std::uint64_t calls = 0;
    std::uint64_t inclusiveNs = 0;
    std::uint64_t exclusiveNs = 0; ///< inclusive minus children
};

/** A merged, frozen profile. */
struct ProfReport
{
    std::uint64_t wallNs = 0;           ///< enable -> report window
    std::vector<std::string> threads;   ///< "main" first, then sorted
    std::vector<ProfEntry> entries;     ///< grouped by thread
    std::vector<ProfWorkerStats> workers; ///< all pools, in label order
    RunMeta meta;                       ///< driver-set context

    /** Sum of top-level inclusive ns on thread @p thread. */
    std::uint64_t rootInclusiveNs(const std::string &thread) const;

    /** Main-thread root inclusive over the wall window (0 when the
     *  window is empty); the acceptance gate wants this near 1. */
    double coverage() const;

    /** Write the morphprof-v1 JSON document (the CLI's input). */
    void writeJson(std::ostream &os) const;

    /** Collapsed stacks ("thread;a;b <exclusive_ns>") for
     *  flamegraph.pl. */
    void writeCollapsed(std::ostream &os) const;

    /** Speedscope JSON (one sampled profile per thread, ns units). */
    void writeSpeedscope(std::ostream &os) const;

    /** Append the merged tree as nested duration events on
     *  "prof.<thread>" tracks of an existing Chrome trace.
     *  Timestamps are synthetic offsets in microseconds. */
    void mergeIntoTrace(TraceLog &trace,
                        std::uint32_t tid_base = 64) const;

    /** Indented text tree + worker table (stderr summaries). */
    void dumpText(std::ostream &os) const;
};

/** Merge every thread's tree and freeze the profiler (see file
 *  header for the quiescence requirement). */
ProfReport profReport();

/** Tests/lint only: drop accumulated data and unfreeze. Callers must
 *  be quiesced (every thread's scope stack empty). */
void profResetForTest();

/** Tests only: replace the clock (nullptr restores steady_clock). */
void profSetClockForTest(std::uint64_t (*now_ns)());

/**
 * Driver plumbing for the MORPH_PROF environment variable: when
 * @p prof_out is empty and MORPH_PROF is set non-empty and not "0",
 * a value of "1" or "stderr" requests a stderr summary only
 * (@p stderr_summary) and any other value is taken as the --prof-out
 * path. An explicit --prof-out always wins.
 */
void profApplyEnv(std::string &prof_out, bool &stderr_summary);

/**
 * Write the three export files for @p base: the morphprof JSON at
 * @p base, collapsed stacks at "<base>.collapsed", and speedscope
 * JSON at "<base>.speedscope.json". On failure @p failed names the
 * path that could not be written.
 */
bool profWriteFiles(const ProfReport &report, const std::string &base,
                    std::string &failed);

} // namespace morph

#endif // MORPH_COMMON_PROF_HH
