#include "common/secure_buf.hh"

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/annotations.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define MORPH_HAVE_MLOCK 1
#endif

namespace morph
{

void
secureWipe(void *p, std::size_t n)
{
    if (p == nullptr || n == 0)
        return;
    // A volatile pointer forces the stores; the barrier keeps the
    // compiler from proving the buffer dead and discarding them.
    volatile std::uint8_t *bytes = static_cast<std::uint8_t *>(p);
    for (std::size_t i = 0; i < n; ++i)
        bytes[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
    __asm__ __volatile__("" : : "r"(p) : "memory");
#endif
}

int
ctCompare(const void *a, const void *b, std::size_t n)
{
    const auto *pa = static_cast<const std::uint8_t *>(a);
    const auto *pb = static_cast<const std::uint8_t *>(b);
    unsigned diff = 0;
    for (std::size_t i = 0; i < n; ++i)
        diff |= unsigned(pa[i] ^ pb[i]);
    return MORPH_DECLASSIFY(int(diff));
}

bool
ctEqual(const void *a, const void *b, std::size_t n)
{
    return MORPH_DECLASSIFY(ctCompare(a, b, n) == 0);
}

bool
ctEqual64(std::uint64_t a, std::uint64_t b)
{
    // Fold the difference to a single bit without a data-dependent
    // branch; equal words leave every folded bit clear.
    std::uint64_t diff = a ^ b;
    diff |= diff >> 32;
    diff |= diff >> 16;
    diff |= diff >> 8;
    diff |= diff >> 4;
    diff |= diff >> 2;
    diff |= diff >> 1;
    return MORPH_DECLASSIFY((diff & 1) == 0);
}

SecureBuf::SecureBuf(std::size_t len, bool try_lock)
{
    if (len == 0)
        return;
    data_ = static_cast<std::uint8_t *>(std::calloc(len, 1));
    if (data_ == nullptr)
        throw std::bad_alloc();
    len_ = len;
#ifdef MORPH_HAVE_MLOCK
    if (try_lock)
        locked_ = ::mlock(data_, len_) == 0;
#else
    (void)try_lock;
#endif
}

SecureBuf::~SecureBuf() { release(); }

SecureBuf::SecureBuf(SecureBuf &&other) noexcept
    : data_(other.data_), len_(other.len_), locked_(other.locked_)
{
    other.data_ = nullptr;
    other.len_ = 0;
    other.locked_ = false;
}

SecureBuf &
SecureBuf::operator=(SecureBuf &&other) noexcept
{
    if (this != &other) {
        release();
        data_ = other.data_;
        len_ = other.len_;
        locked_ = other.locked_;
        other.data_ = nullptr;
        other.len_ = 0;
        other.locked_ = false;
    }
    return *this;
}

void
SecureBuf::wipe()
{
    secureWipe(data_, len_);
}

void
SecureBuf::release()
{
    if (data_ == nullptr)
        return;
    secureWipe(data_, len_);
#ifdef MORPH_HAVE_MLOCK
    if (locked_)
        ::munlock(data_, len_);
#endif
    std::free(data_);
    data_ = nullptr;
    len_ = 0;
    locked_ = false;
}

} // namespace morph
