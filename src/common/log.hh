/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (simulator bugs — aborts), fatal() for user/configuration
 * errors (clean exit), warn()/inform() for status.
 */

#ifndef MORPH_COMMON_LOG_HH
#define MORPH_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace morph
{

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort: an internal invariant was violated (a library bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1): the simulation cannot continue due to a usage error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace morph

#endif // MORPH_COMMON_LOG_HH
