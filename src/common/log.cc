#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace morph
{

namespace
{

void
vlog(const char *prefix, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog("warn", fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlog("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace morph
