/**
 * @file
 * Source-contract annotations consumed by the morphflow and morphrace
 * static analyzers (and, for the concurrency vocabulary, by clang's
 * native -Wthread-safety analysis).
 *
 * Under GCC every macro expands to nothing; the annotations exist so
 * that the `src/analysis`-based tools can see, in the token stream,
 * which declarations carry secret material, which state is guarded by
 * which mutex, and where the sanctioned declassification points are.
 * Under clang the concurrency macros additionally expand to the
 * thread-safety attributes, so the same single annotation source is
 * checked by two independent engines: morphrace (token-level,
 * batch-wide, runs everywhere) and clang TSA (AST-level, per-TU,
 * runs in the clang CI lane).
 *
 * Secret-flow vocabulary (morphflow):
 *
 *  - `MORPH_SECRET` on a declaration (parameter, local, member,
 *    global, or function return type) marks the declared value as
 *    secret. Taint propagates from annotated names through
 *    assignments, calls, and returns; a secret reaching a branch
 *    condition, an array subscript, a variadic/logging call, or the
 *    end of its scope without a wipe is a finding.
 *
 *  - `MORPH_DECLASSIFY(expr)` marks `expr` as deliberately
 *    declassified: the value is derived from secrets but is safe to
 *    branch on (e.g. the boolean result of a constant-time MAC
 *    comparison). A function whose return value is wrapped in
 *    MORPH_DECLASSIFY is a *declassifier*: its call sites are treated
 *    as public values and its argument expressions are not scanned as
 *    part of an enclosing branch condition.
 *
 * Concurrency vocabulary (morphrace; see docs/CONCURRENCY.md):
 *
 *  - `MORPH_CAPABILITY(name)` on a class declares it a lockable
 *    capability (morph::Mutex in common/mutex.hh is the one in-tree).
 *  - `MORPH_GUARDED_BY(mu)` on a member or global: every access must
 *    happen inside a region holding `mu` (rule race-unguarded).
 *  - `MORPH_REQUIRES(mu)` on a function: callers must already hold
 *    `mu` (rule race-requires).
 *  - `MORPH_EXCLUDES(mu)` on a function: callers must NOT hold `mu` —
 *    the function acquires it itself (rule race-exclude).
 *  - `MORPH_ACQUIRE(mu)` / `MORPH_RELEASE(mu)` /
 *    `MORPH_TRY_ACQUIRE(ok, mu)` on lock-wrapper methods.
 *  - `MORPH_SCOPED_CAPABILITY` on RAII guard classes.
 *  - `MORPH_SHARD_LOCAL` on state owned by exactly one sweep shard /
 *    pool worker at a time (per-run StatRegistry, TraceLog,
 *    PadAuditor...): lock-free by ownership, not by luck. morphrace
 *    exempts it from race-worker-escape and race-naked-static.
 *  - `MORPH_MAIN_THREAD` on setup-only state mutated exclusively
 *    before worker threads exist (or after they drain); concurrent
 *    readers of the frozen value are fine.
 *
 * Waivers (for findings that are understood and accepted):
 *
 *  - `// morphflow: allow(<rule>): <reason>` (or `morphrace:` for the
 *    race-* rules) on the same line as the finding, or on the line
 *    directly above it, waives that rule for that line.
 *  - `allow-file(<rule>): <reason>` anywhere in a file waives the
 *    rule for the whole file (used for the table-based AES S-box
 *    lookups, which are index-secret by construction).
 *
 * Rules (see tools/morphflow.cc and tools/morphrace.cc):
 *   secret-branch, secret-subscript, secret-log, secret-wipe,
 *   secret-member-wipe, nondet-call, nondet-iter;
 *   race-unguarded, race-requires, race-exclude, race-lock-order,
 *   race-worker-escape, race-naked-static.
 */

#ifndef MORPH_COMMON_ANNOTATIONS_HH
#define MORPH_COMMON_ANNOTATIONS_HH

/** Marks the annotated declaration as carrying secret material. */
#define MORPH_SECRET

/** Marks @p expr as deliberately declassified (safe to branch on). */
#define MORPH_DECLASSIFY(expr) (expr)

// Concurrency annotations. Clang's -Wthread-safety checks them at
// compile time; GCC compiles them away and morphrace remains the only
// checker. Keep the two expansions in lockstep with docs/CONCURRENCY.md.
#if defined(__clang__) && !defined(MORPH_NO_THREAD_SAFETY_ATTRIBUTES)
#define MORPH_TSA_(x) __attribute__((x))
#else
#define MORPH_TSA_(x)
#endif

/** Declares the annotated class a lockable capability. */
#define MORPH_CAPABILITY(name) MORPH_TSA_(capability(name))

/** Declares the annotated RAII class a scoped lock holder. */
#define MORPH_SCOPED_CAPABILITY MORPH_TSA_(scoped_lockable)

/** The annotated member/global may only be accessed holding @p mu. */
#define MORPH_GUARDED_BY(mu) MORPH_TSA_(guarded_by(mu))

/** Callers of the annotated function must already hold the mutex. */
#define MORPH_REQUIRES(...) MORPH_TSA_(requires_capability(__VA_ARGS__))

/** Callers of the annotated function must NOT hold the mutex. */
#define MORPH_EXCLUDES(...) MORPH_TSA_(locks_excluded(__VA_ARGS__))

/** The annotated function acquires the mutex and returns holding it. */
#define MORPH_ACQUIRE(...) MORPH_TSA_(acquire_capability(__VA_ARGS__))

/** The annotated function releases the mutex. */
#define MORPH_RELEASE(...) MORPH_TSA_(release_capability(__VA_ARGS__))

/** The annotated function acquires the mutex iff it returns @p ok. */
#define MORPH_TRY_ACQUIRE(...) \
    MORPH_TSA_(try_acquire_capability(__VA_ARGS__))

/** Opt a function out of clang's analysis (trusted implementation). */
#define MORPH_NO_THREAD_SAFETY_ANALYSIS \
    MORPH_TSA_(no_thread_safety_analysis)

/** State owned by exactly one sweep shard / pool worker at a time:
 *  lock-free by ownership. morphrace-only; clang has no equivalent. */
#define MORPH_SHARD_LOCAL

/** Setup-only state: mutated exclusively while no worker threads run;
 *  frozen-value readers may be concurrent. morphrace-only. */
#define MORPH_MAIN_THREAD

#endif // MORPH_COMMON_ANNOTATIONS_HH
