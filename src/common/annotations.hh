/**
 * @file
 * Secret-flow annotations consumed by the morphflow static analyzer.
 *
 * The macros expand to nothing at compile time; they exist so that
 * `tools/morphflow` (built on `src/analysis`) can see, in the token
 * stream, which declarations carry secret material and where the
 * sanctioned declassification points are. The paper's security
 * argument assumes keys, one-time pads, and intermediate cipher state
 * never influence externally observable control flow or addresses;
 * morphflow turns that assumption into a CI gate.
 *
 * Annotation vocabulary:
 *
 *  - `MORPH_SECRET` on a declaration (parameter, local, member,
 *    global, or function return type) marks the declared value as
 *    secret. Taint propagates from annotated names through
 *    assignments, calls, and returns; a secret reaching a branch
 *    condition, an array subscript, a variadic/logging call, or the
 *    end of its scope without a wipe is a finding.
 *
 *  - `MORPH_DECLASSIFY(expr)` marks `expr` as deliberately
 *    declassified: the value is derived from secrets but is safe to
 *    branch on (e.g. the boolean result of a constant-time MAC
 *    comparison). A function whose return value is wrapped in
 *    MORPH_DECLASSIFY is a *declassifier*: its call sites are treated
 *    as public values and its argument expressions are not scanned as
 *    part of an enclosing branch condition.
 *
 * Waivers (for findings that are understood and accepted):
 *
 *  - `// morphflow: allow(<rule>): <reason>` on the same line as the
 *    finding, or on the line directly above it, waives that rule for
 *    that line.
 *  - `// morphflow: allow-file(<rule>): <reason>` anywhere in a file
 *    waives the rule for the whole file (used for the table-based AES
 *    S-box lookups, which are index-secret by construction).
 *
 * Rules (see tools/morphflow.cc for the enforcement details):
 *   secret-branch, secret-subscript, secret-log, secret-wipe,
 *   secret-member-wipe, nondet-call, nondet-iter.
 */

#ifndef MORPH_COMMON_ANNOTATIONS_HH
#define MORPH_COMMON_ANNOTATIONS_HH

/** Marks the annotated declaration as carrying secret material. */
#define MORPH_SECRET

/** Marks @p expr as deliberately declassified (safe to branch on). */
#define MORPH_DECLASSIFY(expr) (expr)

#endif // MORPH_COMMON_ANNOTATIONS_HH
