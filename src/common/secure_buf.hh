/**
 * @file
 * Hardened storage for secret material: wipe-on-free buffers, a
 * best-effort mlock'ed heap buffer, and constant-time comparison.
 *
 * Counter-mode security (docs/SECURITY.md) rests on keys and pads
 * never leaking. Three mechanical leaks this layer closes:
 *
 *  - secrets surviving in freed memory (swap, core dumps, reuse):
 *    SecureBuf / SecretArray guarantee their contents are zeroed
 *    before the storage is released, through a wipe the optimizer
 *    cannot elide;
 *  - secrets paged to disk: SecureBuf mlock()s its pages best-effort
 *    (allocation still succeeds where mlock is unavailable or the
 *    RLIMIT_MEMLOCK budget is exhausted — check locked());
 *  - data-dependent comparison time: ctCompare/ctEqual/ctEqual64
 *    touch every byte regardless of where the operands differ, so a
 *    MAC forger learns nothing from response latency.
 *
 * The morphflow analyzer (tools/morphflow.cc) treats SecureBuf and
 * SecretArray as self-wiping types: MORPH_SECRET members of these
 * types need no explicit wipe call.
 */

#ifndef MORPH_COMMON_SECURE_BUF_HH
#define MORPH_COMMON_SECURE_BUF_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace morph
{

/**
 * Zero @p n bytes at @p p through a volatile pointer plus a compiler
 * barrier, so the store survives dead-store elimination even when the
 * buffer is about to go out of scope.
 */
void secureWipe(void *p, std::size_t n);

/**
 * Constant-time comparison of @p n bytes.
 *
 * @return 0 if the regions are equal, nonzero otherwise; the running
 *         time depends only on @p n, never on the contents.
 */
int ctCompare(const void *a, const void *b, std::size_t n);

/** Constant-time equality of @p n bytes (ctCompare == 0). */
bool ctEqual(const void *a, const void *b, std::size_t n);

/** Constant-time equality of two 64-bit words (branch-free fold). */
bool ctEqual64(std::uint64_t a, std::uint64_t b);

/**
 * Heap buffer for secret material: best-effort mlock on allocation,
 * guaranteed wipe before free. Move-only — copying secrets should be
 * a deliberate act, not an accident of pass-by-value.
 */
class SecureBuf
{
  public:
    SecureBuf() = default;

    /**
     * Allocate @p len bytes, zero-initialized.
     *
     * @param len      buffer size; 0 yields an empty buffer
     * @param try_lock attempt to mlock the pages (best-effort; the
     *                 allocation succeeds either way — see locked())
     */
    explicit SecureBuf(std::size_t len, bool try_lock = true);

    ~SecureBuf();

    SecureBuf(SecureBuf &&other) noexcept;
    SecureBuf &operator=(SecureBuf &&other) noexcept;
    SecureBuf(const SecureBuf &) = delete;
    SecureBuf &operator=(const SecureBuf &) = delete;

    std::uint8_t *data() { return data_; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return len_; }
    bool empty() const { return len_ == 0; }

    /** Whether the pages are mlock'ed (false after mlock fallback). */
    bool locked() const { return locked_; }

    /** Zero the contents now (also happens on destruction). */
    void wipe();

  private:
    void release();

    std::uint8_t *data_ = nullptr;
    std::size_t len_ = 0;
    bool locked_ = false;
};

/**
 * Fixed-size secret container: a std::array that wipes itself on
 * destruction. Drop-in storage for key schedules and round keys —
 * raw() exposes the underlying array for APIs keyed on std::array.
 */
template <typename T, std::size_t N>
class SecretArray
{
  public:
    SecretArray() : v_{} {}
    explicit SecretArray(const std::array<T, N> &v) : v_(v) {}

    SecretArray(const SecretArray &) = default;
    SecretArray &operator=(const SecretArray &) = default;

    ~SecretArray() { secureWipe(v_.data(), sizeof(T) * N); }

    T *data() { return v_.data(); }
    const T *data() const { return v_.data(); }
    T &operator[](std::size_t i) { return v_[i]; }
    const T &operator[](std::size_t i) const { return v_[i]; }
    static constexpr std::size_t size() { return N; }

    /** The underlying array (for std::array-keyed interfaces). */
    const std::array<T, N> &raw() const { return v_; }

  private:
    std::array<T, N> v_;
};

} // namespace morph

#endif // MORPH_COMMON_SECURE_BUF_HH
