#include "common/stat_registry.hh"

#include <cmath>

#include "common/check.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace morph
{

bool
isValidStatName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

void
StatRegistry::checkName(const std::string &name) const
{
    if (!isValidStatName(name))
        panic("stat name '%s' violates [a-z0-9_.]+", name.c_str());
    if (has(name))
        panic("stat name '%s' registered twice", name.c_str());
}

void
StatRegistry::counter(const std::string &name,
                      const std::uint64_t *value,
                      const std::string &desc)
{
    MORPH_CHECK(value != nullptr);
    counter(
        name, [value]() { return *value; }, desc);
}

void
StatRegistry::counter(const std::string &name,
                      std::function<std::uint64_t()> read,
                      const std::string &desc)
{
    checkName(name);
    auto fn = std::move(read);
    scalars_.push_back({name, desc, StatKind::Counter,
                        [fn]() { return double(fn()); }});
}

void
StatRegistry::gauge(const std::string &name,
                    std::function<double()> read,
                    const std::string &desc)
{
    checkName(name);
    scalars_.push_back({name, desc, StatKind::Gauge, std::move(read)});
}

void
StatRegistry::scalar(const std::string &name, double value,
                     const std::string &desc)
{
    gauge(
        name, [value]() { return value; }, desc);
}

namespace
{

HistogramSnapshot
snapshotFixed(const Histogram &h)
{
    HistogramSnapshot snap;
    snap.count = h.count();
    snap.mean = h.mean();
    snap.p50 = h.percentile(0.50);
    snap.p95 = h.percentile(0.95);
    snap.p99 = h.percentile(0.99);
    for (unsigned i = 0; i < h.size(); ++i)
        if (h.bucket(i))
            snap.buckets.push_back(
                {h.bucketLo(i), h.bucketHi(i), h.bucket(i)});
    return snap;
}

HistogramSnapshot
snapshotExp(const ExpHistogram &h)
{
    HistogramSnapshot snap;
    snap.count = h.count();
    snap.mean = h.mean();
    snap.p50 = h.percentile(0.50);
    snap.p95 = h.percentile(0.95);
    snap.p99 = h.percentile(0.99);
    for (unsigned i = 0; i < h.size(); ++i)
        if (h.bucket(i))
            snap.buckets.push_back({double(h.bucketLo(i)),
                                    double(h.bucketHi(i)),
                                    h.bucket(i)});
    return snap;
}

} // namespace

void
StatRegistry::histogram(const std::string &name, const Histogram *h,
                        const std::string &desc)
{
    MORPH_CHECK(h != nullptr);
    checkName(name);
    histograms_.push_back(
        {name, desc, [h]() { return snapshotFixed(*h); }});
}

void
StatRegistry::histogram(const std::string &name, const ExpHistogram *h,
                        const std::string &desc)
{
    MORPH_CHECK(h != nullptr);
    checkName(name);
    histograms_.push_back(
        {name, desc, [h]() { return snapshotExp(*h); }});
}

const std::string &
StatRegistry::scalarName(std::size_t i) const
{
    return scalars_.at(i).name;
}

StatKind
StatRegistry::scalarKind(std::size_t i) const
{
    return scalars_.at(i).kind;
}

const std::string &
StatRegistry::scalarDesc(std::size_t i) const
{
    return scalars_.at(i).desc;
}

double
StatRegistry::scalarValue(std::size_t i) const
{
    return scalars_.at(i).read();
}

std::vector<double>
StatRegistry::snapshotScalars() const
{
    std::vector<double> values;
    values.reserve(scalars_.size());
    for (const Scalar &s : scalars_)
        values.push_back(s.read());
    return values;
}

double
StatRegistry::value(const std::string &name) const
{
    for (const Scalar &s : scalars_)
        if (s.name == name)
            return s.read();
    return std::nan("");
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const Scalar &s : scalars_)
        if (s.name == name)
            return true;
    for (const Hist &h : histograms_)
        if (h.name == name)
            return true;
    return false;
}

const std::string &
StatRegistry::histogramName(std::size_t i) const
{
    return histograms_.at(i).name;
}

HistogramSnapshot
StatRegistry::histogramSnapshot(std::size_t i) const
{
    return histograms_.at(i).snapshot();
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> all;
    all.reserve(scalars_.size() + histograms_.size());
    for (const Scalar &s : scalars_)
        all.push_back(s.name);
    for (const Hist &h : histograms_)
        all.push_back(h.name);
    return all;
}

void
StatRegistry::freeze()
{
    for (Scalar &s : scalars_) {
        const double value = s.read();
        s.read = [value]() { return value; };
    }
    for (Hist &h : histograms_) {
        const HistogramSnapshot snap = h.snapshot();
        h.snapshot = [snap]() { return snap; };
    }
}

void
StatRegistry::dumpText(std::ostream &os,
                       const std::string &prefix) const
{
    for (const Scalar &s : scalars_)
        os << prefix << "." << s.name << " "
           << jsonNumber(s.read()) << "\n";
    for (const Hist &h : histograms_) {
        const HistogramSnapshot snap = h.snapshot();
        const std::string base = prefix + "." + h.name;
        os << base << ".count " << snap.count << "\n";
        os << base << ".mean " << jsonNumber(snap.mean) << "\n";
        os << base << ".p50 " << jsonNumber(snap.p50) << "\n";
        os << base << ".p95 " << jsonNumber(snap.p95) << "\n";
        os << base << ".p99 " << jsonNumber(snap.p99) << "\n";
    }
}

void
RunMeta::set(const std::string &key, const std::string &value)
{
    for (auto &kv : entries) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    entries.emplace_back(key, value);
}

std::string
RunMeta::get(const std::string &key) const
{
    for (const auto &kv : entries)
        if (kv.first == key)
            return kv.second;
    return "";
}

void
EpochSeries::baseline(const StatRegistry &registry)
{
    prev_ = registry.snapshotScalars();
    records_.clear();
    baselined_ = true;
}

void
EpochSeries::sample(const StatRegistry &registry,
                    std::uint64_t accesses_per_core)
{
    MORPH_CHECK(baselined_);
    Record record;
    record.index = records_.size();
    record.accessesPerCore = accesses_per_core;
    record.values.reserve(prev_.size());
    // Only the stats present at baseline(): the series is rectangular
    // even if post-run scalars are registered later.
    for (std::size_t i = 0; i < prev_.size(); ++i) {
        const double now = registry.scalarValue(i);
        if (registry.scalarKind(i) == StatKind::Counter) {
            record.values.push_back(now - prev_[i]);
            prev_[i] = now;
        } else {
            record.values.push_back(now);
        }
    }
    records_.push_back(std::move(record));
}

namespace
{

const char *
kindName(StatKind kind)
{
    return kind == StatKind::Counter ? "counter" : "gauge";
}

} // namespace

void
writeStatsJson(std::ostream &os, const StatRegistry &registry,
               const RunMeta &meta, const EpochSeries *epochs)
{
    os << "{\n  \"schema\": \"morphscope-v1\",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta.entries.size(); ++i) {
        if (i)
            os << ",";
        os << "\n    \"" << jsonEscape(meta.entries[i].first)
           << "\": \"" << jsonEscape(meta.entries[i].second) << "\"";
    }
    os << (meta.entries.empty() ? "},\n" : "\n  },\n");

    os << "  \"totals\": {";
    for (std::size_t i = 0; i < registry.numScalars(); ++i) {
        if (i)
            os << ",";
        os << "\n    \"" << jsonEscape(registry.scalarName(i))
           << "\": " << jsonNumber(registry.scalarValue(i));
    }
    os << (registry.numScalars() == 0 ? "},\n" : "\n  },\n");

    os << "  \"kinds\": {";
    for (std::size_t i = 0; i < registry.numScalars(); ++i) {
        if (i)
            os << ",";
        os << "\n    \"" << jsonEscape(registry.scalarName(i))
           << "\": \"" << kindName(registry.scalarKind(i)) << "\"";
    }
    os << (registry.numScalars() == 0 ? "},\n" : "\n  },\n");

    os << "  \"histograms\": {";
    for (std::size_t i = 0; i < registry.numHistograms(); ++i) {
        if (i)
            os << ",";
        const HistogramSnapshot snap = registry.histogramSnapshot(i);
        os << "\n    \"" << jsonEscape(registry.histogramName(i))
           << "\": {"
           << "\"count\": " << snap.count
           << ", \"mean\": " << jsonNumber(snap.mean)
           << ", \"p50\": " << jsonNumber(snap.p50)
           << ", \"p95\": " << jsonNumber(snap.p95)
           << ", \"p99\": " << jsonNumber(snap.p99)
           << ", \"buckets\": [";
        for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
            if (b)
                os << ", ";
            os << "{\"lo\": " << jsonNumber(snap.buckets[b].lo)
               << ", \"hi\": " << jsonNumber(snap.buckets[b].hi)
               << ", \"count\": " << snap.buckets[b].count << "}";
        }
        os << "]}";
    }
    os << (registry.numHistograms() == 0 ? "}" : "\n  }");

    if (epochs && epochs->active()) {
        os << ",\n  \"epochs\": {\n    \"stats\": [";
        for (std::size_t i = 0; i < epochs->numStats(); ++i) {
            if (i)
                os << ", ";
            os << "\"" << jsonEscape(registry.scalarName(i)) << "\"";
        }
        os << "],\n    \"samples\": [";
        const auto &records = epochs->records();
        for (std::size_t r = 0; r < records.size(); ++r) {
            if (r)
                os << ",";
            os << "\n      {\"index\": " << records[r].index
               << ", \"accesses_per_core\": "
               << records[r].accessesPerCore << ", \"values\": [";
            for (std::size_t i = 0; i < records[r].values.size();
                 ++i) {
                if (i)
                    os << ", ";
                os << jsonNumber(records[r].values[i]);
            }
            os << "]}";
        }
        os << (records.empty() ? "]\n  }" : "\n    ]\n  }");
    }
    os << "\n}\n";
}

std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (const char c : field) {
        if (c == '"')
            quoted += "\"\"";
        else
            quoted.push_back(c);
    }
    quoted += "\"";
    return quoted;
}

void
writeStatsCsv(std::ostream &os, const StatRegistry &registry,
              const EpochSeries *epochs)
{
    if (!epochs || !epochs->active()) {
        os << "stat,value\n";
        for (std::size_t i = 0; i < registry.numScalars(); ++i)
            os << csvField(registry.scalarName(i)) << ","
               << jsonNumber(registry.scalarValue(i)) << "\n";
        return;
    }

    os << "epoch,accesses_per_core";
    for (std::size_t i = 0; i < epochs->numStats(); ++i)
        os << "," << csvField(registry.scalarName(i));
    os << "\n";
    for (const EpochSeries::Record &record : epochs->records()) {
        os << record.index << "," << record.accessesPerCore;
        for (const double v : record.values)
            os << "," << jsonNumber(v);
        os << "\n";
    }
    // Totals row: counters as final totals, gauges as final values.
    os << "total,";
    for (std::size_t i = 0; i < epochs->numStats(); ++i)
        os << "," << jsonNumber(registry.scalarValue(i));
    os << "\n";
}

} // namespace morph
