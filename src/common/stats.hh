/**
 * @file
 * Lightweight statistics: named scalars and fixed-bucket histograms.
 *
 * Components own plain integer/double members for speed and register
 * them in a StatSet for uniform reporting. A Histogram supports the
 * usage-fraction distributions reported in the paper (Fig 7).
 */

#ifndef MORPH_COMMON_STATS_HH
#define MORPH_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace morph
{

/** Fixed-width-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo      lowest representable sample
     * @param hi      one past the highest representable sample
     * @param buckets number of equal-width buckets
     */
    Histogram(double lo, double hi, unsigned buckets);

    /** Record one sample; out-of-range samples clamp to edge buckets. */
    void record(double sample, std::uint64_t weight = 1);

    /** Total recorded weight. */
    std::uint64_t count() const { return count_; }

    /** Weight in bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }

    /** Fraction of total weight in bucket @p i (0 if empty). */
    double fraction(unsigned i) const;

    /** Number of buckets. */
    unsigned size() const { return unsigned(buckets_.size()); }

    /** Lower edge of bucket @p i. */
    double bucketLo(unsigned i) const;

    /** Upper edge of bucket @p i (== bucketLo(i + 1)). */
    double bucketHi(unsigned i) const;

    /** Mean of recorded samples. */
    double mean() const;

    /**
     * Value at quantile @p p (0 <= p <= 1, clamped). The weight
     * distribution is assumed uniform within each bucket, so the
     * result interpolates linearly between the bucket's edges. An
     * empty histogram reports 0.
     */
    double percentile(double p) const;

    /** Reset all buckets. */
    void reset();

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Exponential-bucket histogram for latency-like samples.
 *
 * Bucket 0 holds sample value 0, bucket i (i >= 1) holds samples in
 * [2^(i-1), 2^i); samples past the last bucket clamp into it. This
 * gives constant relative resolution over many orders of magnitude at
 * a fixed, small footprint — the standard shape for cycle-latency
 * distributions where p50 and p99 differ by 100x.
 */
class ExpHistogram
{
  public:
    /** @param buckets bucket count; covers [0, 2^(buckets-1)). */
    explicit ExpHistogram(unsigned buckets = 32);

    /** Record one sample. */
    void record(std::uint64_t sample, std::uint64_t weight = 1);

    /** Total recorded weight. */
    std::uint64_t count() const { return count_; }

    /** Weight in bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }

    /** Number of buckets. */
    unsigned size() const { return unsigned(buckets_.size()); }

    /** Lower edge of bucket @p i (0, 1, 2, 4, 8, ...). */
    std::uint64_t bucketLo(unsigned i) const;

    /** One past the highest sample representable in bucket @p i. */
    std::uint64_t bucketHi(unsigned i) const;

    /** Mean of recorded samples (exact: true sum is kept). */
    double mean() const;

    /** Largest recorded sample (exact). */
    std::uint64_t max() const { return max_; }

    /**
     * Value at quantile @p p (0 <= p <= 1, clamped), interpolated
     * uniformly within the winning bucket; 0 when empty.
     */
    double percentile(double p) const;

    /** Reset all buckets. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

/** A named collection of scalar statistics for reporting. */
class StatSet
{
  public:
    explicit StatSet(std::string name) : name_(std::move(name)) {}

    /** Add (or overwrite) a named scalar value. */
    void set(const std::string &key, double value);

    /** Look up a scalar; returns 0 for missing keys. */
    double get(const std::string &key) const;

    /** True if the key has been set. */
    bool has(const std::string &key) const;

    /** Print "name.key value" lines, in insertion order. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> values_;
};

} // namespace morph

#endif // MORPH_COMMON_STATS_HH
