/**
 * @file
 * Lightweight statistics: named scalars and fixed-bucket histograms.
 *
 * Components own plain integer/double members for speed and register
 * them in a StatSet for uniform reporting. A Histogram supports the
 * usage-fraction distributions reported in the paper (Fig 7).
 */

#ifndef MORPH_COMMON_STATS_HH
#define MORPH_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace morph
{

/** Fixed-width-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo      lowest representable sample
     * @param hi      one past the highest representable sample
     * @param buckets number of equal-width buckets
     */
    Histogram(double lo, double hi, unsigned buckets);

    /** Record one sample; out-of-range samples clamp to edge buckets. */
    void record(double sample, std::uint64_t weight = 1);

    /** Total recorded weight. */
    std::uint64_t count() const { return count_; }

    /** Weight in bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }

    /** Fraction of total weight in bucket @p i (0 if empty). */
    double fraction(unsigned i) const;

    /** Number of buckets. */
    unsigned size() const { return unsigned(buckets_.size()); }

    /** Lower edge of bucket @p i. */
    double bucketLo(unsigned i) const;

    /** Mean of recorded samples. */
    double mean() const;

    /** Reset all buckets. */
    void reset();

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** A named collection of scalar statistics for reporting. */
class StatSet
{
  public:
    explicit StatSet(std::string name) : name_(std::move(name)) {}

    /** Add (or overwrite) a named scalar value. */
    void set(const std::string &key, double value);

    /** Look up a scalar; returns 0 for missing keys. */
    double get(const std::string &key) const;

    /** True if the key has been set. */
    bool has(const std::string &key) const;

    /** Print "name.key value" lines, in insertion order. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> values_;
};

} // namespace morph

#endif // MORPH_COMMON_STATS_HH
