#include "common/stats.hh"

#include <algorithm>
#include "common/check.hh"

namespace morph
{

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    MORPH_CHECK(hi > lo && buckets > 0);
}

void
Histogram::record(double sample, std::uint64_t weight)
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * double(buckets_.size());
    long idx = long(pos);
    idx = std::clamp(idx, 0l, long(buckets_.size()) - 1);
    buckets_[std::size_t(idx)] += weight;
    count_ += weight;
    sum_ += sample * double(weight);
}

double
Histogram::fraction(unsigned i) const
{
    if (count_ == 0)
        return 0.0;
    return double(buckets_.at(i)) / double(count_);
}

double
Histogram::bucketLo(unsigned i) const
{
    return lo_ + (hi_ - lo_) * double(i) / double(buckets_.size());
}

double
Histogram::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

void
StatSet::set(const std::string &key, double value)
{
    for (auto &kv : values_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    values_.emplace_back(key, value);
}

double
StatSet::get(const std::string &key) const
{
    for (const auto &kv : values_)
        if (kv.first == key)
            return kv.second;
    return 0.0;
}

bool
StatSet::has(const std::string &key) const
{
    for (const auto &kv : values_)
        if (kv.first == key)
            return true;
    return false;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
}

} // namespace morph
