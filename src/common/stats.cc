#include "common/stats.hh"

#include <algorithm>
#include "common/check.hh"

namespace morph
{

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    MORPH_CHECK(hi > lo && buckets > 0);
}

void
Histogram::record(double sample, std::uint64_t weight)
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * double(buckets_.size());
    long idx = long(pos);
    idx = std::clamp(idx, 0l, long(buckets_.size()) - 1);
    buckets_[std::size_t(idx)] += weight;
    count_ += weight;
    sum_ += sample * double(weight);
}

double
Histogram::fraction(unsigned i) const
{
    if (count_ == 0)
        return 0.0;
    return double(buckets_.at(i)) / double(count_);
}

double
Histogram::bucketLo(unsigned i) const
{
    return lo_ + (hi_ - lo_) * double(i) / double(buckets_.size());
}

double
Histogram::bucketHi(unsigned i) const
{
    return bucketLo(i + 1);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the requested quantile within the total weight.
    const double rank = p * double(count_);
    double seen = 0.0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        const double weight = double(buckets_[i]);
        if (weight == 0.0)
            continue;
        if (seen + weight >= rank) {
            const double within =
                weight > 0.0 ? (rank - seen) / weight : 0.0;
            const double width =
                (hi_ - lo_) / double(buckets_.size());
            return bucketLo(i) +
                   std::clamp(within, 0.0, 1.0) * width;
        }
        seen += weight;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

ExpHistogram::ExpHistogram(unsigned buckets) : buckets_(buckets, 0)
{
    MORPH_CHECK(buckets >= 2);
}

void
ExpHistogram::record(std::uint64_t sample, std::uint64_t weight)
{
    unsigned idx = 0;
    if (sample > 0) {
        idx = 1;
        while (idx + 1 < buckets_.size() && sample >= (1ull << idx))
            ++idx;
    }
    buckets_[idx] += weight;
    count_ += weight;
    max_ = std::max(max_, sample);
    sum_ += double(sample) * double(weight);
}

std::uint64_t
ExpHistogram::bucketLo(unsigned i) const
{
    MORPH_CHECK_LT(i, buckets_.size());
    return i == 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t
ExpHistogram::bucketHi(unsigned i) const
{
    MORPH_CHECK_LT(i, buckets_.size());
    return i == 0 ? 1 : 1ull << i;
}

double
ExpHistogram::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

double
ExpHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double rank = p * double(count_);
    double seen = 0.0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        const double weight = double(buckets_[i]);
        if (weight == 0.0)
            continue;
        if (seen + weight >= rank) {
            const double within =
                std::clamp((rank - seen) / weight, 0.0, 1.0);
            const double lo = double(bucketLo(i));
            // The last bucket is open-ended; cap it at the largest
            // recorded sample so outliers do not inflate the tail.
            const double hi =
                std::min(double(bucketHi(i)), double(max_) + 1.0);
            // Interpolation runs to the bucket's exclusive upper edge,
            // so p100 would otherwise report max_ + 1 (and a lone
            // sample of 0 would report 1): no percentile can exceed
            // the largest recorded sample.
            return std::min(lo + within * (std::max(hi, lo + 1.0) - lo),
                            double(max_));
        }
        seen += weight;
    }
    return double(max_);
}

void
ExpHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

void
StatSet::set(const std::string &key, double value)
{
    for (auto &kv : values_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    values_.emplace_back(key, value);
}

double
StatSet::get(const std::string &key) const
{
    for (const auto &kv : values_)
        if (kv.first == key)
            return kv.second;
    return 0.0;
}

bool
StatSet::has(const std::string &key) const
{
    for (const auto &kv : values_)
        if (kv.first == key)
            return true;
    return false;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
}

} // namespace morph
