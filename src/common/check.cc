#include "common/check.hh"

#include <cstdio>
#include <cstdlib>

namespace morph
{
namespace check_detail
{
namespace
{

/** Innermost registered cacheline context for the current thread. */
thread_local LineContext *topContext = nullptr;

} // namespace

LineContext::LineContext(const char *label, const CachelineData &line)
    : label_(label), line_(&line), prev_(topContext)
{
    topContext = this;
}

LineContext::~LineContext()
{
    topContext = prev_;
}

std::string
hexDump(const CachelineData &line)
{
    std::string out;
    out.reserve(4 * 56);
    char buf[8];
    for (std::size_t row = 0; row < lineBytes; row += 16) {
        std::snprintf(buf, sizeof(buf), "  %03zx:", row);
        out += buf;
        for (std::size_t col = 0; col < 16; ++col) {
            std::snprintf(buf, sizeof(buf), " %02x", line[row + col]);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

void
failCheck(const char *file, int line, const char *expr,
          const std::string &detail)
{
    std::string report = "MORPH_CHECK failed: ";
    report += expr;
    report += "\n  at ";
    report += file;
    report += ':';
    report += std::to_string(line);
    report += '\n';
    if (!detail.empty()) {
        report += detail;
        report += '\n';
    }
    for (const LineContext *ctx = topContext; ctx != nullptr;
         ctx = ctx->previous()) {
        report += "  cacheline `";
        report += ctx->label();
        report += "`:\n";
        report += hexDump(ctx->line());
    }
    std::fputs(report.c_str(), stderr);
    std::fflush(stderr);
    std::abort();
}

} // namespace check_detail
} // namespace morph
