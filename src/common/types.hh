/**
 * @file
 * Fundamental types shared across the MorphCtr library.
 *
 * The secure-memory system models a physical address space partitioned
 * into 64-byte cachelines and 4 KB pages, matching the organization
 * assumed throughout the paper (Saileshwar et al., MICRO 2018).
 */

#ifndef MORPH_COMMON_TYPES_HH
#define MORPH_COMMON_TYPES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace morph
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Index of a 64-byte cacheline within the physical address space. */
using LineAddr = std::uint64_t;

/** Simulation time, in memory-controller cycles unless stated otherwise. */
using Cycle = std::uint64_t;

/** Size of a cacheline in bytes — every memory transfer is one line. */
constexpr std::size_t lineBytes = 64;

/** Size of a cacheline in bits. */
constexpr std::size_t lineBits = lineBytes * 8;

/** Size of a physical page in bytes. */
constexpr std::size_t pageBytes = 4096;

/** Cachelines per physical page. */
constexpr std::size_t linesPerPage = pageBytes / lineBytes;

/** Raw contents of one 64-byte cacheline. */
using CachelineData = std::array<std::uint8_t, lineBytes>;

/** Convert a byte address to its cacheline index. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr / lineBytes;
}

/** Convert a cacheline index back to the base byte address. */
constexpr Addr
addrOf(LineAddr line)
{
    return line * lineBytes;
}

/** Convert a byte address to its page index. */
constexpr std::uint64_t
pageOf(Addr addr)
{
    return addr / pageBytes;
}

/** Kind of a memory transaction. */
enum class AccessType : std::uint8_t { Read, Write };

} // namespace morph

#endif // MORPH_COMMON_TYPES_HH
