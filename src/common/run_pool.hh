/**
 * @file
 * run_pool: the parallel sweep engine for independent simulation runs.
 *
 * Every evaluation surface of this repo — the morphbench workload x
 * config matrix, the bench/fig* figure reproductions, morphsim
 * --sweep, morphverify's model shards — is an embarrassingly parallel
 * grid of independent runs: each run owns its whole simulated system
 * (traces, RNGs, caches, DRAM, StatRegistry/MorphScope), and shares
 * no mutable state with its siblings. RunPool turns that grid into
 * near-linear multi-core throughput without giving up the repo's
 * bit-reproducibility contract:
 *
 *  - Determinism by construction. A task is addressed by its index in
 *    the caller's job list; results land in an index-ordered vector,
 *    so collected output is byte-identical no matter how the pool
 *    schedules the work. Seeds must be derived from the run key (use
 *    sweepSeed(), or an explicit per-run SimOptions::seed), never
 *    from pool scheduling order, thread ids, or time.
 *
 *  - Work stealing. Tasks are dealt into per-worker deques in
 *    contiguous blocks; a worker drains its own deque from the front
 *    and steals from the back of a sibling's when empty, so a few
 *    slow cells (random-access workloads run ~3x longer than
 *    streaming ones) cannot strand the other cores.
 *
 *  - Exceptions propagate. The first failure *by task index* (again:
 *    not by completion order) is rethrown from forEach() after the
 *    session drains, so a failing sweep reports the same cell on
 *    every machine.
 *
 * The pool is not reentrant: one forEach() session at a time, driven
 * from one thread. Tasks must not call back into the same pool.
 *
 * Locking discipline (machine-checked by morphrace and, under clang,
 * by -Wthread-safety — see docs/CONCURRENCY.md): session state is
 * guarded by lock_, each shard's deque by its own Shard::lock, and
 * the only nested acquisition is lock_ -> Shard::lock (dealing tasks
 * in forEach), so the acquisition graph is acyclic by construction.
 */

#ifndef MORPH_COMMON_RUN_POOL_HH
#define MORPH_COMMON_RUN_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "common/mutex.hh"
#include "common/prof.hh"

namespace morph
{

/** Deterministic per-run seed derived from the run's identity.
 *
 *  FNV-1a over @p key mixed through a splitmix64 finalizer and XORed
 *  with @p base — a pure function of (key, base), so a sweep assigns
 *  every (workload, config) run the same RNG stream regardless of
 *  which worker executes it, in which order, at which --jobs level.
 *  Never seed a run from scheduling state (thread id, completion
 *  rank, time): that is exactly the nondeterminism this pool exists
 *  to exclude. */
std::uint64_t sweepSeed(std::string_view key, std::uint64_t base = 0);

/** Work-stealing thread pool over index-addressed task ranges. */
class RunPool
{
  public:
    /** @param threads worker count; 0 = hardwareJobs(). */
    explicit RunPool(unsigned threads = 0);
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    /** Worker threads in this pool (>= 1). */
    unsigned threads() const { return unsigned(workers_.size()); }

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareJobs();

    /**
     * Execute fn(0) .. fn(count-1) across the workers and block until
     * every call returns. Tasks run concurrently and in no defined
     * order; anything order-dependent must key off the index, not off
     * execution sequence. If any call throws, the exception of the
     * lowest-indexed failing task is rethrown here after the session
     * completes. Not reentrant.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn)
        MORPH_EXCLUDES(lock_);

    /**
     * Per-worker telemetry snapshot (tasks run, steals, failed steal
     * scans, idle wall time). Counters are relaxed atomics — tasks,
     * steals and steal-fails count always; idle time accrues only
     * while morphprof is enabled (a clock read per sleep is not free).
     * Snapshot between sessions for exact sums; the pool also
     * publishes this through morphprof's pool registration, so every
     * profile report carries it.
     */
    std::vector<ProfWorkerStats> telemetry() const;

  private:
    /** One worker's task deque (own front = pop, sibling back = steal). */
    struct Shard
    {
        Mutex lock;
        std::deque<std::size_t> taskQueue MORPH_GUARDED_BY(lock);
    };

    /** One worker's telemetry counters (relaxed atomics: each is
     *  written by its owning worker and read by snapshots; no
     *  ordering is implied between counters). */
    struct WorkerCounters
    {
        std::atomic<std::uint64_t> tasks{0};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> stealFails{0};
        std::atomic<std::uint64_t> idleNs{0};
    };

    void workerLoop(unsigned id) MORPH_EXCLUDES(lock_);
    bool popLocal(unsigned id, std::size_t &task);
    bool stealTask(unsigned id, std::size_t &task);
    void runTask(std::size_t task) MORPH_EXCLUDES(lock_);
    /** Record completion (and optional failure) of @p task. */
    void finishTask(std::size_t task, std::exception_ptr error)
        MORPH_REQUIRES(lock_);

    std::vector<std::unique_ptr<Shard>> shards_;
    // unique_ptr: a vector of atomics is not movable, and the heap
    // slot gives each worker's counters a stable address for life.
    std::vector<std::unique_ptr<WorkerCounters>> counters_;
    std::vector<std::thread> workers_;
    std::size_t profToken_ = 0; ///< morphprof pool registration

    Mutex lock_; ///< guards the session state below
    std::condition_variable_any wake_; ///< workers: a session started
    std::condition_variable_any idle_; ///< forEach: the session drained
    const std::function<void(std::size_t)> *fn_
        MORPH_GUARDED_BY(lock_) = nullptr;
    std::uint64_t session_ MORPH_GUARDED_BY(lock_) = 0;
    std::size_t pending_ MORPH_GUARDED_BY(lock_) = 0;
    std::size_t firstErrorIndex_ MORPH_GUARDED_BY(lock_) = 0;
    std::exception_ptr error_ MORPH_GUARDED_BY(lock_);
    bool shutdown_ MORPH_GUARDED_BY(lock_) = false;
};

/**
 * Ordered parallel map over an index range: the sweep engine proper.
 *
 * Wraps a RunPool and collects one result per job into a vector
 * ordered by job index, so downstream aggregation and report emission
 * read results exactly as a serial loop would have produced them:
 *
 *   SweepEngine engine(jobs);
 *   auto results = engine.map<SimResult>(cases.size(), [&](size_t i) {
 *       return runByName(cases[i].workload, cases[i].config, options);
 *   });
 *   // results[i] corresponds to cases[i]; print in order.
 */
class SweepEngine
{
  public:
    /** @param jobs worker count; 0 = RunPool::hardwareJobs(). */
    explicit SweepEngine(unsigned jobs = 0) : pool_(jobs) {}

    unsigned jobs() const { return pool_.threads(); }
    RunPool &pool() { return pool_; }

    /**
     * One-line worker utilization summary from the pool's telemetry
     * ("jobs 4: 128 tasks (min 28/max 36 per worker), 12 steals, ...")
     * for driver stderr reporting. Call between map() sessions.
     */
    std::string utilization() const;

    /** Run fn(i) for i in [0, count) and return results in index
     *  order. Result must be default-constructible. */
    template <typename Result, typename Fn>
    std::vector<Result>
    map(std::size_t count, Fn &&fn)
    {
        std::vector<Result> results(count);
        const std::function<void(std::size_t)> task =
            [&](std::size_t i) { results[i] = fn(i); };
        pool_.forEach(count, task);
        return results;
    }

  private:
    RunPool pool_;
};

} // namespace morph

#endif // MORPH_COMMON_RUN_POOL_HH
