#include "common/trace_log.hh"

#include <cinttypes>
#include <fstream>

#include "common/json.hh"

namespace morph
{

bool
TraceLog::roomFor()
{
    if (events_.size() < maxEvents_)
        return true;
    ++dropped_;
    return false;
}

void
TraceLog::complete(const char *name, const char *cat,
                   std::uint32_t tid, std::uint64_t ts,
                   std::uint64_t dur, std::uint64_t arg_line)
{
    if (!roomFor())
        return;
    events_.push_back({name, cat, ts, dur, arg_line, tid, 'X'});
}

void
TraceLog::completeOwned(const std::string &name, const char *cat,
                        std::uint32_t tid, std::uint64_t ts,
                        std::uint64_t dur)
{
    if (!roomFor())
        return;
    ownedNames_.push_back(name);
    events_.push_back(
        {ownedNames_.back().c_str(), cat, ts, dur, noLine, tid, 'X'});
}

void
TraceLog::instant(const char *name, const char *cat, std::uint32_t tid,
                  std::uint64_t ts)
{
    if (!roomFor())
        return;
    events_.push_back({name, cat, ts, 0, noLine, tid, 'i'});
}

void
TraceLog::nameTrack(std::uint32_t tid, const std::string &name)
{
    for (auto &kv : trackNames_) {
        if (kv.first == tid) {
            kv.second = name;
            return;
        }
    }
    trackNames_.emplace_back(tid, name);
}

std::size_t
TraceLog::size() const
{
    return events_.size() + trackNames_.size();
}

void
TraceLog::write(std::ostream &os) const
{
    // "morph" is a foreign top-level key; Chrome/Perfetto ignore keys
    // they don't know, and it makes event loss visible in the
    // document itself (dropped_events > 0 means the cap was hit and
    // the tail of the run is missing from the timeline).
    os << "{\"displayTimeUnit\": \"ns\", \"morph\": {\"max_events\": "
       << maxEvents_ << ", \"events\": " << events_.size()
       << ", \"dropped_events\": " << dropped_
       << "}, \"traceEvents\": [";
    bool first = true;
    for (const auto &kv : trackNames_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << kv.first << ", \"args\": {\"name\": \""
           << jsonEscape(kv.second) << "\"}}";
    }
    char buf[256];
    for (const Event &e : events_) {
        if (!first)
            os << ",";
        first = false;
        // Event names and categories pass through jsonEscape like
        // every other string field: a stray control byte or quote in
        // an instrumentation site must not produce invalid JSON.
        os << "\n{\"name\": \"" << jsonEscape(e.name)
           << "\", \"cat\": \"" << jsonEscape(e.cat) << "\", ";
        if (e.phase == 'X') {
            std::snprintf(buf, sizeof buf,
                          "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                          "\"ts\": %" PRIu64 ", \"dur\": %" PRIu64,
                          e.tid, e.ts, e.dur);
            os << buf;
            if (e.line != noLine) {
                std::snprintf(buf, sizeof buf,
                              ", \"args\": {\"line\": \"0x%" PRIx64
                              "\"}",
                              e.line);
                os << buf;
            }
            os << "}";
        } else {
            std::snprintf(buf, sizeof buf,
                          "\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, "
                          "\"tid\": %u, \"ts\": %" PRIu64 "}",
                          e.tid, e.ts);
            os << buf;
        }
    }
    os << "\n]}\n";
}

bool
TraceLog::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    write(out);
    out.flush();
    return bool(out);
}

} // namespace morph
