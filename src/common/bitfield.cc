#include "common/bitfield.hh"

#include <algorithm>
#include <bit>

namespace morph
{
namespace bitnaive
{

// The original byte-loop implementations, kept as the reference model
// the word-level fast path is differentially tested against.

std::uint64_t
readBits(const CachelineData &line, unsigned offset, unsigned width)
{
    MORPH_DCHECK(width >= 1 && width <= 64);
    MORPH_DCHECK(offset + width <= lineBits);

    std::uint64_t value = 0;
    unsigned got = 0;
    unsigned pos = offset;
    while (got < width) {
        const unsigned byte = pos / 8;
        const unsigned bit = pos % 8;
        const unsigned take = std::min(8u - bit, width - got);
        const std::uint64_t chunk =
            (std::uint64_t(line[byte]) >> bit) & ((1ull << take) - 1);
        value |= chunk << got;
        got += take;
        pos += take;
    }
    return value;
}

void
writeBits(CachelineData &line, unsigned offset, unsigned width,
          std::uint64_t value)
{
    MORPH_DCHECK(width >= 1 && width <= 64);
    MORPH_DCHECK(offset + width <= lineBits);
    MORPH_DCHECK(width == 64 || (value >> width) == 0);

    unsigned put = 0;
    unsigned pos = offset;
    while (put < width) {
        const unsigned byte = pos / 8;
        const unsigned bit = pos % 8;
        const unsigned take = std::min(8u - bit, width - put);
        const std::uint8_t mask =
            std::uint8_t(((1u << take) - 1) << bit);
        const std::uint8_t chunk =
            std::uint8_t(((value >> put) & ((1ull << take) - 1)) << bit);
        line[byte] = std::uint8_t((line[byte] & ~mask) | chunk);
        put += take;
        pos += take;
    }
}

unsigned
popcountBits(const CachelineData &line, unsigned offset, unsigned nbits)
{
    MORPH_DCHECK(offset + nbits <= lineBits);
    unsigned count = 0;
    unsigned pos = offset;
    unsigned left = nbits;
    while (left > 0) {
        const unsigned chunk_bits = std::min(left, 64u);
        count += unsigned(std::popcount(readBits(line, pos, chunk_bits)));
        pos += chunk_bits;
        left -= chunk_bits;
    }
    return count;
}

} // namespace bitnaive
} // namespace morph
