/**
 * @file
 * Runtime contract macros for library invariants.
 *
 * The counter codecs are dense bit-twiddling code where a silent
 * off-by-one corrupts integrity-tree state long before any test
 * notices. These macros replace bare assert():
 *
 *  - MORPH_CHECK(expr)            — always on, release builds included.
 *  - MORPH_CHECK_EQ/LT/LE(a, b)   — comparison checks that print both
 *                                   operand values on failure.
 *  - MORPH_DCHECK(expr)           — debug-only (hot paths); compiles to
 *                                   nothing when NDEBUG is defined
 *                                   unless MORPH_ENABLE_DCHECKS forces
 *                                   them on.
 *  - MORPH_CHECK_CONTEXT(line)    — RAII registration of an in-scope
 *                                   CachelineData; every registered
 *                                   line is hex-dumped when a check in
 *                                   the dynamic scope fails.
 *
 * A failing check prints the expression text, operand values (decimal
 * and hex), file:line, and the hex dump of every registered cacheline,
 * then aborts — the same post-mortem a hardware assertion would give a
 * verification engineer.
 */

#ifndef MORPH_COMMON_CHECK_HH
#define MORPH_COMMON_CHECK_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <type_traits>

#include "common/types.hh"

namespace morph
{
namespace check_detail
{

/**
 * One entry in the thread-local stack of cacheline images to dump when
 * a check fails. Instantiate via MORPH_CHECK_CONTEXT, never directly.
 */
class LineContext
{
  public:
    LineContext(const char *label, const CachelineData &line);
    ~LineContext();
    LineContext(const LineContext &) = delete;
    LineContext &operator=(const LineContext &) = delete;

    const char *label() const { return label_; }
    const CachelineData &line() const { return *line_; }
    const LineContext *previous() const { return prev_; }

  private:
    const char *label_;
    const CachelineData *line_;
    LineContext *prev_;
};

/** Render a 64-byte line as four rows of 16 hex bytes. */
std::string hexDump(const CachelineData &line);

/** Print the failure report (plus registered line dumps) and abort. */
[[noreturn]] void failCheck(const char *file, int line, const char *expr,
                            const std::string &detail);

/** Format one operand value; integrals print as decimal and hex. */
template <typename T>
std::string
operandString(const T &value)
{
    std::ostringstream os;
    if constexpr (std::is_integral_v<T>) {
        // Unary plus promotes char-sized integers to printable ints.
        os << +value << " (0x" << std::hex << +value << ")";
    } else if constexpr (std::is_enum_v<T>) {
        os << static_cast<long long>(value);
    } else {
        os << value;
    }
    return os.str();
}

/** Build the "lhs = ..., rhs = ..." detail line for binary checks. */
template <typename A, typename B>
std::string
binopDetail(const char *a_text, const char *b_text, const A &a,
            const B &b)
{
    std::ostringstream os;
    os << "  lhs (" << a_text << ") = " << operandString(a) << "\n"
       << "  rhs (" << b_text << ") = " << operandString(b);
    return os.str();
}

} // namespace check_detail
} // namespace morph

/** Always-on invariant check. */
#define MORPH_CHECK(expr)                                                  \
    ((expr) ? static_cast<void>(0)                                         \
            : ::morph::check_detail::failCheck(__FILE__, __LINE__, #expr,  \
                                               std::string()))

#define MORPH_CHECK_BINOP_(a, b, op, opstr)                                \
    do {                                                                   \
        const auto &morph_chk_a_ = (a);                                    \
        const auto &morph_chk_b_ = (b);                                    \
        if (!(morph_chk_a_ op morph_chk_b_))                               \
            ::morph::check_detail::failCheck(                              \
                __FILE__, __LINE__, #a " " opstr " " #b,                   \
                ::morph::check_detail::binopDetail(#a, #b, morph_chk_a_,   \
                                                   morph_chk_b_));         \
    } while (false)

/** Always-on comparison checks that report both operand values. */
#define MORPH_CHECK_EQ(a, b) MORPH_CHECK_BINOP_(a, b, ==, "==")
#define MORPH_CHECK_LT(a, b) MORPH_CHECK_BINOP_(a, b, <, "<")
#define MORPH_CHECK_LE(a, b) MORPH_CHECK_BINOP_(a, b, <=, "<=")

#if !defined(NDEBUG) || defined(MORPH_ENABLE_DCHECKS)
#define MORPH_DCHECK_IS_ON 1
#else
#define MORPH_DCHECK_IS_ON 0
#endif

/** Debug-only check for hot paths (bit-field access, RNG draws). */
#if MORPH_DCHECK_IS_ON
#define MORPH_DCHECK(expr) MORPH_CHECK(expr)
#else
#define MORPH_DCHECK(expr)                                                 \
    do {                                                                   \
        if (false)                                                         \
            static_cast<void>(expr);                                       \
    } while (false)
#endif

#define MORPH_CHECK_CONCAT2_(a, b) a##b
#define MORPH_CHECK_CONCAT_(a, b) MORPH_CHECK_CONCAT2_(a, b)

/**
 * Register @p line_expr (a CachelineData lvalue) for hex dumping if any
 * MORPH_CHECK in the enclosing dynamic scope fails.
 */
#define MORPH_CHECK_CONTEXT(line_expr)                                     \
    ::morph::check_detail::LineContext MORPH_CHECK_CONCAT_(                \
        morph_line_ctx_, __LINE__)                                         \
    {                                                                      \
        #line_expr, (line_expr)                                            \
    }

/**
 * Debug-only variant of MORPH_CHECK_CONTEXT for hot paths where the
 * RAII registration (two thread-local list updates per call) is
 * measurable. The checks themselves stay on in release; only the
 * failure-time hex dump is debug-only.
 */
#if MORPH_DCHECK_IS_ON
#define MORPH_DCHECK_CONTEXT(line_expr) MORPH_CHECK_CONTEXT(line_expr)
#else
#define MORPH_DCHECK_CONTEXT(line_expr) static_cast<void>(0)
#endif

#endif // MORPH_COMMON_CHECK_HH
