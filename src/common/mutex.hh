/**
 * @file
 * Capability-annotated locking primitives.
 *
 * libstdc++'s std::mutex carries no thread-safety attributes, so a
 * member declared MORPH_GUARDED_BY(some_std_mutex) makes clang's
 * -Wthread-safety warn about the annotation itself instead of
 * checking it. morph::Mutex is a zero-cost wrapper that IS a clang
 * capability; LockGuard/UniqueLock are the matching scoped holders.
 * Everything inlines to the std primitives — the wrappers exist only
 * to carry annotations for clang TSA and recognizable acquisition
 * shapes for morphrace.
 *
 * UniqueLock deliberately supports only the protocol RunPool needs:
 * construct-locked, wait on a condition_variable_any, unlock early.
 * No deferred/adopt tags, no timed waits — add them when a caller
 * exists.
 */

#ifndef MORPH_COMMON_MUTEX_HH
#define MORPH_COMMON_MUTEX_HH

#include <mutex>

#include "common/annotations.hh"

namespace morph
{

/** Annotated exclusive mutex (wraps std::mutex). */
class MORPH_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MORPH_ACQUIRE() { impl_.lock(); }
    void unlock() MORPH_RELEASE() { impl_.unlock(); }
    bool try_lock() MORPH_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  private:
    std::mutex impl_;
};

/** Scoped lock: held from construction to end of scope. */
class MORPH_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) MORPH_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~LockGuard() MORPH_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/** Scoped lock that a condition variable can release and re-acquire,
 *  and that the owner may unlock before scope exit. Satisfies the
 *  BasicLockable requirements of std::condition_variable_any. */
class MORPH_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) MORPH_ACQUIRE(mu)
        : mu_(mu), held_(true)
    {
        mu_.lock();
    }
    ~UniqueLock() MORPH_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void
    lock() MORPH_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

    void
    unlock() MORPH_RELEASE()
    {
        held_ = false;
        mu_.unlock();
    }

  private:
    Mutex &mu_;
    bool held_;
};

} // namespace morph

#endif // MORPH_COMMON_MUTEX_HH
