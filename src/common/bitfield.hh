/**
 * @file
 * Bit-granular field access within a 64-byte cacheline image.
 *
 * Counter blocks (split counters, ZCC, MCR) are stored bit-exactly in
 * 512-bit cacheline images. All formats are described as a sequence of
 * fields at fixed bit offsets; this utility reads and writes those
 * fields. Bit 0 is the least-significant bit of byte 0 (little-endian
 * bit order), so a field of width w at offset o occupies bits
 * [o, o + w) of the line viewed as one 512-bit little-endian integer.
 *
 * Representation: the line is treated as eight 64-bit little-endian
 * words. A field of <= 64 bits spans at most two words, so readBits is
 * two loads + shift/merge, writeBits is a masked read-modify-write of
 * at most two words, and popcountBits is whole-word std::popcount with
 * the edge words masked. The word view is purely an access strategy —
 * the byte-image layout contract above is unchanged, and the
 * bit-at-a-time reference implementation is retained in
 * morph::bitnaive for differential testing (see docs/PERFORMANCE.md).
 */

#ifndef MORPH_COMMON_BITFIELD_HH
#define MORPH_COMMON_BITFIELD_HH

#include <bit>
#include <cstdint>
#include <cstring>

#include "common/check.hh"
#include "common/types.hh"

namespace morph
{

/** 64-bit words per cacheline (the word view of a 512-bit line). */
constexpr unsigned lineWords = unsigned(lineBits / 64);

/**
 * Load word @p w of the line's little-endian 64-bit word view:
 * bit b of the result is bit (64*w + b) of the line.
 */
inline std::uint64_t
loadWord(const CachelineData &line, unsigned w)
{
    MORPH_DCHECK(w < lineWords);
    std::uint64_t v;
    std::memcpy(&v, line.data() + 8 * w, 8);
    if constexpr (std::endian::native == std::endian::big)
        v = __builtin_bswap64(v);
    return v;
}

/** Store word @p w of the line's little-endian 64-bit word view. */
inline void
storeWord(CachelineData &line, unsigned w, std::uint64_t v)
{
    MORPH_DCHECK(w < lineWords);
    if constexpr (std::endian::native == std::endian::big)
        v = __builtin_bswap64(v);
    std::memcpy(line.data() + 8 * w, &v, 8);
}

/** All-ones mask of the low @p width bits (width 1..64). */
inline std::uint64_t
bitMask(unsigned width)
{
    MORPH_DCHECK(width >= 1 && width <= 64);
    return ~std::uint64_t(0) >> (64u - width);
}

/**
 * Read a bit field of up to 64 bits from a cacheline image.
 *
 * @param line   source cacheline image
 * @param offset first bit of the field (0..511)
 * @param width  field width in bits (1..64)
 * @return the field value, right-aligned
 */
inline std::uint64_t
readBits(const CachelineData &line, unsigned offset, unsigned width)
{
    MORPH_DCHECK(width >= 1 && width <= 64);
    MORPH_DCHECK(offset + width <= lineBits);

    const unsigned word = offset >> 6;
    const unsigned bit = offset & 63;
    std::uint64_t v = loadWord(line, word) >> bit;
    // Straddling fields merge the next word; bit >= 1 there, so the
    // left shift by (64 - bit) is always in range.
    if (bit + width > 64)
        v |= loadWord(line, word + 1) << (64 - bit);
    return v & bitMask(width);
}

/**
 * Write a bit field of up to 64 bits into a cacheline image.
 *
 * @param line   destination cacheline image
 * @param offset first bit of the field (0..511)
 * @param width  field width in bits (1..64)
 * @param value  field value; bits above @p width must be zero
 */
inline void
writeBits(CachelineData &line, unsigned offset, unsigned width,
          std::uint64_t value)
{
    MORPH_DCHECK(width >= 1 && width <= 64);
    MORPH_DCHECK(offset + width <= lineBits);
    MORPH_DCHECK(width == 64 || (value >> width) == 0);

    const unsigned word = offset >> 6;
    const unsigned bit = offset & 63;
    const std::uint64_t mask = bitMask(width);
    // Bits shifted past the top of the low word fall into the spill
    // word below; the uint64 shift discards them here by design.
    const std::uint64_t lo = loadWord(line, word);
    storeWord(line, word, (lo & ~(mask << bit)) | (value << bit));
    if (bit + width > 64) {
        const unsigned spill = bit + width - 64; // 1..63
        const std::uint64_t hi = loadWord(line, word + 1);
        storeWord(line, word + 1,
                  (hi & ~bitMask(spill)) | (value >> (64 - bit)));
    }
}

/** Load a little-endian 32-bit window starting at byte @p byte. */
inline std::uint32_t
loadLe32(const CachelineData &line, unsigned byte)
{
    MORPH_DCHECK(byte + 4 <= lineBytes);
    std::uint32_t v;
    std::memcpy(&v, line.data() + byte, 4);
    if constexpr (std::endian::native == std::endian::big)
        v = __builtin_bswap32(v);
    return v;
}

/** Store a little-endian 32-bit window starting at byte @p byte. */
inline void
storeLe32(CachelineData &line, unsigned byte, std::uint32_t v)
{
    MORPH_DCHECK(byte + 4 <= lineBytes);
    if constexpr (std::endian::native == std::endian::big)
        v = __builtin_bswap32(v);
    std::memcpy(line.data() + byte, &v, 4);
}

/**
 * Branch-free readBits for narrow fields (width 1..25) that start
 * before bit 480: the field plus its leading 0..7 intra-byte bits fits
 * one unaligned 32-bit window, so there is no straddle test. This is
 * the ZCC packed-slot fast path (slot widths are 4..16 bits).
 */
inline std::uint64_t
readBitsNarrow(const CachelineData &line, unsigned offset, unsigned width)
{
    MORPH_DCHECK(width >= 1 && width <= 25);
    MORPH_DCHECK(offset + width <= lineBits);
    MORPH_DCHECK((offset >> 3) + 4 <= lineBytes);
    return (loadLe32(line, offset >> 3) >> (offset & 7)) &
           std::uint32_t(bitMask(width));
}

/** Branch-free writeBits counterpart of readBitsNarrow. */
inline void
writeBitsNarrow(CachelineData &line, unsigned offset, unsigned width,
                std::uint64_t value)
{
    MORPH_DCHECK(width >= 1 && width <= 25);
    MORPH_DCHECK(offset + width <= lineBits);
    MORPH_DCHECK((offset >> 3) + 4 <= lineBytes);
    MORPH_DCHECK((value >> width) == 0);
    const unsigned byte = offset >> 3;
    const unsigned bit = offset & 7;
    const std::uint32_t mask = std::uint32_t(bitMask(width)) << bit;
    const std::uint32_t old = loadLe32(line, byte);
    storeLe32(line, byte,
              (old & ~mask) | (std::uint32_t(value) << bit));
}

/** Test a single bit in a cacheline image. */
inline bool
testBit(const CachelineData &line, unsigned bit)
{
    MORPH_DCHECK(bit < lineBits);
    return (line[bit / 8] >> (bit % 8)) & 1;
}

/** Set or clear a single bit in a cacheline image. */
inline void
setBit(CachelineData &line, unsigned bit, bool value)
{
    MORPH_DCHECK(bit < lineBits);
    const std::uint8_t mask = std::uint8_t(1) << (bit % 8);
    if (value)
        line[bit / 8] |= mask;
    else
        line[bit / 8] &= std::uint8_t(~mask);
}

/**
 * Count set bits within the first @p nbits bits of a bit-vector field.
 *
 * @param line   cacheline image holding the bit vector
 * @param offset first bit of the vector
 * @param nbits  number of bits to scan
 */
inline unsigned
popcountBits(const CachelineData &line, unsigned offset, unsigned nbits)
{
    MORPH_DCHECK(offset + nbits <= lineBits);
    if (nbits == 0)
        return 0;

    const unsigned first = offset >> 6;
    const unsigned last = (offset + nbits - 1) >> 6;
    const std::uint64_t head = loadWord(line, first) >> (offset & 63);
    if (first == last)
        return unsigned(std::popcount(head & bitMask(nbits)));

    unsigned count = unsigned(std::popcount(head));
    for (unsigned w = first + 1; w < last; ++w)
        count += unsigned(std::popcount(loadWord(line, w)));
    const unsigned end_bit = (offset + nbits - 1) & 63; // inclusive
    count += unsigned(
        std::popcount(loadWord(line, last) & bitMask(end_bit + 1)));
    return count;
}

/**
 * Bit-at-a-time reference implementations of the three field
 * primitives, retained verbatim as the differential-testing oracle:
 * tests/test_bitfield.cc pits the word-level fast path above against
 * these across every offset/width, including word-straddling fields.
 * Nothing on a hot path may call into this namespace.
 */
namespace bitnaive
{

std::uint64_t readBits(const CachelineData &line, unsigned offset,
                       unsigned width);
void writeBits(CachelineData &line, unsigned offset, unsigned width,
               std::uint64_t value);
unsigned popcountBits(const CachelineData &line, unsigned offset,
                      unsigned nbits);

} // namespace bitnaive

} // namespace morph

#endif // MORPH_COMMON_BITFIELD_HH
