/**
 * @file
 * Bit-granular field access within a 64-byte cacheline image.
 *
 * Counter blocks (split counters, ZCC, MCR) are stored bit-exactly in
 * 512-bit cacheline images. All formats are described as a sequence of
 * fields at fixed bit offsets; this utility reads and writes those
 * fields. Bit 0 is the least-significant bit of byte 0 (little-endian
 * bit order), so a field of width w at offset o occupies bits
 * [o, o + w) of the line viewed as one 512-bit little-endian integer.
 */

#ifndef MORPH_COMMON_BITFIELD_HH
#define MORPH_COMMON_BITFIELD_HH

#include <cstdint>

#include "common/check.hh"
#include "common/types.hh"

namespace morph
{

/**
 * Read a bit field of up to 64 bits from a cacheline image.
 *
 * @param line   source cacheline image
 * @param offset first bit of the field (0..511)
 * @param width  field width in bits (1..64)
 * @return the field value, right-aligned
 */
std::uint64_t readBits(const CachelineData &line, unsigned offset,
                       unsigned width);

/**
 * Write a bit field of up to 64 bits into a cacheline image.
 *
 * @param line   destination cacheline image
 * @param offset first bit of the field (0..511)
 * @param width  field width in bits (1..64)
 * @param value  field value; bits above @p width must be zero
 */
void writeBits(CachelineData &line, unsigned offset, unsigned width,
               std::uint64_t value);

/** Test a single bit in a cacheline image. */
inline bool
testBit(const CachelineData &line, unsigned bit)
{
    MORPH_DCHECK(bit < lineBits);
    return (line[bit / 8] >> (bit % 8)) & 1;
}

/** Set or clear a single bit in a cacheline image. */
inline void
setBit(CachelineData &line, unsigned bit, bool value)
{
    MORPH_DCHECK(bit < lineBits);
    const std::uint8_t mask = std::uint8_t(1) << (bit % 8);
    if (value)
        line[bit / 8] |= mask;
    else
        line[bit / 8] &= std::uint8_t(~mask);
}

/**
 * Count set bits within the first @p nbits bits of a bit-vector field.
 *
 * @param line   cacheline image holding the bit vector
 * @param offset first bit of the vector
 * @param nbits  number of bits to scan
 */
unsigned popcountBits(const CachelineData &line, unsigned offset,
                      unsigned nbits);

} // namespace morph

#endif // MORPH_COMMON_BITFIELD_HH
