/**
 * @file
 * morphscope: the hierarchical statistics registry.
 *
 * Components register their counters, derived gauges and histograms
 * once, under dotted lowercase names ("traffic.ctr_encr.reads",
 * "dram.ch0.row_hits"); everything downstream — the morphsim text
 * report, the JSON/CSV exporters, epoch time-series sampling, the
 * morphbench CI matrix — reads the registry instead of plumbing
 * per-component stat structs by hand.
 *
 * Naming contract (enforced at registration, re-derived by morphlint):
 * every name matches [a-z0-9_.]+ and is unique within the registry.
 *
 * Three statistic kinds:
 *  - counter: monotonically non-decreasing totals (reads, overflows).
 *    Epoch sampling reports per-epoch deltas; deltas sum to totals.
 *  - gauge:   point-in-time derived values (hit rates, IPC, occupancy).
 *    Epoch sampling reports the value at the epoch boundary.
 *  - histogram: bucketed distributions with count/mean/percentiles.
 *
 * Registered entries hold non-owning pointers/closures into the
 * components; the registry must not outlive the system it observes.
 */

#ifndef MORPH_COMMON_STAT_REGISTRY_HH
#define MORPH_COMMON_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/annotations.hh"
#include "common/stats.hh"

namespace morph
{

/** True if @p name is non-empty and matches [a-z0-9_.]+. */
bool isValidStatName(const std::string &name);

/** Statistic semantics (drives epoch-delta computation). */
enum class StatKind : std::uint8_t
{
    Counter, ///< monotonic total; epochs report deltas
    Gauge,   ///< point-in-time value; epochs report samples
};

/** Uniform read-only view of one histogram's current contents. */
struct HistogramSnapshot
{
    /** One non-empty bucket with both edges, so exporters and
     *  external tools can re-derive the distribution without knowing
     *  the source histogram's bucketing scheme. */
    struct Bucket
    {
        double lo = 0.0;          ///< lower edge (inclusive)
        double hi = 0.0;          ///< upper edge (exclusive)
        std::uint64_t count = 0;  ///< recorded weight
    };

    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /** Every non-empty bucket, in ascending edge order. */
    std::vector<Bucket> buckets;
};

/** The morphscope stat registry. */
class StatRegistry
{
  public:
    StatRegistry() = default;

    /** Register a counter backed by a component member. */
    void counter(const std::string &name, const std::uint64_t *value,
                 const std::string &desc = "");

    /** Register a counter computed on demand. */
    void counter(const std::string &name,
                 std::function<std::uint64_t()> read,
                 const std::string &desc = "");

    /** Register a derived gauge computed on demand. */
    void gauge(const std::string &name, std::function<double()> read,
               const std::string &desc = "");

    /** Register a fixed post-run scalar (a constant gauge). */
    void scalar(const std::string &name, double value,
                const std::string &desc = "");

    /** Register a fixed-bucket histogram. */
    void histogram(const std::string &name, const Histogram *h,
                   const std::string &desc = "");

    /** Register an exponential-bucket histogram. */
    void histogram(const std::string &name, const ExpHistogram *h,
                   const std::string &desc = "");

    // --- scalar enumeration (registration order) ---

    std::size_t numScalars() const { return scalars_.size(); }
    const std::string &scalarName(std::size_t i) const;
    StatKind scalarKind(std::size_t i) const;
    const std::string &scalarDesc(std::size_t i) const;
    double scalarValue(std::size_t i) const;

    /** All scalar values, in registration order. */
    std::vector<double> snapshotScalars() const;

    /** Value by name; NaN if unregistered (lookup is linear). */
    double value(const std::string &name) const;

    /** True if a scalar or histogram of this name is registered. */
    bool has(const std::string &name) const;

    // --- histogram enumeration ---

    std::size_t numHistograms() const { return histograms_.size(); }
    const std::string &histogramName(std::size_t i) const;
    HistogramSnapshot histogramSnapshot(std::size_t i) const;

    /** All registered names (scalars then histograms). */
    std::vector<std::string> names() const;

    /**
     * Materialize every entry: each scalar's closure is replaced by
     * its current value and each histogram by its current snapshot.
     * After freeze() the registry is self-contained and safe to read
     * after the observed components are destroyed. Call at the end of
     * a run, before the simulated system goes away.
     */
    void freeze();

    /**
     * Print "prefix.name value" lines for every scalar, then
     * "prefix.name.count/.mean/.p50/.p95/.p99" for every histogram —
     * the morphsim text report. Values are formatted exactly as the
     * JSON exporter formats them, so the two reports always agree.
     */
    void dumpText(std::ostream &os, const std::string &prefix) const;

  private:
    struct Scalar
    {
        std::string name;
        std::string desc;
        StatKind kind;
        std::function<double()> read;
    };

    struct Hist
    {
        std::string name;
        std::string desc;
        std::function<HistogramSnapshot()> snapshot;
    };

    void checkName(const std::string &name) const;

    // Registration and freeze() happen while the owning run is
    // single-threaded; after freeze() only the const readers run,
    // possibly from many threads (see FrozenRegistry tests).
    std::vector<Scalar> scalars_ MORPH_MAIN_THREAD;
    std::vector<Hist> histograms_ MORPH_MAIN_THREAD;
};

/** Free-form run metadata (workload, config, scale...) for exports. */
struct RunMeta
{
    std::vector<std::pair<std::string, std::string>> entries;

    /** Set (or overwrite) one key. */
    void set(const std::string &key, const std::string &value);

    /** Value for @p key, or "" if absent. */
    std::string get(const std::string &key) const;
};

/**
 * Epoch-sampled time series over a registry's scalars.
 *
 * baseline() pins the stat list and the counter base values (call it
 * at the measurement boundary); each sample() then records one epoch:
 * counter deltas since the previous sample and gauge values at the
 * boundary. Scalars registered after baseline() are excluded — the
 * series stays rectangular.
 */
class EpochSeries
{
  public:
    struct Record
    {
        std::uint64_t index;           ///< epoch number, from 0
        std::uint64_t accessesPerCore; ///< accesses in this epoch
        std::vector<double> values;    ///< per-stat delta or sample
    };

    /** Snapshot base values; fixes the stat set for the series. */
    void baseline(const StatRegistry &registry);

    /** Record one epoch of @p accesses_per_core accesses. */
    void sample(const StatRegistry &registry,
                std::uint64_t accesses_per_core);

    bool active() const { return baselined_; }
    std::size_t numStats() const { return prev_.size(); }
    const std::vector<Record> &records() const { return records_; }

  private:
    // Epoch state belongs to one simulation run; the sweep engine
    // gives every run its own series (never shared across workers).
    bool baselined_ MORPH_SHARD_LOCAL = false;
    std::vector<double> prev_ MORPH_SHARD_LOCAL;
    std::vector<Record> records_ MORPH_SHARD_LOCAL;
};

/**
 * Write the full morphscope JSON document: meta, scalar totals,
 * histograms, and (when @p epochs is non-null and active) the epoch
 * time series. Non-finite values export as null.
 */
void writeStatsJson(std::ostream &os, const StatRegistry &registry,
                    const RunMeta &meta,
                    const EpochSeries *epochs = nullptr);

/**
 * Write CSV: with an active epoch series, one row per epoch (counter
 * deltas / gauge samples) plus a final "total" row; without one, a
 * two-column name,value table of the totals.
 */
void writeStatsCsv(std::ostream &os, const StatRegistry &registry,
                   const EpochSeries *epochs = nullptr);

/** Quote @p field for CSV if it contains a comma, quote or newline. */
std::string csvField(const std::string &field);

} // namespace morph

#endif // MORPH_COMMON_STAT_REGISTRY_HH
