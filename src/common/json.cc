#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace morph
{

double
JsonValue::asNumber() const
{
    if (kind_ == Kind::Number)
        return number_;
    if (kind_ == Kind::Null)
        return std::numeric_limits<double>::quiet_NaN();
    return 0.0;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return keys_.size();
    return 0;
}

/** Recursive-descent parser over an in-memory document. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &error)
        : text_(text), parseError_(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr unsigned maxDepth = 64;

    bool
    fail(const std::string &what)
    {
        parseError_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool bool_value)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        out.kind_ = kind;
        out.bool_ = bool_value;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (BMP only; no surrogate pairing).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + token + "'");
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = value;
        return true;
    }

    bool
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null", out, JsonValue::Kind::Null, false);
        if (c == 't')
            return literal("true", out, JsonValue::Kind::Bool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Kind::Bool, false);
        if (c == '"') {
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
        }
        if (c == '[') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!parseValue(element, depth + 1))
                    return false;
                out.array_.push_back(std::move(element));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                if (out.object_.find(key) == out.object_.end())
                    out.keys_.push_back(key);
                out.object_[key] = std::move(member);
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }

    const std::string &text_;
    std::string &parseError_;
    std::size_t pos_ = 0;
};

JsonValue
jsonParse(const std::string &text, bool &ok, std::string &error)
{
    JsonValue value;
    JsonParser parser(text, error);
    ok = parser.parse(value);
    if (!ok)
        value = JsonValue();
    return value;
}

bool
jsonParse(const std::string &text, JsonValue &out)
{
    bool ok = false;
    std::string error;
    out = jsonParse(text, ok, error);
    return ok;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Integers (the common case for counters) print exactly; anything
    // fractional keeps full double round-trip precision.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace morph
