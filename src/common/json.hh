/**
 * @file
 * Minimal JSON value model and recursive-descent parser.
 *
 * morphscope exports run telemetry as JSON (stat_registry.hh) and
 * morphbench compares BENCH_*.json files against a committed baseline;
 * both sides of that round trip live here so exporter and parser can
 * never drift apart. The parser accepts strict RFC 8259 JSON plus the
 * exporter's one extension: `null` stands for a non-finite number and
 * reads back as NaN through asNumber().
 *
 * This is a telemetry-sized implementation (no streaming, no comments,
 * no \uXXXX surrogate pairs beyond the BMP) — not a general JSON
 * library.
 */

#ifndef MORPH_COMMON_JSON_HH
#define MORPH_COMMON_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace morph
{

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Number value; NaN for null (the exporter's non-finite marker),
     *  0 for other kinds. */
    double asNumber() const;

    /** Bool value (false unless a true Bool). */
    bool asBool() const { return kind_ == Kind::Bool && bool_; }

    /** String value ("" unless a String). */
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless an Array). */
    const std::vector<JsonValue> &elements() const { return array_; }

    /** Object member by key; nullptr if absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object member names in file order (empty unless an Object). */
    const std::vector<std::string> &keys() const { return keys_; }

    /** Number of array elements or object members. */
    std::size_t size() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::string> keys_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as one JSON document.
 *
 * @param[out] error set to a message with offset on failure
 * @return the parsed value, or std::nullopt-like null kind on failure
 *         (check the return of jsonParse via @p ok)
 */
JsonValue jsonParse(const std::string &text, bool &ok,
                    std::string &error);

/** Convenience: parse or return false (error text discarded). */
bool jsonParse(const std::string &text, JsonValue &out);

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number token; non-finite become null. */
std::string jsonNumber(double value);

} // namespace morph

#endif // MORPH_COMMON_JSON_HH
