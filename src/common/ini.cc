#include "common/ini.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace morph
{

namespace
{

std::string
trim(const std::string &text)
{
    std::size_t begin = 0, end = text.size();
    while (begin < end && std::isspace(std::uint8_t(text[begin])))
        ++begin;
    while (end > begin && std::isspace(std::uint8_t(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::string
lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

} // namespace

IniFile
IniFile::fromFile(const std::string &path)
{
    std::ifstream input(path);
    if (!input)
        fatal("ini: cannot open %s", path.c_str());
    return fromStream(input, path);
}

IniFile
IniFile::fromStream(std::istream &input, const std::string &name)
{
    IniFile ini;
    ini.name_ = name;

    std::string line;
    std::string section;
    std::size_t line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        const std::size_t comment = line.find_first_of(";#");
        if (comment != std::string::npos)
            line.erase(comment);
        line = trim(line);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("ini %s:%zu: unterminated section", name.c_str(),
                      line_number);
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("ini %s:%zu: expected 'key = value'", name.c_str(),
                  line_number);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("ini %s:%zu: empty key", name.c_str(), line_number);
        const std::string dotted =
            section.empty() ? key : section + "." + key;
        ini.order_.push_back(dotted);
        ini.values_.emplace_back(dotted, value);
    }
    return ini;
}

const std::string *
IniFile::find(const std::string &dotted_key) const
{
    // Last assignment wins, as users expect from override files.
    const std::string *found = nullptr;
    for (const auto &kv : values_)
        if (kv.first == dotted_key)
            found = &kv.second;
    return found;
}

bool
IniFile::has(const std::string &dotted_key) const
{
    return find(dotted_key) != nullptr;
}

std::string
IniFile::getString(const std::string &dotted_key,
                   const std::string &fallback) const
{
    const std::string *value = find(dotted_key);
    return value ? *value : fallback;
}

std::int64_t
IniFile::getInt(const std::string &dotted_key,
                std::int64_t fallback) const
{
    const std::string *value = find(dotted_key);
    if (!value)
        return fallback;
    try {
        std::size_t used = 0;
        const std::int64_t parsed = std::stoll(*value, &used, 0);
        if (used != value->size())
            throw std::invalid_argument("trailing");
        return parsed;
    } catch (const std::exception &) {
        fatal("ini %s: key %s: '%s' is not an integer", name_.c_str(),
              dotted_key.c_str(), value->c_str());
    }
}

double
IniFile::getDouble(const std::string &dotted_key, double fallback) const
{
    const std::string *value = find(dotted_key);
    if (!value)
        return fallback;
    try {
        std::size_t used = 0;
        const double parsed = std::stod(*value, &used);
        if (used != value->size())
            throw std::invalid_argument("trailing");
        return parsed;
    } catch (const std::exception &) {
        fatal("ini %s: key %s: '%s' is not a number", name_.c_str(),
              dotted_key.c_str(), value->c_str());
    }
}

bool
IniFile::getBool(const std::string &dotted_key, bool fallback) const
{
    const std::string *value = find(dotted_key);
    if (!value)
        return fallback;
    const std::string v = lower(*value);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("ini %s: key %s: '%s' is not a boolean", name_.c_str(),
          dotted_key.c_str(), value->c_str());
}

} // namespace morph
