#include "common/run_pool.hh"

#include <algorithm>

#include "common/check.hh"

namespace morph
{

std::uint64_t
sweepSeed(std::string_view key, std::uint64_t base)
{
    // FNV-1a 64-bit over the key bytes...
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    // ...then a splitmix64 finalizer so near-identical keys ("mcf/sc64"
    // vs "mcf/sc128") land in unrelated parts of the seed space.
    h ^= base + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

unsigned
RunPool::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

RunPool::RunPool(unsigned threads)
{
    const unsigned count = threads == 0 ? hardwareJobs() : threads;
    shards_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this, i]() { workerLoop(i); });
}

RunPool::~RunPool()
{
    {
        LockGuard guard(lock_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
RunPool::popLocal(unsigned id, std::size_t &task)
{
    Shard &shard = *shards_[id];
    LockGuard guard(shard.lock);
    if (shard.tasks.empty())
        return false;
    task = shard.tasks.front();
    shard.tasks.pop_front();
    return true;
}

bool
RunPool::stealTask(unsigned id, std::size_t &task)
{
    const std::size_t n = shards_.size();
    for (std::size_t k = 1; k < n; ++k) {
        Shard &victim = *shards_[(id + k) % n];
        LockGuard guard(victim.lock);
        if (victim.tasks.empty())
            continue;
        task = victim.tasks.back();
        victim.tasks.pop_back();
        return true;
    }
    return false;
}

void
RunPool::finishTask(std::size_t task, std::exception_ptr error)
{
    if (error && (!error_ || task < firstErrorIndex_)) {
        error_ = error;
        firstErrorIndex_ = task;
    }
    MORPH_CHECK(pending_ > 0);
    if (--pending_ == 0)
        idle_.notify_all();
}

void
RunPool::runTask(std::size_t task)
{
    // Re-read the session function under the lock: a worker finishing
    // a drain pass may pick up the first tasks of the *next* session
    // before it ever sleeps, and must use that session's function.
    const std::function<void(std::size_t)> *fn;
    {
        LockGuard guard(lock_);
        fn = fn_;
    }
    std::exception_ptr error;
    try {
        MORPH_CHECK(fn != nullptr);
        (*fn)(task);
    } catch (...) {
        error = std::current_exception();
    }
    {
        LockGuard guard(lock_);
        finishTask(task, error);
    }
}

void
RunPool::workerLoop(unsigned id)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            UniqueLock guard(lock_);
            // Explicit wait loop (not the predicate overload) so both
            // checkers see the guarded reads inside the held region.
            while (!shutdown_ &&
                   !(session_ != seen && pending_ > 0))
                wake_.wait(guard);
            if (shutdown_)
                return;
            seen = session_;
        }
        std::size_t task;
        while (popLocal(id, task) || stealTask(id, task))
            runTask(task);
    }
}

void
RunPool::forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    UniqueLock guard(lock_);
    MORPH_CHECK(fn_ == nullptr); // not reentrant
    // Deal contiguous index blocks into the shards while holding the
    // session lock: a still-draining worker from the previous session
    // can legally pop these tasks early, but blocks on lock_ inside
    // runTask until fn_/pending_ below are in place. This nesting is
    // the one sanctioned lock-order edge: lock_ -> Shard::lock.
    const std::size_t n = shards_.size();
    const std::size_t chunk = (count + n - 1) / n;
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t lo = std::min(s * chunk, count);
        const std::size_t hi = std::min(lo + chunk, count);
        Shard &shard = *shards_[s];
        LockGuard shard_guard(shard.lock);
        for (std::size_t i = lo; i < hi; ++i)
            shard.tasks.push_back(i);
    }
    fn_ = &fn;
    pending_ = count;
    error_ = nullptr;
    firstErrorIndex_ = 0;
    ++session_;
    wake_.notify_all();
    while (pending_ != 0)
        idle_.wait(guard);
    fn_ = nullptr;
    if (error_) {
        const std::exception_ptr error = error_;
        error_ = nullptr;
        guard.unlock();
        std::rethrow_exception(error);
    }
}

} // namespace morph
