#include "common/run_pool.hh"

#include <algorithm>
#include <cstdio>

#include "common/check.hh"

namespace morph
{

std::uint64_t
sweepSeed(std::string_view key, std::uint64_t base)
{
    // FNV-1a 64-bit over the key bytes...
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= std::uint64_t(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    // ...then a splitmix64 finalizer so near-identical keys ("mcf/sc64"
    // vs "mcf/sc128") land in unrelated parts of the seed space.
    h ^= base + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

unsigned
RunPool::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

RunPool::RunPool(unsigned threads)
{
    const unsigned count = threads == 0 ? hardwareJobs() : threads;
    shards_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        shards_.push_back(std::make_unique<Shard>());
    counters_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        counters_.push_back(std::make_unique<WorkerCounters>());
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this, i]() { workerLoop(i); });
    profToken_ = profRegisterPool([this]() { return telemetry(); });
}

RunPool::~RunPool()
{
    {
        LockGuard guard(lock_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    // After the join: the snapshot morphprof takes here reads final,
    // settled counters.
    profUnregisterPool(profToken_);
}

std::vector<ProfWorkerStats>
RunPool::telemetry() const
{
    std::vector<ProfWorkerStats> stats(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const WorkerCounters &c = *counters_[i];
        stats[i].worker = unsigned(i);
        stats[i].tasks = c.tasks.load(std::memory_order_relaxed);
        stats[i].steals = c.steals.load(std::memory_order_relaxed);
        stats[i].stealFails =
            c.stealFails.load(std::memory_order_relaxed);
        stats[i].idleNs = c.idleNs.load(std::memory_order_relaxed);
    }
    return stats;
}

bool
RunPool::popLocal(unsigned id, std::size_t &task)
{
    Shard &shard = *shards_[id];
    LockGuard guard(shard.lock);
    if (shard.taskQueue.empty())
        return false;
    task = shard.taskQueue.front();
    shard.taskQueue.pop_front();
    return true;
}

bool
RunPool::stealTask(unsigned id, std::size_t &task)
{
    WorkerCounters &mine = *counters_[id];
    const std::size_t n = shards_.size();
    for (std::size_t k = 1; k < n; ++k) {
        Shard &victim = *shards_[(id + k) % n];
        LockGuard guard(victim.lock);
        if (victim.taskQueue.empty())
            continue;
        task = victim.taskQueue.back();
        victim.taskQueue.pop_back();
        mine.steals.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    // A full scan over every sibling found nothing to steal.
    mine.stealFails.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
RunPool::finishTask(std::size_t task, std::exception_ptr error)
{
    if (error && (!error_ || task < firstErrorIndex_)) {
        error_ = error;
        firstErrorIndex_ = task;
    }
    MORPH_CHECK(pending_ > 0);
    if (--pending_ == 0)
        idle_.notify_all();
}

void
RunPool::runTask(std::size_t task)
{
    // Re-read the session function under the lock: a worker finishing
    // a drain pass may pick up the first tasks of the *next* session
    // before it ever sleeps, and must use that session's function.
    const std::function<void(std::size_t)> *fn;
    {
        LockGuard guard(lock_);
        fn = fn_;
    }
    std::exception_ptr error;
    try {
        MORPH_CHECK(fn != nullptr);
        MORPH_PROF_SCOPE("pool.task");
        (*fn)(task);
    } catch (...) {
        error = std::current_exception();
    }
    {
        LockGuard guard(lock_);
        finishTask(task, error);
    }
}

void
RunPool::workerLoop(unsigned id)
{
    profSetThreadName("worker" + std::to_string(id));
    WorkerCounters &mine = *counters_[id];
    std::uint64_t seen = 0;
    while (true) {
        {
            UniqueLock guard(lock_);
            // Idle time is metered only under morphprof: two clock
            // reads per sleep are not worth paying on every run.
            const bool meterIdle = profEnabled();
            const std::uint64_t idleStart =
                meterIdle ? profNowNs() : 0;
            // Explicit wait loop (not the predicate overload) so both
            // checkers see the guarded reads inside the held region.
            while (!shutdown_ &&
                   !(session_ != seen && pending_ > 0))
                wake_.wait(guard);
            if (meterIdle) {
                mine.idleNs.fetch_add(profNowNs() - idleStart,
                                      std::memory_order_relaxed);
            }
            if (shutdown_)
                return;
            seen = session_;
        }
        std::size_t task;
        while (popLocal(id, task) || stealTask(id, task)) {
            mine.tasks.fetch_add(1, std::memory_order_relaxed);
            runTask(task);
        }
    }
}

void
RunPool::forEach(std::size_t count,
                 const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    UniqueLock guard(lock_);
    MORPH_CHECK(fn_ == nullptr); // not reentrant
    // Deal contiguous index blocks into the shards while holding the
    // session lock: a still-draining worker from the previous session
    // can legally pop these tasks early, but blocks on lock_ inside
    // runTask until fn_/pending_ below are in place. This nesting is
    // the one sanctioned lock-order edge: lock_ -> Shard::lock.
    const std::size_t n = shards_.size();
    const std::size_t chunk = (count + n - 1) / n;
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t lo = std::min(s * chunk, count);
        const std::size_t hi = std::min(lo + chunk, count);
        Shard &shard = *shards_[s];
        LockGuard shard_guard(shard.lock);
        for (std::size_t i = lo; i < hi; ++i)
            shard.taskQueue.push_back(i);
    }
    fn_ = &fn;
    pending_ = count;
    error_ = nullptr;
    firstErrorIndex_ = 0;
    ++session_;
    wake_.notify_all();
    while (pending_ != 0)
        idle_.wait(guard);
    fn_ = nullptr;
    if (error_) {
        const std::exception_ptr error = error_;
        error_ = nullptr;
        guard.unlock();
        std::rethrow_exception(error);
    }
}

std::string
SweepEngine::utilization() const
{
    const std::vector<ProfWorkerStats> stats = pool_.telemetry();
    std::uint64_t tasks = 0, steals = 0, fails = 0, idle = 0;
    std::uint64_t lo = ~std::uint64_t(0), hi = 0;
    for (const ProfWorkerStats &ws : stats) {
        tasks += ws.tasks;
        steals += ws.steals;
        fails += ws.stealFails;
        idle += ws.idleNs;
        lo = std::min(lo, ws.tasks);
        hi = std::max(hi, ws.tasks);
    }
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "jobs %zu: %llu tasks (min %llu / max %llu per "
                  "worker), %llu steals, %llu empty scans, "
                  "idle %.1f ms total",
                  stats.size(),
                  static_cast<unsigned long long>(tasks),
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(steals),
                  static_cast<unsigned long long>(fails),
                  double(idle) / 1e6);
    return std::string(buf);
}

} // namespace morph
