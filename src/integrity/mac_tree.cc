#include "integrity/mac_tree.hh"

#include <cstring>

#include "common/check.hh"

#include "common/log.hh"

namespace morph
{

MacTree::MacTree(std::uint64_t leaves, const SipKey &mac_key)
    : leaves_(leaves), macEngine_(mac_key)
{
    if (leaves == 0)
        fatal("mac tree: need at least one leaf");

    std::uint64_t width = leaves;
    unsigned level = 1;
    while (true) {
        width = (width + arity - 1) / arity;
        levels_.push_back({level, width, width * lineBytes});
        if (width <= 1)
            break;
        ++level;
        if (level > 32)
            panic("mac tree: runaway level recursion");
    }
    store_.resize(levels_.size());
}

std::uint64_t
MacTree::treeBytes() const
{
    std::uint64_t total = 0;
    for (const auto &info : levels_)
        total += info.bytes;
    return total;
}

const CachelineData &
MacTree::node(unsigned level, std::uint64_t index) const
{
    MORPH_CHECK(level >= 1 && level <= levels_.size());
    static const CachelineData zero{};
    const auto &level_store = store_[level - 1];
    const auto it = level_store.find(index);
    return it == level_store.end() ? zero : it->second;
}

CachelineData &
MacTree::nodeMutable(unsigned level, std::uint64_t index)
{
    MORPH_CHECK(level >= 1 && level <= levels_.size());
    MORPH_CHECK_LT(index, levels_[level - 1].nodes);
    auto &level_store = store_[level - 1];
    const auto it = level_store.find(index);
    if (it != level_store.end())
        return it->second;
    return level_store.emplace(index, CachelineData{}).first->second;
}

std::uint64_t
MacTree::hashOf(unsigned level, std::uint64_t index,
                const CachelineData &image) const
{
    // Domain-separate levels so a node cannot masquerade as a leaf.
    const LineAddr binding =
        (LineAddr(level) << 56) | LineAddr(index);
    return macEngine_.compute(binding, 0, image);
}

std::uint64_t
MacTree::slotOf(const CachelineData &image, unsigned slot)
{
    MORPH_CHECK_LT(slot, arity);
    std::uint64_t value;
    std::memcpy(&value, image.data() + slot * 8, 8);
    return value;
}

void
MacTree::setSlot(CachelineData &image, unsigned slot,
                 std::uint64_t value)
{
    MORPH_CHECK_LT(slot, arity);
    std::memcpy(image.data() + slot * 8, &value, 8);
}

void
MacTree::updateLeaf(std::uint64_t index, const CachelineData &image)
{
    MORPH_CHECK_LT(index, leaves_);

    // Install the leaf hash, then re-hash ancestors up to the root.
    std::uint64_t child_hash = hashOf(0, index, image);
    std::uint64_t child_index = index;
    for (unsigned level = 1; level <= levels_.size(); ++level) {
        CachelineData &parent =
            nodeMutable(level, child_index / arity);
        setSlot(parent, unsigned(child_index % arity), child_hash);
        child_index /= arity;
        child_hash = hashOf(level, child_index, parent);
    }
    rootMac_ = child_hash; // hash of the single top node, on-chip
}

bool
MacTree::verifyLeaf(std::uint64_t index,
                    const CachelineData &image) const
{
    MORPH_CHECK_LT(index, leaves_);

    std::uint64_t expected = hashOf(0, index, image);
    std::uint64_t child_index = index;
    for (unsigned level = 1; level <= levels_.size(); ++level) {
        const CachelineData &parent =
            node(level, child_index / arity);
        if (!MacEngine::equal(slotOf(parent,
                                     unsigned(child_index % arity)),
                              expected))
            return false;
        child_index /= arity;
        expected = hashOf(level, child_index, parent);
    }
    return MacEngine::equal(expected, rootMac_);
}

bool
MacTree::verifyAll() const
{
    for (unsigned level = 1; level < levels_.size(); ++level) {
        for (const auto &kv : store_[level - 1]) {
            const CachelineData &parent =
                node(level + 1, kv.first / arity);
            if (!MacEngine::equal(
                    slotOf(parent, unsigned(kv.first % arity)),
                    hashOf(level, kv.first, kv.second)))
                return false;
        }
    }
    // The single top node anchors to the on-chip root MAC.
    const unsigned top = unsigned(levels_.size());
    for (const auto &kv : store_[top - 1]) {
        if (!MacEngine::equal(hashOf(top, kv.first, kv.second),
                              rootMac_))
            return false;
    }
    return true;
}

CachelineData
MacTree::nodeImage(unsigned level, std::uint64_t index) const
{
    return node(level, index);
}

void
MacTree::injectNode(unsigned level, std::uint64_t index,
                    const CachelineData &image)
{
    nodeMutable(level, index) = image;
}

} // namespace morph
