#include "integrity/tree_config.hh"

#include "common/check.hh"

namespace morph
{

CounterKind
TreeConfig::kindAt(unsigned level) const
{
    if (level == 0)
        return encryption;
    MORPH_CHECK(!treeLevels.empty());
    const std::size_t i = std::min<std::size_t>(level - 1,
                                                treeLevels.size() - 1);
    return treeLevels[i];
}

unsigned
TreeConfig::arityAt(unsigned level) const
{
    return counterArity(kindAt(level));
}

TreeConfig
TreeConfig::sgx()
{
    return {"SGX", CounterKind::SC8, {CounterKind::SC8}};
}

TreeConfig
TreeConfig::vault()
{
    return {"VAULT", CounterKind::SC64,
            {CounterKind::SC32, CounterKind::SC16}};
}

TreeConfig
TreeConfig::sc64()
{
    return {"SC-64", CounterKind::SC64, {CounterKind::SC64}};
}

TreeConfig
TreeConfig::sc128()
{
    return {"SC-128", CounterKind::SC128, {CounterKind::SC128}};
}

TreeConfig
TreeConfig::morph()
{
    return {"MorphCtr-128", CounterKind::Morph, {CounterKind::Morph}};
}

TreeConfig
TreeConfig::morphZccOnly()
{
    return {"MorphCtr-128-ZCC", CounterKind::MorphZccOnly,
            {CounterKind::MorphZccOnly}};
}

TreeConfig
TreeConfig::sc64Rebased()
{
    return {"SC-64+R", CounterKind::SC64Rebased,
            {CounterKind::SC64Rebased}};
}

TreeConfig
TreeConfig::bonsaiMacTree()
{
    return {"BMT-8", CounterKind::SC64, {CounterKind::SC8}};
}

} // namespace morph
