/**
 * @file
 * Functional Bonsai-style counter integrity tree (paper §II-A4).
 *
 * A counter tree protects the encryption counters against replay:
 * every 64 B counter entry carries a MAC computed over its contents
 * and a counter from its *parent* entry; the parent counter increments
 * whenever the child entry changes, so restoring a stale
 * {entry, MAC} pair fails verification against the advanced parent
 * counter. The root entry lives on-chip and is trusted.
 *
 * This class is the *functional* tree: it stores real counter images
 * in sparse per-level stores, computes real MACs, performs real
 * verification, and supports tamper/replay injection for tests and
 * demos. Write-back caching effects (when increments propagate) are
 * the timing model's concern (src/secmem/secure_memory_model.hh);
 * here every mutation propagates to the root immediately, which is
 * functionally equivalent and maximally conservative.
 */

#ifndef MORPH_INTEGRITY_INTEGRITY_TREE_HH
#define MORPH_INTEGRITY_INTEGRITY_TREE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/mac.hh"
#include "integrity/tree_geometry.hh"

namespace morph
{

/** Functional counter tree with real MAC chaining. */
class IntegrityTree
{
  public:
    /** Outcome of a counter bump for one data-line write. */
    struct BumpResult
    {
        /** New effective encryption counter for the written line. */
        std::uint64_t newCounter = 0;

        /** The encryption-counter entry overflowed. */
        bool overflowed = false;

        /** Data lines whose encryption counter changed and therefore
         *  need re-encryption (includes the written line on overflow). */
        std::vector<LineAddr> reencrypt;

        /** Overflow-reset events that occurred at tree levels >= 1. */
        unsigned treeOverflows = 0;

        /** MCR rebases that absorbed would-be overflows. */
        unsigned rebases = 0;
    };

    IntegrityTree(std::uint64_t mem_bytes, const TreeConfig &config,
                  const SipKey &mac_key);
    ~IntegrityTree();

    /** Current effective encryption counter of @p data_line. */
    std::uint64_t counterOf(LineAddr data_line);

    /**
     * Increment the encryption counter of @p data_line (one data
     * write), propagating entry updates and MAC recomputation to the
     * root.
     */
    BumpResult bumpCounter(LineAddr data_line);

    /**
     * Verify the MAC chain protecting @p data_line's encryption
     * counter, from its level-0 entry to the root.
     *
     * @retval true if every MAC on the path matches
     */
    bool verify(LineAddr data_line);

    /** Verify every materialized entry in the tree. */
    bool verifyAll();

    /** Raw image of a metadata entry (materializes it if absent). */
    const CachelineData &rawEntry(unsigned level, std::uint64_t index);

    /**
     * Overwrite a stored entry image, bypassing all protection — the
     * adversary interface used by tamper/replay tests and demos.
     */
    void injectEntry(unsigned level, std::uint64_t index,
                     const CachelineData &image);

    const TreeGeometry &geometry() const { return geom_; }

    /** Overflow-reset events observed at @p level since construction. */
    std::uint64_t overflowEvents(unsigned level) const;

    /** Number of materialized entries at @p level. */
    std::uint64_t materializedEntries(unsigned level) const;

  private:
    CachelineData &getEntry(unsigned level, std::uint64_t index);
    std::uint64_t parentCounter(unsigned level, std::uint64_t index);
    std::uint64_t entryMac(unsigned level, std::uint64_t index,
                           const CachelineData &image);
    void recomputeMac(unsigned level, std::uint64_t index);
    void propagateMutation(unsigned level, std::uint64_t index,
                           BumpResult &out);

    TreeGeometry geom_;
    MacEngine macEngine_;
    std::vector<std::unique_ptr<CounterFormat>> formats_; // per level
    std::vector<std::unordered_map<std::uint64_t, CachelineData>> store_;
    std::vector<std::uint64_t> overflows_; // per level
};

} // namespace morph

#endif // MORPH_INTEGRITY_INTEGRITY_TREE_HH
