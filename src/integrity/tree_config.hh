/**
 * @file
 * Per-level counter-organization schedules for integrity trees.
 *
 * A Bonsai-style counter tree is fully described by the counter
 * organization of its base (the encryption counters) and of each tree
 * level above it. The paper studies:
 *
 *   SGX       : 8-ary counters everywhere (commercial baseline)
 *   VAULT     : SC-64 encryption, SC-32 at level 1, SC-16 above
 *   SC-64     : SC-64 everywhere (the paper's aggressive baseline)
 *   SC-128    : SC-128 everywhere (naive high arity; Fig 5)
 *   MorphTree : MorphCtr-128 everywhere (the proposal)
 */

#ifndef MORPH_INTEGRITY_TREE_CONFIG_HH
#define MORPH_INTEGRITY_TREE_CONFIG_HH

#include <string>
#include <vector>

#include "counters/counter_factory.hh"

namespace morph
{

/** Counter-kind schedule for encryption counters + tree levels. */
struct TreeConfig
{
    std::string name;

    /** Organization of the encryption counters (tree level 0). */
    CounterKind encryption = CounterKind::SC64;

    /**
     * Organization of tree levels 1..N; the last entry repeats for all
     * higher levels (VAULT: {SC32, SC16} -> 32-ary L1, 16-ary L2+).
     */
    std::vector<CounterKind> treeLevels{CounterKind::SC64};

    /** Counter kind at @p level (0 = encryption counters). */
    CounterKind kindAt(unsigned level) const;

    /** Arity at @p level. */
    unsigned arityAt(unsigned level) const;

    // Named configurations from the paper.
    static TreeConfig sgx();
    static TreeConfig vault();
    static TreeConfig sc64();
    static TreeConfig sc128();
    static TreeConfig morph();
    static TreeConfig morphZccOnly();

    /** SC-64 with Minor Counter Rebasing at every level — the
     *  paper's §IV-1 observation that rebasing applies to existing
     *  split-counter designs, isolated from ZCC and the 128-arity. */
    static TreeConfig sc64Rebased();

    /** Bonsai Merkle MAC-tree timing model: 8-ary levels above SC-64
     *  encryption counters. Traffic-equivalent to a tree of MACs
     *  (8 x 64-bit tags per node, no counter overflows); the
     *  functional hash tree itself is integrity/mac_tree.hh. */
    static TreeConfig bonsaiMacTree();
};

} // namespace morph

#endif // MORPH_INTEGRITY_TREE_CONFIG_HH
