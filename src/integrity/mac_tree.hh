/**
 * @file
 * Bonsai-style Merkle MAC-tree (paper §VIII-B1 related work).
 *
 * The alternative integrity structure the paper compares against
 * conceptually: a tree of MACs rather than a tree of counters. Each
 * 64-byte node holds 8 x 64-bit child MACs, so the arity is fixed at
 * 8 regardless of the counter organization below — the structural
 * limitation that motivates counter trees: only 8 x 64-bit MACs fit
 * a cacheline, and 32-bit MACs (16-ary) are not secure enough.
 *
 * The tree is built over the encryption-counter entries (Bonsai
 * optimization: data freshness follows from counter freshness + data
 * MACs). Leaf MACs authenticate counter entries; interior MACs
 * authenticate child nodes; the root MAC lives on-chip.
 *
 * This class is functional (real hashes, real detection). For timing
 * experiments, a MAC-tree is traffic-equivalent to an 8-ary counter
 * tree with no overflows — use TreeConfig::bonsaiMacTree() with the
 * cycle model.
 */

#ifndef MORPH_INTEGRITY_MAC_TREE_HH
#define MORPH_INTEGRITY_MAC_TREE_HH

#include <unordered_map>
#include <vector>

#include "crypto/mac.hh"

namespace morph
{

/** Shape of a MAC-tree level. */
struct MacTreeLevel
{
    unsigned level;        ///< 1 = directly above the leaves
    std::uint64_t nodes;   ///< 64 B nodes in this level
    std::uint64_t bytes;   ///< nodes * 64
};

/** Functional 8-ary Merkle MAC-tree over leaf cachelines. */
class MacTree
{
  public:
    static constexpr unsigned arity = 8; ///< 8 x 64-bit MACs per node

    /**
     * @param leaves  number of protected leaf cachelines (e.g. the
     *                encryption-counter entries of a secure memory)
     * @param mac_key PRF key for every node level
     */
    MacTree(std::uint64_t leaves, const SipKey &mac_key);

    /**
     * Publish a new version of leaf @p index with contents @p image:
     * recomputes the leaf MAC and every ancestor hash up to the
     * on-chip root.
     */
    void updateLeaf(std::uint64_t index, const CachelineData &image);

    /**
     * Verify that @p image is the current version of leaf @p index
     * against the MAC path to the root.
     *
     * @retval true if every hash on the path matches
     */
    bool verifyLeaf(std::uint64_t index,
                    const CachelineData &image) const;

    /** Verify the internal consistency of every materialized node. */
    bool verifyAll() const;

    // ---- Adversary interface ----

    /** Raw image of an interior node (materializing if absent). */
    CachelineData nodeImage(unsigned level, std::uint64_t index) const;

    /** Overwrite a stored interior node, bypassing protection. */
    void injectNode(unsigned level, std::uint64_t index,
                    const CachelineData &image);

    /** Tree shape (levels above the leaves, including the root). */
    const std::vector<MacTreeLevel> &levels() const { return levels_; }

    /** Total tree bytes (root included, though it lives on-chip). */
    std::uint64_t treeBytes() const;

    std::uint64_t leaves() const { return leaves_; }

  private:
    /** Node image at (level, index); zeros if never materialized. */
    const CachelineData &node(unsigned level, std::uint64_t index) const;
    CachelineData &nodeMutable(unsigned level, std::uint64_t index);

    /** MAC of 64 bytes bound to (level, index). */
    std::uint64_t hashOf(unsigned level, std::uint64_t index,
                         const CachelineData &image) const;

    /** Read/write the 64-bit MAC slot @p slot of a node image. */
    static std::uint64_t slotOf(const CachelineData &image,
                                unsigned slot);
    static void setSlot(CachelineData &image, unsigned slot,
                        std::uint64_t value);

    std::uint64_t leaves_;
    MacEngine macEngine_;
    std::vector<MacTreeLevel> levels_;
    /** Interior node storage, per level (level - 1 indexes this). */
    mutable std::vector<std::unordered_map<std::uint64_t,
                                           CachelineData>> store_;
    /** The on-chip root MAC (hash of the single top node). */
    std::uint64_t rootMac_ = 0;
};

} // namespace morph

#endif // MORPH_INTEGRITY_MAC_TREE_HH
