/**
 * @file
 * Integrity-tree geometry: level sizes, arities, and address mapping.
 *
 * Level 0 holds the encryption counters (one per data cacheline,
 * arity counters per 64 B entry); each level above covers the entries
 * of the level below at that level's arity, until a level fits in a
 * single 64 B line — the root, held on-chip. This computes the tree
 * shapes of paper Fig 1 / Fig 17 / Table III and provides the physical
 * placement of metadata used by the timing model: the metadata region
 * sits directly above the protected data region, one contiguous slab
 * per level.
 */

#ifndef MORPH_INTEGRITY_TREE_GEOMETRY_HH
#define MORPH_INTEGRITY_TREE_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "integrity/tree_config.hh"

namespace morph
{

/** Shape of one metadata level. */
struct LevelInfo
{
    unsigned level;       ///< 0 = encryption counters, 1.. = tree
    CounterKind kind;     ///< counter organization of entries here
    unsigned arity;       ///< children covered per 64 B entry
    std::uint64_t entries; ///< number of 64 B entries in the level
    std::uint64_t bytes;   ///< entries * 64
    LineAddr baseLine;     ///< physical line address of entry 0
};

/** Geometry of a full secure-memory metadata layout. */
class TreeGeometry
{
  public:
    /**
     * @param mem_bytes protected data capacity (e.g. 16 GB)
     * @param config    per-level counter schedule
     */
    TreeGeometry(std::uint64_t mem_bytes, const TreeConfig &config);

    /** Protected data capacity in bytes. */
    std::uint64_t memBytes() const { return memBytes_; }

    /** Number of protected data cachelines. */
    std::uint64_t dataLines() const { return dataLines_; }

    /** All metadata levels, index = level (0 = encryption counters). */
    const std::vector<LevelInfo> &levels() const { return levels_; }

    /** Number of tree levels above the encryption counters,
     *  including the single-line root (paper Fig 17 counts). */
    unsigned treeLevels() const { return unsigned(levels_.size()) - 1; }

    /** Total bytes of encryption counters (level 0). */
    std::uint64_t encryptionBytes() const { return levels_[0].bytes; }

    /** Total bytes of tree levels 1..root (paper's "tree size"). */
    std::uint64_t treeBytes() const;

    /** Index of the level whose single entry is the on-chip root. */
    unsigned rootLevel() const { return unsigned(levels_.size()) - 1; }

    /** Entry index within @p level covering child entry @p child_index
     *  of the level below (or the data line, for level 0). */
    std::uint64_t
    parentIndex(unsigned level, std::uint64_t child_index) const
    {
        return child_index / levels_[level].arity;
    }

    /** Which counter slot within the parent entry covers the child. */
    unsigned
    childSlot(unsigned level, std::uint64_t child_index) const
    {
        return unsigned(child_index % levels_[level].arity);
    }

    /** Physical line address of entry @p index at @p level. */
    LineAddr
    lineOfEntry(unsigned level, std::uint64_t index) const
    {
        return levels_[level].baseLine + index;
    }

    /** Level and entry index of a metadata physical line address;
     *  returns false if the line is not metadata. */
    bool entryOfLine(LineAddr line, unsigned &level,
                     std::uint64_t &index) const;

    /** Total physical footprint (data + all metadata) in bytes. */
    std::uint64_t totalBytes() const;

    const TreeConfig &config() const { return config_; }

  private:
    std::uint64_t memBytes_;
    std::uint64_t dataLines_;
    TreeConfig config_;
    std::vector<LevelInfo> levels_;
};

} // namespace morph

#endif // MORPH_INTEGRITY_TREE_GEOMETRY_HH
