#include "integrity/integrity_tree.hh"


#include "common/check.hh"
#include "common/log.hh"
#include "common/prof.hh"

namespace morph
{

IntegrityTree::IntegrityTree(std::uint64_t mem_bytes,
                             const TreeConfig &config,
                             const SipKey &mac_key)
    : geom_(mem_bytes, config), macEngine_(mac_key)
{
    const auto &levels = geom_.levels();
    formats_.reserve(levels.size());
    store_.resize(levels.size());
    overflows_.assign(levels.size(), 0);
    for (const auto &info : levels)
        formats_.push_back(makeCounterFormat(info.kind));
}

IntegrityTree::~IntegrityTree() = default;

CachelineData &
IntegrityTree::getEntry(unsigned level, std::uint64_t index)
{
    MORPH_CHECK_LT(level, store_.size());
    MORPH_CHECK_LT(index, geom_.levels()[level].entries);

    auto &level_store = store_[level];
    auto it = level_store.find(index);
    if (it != level_store.end())
        return it->second;

    // Materialize a fresh all-zero entry. Its MAC must be consistent
    // from birth so verification of untouched regions succeeds.
    CachelineData image;
    formats_[level]->init(image);
    if (level != geom_.rootLevel())
        CounterFormat::setMac(image, entryMac(level, index, image));
    return level_store.emplace(index, image).first->second;
}

std::uint64_t
IntegrityTree::parentCounter(unsigned level, std::uint64_t index)
{
    const unsigned parent_level = level + 1;
    MORPH_CHECK_LE(parent_level, geom_.rootLevel());
    const std::uint64_t pidx = geom_.parentIndex(parent_level, index);
    const unsigned slot = geom_.childSlot(parent_level, index);
    return formats_[parent_level]->read(getEntry(parent_level, pidx),
                                        slot);
}

std::uint64_t
IntegrityTree::entryMac(unsigned level, std::uint64_t index,
                        const CachelineData &image)
{
    // MAC covers the entry contents (MAC field zeroed), bound to the
    // entry's physical line address and its parent counter.
    CachelineData payload = image;
    CounterFormat::setMac(payload, 0);
    return macEngine_.compute(geom_.lineOfEntry(level, index),
                              parentCounter(level, index), payload);
}

void
IntegrityTree::recomputeMac(unsigned level, std::uint64_t index)
{
    if (level == geom_.rootLevel())
        return; // the root is on-chip and needs no MAC
    CachelineData &image = getEntry(level, index);
    CounterFormat::setMac(image, entryMac(level, index, image));
}

void
IntegrityTree::propagateMutation(unsigned level, std::uint64_t index,
                                 BumpResult &out)
{
    if (level == geom_.rootLevel()) {
        return; // root updates are on-chip register writes
    }

    // Recursion nests one tree.propagate per level climbed.
    MORPH_PROF_SCOPE("tree.propagate");

    const unsigned parent_level = level + 1;
    const std::uint64_t pidx = geom_.parentIndex(parent_level, index);
    const unsigned slot = geom_.childSlot(parent_level, index);

    CachelineData &parent = getEntry(parent_level, pidx);
    const WriteResult res = formats_[parent_level]->increment(parent,
                                                              slot);
    if (res.rebase)
        ++out.rebases;
    if (res.overflow) {
        ++overflows_[parent_level];
        ++out.treeOverflows;
        // Every child in the reset range changed its protecting
        // counter; re-hash the materialized ones (this entry's own
        // MAC is recomputed below in any case).
        const std::uint64_t base = pidx * geom_.levels()[parent_level]
                                              .arity;
        for (unsigned c = res.reencBegin; c < res.reencEnd; ++c) {
            const std::uint64_t child = base + c;
            if (child == index || child >= geom_.levels()[level].entries)
                continue;
            if (store_[level].count(child))
                recomputeMac(level, child);
        }
    }

    // The parent entry changed: continue up before finalizing our MAC
    // (order is immaterial — counters at parent_level are final once
    // increment() returns — but doing it here keeps the invariant
    // "every stored MAC is consistent when the call stack unwinds").
    propagateMutation(parent_level, pidx, out);
    recomputeMac(level, index);
}

std::uint64_t
IntegrityTree::counterOf(LineAddr data_line)
{
    MORPH_CHECK_LT(data_line, geom_.dataLines());
    const std::uint64_t idx = geom_.parentIndex(0, data_line);
    const unsigned slot = geom_.childSlot(0, data_line);
    return formats_[0]->read(getEntry(0, idx), slot);
}

IntegrityTree::BumpResult
IntegrityTree::bumpCounter(LineAddr data_line)
{
    MORPH_PROF_SCOPE("tree.bump");
    MORPH_CHECK_LT(data_line, geom_.dataLines());
    const std::uint64_t idx = geom_.parentIndex(0, data_line);
    const unsigned slot = geom_.childSlot(0, data_line);

    BumpResult out;
    CachelineData &entry = getEntry(0, idx);
    const WriteResult res = formats_[0]->increment(entry, slot);
    if (res.rebase)
        ++out.rebases;
    if (res.overflow) {
        ++overflows_[0];
        out.overflowed = true;
        const std::uint64_t base = idx * geom_.levels()[0].arity;
        for (unsigned c = res.reencBegin; c < res.reencEnd; ++c) {
            const LineAddr child = base + c;
            if (child < geom_.dataLines())
                out.reencrypt.push_back(child);
        }
    }

    propagateMutation(0, idx, out);
    // Re-fetch: propagation can materialize level-0 siblings (tree
    // overflow re-hash), rehashing the store and invalidating `entry`.
    out.newCounter = formats_[0]->read(getEntry(0, idx), slot);
    return out;
}

bool
IntegrityTree::verify(LineAddr data_line)
{
    MORPH_PROF_SCOPE("tree.verify");
    MORPH_CHECK_LT(data_line, geom_.dataLines());
    std::uint64_t index = geom_.parentIndex(0, data_line);
    for (unsigned level = 0; level < geom_.rootLevel(); ++level) {
        const CachelineData &image = getEntry(level, index);
        const std::uint64_t stored = CounterFormat::mac(image);
        if (!MacEngine::equal(stored, entryMac(level, index, image)))
            return false;
        index = geom_.parentIndex(level + 1, index);
    }
    return true;
}

bool
IntegrityTree::verifyAll()
{
    for (unsigned level = 0; level < geom_.rootLevel(); ++level) {
        for (auto &kv : store_[level]) {
            const std::uint64_t stored = CounterFormat::mac(kv.second);
            if (!MacEngine::equal(stored,
                                  entryMac(level, kv.first, kv.second)))
                return false;
        }
    }
    return true;
}

const CachelineData &
IntegrityTree::rawEntry(unsigned level, std::uint64_t index)
{
    return getEntry(level, index);
}

void
IntegrityTree::injectEntry(unsigned level, std::uint64_t index,
                           const CachelineData &image)
{
    MORPH_CHECK_LT(level, store_.size());
    store_[level][index] = image;
}

std::uint64_t
IntegrityTree::overflowEvents(unsigned level) const
{
    MORPH_CHECK_LT(level, overflows_.size());
    return overflows_[level];
}

std::uint64_t
IntegrityTree::materializedEntries(unsigned level) const
{
    MORPH_CHECK_LT(level, store_.size());
    return store_[level].size();
}

} // namespace morph
