#include "integrity/tree_geometry.hh"

#include "common/log.hh"

namespace morph
{

TreeGeometry::TreeGeometry(std::uint64_t mem_bytes,
                           const TreeConfig &config)
    : memBytes_(mem_bytes), config_(config)
{
    if (mem_bytes == 0 || mem_bytes % lineBytes != 0)
        fatal("tree geometry: memory size must be a multiple of 64 B");
    dataLines_ = mem_bytes / lineBytes;

    // Level sizes: level 0 covers data lines; each level above covers
    // the entries of the level below, until one entry remains (root).
    std::uint64_t covered = dataLines_;
    unsigned level = 0;
    while (true) {
        LevelInfo info;
        info.level = level;
        info.kind = config_.kindAt(level);
        info.arity = counterArity(info.kind);
        info.entries = (covered + info.arity - 1) / info.arity;
        info.bytes = info.entries * lineBytes;
        info.baseLine = 0; // assigned below
        levels_.push_back(info);
        if (info.entries <= 1)
            break;
        covered = info.entries;
        ++level;
        if (level > 32)
            panic("tree geometry: runaway level recursion");
    }

    // Physical placement: metadata slabs immediately above the data.
    LineAddr next = dataLines_;
    for (auto &info : levels_) {
        info.baseLine = next;
        next += info.entries;
    }
}

std::uint64_t
TreeGeometry::treeBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < levels_.size(); ++i)
        total += levels_[i].bytes;
    return total;
}

std::uint64_t
TreeGeometry::totalBytes() const
{
    std::uint64_t total = memBytes_;
    for (const auto &info : levels_)
        total += info.bytes;
    return total;
}

bool
TreeGeometry::entryOfLine(LineAddr line, unsigned &level,
                          std::uint64_t &index) const
{
    for (const auto &info : levels_) {
        if (line >= info.baseLine && line < info.baseLine + info.entries) {
            level = info.level;
            index = line - info.baseLine;
            return true;
        }
    }
    return false;
}

} // namespace morph
