/**
 * @file
 * Factory for counter-cacheline formats by configuration name.
 */

#ifndef MORPH_COUNTERS_COUNTER_FACTORY_HH
#define MORPH_COUNTERS_COUNTER_FACTORY_HH

#include <memory>
#include <string>

#include "counters/counter_block.hh"

namespace morph
{

/** Identifiers for the counter organizations studied in the paper. */
enum class CounterKind
{
    SC8,          ///< SGX-like 8-ary split counters
    SC16,         ///< VAULT upper-level entries
    SC32,         ///< VAULT level-1 entries
    SC64,         ///< baseline split counters (Yan et al.)
    SC128,        ///< naive 128-ary split counters (3-bit minors)
    MorphZccOnly, ///< MorphCtr-128, rebasing disabled (Fig 11 ablation)
    Morph,        ///< MorphCtr-128, ZCC + rebasing (the full design)
    MorphSingleBase, ///< MorphCtr-128 with one shared base (footnote 5)
    SC64Rebased,  ///< SC-64 + Minor Counter Rebasing (paper §IV-1 note)
};

/** Construct the format object for @p kind. */
std::unique_ptr<CounterFormat> makeCounterFormat(CounterKind kind);

/** Arity of @p kind without constructing it. */
unsigned counterArity(CounterKind kind);

/** Short display name of @p kind. */
std::string counterKindName(CounterKind kind);

} // namespace morph

#endif // MORPH_COUNTERS_COUNTER_FACTORY_HH
