/**
 * @file
 * Minor Counter Rebasing (MCR) cacheline codec (paper Fig 13b).
 *
 * When more than 64 of the 128 counters are in use, the line switches
 * to a uniform double-base representation: two independent 7-bit bases
 * (one per set of 64 children, i.e. one per 4 KB page at the
 * encryption-counter level) and 128 uniform 3-bit minor counters. The
 * effective value of child i in set s is
 *
 *   ((major << 7) | base_s) + minor_i
 *
 * A saturated minor is handled by *rebasing*: base_s advances by the
 * smallest minor in the set and all minors shrink by that amount,
 * leaving every other child's effective value unchanged — no
 * re-encryption. Only when the smallest minor is zero (or a base
 * saturates) does a reset occur.
 *
 * Layout (bit offsets):
 *
 *   [0,1)     F format flag (1 = MCR/uniform)
 *   [1,50)    major counter (49 bits)
 *   [50,57)   base of set 0
 *   [57,64)   base of set 1
 *   [64,256)  minors of set 0 (64 x 3 bits)
 *   [256,448) minors of set 1 (64 x 3 bits)
 *   [448,512) MAC
 */

#ifndef MORPH_COUNTERS_MCR_CODEC_HH
#define MORPH_COUNTERS_MCR_CODEC_HH

#include <cstdint>

#include "common/types.hh"

namespace morph
{
namespace mcr
{

constexpr unsigned numCounters = 128;
constexpr unsigned setSize = 64;
constexpr unsigned numSets = 2;

constexpr unsigned fOffset = 0;
constexpr unsigned majorOffset = 1;
constexpr unsigned majorBits = 49;
constexpr unsigned baseBits = 7;
constexpr unsigned base0Offset = 50;
constexpr unsigned minorBits = 3;
constexpr unsigned minorFieldOffset = 64;
constexpr std::uint64_t minorMax = (1u << minorBits) - 1; // 7
constexpr std::uint64_t baseMax = (1u << baseBits) - 1;   // 127

/** True if the line's format flag selects MCR/uniform. */
bool isMcr(const CachelineData &line);

/**
 * Initialize an MCR image: major = @p major (49 bits), both bases =
 * @p base, all minors zero. Used when morphing from ZCC, where
 * major/base derive from the ZCC major's high/low bits.
 */
void init(CachelineData &line, std::uint64_t major, unsigned base);

/** Read the 49-bit major counter. */
std::uint64_t majorOf(const CachelineData &line);

/** Base of set @p set (0 or 1). */
unsigned base(const CachelineData &line, unsigned set);

/** Write the base of set @p set. */
void setBase(CachelineData &line, unsigned set, unsigned value);

/** Minor counter of child @p idx. */
std::uint64_t minorValue(const CachelineData &line, unsigned idx);

/** Write the minor counter of child @p idx. */
void setMinor(CachelineData &line, unsigned idx, std::uint64_t value);

/** Effective counter value of child @p idx. */
std::uint64_t effective(const CachelineData &line, unsigned idx);

/** Smallest minor within set @p set. */
std::uint64_t minMinor(const CachelineData &line, unsigned set);

/** Largest minor within set @p set. */
std::uint64_t maxMinor(const CachelineData &line, unsigned set);

/** Largest effective value across the whole line. */
std::uint64_t maxEffective(const CachelineData &line);

/** Number of children with non-zero minors. */
unsigned nonZeroCount(const CachelineData &line);

} // namespace mcr
} // namespace morph

#endif // MORPH_COUNTERS_MCR_CODEC_HH
