#include "counters/zcc_codec.hh"

#include "common/bitfield.hh"
#include "common/check.hh"

namespace morph
{
namespace zcc
{

// The decode-side accessors (count, rank, minorValue, setMinor …) are
// inline in zcc_codec.hh — they are the per-access hot path. The
// maintenance operations below run once per insert/overflow and stay
// out of line.

void
init(CachelineData &line, std::uint64_t major)
{
    line.fill(0);
    setMajor(line, major);
    writeBits(line, ctrSzOffset, ctrSzBits, sizeForCount(0));
}

void
setMajor(CachelineData &line, std::uint64_t major)
{
    MORPH_CHECK_EQ(major >> majorBits, 0u);
    writeBits(line, majorOffset, majorBits, major);
}

std::uint64_t
largestMinor(const CachelineData &line)
{
    const unsigned k = count(line);
    const unsigned size = ctrSz(line);
    std::uint64_t largest = 0;
    for (unsigned rank = 0; rank < k; ++rank) {
        const std::uint64_t v =
            readBitsNarrow(line, slotOffset(rank, size), size);
        if (v > largest)
            largest = v;
    }
    return largest;
}

bool
insertNonZero(CachelineData &line, unsigned idx)
{
    MORPH_CHECK_CONTEXT(line);
    MORPH_CHECK_LT(idx, numCounters);
    MORPH_CHECK(!isNonZero(line, idx));

    const unsigned k = count(line);
    MORPH_CHECK_LT(k, maxNonZero);
    const unsigned old_size = ctrSz(line);
    const unsigned new_size = sizeForCount(k + 1);
    const std::uint64_t new_max = (1ull << new_size) - 1;

    // Gather current values in rank order.
    std::uint64_t values[maxNonZero];
    for (unsigned rank = 0; rank < k; ++rank) {
        values[rank] = readBits(line, slotOffset(rank, old_size),
                                old_size);
        if (values[rank] > new_max)
            return false; // does not fit after the shrink -> overflow
    }

    // Splice the new counter (value 1) at its rank position.
    const unsigned new_rank = rankOf(line, idx);
    for (unsigned rank = k; rank > new_rank; --rank)
        values[rank] = values[rank - 1];
    values[new_rank] = 1;

    // Re-encode at the new width. Clear the payload first so stale
    // high slots from the wider encoding cannot survive.
    setBit(line, bvOffset + idx, true);
    writeBits(line, ctrSzOffset, ctrSzBits, new_size);
    for (unsigned bit = 0; bit < payloadBits; bit += 64)
        writeBits(line, payloadOffset + bit, 64, 0);
    for (unsigned rank = 0; rank <= k; ++rank)
        writeBits(line, slotOffset(rank, new_size), new_size,
                  values[rank]);
    return true;
}

bool
isWellFormed(const CachelineData &line)
{
    if (!isZcc(line))
        return false;
    const unsigned live = count(line);
    if (live > maxNonZero)
        return false;
    return ctrSz(line) == sizeForCount(live);
}

void
resetAll(CachelineData &line, std::uint64_t new_major)
{
    for (unsigned bit = 0; bit < bvBits; bit += 64)
        writeBits(line, bvOffset + bit, 64, 0);
    for (unsigned bit = 0; bit < payloadBits; bit += 64)
        writeBits(line, payloadOffset + bit, 64, 0);
    writeBits(line, ctrSzOffset, ctrSzBits, sizeForCount(0));
    setBit(line, fOffset, false);
    setMajor(line, new_major);
}

} // namespace zcc
} // namespace morph
