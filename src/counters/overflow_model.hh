/**
 * @file
 * Writes-to-overflow characterization of counter formats.
 *
 * Reproduces the analytical experiments of paper Figs 6 and 10: given
 * a counter organization and a fraction of the counters in a line
 * receiving (uniform round-robin) writes, how many writes does the
 * line tolerate before its first overflow reset?
 */

#ifndef MORPH_COUNTERS_OVERFLOW_MODEL_HH
#define MORPH_COUNTERS_OVERFLOW_MODEL_HH

#include <cstdint>

#include "counters/counter_block.hh"

namespace morph
{

/**
 * Count writes until the first overflow of a fresh counter line when
 * @p used of its children are written round-robin (the paper's
 * "uniform writes to the fraction of counters used" assumption).
 *
 * @param format   counter organization under test
 * @param used     number of distinct children written (1..arity)
 * @param max_writes safety cap; returns the cap if no overflow by then
 * @return number of writes completed when the first overflow occurs
 *         (the overflowing write is included in the count)
 */
std::uint64_t writesToOverflow(const CounterFormat &format, unsigned used,
                               std::uint64_t max_writes = 1ull << 24);

/**
 * Worst-case adversarial writes-to-overflow for MorphCtr-128 (§V of
 * the paper): write once to @p primed children to shrink the ZCC
 * width, then hammer a single child. Returns total writes at the
 * first overflow.
 */
std::uint64_t adversarialWritesToOverflow(const CounterFormat &format,
                                          unsigned primed);

} // namespace morph

#endif // MORPH_COUNTERS_OVERFLOW_MODEL_HH
