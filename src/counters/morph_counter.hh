/**
 * @file
 * Morphable Counters: 128 counters per cacheline (the paper's core).
 *
 * A morphable counter line dynamically switches representation based
 * on usage:
 *
 *  - ZCC (zcc_codec.hh) while at most 64 children are non-zero:
 *    utility-based widths give hot counters up to 16 bits, making
 *    sparse usage (typical of integrity-tree levels) overflow-tolerant.
 *
 *  - MCR (mcr_codec.hh) once more than 64 children are in use:
 *    uniform 3-bit minors with per-set rebasing absorb the uniform
 *    write patterns of streaming workloads without re-encryption.
 *
 * The `rebasing` configuration flag selects between the full design
 * (ZCC+Rebasing, the paper's MorphCtr-128) and the ZCC-only ablation
 * of Fig 11, in which the dense representation resets on overflow
 * instead of rebasing.
 *
 * Security invariant maintained by every path: the effective value of
 * each child is strictly increasing across writes, and any mutation
 * that changes a non-written child's effective value reports that
 * child in the WriteResult re-encryption range.
 */

#ifndef MORPH_COUNTERS_MORPH_COUNTER_HH
#define MORPH_COUNTERS_MORPH_COUNTER_HH

#include "counters/counter_block.hh"

namespace morph
{

/** MorphCtr-128 format (ZCC + optional MCR rebasing). */
class MorphableCounterFormat : public CounterFormat
{
  public:
    /**
     * @param rebasing    enable Minor Counter Rebasing (paper §IV)
     * @param double_base two independent 7-bit bases, one per 64-child
     *        set (one per 4 KB page at the encryption level). Pass
     *        false for the single-base variant the paper recommends
     *        for page sizes other than 4 KB (its footnote 5): both
     *        base fields move together and rebasing considers all 128
     *        minors at once.
     */
    explicit MorphableCounterFormat(bool rebasing = true,
                                    bool double_base = true)
        : rebasing_(rebasing), doubleBase_(double_base)
    {}

    unsigned arity() const override { return 128; }
    void init(CachelineData &line) const override;
    std::uint64_t read(const CachelineData &line,
                       unsigned idx) const override;
    WriteResult increment(CachelineData &line, unsigned idx) const override;
    unsigned nonZeroCount(const CachelineData &line) const override;

    const char *
    name() const override
    {
        if (!rebasing_)
            return "MorphCtr-128-ZCC";
        return doubleBase_ ? "MorphCtr-128" : "MorphCtr-128-SB";
    }

    /** True while the line is in the sparse ZCC representation. */
    bool inZccFormat(const CachelineData &line) const;

    /**
     * Structural validity of a (possibly attacker-supplied) image.
     * MCR images are fixed-layout and always decodable; ZCC images
     * must pass zcc::isWellFormed() or a forged Ctr-Sz could index
     * outside the payload. Controllers decoding untrusted lines call
     * this after MAC verification, before read()/increment().
     */
    bool wellFormed(const CachelineData &line) const;

    bool rebasingEnabled() const { return rebasing_; }
    bool doubleBaseEnabled() const { return doubleBase_; }

  private:
    WriteResult fullReset(CachelineData &line) const;
    WriteResult convertToMcr(CachelineData &line, unsigned idx) const;
    WriteResult incrementZcc(CachelineData &line, unsigned idx) const;
    WriteResult incrementMcr(CachelineData &line, unsigned idx) const;

    bool rebasing_;
    bool doubleBase_;
};

} // namespace morph

#endif // MORPH_COUNTERS_MORPH_COUNTER_HH
