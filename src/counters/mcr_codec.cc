#include "counters/mcr_codec.hh"

#include <algorithm>
#include "common/bitfield.hh"
#include "common/check.hh"

namespace morph
{
namespace mcr
{

namespace
{

unsigned
minorOffset(unsigned idx)
{
    return minorFieldOffset + idx * minorBits;
}

} // namespace

bool
isMcr(const CachelineData &line)
{
    return testBit(line, fOffset);
}

void
init(CachelineData &line, std::uint64_t major, unsigned base_value)
{
    line.fill(0);
    setBit(line, fOffset, true);
    MORPH_CHECK_EQ(major >> majorBits, 0u);
    writeBits(line, majorOffset, majorBits, major);
    setBase(line, 0, base_value);
    setBase(line, 1, base_value);
}

std::uint64_t
majorOf(const CachelineData &line)
{
    return readBits(line, majorOffset, majorBits);
}

unsigned
base(const CachelineData &line, unsigned set)
{
    MORPH_CHECK_LT(set, numSets);
    return unsigned(readBits(line, base0Offset + set * baseBits,
                             baseBits));
}

void
setBase(CachelineData &line, unsigned set, unsigned value)
{
    MORPH_CHECK_LT(set, numSets);
    MORPH_CHECK_LE(value, baseMax);
    writeBits(line, base0Offset + set * baseBits, baseBits, value);
}

std::uint64_t
minorValue(const CachelineData &line, unsigned idx)
{
    MORPH_CHECK_LT(idx, numCounters);
    return readBits(line, minorOffset(idx), minorBits);
}

void
setMinor(CachelineData &line, unsigned idx, std::uint64_t value)
{
    MORPH_CHECK_LT(idx, numCounters);
    MORPH_CHECK_LE(value, minorMax);
    writeBits(line, minorOffset(idx), minorBits, value);
}

std::uint64_t
effective(const CachelineData &line, unsigned idx)
{
    const unsigned set = idx / setSize;
    return ((majorOf(line) << baseBits) | base(line, set)) +
           minorValue(line, idx);
}

std::uint64_t
minMinor(const CachelineData &line, unsigned set)
{
    MORPH_CHECK_LT(set, numSets);
    std::uint64_t lowest = minorMax;
    for (unsigned i = 0; i < setSize; ++i)
        lowest = std::min(lowest, minorValue(line, set * setSize + i));
    return lowest;
}

std::uint64_t
maxMinor(const CachelineData &line, unsigned set)
{
    MORPH_CHECK_LT(set, numSets);
    std::uint64_t highest = 0;
    for (unsigned i = 0; i < setSize; ++i)
        highest = std::max(highest, minorValue(line, set * setSize + i));
    return highest;
}

std::uint64_t
maxEffective(const CachelineData &line)
{
    const std::uint64_t major = majorOf(line);
    std::uint64_t best = 0;
    for (unsigned set = 0; set < numSets; ++set) {
        const std::uint64_t base_part =
            (major << baseBits) | base(line, set);
        best = std::max(best, base_part + maxMinor(line, set));
    }
    return best;
}

unsigned
nonZeroCount(const CachelineData &line)
{
    unsigned count = 0;
    for (unsigned i = 0; i < numCounters; ++i)
        count += minorValue(line, i) != 0;
    return count;
}

} // namespace mcr
} // namespace morph
