#include "counters/counter_factory.hh"

#include "common/log.hh"
#include "counters/morph_counter.hh"
#include "counters/rebased_split_counter.hh"
#include "counters/split_counter.hh"

namespace morph
{

std::unique_ptr<CounterFormat>
makeCounterFormat(CounterKind kind)
{
    switch (kind) {
      case CounterKind::SC8:
        return std::make_unique<SplitCounterFormat>(8);
      case CounterKind::SC16:
        return std::make_unique<SplitCounterFormat>(16);
      case CounterKind::SC32:
        return std::make_unique<SplitCounterFormat>(32);
      case CounterKind::SC64:
        return std::make_unique<SplitCounterFormat>(64);
      case CounterKind::SC128:
        return std::make_unique<SplitCounterFormat>(128);
      case CounterKind::MorphZccOnly:
        return std::make_unique<MorphableCounterFormat>(false);
      case CounterKind::Morph:
        return std::make_unique<MorphableCounterFormat>(true);
      case CounterKind::MorphSingleBase:
        return std::make_unique<MorphableCounterFormat>(true, false);
      case CounterKind::SC64Rebased:
        return std::make_unique<RebasedSplitCounterFormat>(64);
    }
    panic("unknown counter kind %d", int(kind));
}

unsigned
counterArity(CounterKind kind)
{
    switch (kind) {
      case CounterKind::SC8:
        return 8;
      case CounterKind::SC16:
        return 16;
      case CounterKind::SC32:
        return 32;
      case CounterKind::SC64:
      case CounterKind::SC64Rebased:
        return 64;
      case CounterKind::SC128:
      case CounterKind::MorphZccOnly:
      case CounterKind::Morph:
      case CounterKind::MorphSingleBase:
        return 128;
    }
    panic("unknown counter kind %d", int(kind));
}

std::string
counterKindName(CounterKind kind)
{
    switch (kind) {
      case CounterKind::SC8:
        return "SC-8";
      case CounterKind::SC16:
        return "SC-16";
      case CounterKind::SC32:
        return "SC-32";
      case CounterKind::SC64:
        return "SC-64";
      case CounterKind::SC128:
        return "SC-128";
      case CounterKind::MorphZccOnly:
        return "MorphCtr-128-ZCC";
      case CounterKind::Morph:
        return "MorphCtr-128";
      case CounterKind::MorphSingleBase:
        return "MorphCtr-128-SB";
      case CounterKind::SC64Rebased:
        return "SC-64+R";
    }
    panic("unknown counter kind %d", int(kind));
}

} // namespace morph
