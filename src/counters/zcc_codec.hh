/**
 * @file
 * Zero Counter Compression (ZCC) cacheline codec (paper Fig 8).
 *
 * ZCC packs 128 logical counters into one line by storing only the
 * non-zero minor counters: a 128-bit bit-vector marks which children
 * are non-zero and the 256-bit payload is divided evenly among them.
 * With k non-zero counters each gets sizeForCount(k) bits:
 *
 *   k <= 16 -> 16b,  <= 32 -> 8b,  <= 36 -> 7b,
 *   k <= 42 ->  6b,  <= 51 -> 5b,  <= 64 -> 4b.
 *
 * Layout (bit offsets; bit 0 = LSB of byte 0):
 *
 *   [0,1)    F format flag (0 = ZCC)
 *   [1,7)    Ctr-Sz: current per-counter width
 *   [7,64)   major counter (57 bits; effective values use <= 56)
 *   [64,192) non-zero bit-vector (128 bits)
 *   [192,448) packed non-zero counters, rank order
 *   [448,512) MAC
 *
 * Deviation from Fig 8: the paper draws the format field after the
 * major counter; we place the F bit at a fixed position (bit 0) shared
 * with the MCR layout so a decoder can dispatch on it before parsing.
 * Field widths and semantics are unchanged.
 */

#ifndef MORPH_COUNTERS_ZCC_CODEC_HH
#define MORPH_COUNTERS_ZCC_CODEC_HH

#include <cstdint>

#include "common/types.hh"

namespace morph
{
namespace zcc
{

constexpr unsigned numCounters = 128;
constexpr unsigned maxNonZero = 64;

constexpr unsigned fOffset = 0;
constexpr unsigned ctrSzOffset = 1;
constexpr unsigned ctrSzBits = 6;
constexpr unsigned majorOffset = 7;
constexpr unsigned majorBits = 57;
constexpr unsigned bvOffset = 64;
constexpr unsigned bvBits = 128;
constexpr unsigned payloadOffset = 192;
constexpr unsigned payloadBits = 256;

/** Per-counter width (bits) when @p k counters are non-zero (k<=64). */
unsigned sizeForCount(unsigned k);

/** True if the line's format flag selects ZCC. */
bool isZcc(const CachelineData &line);

/** Initialize to the all-zero ZCC state (major = given value). */
void init(CachelineData &line, std::uint64_t major = 0);

/** Read the 57-bit major counter. */
std::uint64_t majorOf(const CachelineData &line);

/** Write the 57-bit major counter. */
void setMajor(CachelineData &line, std::uint64_t major);

/** Stored Ctr-Sz field. */
unsigned ctrSz(const CachelineData &line);

/** Number of non-zero counters (bit-vector popcount). */
unsigned count(const CachelineData &line);

/** True if child @p idx has a non-zero minor. */
bool isNonZero(const CachelineData &line, unsigned idx);

/** Minor counter of child @p idx (0 when its bit is clear). */
std::uint64_t minorValue(const CachelineData &line, unsigned idx);

/** Largest minor counter in the line (0 if none set). */
std::uint64_t largestMinor(const CachelineData &line);

/**
 * Overwrite the minor of an already-non-zero child. @p value must be
 * non-zero and fit in the current counter size.
 */
void setMinor(CachelineData &line, unsigned idx, std::uint64_t value);

/**
 * Make child @p idx non-zero with value 1, re-packing counters to the
 * (possibly smaller) width for the new population.
 *
 * @retval false if some existing counter does not fit the new width —
 *         the line is left unmodified and the caller must reset
 * @pre  child @p idx is currently zero and count() < 64
 */
bool insertNonZero(CachelineData &line, unsigned idx);

/**
 * Overflow reset: clear the bit-vector and all minors, set the major
 * counter to @p new_major (callers pass max-effective-value + 1 to
 * guarantee counter-value monotonicity).
 */
void resetAll(CachelineData &line, std::uint64_t new_major);

/**
 * Structural validity of a (possibly attacker-supplied) ZCC image:
 * the format flag selects ZCC, at most 64 counters are live, and the
 * stored Ctr-Sz matches the live population. Decoders must gate on
 * this (after MAC verification) before interpreting fields — a forged
 * Ctr-Sz would otherwise index past the payload.
 */
bool isWellFormed(const CachelineData &line);

} // namespace zcc
} // namespace morph

#endif // MORPH_COUNTERS_ZCC_CODEC_HH
