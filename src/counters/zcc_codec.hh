/**
 * @file
 * Zero Counter Compression (ZCC) cacheline codec (paper Fig 8).
 *
 * ZCC packs 128 logical counters into one line by storing only the
 * non-zero minor counters: a 128-bit bit-vector marks which children
 * are non-zero and the 256-bit payload is divided evenly among them.
 * With k non-zero counters each gets sizeForCount(k) bits:
 *
 *   k <= 16 -> 16b,  <= 32 -> 8b,  <= 36 -> 7b,
 *   k <= 42 ->  6b,  <= 51 -> 5b,  <= 64 -> 4b.
 *
 * Layout (bit offsets; bit 0 = LSB of byte 0):
 *
 *   [0,1)    F format flag (0 = ZCC)
 *   [1,7)    Ctr-Sz: current per-counter width
 *   [7,64)   major counter (57 bits; effective values use <= 56)
 *   [64,192) non-zero bit-vector (128 bits)
 *   [192,448) packed non-zero counters, rank order
 *   [448,512) MAC
 *
 * Deviation from Fig 8: the paper draws the format field after the
 * major counter; we place the F bit at a fixed position (bit 0) shared
 * with the MCR layout so a decoder can dispatch on it before parsing.
 * Field widths and semantics are unchanged.
 */

#ifndef MORPH_COUNTERS_ZCC_CODEC_HH
#define MORPH_COUNTERS_ZCC_CODEC_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/bitfield.hh"
#include "common/check.hh"
#include "common/types.hh"

namespace morph
{
namespace zcc
{

constexpr unsigned numCounters = 128;
constexpr unsigned maxNonZero = 64;

constexpr unsigned fOffset = 0;
constexpr unsigned ctrSzOffset = 1;
constexpr unsigned ctrSzBits = 6;
constexpr unsigned majorOffset = 7;
constexpr unsigned majorBits = 57;
constexpr unsigned bvOffset = 64;
constexpr unsigned bvBits = 128;
constexpr unsigned payloadOffset = 192;
constexpr unsigned payloadBits = 256;

// The bit-vector occupies bits [64, 192): exactly words 1 and 2 of
// the line's 64-bit word view (common/bitfield.hh). The decode hot
// path below loads those two words once and answers membership, rank
// and count questions with masks and hardware popcount — no per-rank
// loops anywhere. The accessors are defined inline here because they
// sit under every counter read the simulator performs; call overhead
// was the dominant cost (docs/PERFORMANCE.md).
static_assert(bvOffset == 64 && bvBits == 128,
              "word-level ZCC decode assumes the bit-vector fills "
              "words 1 and 2 exactly");
constexpr unsigned bvWord = bvOffset / 64;

/**
 * §III width schedule as a direct lookup: widthForCount[k] is the
 * per-counter width when k counters are live. The bucket boundaries
 * are cross-checked by morphlint rule 1 and the morphverify
 * ZCC-schedule invariant.
 */
inline constexpr std::array<std::uint8_t, maxNonZero + 1>
    widthForCount = [] {
        std::array<std::uint8_t, maxNonZero + 1> t{};
        for (unsigned k = 0; k <= maxNonZero; ++k) {
            t[k] = k <= 16   ? 16
                   : k <= 32 ? 8
                   : k <= 36 ? 7
                   : k <= 42 ? 6
                   : k <= 51 ? 5
                             : 4;
        }
        return t;
    }();

/** Per-counter width (bits) when @p k counters are non-zero (k<=64). */
inline unsigned
sizeForCount(unsigned k)
{
    MORPH_CHECK_LE(k, maxNonZero);
    return widthForCount[k];
}

/**
 * Rank of @p idx given the two bit-vector words: set bits strictly
 * below idx. Branch-free: `ext` is all-ones exactly when idx >= 64, so
 * the low word saturates to full population and the high word is
 * masked by the intra-word prefix (and vice versa below 64).
 */
inline unsigned
bvRank(std::uint64_t lo, std::uint64_t hi, unsigned idx)
{
    const std::uint64_t prefix = (std::uint64_t(1) << (idx & 63)) - 1;
    const std::uint64_t ext = std::uint64_t(0) - std::uint64_t(idx >> 6);
    return unsigned(std::popcount(lo & (prefix | ext)) +
                    std::popcount(hi & (prefix & ext)));
}

/** True if the line's format flag selects ZCC. */
inline bool
isZcc(const CachelineData &line)
{
    return !testBit(line, fOffset);
}

/** Read the 57-bit major counter. */
inline std::uint64_t
majorOf(const CachelineData &line)
{
    return readBits(line, majorOffset, majorBits);
}

/** Write the 57-bit major counter. */
void setMajor(CachelineData &line, std::uint64_t major);

/** Initialize to the all-zero ZCC state (major = given value). */
void init(CachelineData &line, std::uint64_t major = 0);

/** Stored Ctr-Sz field. */
inline unsigned
ctrSz(const CachelineData &line)
{
    return unsigned(readBits(line, ctrSzOffset, ctrSzBits));
}

/** Number of non-zero counters (bit-vector popcount). */
inline unsigned
count(const CachelineData &line)
{
    return unsigned(std::popcount(loadWord(line, bvWord)) +
                    std::popcount(loadWord(line, bvWord + 1)));
}

/** True if child @p idx has a non-zero minor. */
inline bool
isNonZero(const CachelineData &line, unsigned idx)
{
    MORPH_CHECK_LT(idx, numCounters);
    return (loadWord(line, bvWord + (idx >> 6)) >> (idx & 63)) & 1;
}

/** Rank of child @p idx: number of set bits strictly below it. */
inline unsigned
rankOf(const CachelineData &line, unsigned idx)
{
    return bvRank(loadWord(line, bvWord), loadWord(line, bvWord + 1),
                  idx);
}

/** Bit offset of the rank-th packed counter at width @p size. */
inline unsigned
slotOffset(unsigned rank, unsigned size)
{
    return payloadOffset + rank * size;
}

/** Minor counter of child @p idx (0 when its bit is clear). */
inline std::uint64_t
minorValue(const CachelineData &line, unsigned idx)
{
    MORPH_CHECK_LT(idx, numCounters);
    // One pass over the two bit-vector words answers both the
    // membership test and the rank; ctrSz and the slot read touch at
    // most three more words.
    const std::uint64_t lo = loadWord(line, bvWord);
    const std::uint64_t hi = loadWord(line, bvWord + 1);
    const std::uint64_t word = (idx >> 6) ? hi : lo;
    const std::uint64_t present = (word >> (idx & 63)) & 1;
    const unsigned rank = bvRank(lo, hi, idx);
    const unsigned size = ctrSz(line);
    // Branchless: always read the rank-th slot and mask by membership.
    // Safe even when the bit is clear — rank <= count and every width
    // bucket keeps count * size <= payloadBits, so the speculative read
    // ends at bit slotOffset(count, size) + size <= 448 + 16 < 512
    // (and the 32-bit narrow-read window ends at byte 60 < 64).
    const std::uint64_t raw =
        readBitsNarrow(line, slotOffset(rank, size), size);
    return raw & (std::uint64_t(0) - present);
}

/**
 * Decode every minor counter of the line into @p out (zeros for clear
 * bits). Walks the bit-vector with countr_zero and reads the packed
 * slots sequentially, so a full-line decode is one pass over the set
 * bits instead of numCounters independent rank computations — this is
 * the unit of work verification and re-encoding perform.
 */
inline void
decodeAll(const CachelineData &line, std::uint64_t (&out)[numCounters])
{
    for (unsigned i = 0; i < numCounters; ++i)
        out[i] = 0;
    const unsigned size = ctrSz(line);
    unsigned offset = payloadOffset;
    for (unsigned w = 0; w < bvBits / 64; ++w) {
        std::uint64_t bv = loadWord(line, bvWord + w);
        while (bv) {
            const unsigned idx =
                64 * w + unsigned(std::countr_zero(bv));
            out[idx] = readBitsNarrow(line, offset, size);
            offset += size;
            bv &= bv - 1;
        }
    }
}

/** Largest minor counter in the line (0 if none set). */
std::uint64_t largestMinor(const CachelineData &line);

/**
 * Overwrite the minor of an already-non-zero child. @p value must be
 * non-zero and fit in the current counter size.
 */
inline void
setMinor(CachelineData &line, unsigned idx, std::uint64_t value)
{
    // Debug-only hex-dump registration: this is the per-increment hot
    // path and the RAII context costs two TLS list updates per call.
    // The value/membership checks below stay on in release.
    // Hot-path preconditions are debug-grade here, matching the
    // bitfield primitives themselves: setMinor sits under every
    // counter increment and the membership/value-fit loads+branches
    // are measurable. Maintenance ops (insertNonZero, setMajor) keep
    // their always-on checks.
    MORPH_DCHECK_CONTEXT(line);
    MORPH_DCHECK(isNonZero(line, idx));
    const unsigned size = ctrSz(line);
    MORPH_DCHECK(value != 0 && (size == 64 || (value >> size) == 0));
    // The aligned word RMW beats the unaligned 32-bit window for
    // writes: successive slot writes partially overlap in the byte
    // view, and the word view keeps store-to-load forwarding exact.
    writeBits(line, slotOffset(rankOf(line, idx), size), size, value);
}

/**
 * Make child @p idx non-zero with value 1, re-packing counters to the
 * (possibly smaller) width for the new population.
 *
 * @retval false if some existing counter does not fit the new width —
 *         the line is left unmodified and the caller must reset
 * @pre  child @p idx is currently zero and count() < 64
 */
bool insertNonZero(CachelineData &line, unsigned idx);

/**
 * Overflow reset: clear the bit-vector and all minors, set the major
 * counter to @p new_major (callers pass max-effective-value + 1 to
 * guarantee counter-value monotonicity).
 */
void resetAll(CachelineData &line, std::uint64_t new_major);

/**
 * Structural validity of a (possibly attacker-supplied) ZCC image:
 * the format flag selects ZCC, at most 64 counters are live, and the
 * stored Ctr-Sz matches the live population. Decoders must gate on
 * this (after MAC verification) before interpreting fields — a forged
 * Ctr-Sz would otherwise index past the payload.
 */
bool isWellFormed(const CachelineData &line);

} // namespace zcc
} // namespace morph

#endif // MORPH_COUNTERS_ZCC_CODEC_HH
