#include "counters/rebased_split_counter.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/check.hh"
#include "common/log.hh"

namespace morph
{

RebasedSplitCounterFormat::RebasedSplitCounterFormat(unsigned arity)
    : arity_(arity)
{
    if (arity == 0 || minorFieldBits % arity != 0)
        fatal("rebased split counter: arity %u does not divide 384",
              arity);
    minorBits_ = minorFieldBits / arity;
    if (minorBits_ > 56)
        fatal("rebased split counter: oversized minors");
    minorMax_ = (1ull << minorBits_) - 1;
    name_ = "SC-" + std::to_string(arity) + "+R";
}

void
RebasedSplitCounterFormat::init(CachelineData &line) const
{
    line.fill(0);
}

std::uint64_t
RebasedSplitCounterFormat::combinedBase(const CachelineData &line) const
{
    return (readBits(line, majorOffset, majorBits) << baseBits) |
           readBits(line, baseOffset, baseBits);
}

void
RebasedSplitCounterFormat::setCombinedBase(CachelineData &line,
                                           std::uint64_t value) const
{
    // major + base span exactly 64 bits; a 64-bit combined value
    // always fits (and cannot wrap within any system lifetime).
    writeBits(line, baseOffset, baseBits, value & ((1u << baseBits) - 1));
    writeBits(line, majorOffset, majorBits, value >> baseBits);
}

std::uint64_t
RebasedSplitCounterFormat::minor(const CachelineData &line,
                                 unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity_);
    return readBits(line, minorOffset(idx), minorBits_);
}

std::uint64_t
RebasedSplitCounterFormat::read(const CachelineData &line,
                                unsigned idx) const
{
    return combinedBase(line) + minor(line, idx);
}

WriteResult
RebasedSplitCounterFormat::increment(CachelineData &line,
                                     unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity_);
    WriteResult result;

    const std::uint64_t value = minor(line, idx);
    if (value < minorMax_) {
        writeBits(line, minorOffset(idx), minorBits_, value + 1);
        return result;
    }

    // Saturated: rebase if every minor is non-zero.
    std::uint64_t smallest = minorMax_;
    std::uint64_t largest = 0;
    for (unsigned i = 0; i < arity_; ++i) {
        const std::uint64_t v = minor(line, i);
        smallest = std::min(smallest, v);
        largest = std::max(largest, v);
    }

    if (smallest > 0) {
        setCombinedBase(line, combinedBase(line) + smallest);
        for (unsigned i = 0; i < arity_; ++i)
            writeBits(line, minorOffset(i), minorBits_,
                      minor(line, i) - smallest);
        writeBits(line, minorOffset(idx), minorBits_,
                  minor(line, idx) + 1);
        result.rebase = true;
        return result;
    }

    // A zero minor blocks rebasing: reset, advancing the combined
    // base past every old effective value.
    result.overflow = true;
    result.reencBegin = 0;
    result.reencEnd = std::uint16_t(arity_);
    result.usedBefore = std::uint16_t(nonZeroCount(line));
    setCombinedBase(line, combinedBase(line) + largest + 1);
    for (unsigned i = 0; i < arity_; ++i)
        writeBits(line, minorOffset(i), minorBits_, 0);
    return result;
}

unsigned
RebasedSplitCounterFormat::nonZeroCount(const CachelineData &line) const
{
    unsigned count = 0;
    for (unsigned i = 0; i < arity_; ++i)
        count += minor(line, i) != 0;
    return count;
}

} // namespace morph
