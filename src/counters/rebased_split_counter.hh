/**
 * @file
 * Split counters with Minor Counter Rebasing: SC-n+R.
 *
 * The paper notes (§IV-1) that "Minor Counter Rebasing as described
 * is applicable to all existing counter designs up to 64 counters per
 * cacheline" — this format is that application: the classic SC-n
 * layout with 7 bits of the major field reinterpreted as a rebasing
 * base.
 *
 *   | major (57b) | base (7b) | n minors (384b) | MAC (64b) |
 *
 * The effective value of child i is ((major << 7) | base) + minor_i.
 * A saturated minor rebases when every minor is non-zero; otherwise
 * the line resets with the combined major/base advanced past the
 * largest effective value (no special base-overflow case: major and
 * base are one 64-bit quantity split across two fields).
 *
 * SC-64+R isolates the rebasing contribution of MorphCtr-128 from its
 * ZCC and arity contributions (see bench/abl_controller_options).
 */

#ifndef MORPH_COUNTERS_REBASED_SPLIT_COUNTER_HH
#define MORPH_COUNTERS_REBASED_SPLIT_COUNTER_HH

#include <string>

#include "counters/counter_block.hh"

namespace morph
{

/** SC-n with rebasing (n must divide 384; minors of 384/n bits). */
class RebasedSplitCounterFormat : public CounterFormat
{
  public:
    explicit RebasedSplitCounterFormat(unsigned arity);

    unsigned arity() const override { return arity_; }
    void init(CachelineData &line) const override;
    std::uint64_t read(const CachelineData &line,
                       unsigned idx) const override;
    WriteResult increment(CachelineData &line, unsigned idx) const override;
    unsigned nonZeroCount(const CachelineData &line) const override;
    const char *name() const override { return name_.c_str(); }

    unsigned minorBits() const { return minorBits_; }

    /** Combined (major << 7) | base value. */
    std::uint64_t combinedBase(const CachelineData &line) const;

  private:
    static constexpr unsigned majorOffset = 0;
    static constexpr unsigned majorBits = 57;
    static constexpr unsigned baseOffset = 57;
    static constexpr unsigned baseBits = 7;
    static constexpr unsigned minorFieldOffset = 64;
    static constexpr unsigned minorFieldBits = 384;

    unsigned minorOffset(unsigned idx) const
    {
        return minorFieldOffset + idx * minorBits_;
    }

    std::uint64_t minor(const CachelineData &line, unsigned idx) const;
    void setCombinedBase(CachelineData &line, std::uint64_t value) const;

    unsigned arity_;
    unsigned minorBits_;
    std::uint64_t minorMax_;
    std::string name_;
};

} // namespace morph

#endif // MORPH_COUNTERS_REBASED_SPLIT_COUNTER_HH
