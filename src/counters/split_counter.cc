#include "counters/split_counter.hh"

#include "common/bitfield.hh"
#include "common/check.hh"
#include "common/log.hh"

namespace morph
{

std::uint64_t
CounterFormat::mac(const CachelineData &line)
{
    return readBits(line, macOffset, 64);
}

void
CounterFormat::setMac(CachelineData &line, std::uint64_t tag)
{
    writeBits(line, macOffset, 64, tag);
}

SplitCounterFormat::SplitCounterFormat(unsigned arity) : arity_(arity)
{
    if (arity == 0 || minorFieldBits % arity != 0)
        fatal("split counter: arity %u does not divide 384 bits", arity);
    minorBits_ = minorFieldBits / arity;
    if (minorBits_ > 56)
        fatal("split counter: arity %u yields oversized minors", arity);
    minorMax_ = (minorBits_ >= 64) ? ~0ull : ((1ull << minorBits_) - 1);
    name_ = "SC-" + std::to_string(arity);
}

void
SplitCounterFormat::init(CachelineData &line) const
{
    line.fill(0);
}

std::uint64_t
SplitCounterFormat::major(const CachelineData &line) const
{
    return readBits(line, majorOffset, majorBitsWidth);
}

std::uint64_t
SplitCounterFormat::minor(const CachelineData &line, unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity_);
    return readBits(line, minorOffset(idx), minorBits_);
}

std::uint64_t
SplitCounterFormat::read(const CachelineData &line, unsigned idx) const
{
    return (major(line) << minorBits_) | minor(line, idx);
}

WriteResult
SplitCounterFormat::increment(CachelineData &line, unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity_);
    WriteResult result;

    const std::uint64_t value = minor(line, idx);
    if (value < minorMax_) {
        writeBits(line, minorOffset(idx), minorBits_, value + 1);
        return result;
    }

    // Minor counter saturated: bump the major counter and reset every
    // minor. All children change effective value — including the
    // written one, whose post-reset value (major+1) << b exceeds its
    // previous (major << b) | max, so monotonicity holds.
    result.usedBefore = std::uint16_t(nonZeroCount(line));
    const std::uint64_t maj = major(line);
    if (maj == ~0ull)
        panic("split counter: 64-bit major counter overflow");
    writeBits(line, majorOffset, majorBitsWidth, maj + 1);
    for (unsigned i = 0; i < arity_; ++i)
        writeBits(line, minorOffset(i), minorBits_, 0);

    result.overflow = true;
    result.reencBegin = 0;
    result.reencEnd = std::uint16_t(arity_);
    return result;
}

unsigned
SplitCounterFormat::nonZeroCount(const CachelineData &line) const
{
    unsigned count = 0;
    for (unsigned i = 0; i < arity_; ++i)
        count += minor(line, i) != 0;
    return count;
}

} // namespace morph
