/**
 * @file
 * Transition-relation introspection over counter-cacheline codecs.
 *
 * The counter formats in this library are stateless codecs over 64-byte
 * images; the *transition relation* of a format is the set of edges
 *
 *     image --bump(slot)--> image'
 *
 * for every well-formed image and every slot. tools/morphverify.cc
 * explores that relation exhaustively (within a budget) and checks the
 * paper's security invariants on every edge. This header provides the
 * model layer it needs:
 *
 *  - DecodedState: the canonical *abstract* state of an image — format
 *    tag plus every raw field (major, bases, per-slot minors) and the
 *    derived per-slot effective values. decode() re-derives all of it
 *    with raw readBits() at the offsets documented in docs/FORMATS.md,
 *    independently of the codec's own getters, so codec/spec drift is
 *    itself a checkable property.
 *
 *  - encode(): the unique well-formed image for an abstract state (MAC
 *    bits zero). `encode(decode(img)) == img` (modulo the MAC field) is
 *    the *canonicity* invariant: no two bit patterns alias one logical
 *    state (stale payload bits, mis-packed ranks, wrong Ctr-Sz).
 *
 *  - canonicalKey(): a symmetry-reduced fingerprint of the state. Two
 *    states with equal keys have isomorphic futures, so the model
 *    checker's visited set collapses the 128-slot space to a tractable
 *    quotient. The reductions and why they are sound:
 *
 *      * slot symmetry — slots are interchangeable within a rebasing
 *        set (layouts assign no per-slot semantics beyond position), so
 *        minors are kept as a sorted multiset;
 *      * major elision — every codec's behaviour is relative to its
 *        major/combined base except (a) the unreachable 57-bit
 *        exhaustion panic and (b) the ZCC major's low 7 bits, which
 *        become the MCR base on a morph. The key therefore keeps
 *        `major mod 128` for ZCC states and drops the major entirely
 *        for SC/SC+R/MCR states; the low-7-bit residue of every
 *        successor state is computable from the retained fields
 *        ((a + b) mod 128 depends only on a mod 128), so the quotient
 *        is closed under the transition relation;
 *      * set symmetry — the two 64-child MCR sets are interchangeable
 *        as wholes, so the (base, multiset) descriptors are sorted.
 *
 *  - representativeSlots(): one bump candidate per symmetry class
 *    (distinct minor value, per rebasing set). Bumping two slots of one
 *    class yields key-identical successors, so exploring one suffices.
 *
 *  - seedStates(): a deterministic family of starting images — the
 *    init() state plus corner states (saturated minors, bucket-boundary
 *    populations, near-overflow bases) built through public codec
 *    operations, so breadth-first search reaches the interesting
 *    overflow/rebase/morph edges within a small budget instead of
 *    needing the millions of increments a cold start would take.
 */

#ifndef MORPH_COUNTERS_TRANSITION_MODEL_HH
#define MORPH_COUNTERS_TRANSITION_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "counters/counter_block.hh"

namespace morph
{

/** Which representation an image currently uses. */
enum class RepTag
{
    Split,        ///< SC-n: major(64) + uniform minors
    RebasedSplit, ///< SC-n+R: major(57) | base(7) + uniform minors
    Zcc,          ///< sparse ZCC (F = 0)
    Mcr,          ///< dense double-base MCR (F = 1)
};

/** Abstract (logical) state decoded from a counter cacheline image. */
struct DecodedState
{
    RepTag rep = RepTag::Split;
    unsigned arity = 0;

    /** Raw major field (SC: 64b, SC+R: 57b, ZCC: 57b, MCR: 49b). */
    std::uint64_t major = 0;

    /** SC+R base (index 0) or the two MCR set bases. */
    unsigned base[2] = {0, 0};

    /** Stored Ctr-Sz width (ZCC only). */
    unsigned ctrSz = 0;

    /** Raw minor counter per slot (0 for dead ZCC slots). */
    std::vector<std::uint64_t> minors;

    /** Derived effective value per slot (the AES-CTR / MAC input). */
    std::vector<std::uint64_t> effective;
};

/** Codec family a TransitionModel interprets images as. */
enum class ModelFlavor
{
    Split,        ///< SplitCounterFormat layout
    RebasedSplit, ///< RebasedSplitCounterFormat layout
    Morph,        ///< MorphCtr: ZCC or MCR depending on the F bit
};

/** Introspection interface over one counter format's transition relation. */
class TransitionModel
{
  public:
    virtual ~TransitionModel() = default;

    /** Display name ("sc64", "morph", ...). */
    virtual const std::string &name() const = 0;

    /** The codec whose transition relation this model exposes. */
    virtual const CounterFormat &format() const = 0;

    unsigned arity() const { return format().arity(); }

    /** Deterministic starting images (init state first). */
    virtual std::vector<CachelineData> seedStates() const = 0;

    /**
     * Abstract decode at the documented raw bit offsets (independent of
     * the codec's getters; see file comment).
     */
    virtual DecodedState decode(const CachelineData &line) const = 0;

    /** Canonical image of an abstract state; MAC bits are zero. */
    virtual CachelineData encode(const DecodedState &state) const = 0;

    /** Symmetry-reduced state fingerprint (see file comment). */
    virtual std::string canonicalKey(const CachelineData &line) const = 0;

    /** One bump slot per symmetry class, ascending slot order. */
    virtual std::vector<unsigned>
    representativeSlots(const CachelineData &line) const = 0;

    /** Apply bump(slot) through the codec. */
    WriteResult
    bump(CachelineData &line, unsigned slot) const
    {
        return format().increment(line, slot);
    }

    /** Structural validity of @p line for this model's flavor. */
    virtual bool wellFormed(const CachelineData &line) const = 0;
};

/** How a model is assembled from a codec. */
struct ModelSpec
{
    ModelFlavor flavor = ModelFlavor::Split;
    std::shared_ptr<const CounterFormat> format;
    std::string name;

    /** Morph flavor: rebasing group is one 64-child set (true) or the
     *  whole line (false). Matches MorphableCounterFormat's setting. */
    bool doubleBase = true;

    /** Include the sparse-representation (ZCC) seed family. */
    bool zccSeeds = true;

    /** Include the dense-representation (MCR) seed family. */
    bool mcrSeeds = false;
};

/** Build a model over an arbitrary codec (used for broken variants). */
std::unique_ptr<TransitionModel> makeTransitionModel(ModelSpec spec);

/**
 * Registry of the library's verified formats:
 * "zcc" (MorphCtr-128, rebasing off), "mcr" (MorphCtr-128 explored
 * from dense seeds), "sc64", "sc64r", "morph", "morph-sb".
 */
std::unique_ptr<TransitionModel>
makeNamedTransitionModel(const std::string &name);

/** Names accepted by makeNamedTransitionModel, registry order. */
std::vector<std::string> transitionModelNames();

} // namespace morph

#endif // MORPH_COUNTERS_TRANSITION_MODEL_HH
