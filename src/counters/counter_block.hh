/**
 * @file
 * Common interface for counter-cacheline organizations.
 *
 * Every secure-memory counter organization in this library (split
 * counters SC-n, morphable counters with ZCC/MCR) stores some number
 * of per-child counters inside one 64-byte cacheline image together
 * with a 64-bit MAC field. The *effective value* of child i is the
 * value fed to counter-mode encryption / MAC generation for that
 * child; the cardinal security invariant is that the effective value
 * of every child is strictly increasing across writes and never reused.
 *
 * Some mutations (overflow resets) change the effective values of
 * children that were not written; those children must be re-encrypted
 * (data level) or re-MACed (tree level). increment() reports the
 * affected child range so the caller can generate that traffic, which
 * is the central cost the paper's design minimizes.
 */

#ifndef MORPH_COUNTERS_COUNTER_BLOCK_HH
#define MORPH_COUNTERS_COUNTER_BLOCK_HH

#include <cstdint>

#include "common/types.hh"

namespace morph
{

/** Outcome of incrementing one counter within a block. */
struct WriteResult
{
    /** A reset occurred: children in [reencBegin, reencEnd) changed
     *  effective value and must be re-encrypted / re-hashed. */
    bool overflow = false;

    /** An MCR rebase absorbed a would-be overflow (no re-encryption). */
    bool rebase = false;

    /** The block switched representation (ZCC <-> MCR/Uniform). */
    bool formatSwitch = false;

    /** First child index requiring re-encryption (valid iff overflow). */
    std::uint16_t reencBegin = 0;

    /** One past the last child requiring re-encryption. */
    std::uint16_t reencEnd = 0;

    /** Children with non-zero counters just before an overflow reset
     *  (valid iff overflow) — feeds the usage-fraction histogram of
     *  paper Fig 7. */
    std::uint16_t usedBefore = 0;

    /** Number of children whose effective value changed. */
    unsigned reencCount() const { return unsigned(reencEnd - reencBegin); }
};

/**
 * A counter-cacheline format: stateless codec over 64-byte images.
 *
 * Formats are stateless so that millions of counter lines can be kept
 * as raw cacheline images in sparse stores; all interpretation happens
 * through the format object, exactly as a memory-controller decoder
 * would.
 */
class CounterFormat
{
  public:
    virtual ~CounterFormat() = default;

    /** Number of per-child counters in one cacheline. */
    virtual unsigned arity() const = 0;

    /** Initialize an image to the all-zero-counters state. */
    virtual void init(CachelineData &line) const = 0;

    /** Effective counter value of child @p idx. */
    virtual std::uint64_t read(const CachelineData &line,
                               unsigned idx) const = 0;

    /**
     * Increment the counter of child @p idx (one memory write to that
     * child), applying the format's overflow policy.
     */
    virtual WriteResult increment(CachelineData &line,
                                  unsigned idx) const = 0;

    /** Number of children with a non-zero minor counter. */
    virtual unsigned nonZeroCount(const CachelineData &line) const = 0;

    /** Human-readable format name (e.g. "SC-64", "MorphCtr-128"). */
    virtual const char *name() const = 0;

    /**
     * The 64-bit per-line MAC field occupies bits [448, 512) in every
     * format in this library (Fig 8 / Fig 13 of the paper).
     */
    static std::uint64_t mac(const CachelineData &line);

    /** Store the per-line MAC field. */
    static void setMac(CachelineData &line, std::uint64_t tag);

    /** Bit offset of the MAC field. */
    static constexpr unsigned macOffset = 448;
};

} // namespace morph

#endif // MORPH_COUNTERS_COUNTER_BLOCK_HH
