#include "counters/transition_model.hh"

#include <algorithm>
#include <utility>

#include "common/bitfield.hh"
#include "common/check.hh"
#include "common/log.hh"
#include "counters/counter_factory.hh"
#include "counters/mcr_codec.hh"
#include "counters/morph_counter.hh"
#include "counters/zcc_codec.hh"

namespace morph
{

namespace
{

// Documented field offsets (docs/FORMATS.md). Deliberately restated as
// literals rather than pulled from the codec headers: the model layer
// is an independent reading of the specification, so an offset drift
// in a codec shows up as a decode/canonicity failure instead of being
// silently replicated here.
constexpr unsigned scMajorOffset = 0;
constexpr unsigned scMajorBits = 64;
constexpr unsigned scMinorOffset = 64;
constexpr unsigned scMinorFieldBits = 384;

constexpr unsigned rsMajorOffset = 0;
constexpr unsigned rsMajorBits = 57;
constexpr unsigned rsBaseOffset = 57;
constexpr unsigned rsBaseBits = 7;

constexpr unsigned zFlagOffset = 0;
constexpr unsigned zCtrSzOffset = 1;
constexpr unsigned zCtrSzBits = 6;
constexpr unsigned zMajorOffset = 7;
constexpr unsigned zMajorBits = 57;
constexpr unsigned zBvOffset = 64;
constexpr unsigned zPayloadOffset = 192;
constexpr unsigned zSlots = 128;

constexpr unsigned mMajorOffset = 1;
constexpr unsigned mMajorBits = 49;
constexpr unsigned mBase0Offset = 50;
constexpr unsigned mBaseBits = 7;
constexpr unsigned mMinorOffset = 64;
constexpr unsigned mMinorBits = 3;
constexpr unsigned mSetSize = 64;
constexpr unsigned mSlots = 128;

/** Append @p value to @p key as @p nbytes little-endian bytes. */
void
appendLe(std::string &key, std::uint64_t value, unsigned nbytes)
{
    for (unsigned i = 0; i < nbytes; ++i)
        key.push_back(char(std::uint8_t(value >> (8 * i))));
}

/** Lowest slot index per distinct value within [begin, end). */
void
appendClassRepresentatives(std::vector<unsigned> &out,
                           const std::vector<std::uint64_t> &minors,
                           unsigned begin, unsigned end)
{
    for (unsigned i = begin; i < end; ++i) {
        bool first = true;
        for (unsigned j = begin; j < i && first; ++j)
            first = minors[j] != minors[i];
        if (first)
            out.push_back(i);
    }
}

/** Common plumbing: name, format ownership, script-driven seeds. */
class CodecModelBase : public TransitionModel
{
  public:
    explicit CodecModelBase(ModelSpec spec) : spec_(std::move(spec))
    {
        MORPH_CHECK(spec_.format != nullptr);
    }

    const std::string &name() const override { return spec_.name; }
    const CounterFormat &format() const override { return *spec_.format; }

  protected:
    /** Fresh init() image. */
    CachelineData
    initImage() const
    {
        CachelineData line;
        format().init(line);
        return line;
    }

    /** @p writes increments of @p slot on @p line through the codec. */
    void
    hammer(CachelineData &line, unsigned slot, std::uint64_t writes) const
    {
        for (std::uint64_t w = 0; w < writes; ++w)
            format().increment(line, slot);
    }

    /** One increment on each of the first @p count slots. */
    void
    spread(CachelineData &line, unsigned count) const
    {
        for (unsigned i = 0; i < count && i < arity(); ++i)
            format().increment(line, i);
    }

    ModelSpec spec_;
};

// ---------------------------------------------------------------------
// SC-n (SplitCounterFormat layout)
// ---------------------------------------------------------------------

class SplitModel : public CodecModelBase
{
  public:
    using CodecModelBase::CodecModelBase;

    DecodedState
    decode(const CachelineData &line) const override
    {
        const unsigned n = arity();
        const unsigned minor_bits = scMinorFieldBits / n;
        DecodedState s;
        s.rep = RepTag::Split;
        s.arity = n;
        s.major = readBits(line, scMajorOffset, scMajorBits);
        s.minors.resize(n);
        s.effective.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            s.minors[i] =
                readBits(line, scMinorOffset + i * minor_bits, minor_bits);
            s.effective[i] = (s.major << minor_bits) | s.minors[i];
        }
        return s;
    }

    CachelineData
    encode(const DecodedState &s) const override
    {
        const unsigned minor_bits = scMinorFieldBits / s.arity;
        CachelineData line;
        line.fill(0);
        writeBits(line, scMajorOffset, scMajorBits, s.major);
        for (unsigned i = 0; i < s.arity; ++i)
            writeBits(line, scMinorOffset + i * minor_bits, minor_bits,
                      s.minors[i]);
        return line;
    }

    std::string
    canonicalKey(const CachelineData &line) const override
    {
        // The major is elided: overflow behaviour depends only on the
        // minors, and every transition moves effective values relative
        // to the (arbitrary) major.
        DecodedState s = decode(line);
        std::sort(s.minors.begin(), s.minors.end());
        std::string key = "S";
        for (const std::uint64_t m : s.minors)
            appendLe(key, m, 8);
        return key;
    }

    std::vector<unsigned>
    representativeSlots(const CachelineData &line) const override
    {
        const DecodedState s = decode(line);
        std::vector<unsigned> out;
        appendClassRepresentatives(out, s.minors, 0, s.arity);
        return out;
    }

    bool
    wellFormed(const CachelineData &) const override
    {
        return true; // fixed layout: every bit pattern decodes
    }

    std::vector<CachelineData>
    seedStates() const override
    {
        const unsigned n = arity();
        const std::uint64_t minor_max =
            (1ull << (scMinorFieldBits / n)) - 1;
        std::vector<CachelineData> seeds;
        seeds.push_back(initImage());

        // One saturated slot, the rest untouched: the reset edge.
        CachelineData hot = initImage();
        hammer(hot, 0, minor_max);
        seeds.push_back(hot);

        // Every slot live, one saturated: reset with full occupancy.
        CachelineData dense = initImage();
        spread(dense, n);
        hammer(dense, 0, minor_max - 1);
        seeds.push_back(dense);

        // Half occupancy near saturation.
        CachelineData half = initImage();
        spread(half, n / 2);
        hammer(half, 0, minor_max - 2);
        seeds.push_back(half);
        return seeds;
    }
};

// ---------------------------------------------------------------------
// SC-n+R (RebasedSplitCounterFormat layout)
// ---------------------------------------------------------------------

class RebasedSplitModel : public CodecModelBase
{
  public:
    using CodecModelBase::CodecModelBase;

    DecodedState
    decode(const CachelineData &line) const override
    {
        const unsigned n = arity();
        const unsigned minor_bits = scMinorFieldBits / n;
        DecodedState s;
        s.rep = RepTag::RebasedSplit;
        s.arity = n;
        s.major = readBits(line, rsMajorOffset, rsMajorBits);
        s.base[0] = unsigned(readBits(line, rsBaseOffset, rsBaseBits));
        const std::uint64_t combined =
            (s.major << rsBaseBits) | s.base[0];
        s.minors.resize(n);
        s.effective.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            s.minors[i] =
                readBits(line, scMinorOffset + i * minor_bits, minor_bits);
            s.effective[i] = combined + s.minors[i];
        }
        return s;
    }

    CachelineData
    encode(const DecodedState &s) const override
    {
        const unsigned minor_bits = scMinorFieldBits / s.arity;
        CachelineData line;
        line.fill(0);
        writeBits(line, rsMajorOffset, rsMajorBits, s.major);
        writeBits(line, rsBaseOffset, rsBaseBits, s.base[0]);
        for (unsigned i = 0; i < s.arity; ++i)
            writeBits(line, scMinorOffset + i * minor_bits, minor_bits,
                      s.minors[i]);
        return line;
    }

    std::string
    canonicalKey(const CachelineData &line) const override
    {
        // The combined base is elided: rebases and resets advance it
        // relative to its current value and it cannot overflow (the
        // major and base form one 64-bit quantity).
        DecodedState s = decode(line);
        std::sort(s.minors.begin(), s.minors.end());
        std::string key = "R";
        for (const std::uint64_t m : s.minors)
            appendLe(key, m, 8);
        return key;
    }

    std::vector<unsigned>
    representativeSlots(const CachelineData &line) const override
    {
        const DecodedState s = decode(line);
        std::vector<unsigned> out;
        appendClassRepresentatives(out, s.minors, 0, s.arity);
        return out;
    }

    bool
    wellFormed(const CachelineData &) const override
    {
        return true;
    }

    std::vector<CachelineData>
    seedStates() const override
    {
        const unsigned n = arity();
        const std::uint64_t minor_max =
            (1ull << (scMinorFieldBits / n)) - 1;
        std::vector<CachelineData> seeds;
        seeds.push_back(initImage());

        // Saturated slot with a zero present: the group-reset edge.
        CachelineData hot = initImage();
        hammer(hot, 0, minor_max);
        seeds.push_back(hot);

        // All slots non-zero, one saturated: the rebase edge.
        CachelineData rebase = initImage();
        spread(rebase, n);
        hammer(rebase, 0, minor_max - 1);
        seeds.push_back(rebase);

        // All slots one below saturation: rebase yield of exactly one.
        CachelineData tight = initImage();
        spread(tight, n);
        for (unsigned i = 0; i < n; ++i)
            hammer(tight, i, minor_max - 2);
        seeds.push_back(tight);
        return seeds;
    }
};

// ---------------------------------------------------------------------
// MorphCtr (ZCC or MCR depending on the format flag)
// ---------------------------------------------------------------------

class MorphModel : public CodecModelBase
{
  public:
    using CodecModelBase::CodecModelBase;

    DecodedState
    decode(const CachelineData &line) const override
    {
        return testBit(line, zFlagOffset) ? decodeMcr(line)
                                          : decodeZcc(line);
    }

    CachelineData
    encode(const DecodedState &s) const override
    {
        CachelineData line;
        line.fill(0);
        if (s.rep == RepTag::Mcr) {
            setBit(line, zFlagOffset, true);
            writeBits(line, mMajorOffset, mMajorBits, s.major);
            writeBits(line, mBase0Offset, mBaseBits, s.base[0]);
            writeBits(line, mBase0Offset + mBaseBits, mBaseBits,
                      s.base[1]);
            for (unsigned i = 0; i < mSlots; ++i)
                writeBits(line, mMinorOffset + i * mMinorBits, mMinorBits,
                          s.minors[i]);
            return line;
        }
        MORPH_CHECK(s.rep == RepTag::Zcc);
        writeBits(line, zCtrSzOffset, zCtrSzBits, s.ctrSz);
        writeBits(line, zMajorOffset, zMajorBits, s.major);
        unsigned rank = 0;
        for (unsigned i = 0; i < zSlots; ++i) {
            if (s.minors[i] == 0)
                continue;
            setBit(line, zBvOffset + i, true);
            if (s.ctrSz > 0)
                writeBits(line, zPayloadOffset + rank * s.ctrSz, s.ctrSz,
                          s.minors[i]);
            ++rank;
        }
        return line;
    }

    std::string
    canonicalKey(const CachelineData &line) const override
    {
        DecodedState s = decode(line);
        std::string key;
        if (s.rep == RepTag::Zcc) {
            // Keep major mod 128: those bits become the MCR base on a
            // morph; everything above is relative (see header).
            key = "Z";
            appendLe(key, s.major & 127u, 1);
            std::sort(s.minors.begin(), s.minors.end());
            for (const std::uint64_t m : s.minors)
                appendLe(key, m, 2);
            return key;
        }
        if (!spec_.doubleBase) {
            // Single base: one rebasing group spanning all 128 slots.
            key = "m";
            appendLe(key, s.base[0], 1);
            std::sort(s.minors.begin(), s.minors.end());
            for (const std::uint64_t m : s.minors)
                appendLe(key, m, 1);
            return key;
        }
        // Double base: sets rebase independently and are mutually
        // interchangeable, so sort within each set descriptor and then
        // sort the two descriptors.
        std::string set_keys[2];
        for (unsigned set = 0; set < 2; ++set) {
            std::string &sk = set_keys[set];
            appendLe(sk, s.base[set], 1);
            std::vector<std::uint64_t> minors(
                s.minors.begin() + set * mSetSize,
                s.minors.begin() + (set + 1) * mSetSize);
            std::sort(minors.begin(), minors.end());
            for (const std::uint64_t m : minors)
                appendLe(sk, m, 1);
        }
        if (set_keys[1] < set_keys[0])
            std::swap(set_keys[0], set_keys[1]);
        return "M" + set_keys[0] + set_keys[1];
    }

    std::vector<unsigned>
    representativeSlots(const CachelineData &line) const override
    {
        const DecodedState s = decode(line);
        std::vector<unsigned> out;
        if (s.rep == RepTag::Mcr && spec_.doubleBase) {
            appendClassRepresentatives(out, s.minors, 0, mSetSize);
            appendClassRepresentatives(out, s.minors, mSetSize, mSlots);
        } else {
            appendClassRepresentatives(out, s.minors, 0, s.arity);
        }
        return out;
    }

    bool
    wellFormed(const CachelineData &line) const override
    {
        const auto *morphable =
            dynamic_cast<const MorphableCounterFormat *>(spec_.format.get());
        if (morphable != nullptr)
            return morphable->wellFormed(line);
        return zcc::isZcc(line) ? zcc::isWellFormed(line) : true;
    }

    std::vector<CachelineData>
    seedStates() const override
    {
        std::vector<CachelineData> seeds;
        if (spec_.zccSeeds)
            appendZccSeeds(seeds);
        if (spec_.mcrSeeds)
            appendMcrSeeds(seeds);
        MORPH_CHECK(!seeds.empty());
        return seeds;
    }

  private:
    DecodedState
    decodeZcc(const CachelineData &line) const
    {
        DecodedState s;
        s.rep = RepTag::Zcc;
        s.arity = zSlots;
        s.ctrSz = unsigned(readBits(line, zCtrSzOffset, zCtrSzBits));
        s.major = readBits(line, zMajorOffset, zMajorBits);
        s.minors.resize(zSlots);
        s.effective.resize(zSlots);
        unsigned rank = 0;
        for (unsigned i = 0; i < zSlots; ++i) {
            if (s.ctrSz > 0 && testBit(line, zBvOffset + i)) {
                s.minors[i] = readBits(
                    line, zPayloadOffset + rank * s.ctrSz, s.ctrSz);
                ++rank;
            } else {
                s.minors[i] = 0;
            }
            s.effective[i] = s.major + s.minors[i];
        }
        return s;
    }

    DecodedState
    decodeMcr(const CachelineData &line) const
    {
        DecodedState s;
        s.rep = RepTag::Mcr;
        s.arity = mSlots;
        s.major = readBits(line, mMajorOffset, mMajorBits);
        s.base[0] = unsigned(readBits(line, mBase0Offset, mBaseBits));
        s.base[1] =
            unsigned(readBits(line, mBase0Offset + mBaseBits, mBaseBits));
        s.minors.resize(mSlots);
        s.effective.resize(mSlots);
        for (unsigned i = 0; i < mSlots; ++i) {
            s.minors[i] =
                readBits(line, mMinorOffset + i * mMinorBits, mMinorBits);
            s.effective[i] =
                ((s.major << mBaseBits) | s.base[i / mSetSize]) +
                s.minors[i];
        }
        return s;
    }

    /** ZCC image with @p major and one increment on slots [0, live). */
    CachelineData
    zccSeed(std::uint64_t major, unsigned live) const
    {
        CachelineData line;
        zcc::init(line, major);
        spread(line, live);
        return line;
    }

    void
    appendZccSeeds(std::vector<CachelineData> &seeds) const
    {
        seeds.push_back(initImage());

        // Every width-bucket boundary, one write per live slot: the
        // insert edge from k straddles the k -> k+1 repack.
        for (const unsigned live : {16u, 17u, 32u, 33u, 36u, 37u, 42u,
                                    43u, 51u, 52u, 63u, 64u})
            seeds.push_back(zccSeed(0, live));

        // Saturated minor at several widths: the in-place overflow and
        // repack-failure edges. Populations chosen so one hot slot at
        // the width maximum coexists with cold slots.
        struct HotSeed
        {
            unsigned live;
            std::uint64_t hotValue;
        };
        const HotSeed hot_seeds[] = {
            {1, (1u << 16) - 1},  {16, (1u << 16) - 1},
            {17, (1u << 8) - 1},  {33, (1u << 7) - 1},
            {43, (1u << 5) - 1},  {52, (1u << 4) - 1},
            {64, (1u << 4) - 1},
        };
        for (const HotSeed &hs : hot_seeds) {
            CachelineData line = zccSeed(0, hs.live);
            hammer(line, 0, hs.hotValue - 1); // spread() already wrote 1
            seeds.push_back(line);
        }

        // Majors whose low 7 bits sit at the MCR base cliff: a morph
        // from these starts one rebase away from base overflow.
        for (const std::uint64_t major : {125ull, 126ull, 127ull}) {
            seeds.push_back(zccSeed(major, 64));
            CachelineData line = zccSeed(major, 64);
            hammer(line, 0, 6); // live minors at 7: morph-eligible edge
            seeds.push_back(line);
        }
    }

    /** MCR image built from public codec fields. */
    CachelineData
    mcrSeed(unsigned base, std::uint64_t fill,
            std::uint64_t slot0) const
    {
        CachelineData line;
        mcr::init(line, 0, base);
        for (unsigned i = 0; i < mSlots; ++i) {
            const std::uint64_t value = i == 0 ? slot0 : fill;
            if (value != 0)
                mcr::setMinor(line, i, value);
        }
        return line;
    }

    void
    appendMcrSeeds(std::vector<CachelineData> &seeds) const
    {
        for (const unsigned base : {0u, 100u, 119u, 126u, 127u}) {
            seeds.push_back(mcrSeed(base, 0, 0));
            seeds.push_back(mcrSeed(base, 0, 7)); // reset edge
            seeds.push_back(mcrSeed(base, 1, 7)); // rebase edge
            seeds.push_back(mcrSeed(base, 7, 7)); // saturated line
            seeds.push_back(mcrSeed(base, 6, 6)); // near saturation
        }
    }
};

} // namespace

std::unique_ptr<TransitionModel>
makeTransitionModel(ModelSpec spec)
{
    switch (spec.flavor) {
      case ModelFlavor::Split:
        return std::make_unique<SplitModel>(std::move(spec));
      case ModelFlavor::RebasedSplit:
        return std::make_unique<RebasedSplitModel>(std::move(spec));
      case ModelFlavor::Morph:
        return std::make_unique<MorphModel>(std::move(spec));
    }
    panic("unknown model flavor %d", int(spec.flavor));
}

std::unique_ptr<TransitionModel>
makeNamedTransitionModel(const std::string &name)
{
    ModelSpec spec;
    spec.name = name;
    if (name == "zcc") {
        // ZCC-only ablation: the dense fallback is a uniform split and
        // resets instead of rebasing (Fig 11).
        spec.flavor = ModelFlavor::Morph;
        spec.format = makeCounterFormat(CounterKind::MorphZccOnly);
        spec.mcrSeeds = true;
    } else if (name == "mcr") {
        // The dense representation explored from MCR seeds only: the
        // rebase / group-reset / fall-back-to-ZCC edges.
        spec.flavor = ModelFlavor::Morph;
        spec.format = makeCounterFormat(CounterKind::Morph);
        spec.zccSeeds = false;
        spec.mcrSeeds = true;
    } else if (name == "sc64") {
        spec.flavor = ModelFlavor::Split;
        spec.format = makeCounterFormat(CounterKind::SC64);
    } else if (name == "sc64r") {
        spec.flavor = ModelFlavor::RebasedSplit;
        spec.format = makeCounterFormat(CounterKind::SC64Rebased);
    } else if (name == "morph") {
        spec.flavor = ModelFlavor::Morph;
        spec.format = makeCounterFormat(CounterKind::Morph);
        spec.mcrSeeds = true;
    } else if (name == "morph-sb") {
        spec.flavor = ModelFlavor::Morph;
        spec.format = makeCounterFormat(CounterKind::MorphSingleBase);
        spec.doubleBase = false;
        spec.mcrSeeds = true;
    } else {
        return nullptr;
    }
    return makeTransitionModel(std::move(spec));
}

std::vector<std::string>
transitionModelNames()
{
    return {"zcc", "mcr", "sc64", "sc64r", "morph", "morph-sb"};
}

} // namespace morph
