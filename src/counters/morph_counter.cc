#include "counters/morph_counter.hh"

#include "common/check.hh"
#include "common/log.hh"
#include "counters/mcr_codec.hh"
#include "counters/zcc_codec.hh"

namespace morph
{

void
MorphableCounterFormat::init(CachelineData &line) const
{
    zcc::init(line, 0);
}

bool
MorphableCounterFormat::inZccFormat(const CachelineData &line) const
{
    return zcc::isZcc(line);
}

bool
MorphableCounterFormat::wellFormed(const CachelineData &line) const
{
    return zcc::isZcc(line) ? zcc::isWellFormed(line) : true;
}

std::uint64_t
MorphableCounterFormat::read(const CachelineData &line, unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity());
    if (zcc::isZcc(line))
        return zcc::majorOf(line) + zcc::minorValue(line, idx);
    return mcr::effective(line, idx);
}

unsigned
MorphableCounterFormat::nonZeroCount(const CachelineData &line) const
{
    return zcc::isZcc(line) ? zcc::count(line) : mcr::nonZeroCount(line);
}

WriteResult
MorphableCounterFormat::increment(CachelineData &line, unsigned idx) const
{
    MORPH_CHECK_LT(idx, arity());
    return zcc::isZcc(line) ? incrementZcc(line, idx)
                            : incrementMcr(line, idx);
}

/**
 * Overflow reset (any representation -> empty ZCC).
 *
 * The new ZCC major is (largest effective value in the line) + 1: a
 * single rule that subsumes the paper's per-case increments
 * (MajorCtr += Largest+1 for ZCC resets, MajorCtr += 2 for MCR base
 * overflow) while guaranteeing every child's new effective value
 * strictly exceeds its old one. All 128 children must be re-encrypted.
 */
WriteResult
MorphableCounterFormat::fullReset(CachelineData &line) const
{
    WriteResult result;
    result.overflow = true;
    result.reencBegin = 0;
    result.reencEnd = 128;
    result.usedBefore = std::uint16_t(nonZeroCount(line));

    std::uint64_t new_major;
    if (zcc::isZcc(line)) {
        new_major = zcc::majorOf(line) + zcc::largestMinor(line) + 1;
    } else {
        new_major = mcr::maxEffective(line) + 1;
        result.formatSwitch = true;
    }
    if ((new_major >> zcc::majorBits) != 0)
        panic("morph counter: 57-bit major counter exhausted");
    zcc::resetAll(line, new_major);
    return result;
}

/**
 * Morph from ZCC to MCR because the 65th counter just became non-zero.
 * Lossless when every live minor fits a 3-bit field; the caller falls
 * back to fullReset() otherwise.
 */
WriteResult
MorphableCounterFormat::convertToMcr(CachelineData &line,
                                     unsigned idx) const
{
    const std::uint64_t zmajor = zcc::majorOf(line);
    const std::uint64_t major49 = zmajor >> mcr::baseBits;
    const unsigned base = unsigned(zmajor & mcr::baseMax);
    if ((major49 >> mcr::majorBits) != 0)
        panic("morph counter: 49-bit MCR major exhausted");

    // Snapshot minors (and the MAC, which init() would clear).
    std::uint64_t minors[mcr::numCounters];
    for (unsigned i = 0; i < mcr::numCounters; ++i)
        minors[i] = zcc::minorValue(line, i);
    const std::uint64_t tag = mac(line);

    mcr::init(line, major49, base);
    for (unsigned i = 0; i < mcr::numCounters; ++i)
        if (minors[i] != 0)
            mcr::setMinor(line, i, minors[i]);
    mcr::setMinor(line, idx, 1);
    setMac(line, tag);

    WriteResult result;
    result.formatSwitch = true;
    return result;
}

WriteResult
MorphableCounterFormat::incrementZcc(CachelineData &line,
                                     unsigned idx) const
{
    if (zcc::isNonZero(line, idx)) {
        const std::uint64_t value = zcc::minorValue(line, idx);
        const unsigned size = zcc::ctrSz(line);
        const std::uint64_t max = (1ull << size) - 1;
        if (value < max) {
            zcc::setMinor(line, idx, value + 1);
            return WriteResult{};
        }
        return fullReset(line);
    }

    const unsigned k = zcc::count(line);
    if (k + 1 > zcc::maxNonZero) {
        // 65th live counter: morph to the dense representation if the
        // live minors fit 3 bits, else reset.
        if (zcc::largestMinor(line) <= mcr::minorMax)
            return convertToMcr(line, idx);
        return fullReset(line);
    }

    if (zcc::insertNonZero(line, idx))
        return WriteResult{};
    // Some live counter no longer fits the narrower width.
    return fullReset(line);
}

WriteResult
MorphableCounterFormat::incrementMcr(CachelineData &line,
                                     unsigned idx) const
{
    const std::uint64_t value = mcr::minorValue(line, idx);
    if (value < mcr::minorMax) {
        mcr::setMinor(line, idx, value + 1);
        return WriteResult{};
    }

    if (!rebasing_) {
        // ZCC-only ablation: the dense format behaves like a uniform
        // 128 x 3-bit split counter and resets on overflow.
        return fullReset(line);
    }

    // Rebasing granularity: one 64-child set (double-base, 4 KB
    // pages) or the whole 128-child line (single-base variant).
    const unsigned begin =
        doubleBase_ ? (idx / mcr::setSize) * mcr::setSize : 0;
    const unsigned end =
        doubleBase_ ? begin + mcr::setSize : mcr::numCounters;

    std::uint64_t smallest = mcr::minorMax;
    std::uint64_t largest = 0;
    for (unsigned i = begin; i < end; ++i) {
        const std::uint64_t v = mcr::minorValue(line, i);
        smallest = std::min(smallest, v);
        largest = std::max(largest, v);
    }
    const unsigned base = mcr::base(line, doubleBase_
                                              ? idx / mcr::setSize
                                              : 0);

    const auto set_base = [&](unsigned new_base) {
        if (doubleBase_) {
            mcr::setBase(line, idx / mcr::setSize, new_base);
        } else {
            mcr::setBase(line, 0, new_base);
            mcr::setBase(line, 1, new_base);
        }
    };

    if (smallest > 0) {
        // Rebase: advance the base by the smallest minor; other
        // children keep (base + smallest) + (minor - smallest) ==
        // base + minor, so nothing is re-encrypted. The written child
        // then has room to increment.
        if (base + smallest > mcr::baseMax)
            return fullReset(line); // base overflow -> back to ZCC
        set_base(unsigned(base + smallest));
        for (unsigned i = begin; i < end; ++i)
            mcr::setMinor(line, i,
                          mcr::minorValue(line, i) - smallest);
        mcr::setMinor(line, idx, mcr::minorValue(line, idx) + 1);
        WriteResult result;
        result.rebase = true;
        return result;
    }

    // Smallest minor is zero: rebasing is impossible; reset this
    // rebasing group (base += largest + 1), re-encrypting its
    // children.
    if (base + largest + 1 > mcr::baseMax)
        return fullReset(line); // base overflow -> back to ZCC

    WriteResult result;
    result.overflow = true;
    result.reencBegin = std::uint16_t(begin);
    result.reencEnd = std::uint16_t(end);
    result.usedBefore = std::uint16_t(nonZeroCount(line));
    set_base(unsigned(base + largest + 1));
    for (unsigned i = begin; i < end; ++i)
        mcr::setMinor(line, i, 0);
    return result;
}

} // namespace morph
