#include "counters/overflow_model.hh"

#include "common/check.hh"

namespace morph
{

std::uint64_t
writesToOverflow(const CounterFormat &format, unsigned used,
                 std::uint64_t max_writes)
{
    MORPH_CHECK(used >= 1 && used <= format.arity());

    CachelineData line;
    format.init(line);

    std::uint64_t writes = 0;
    unsigned next = 0;
    while (writes < max_writes) {
        ++writes;
        const WriteResult result = format.increment(line, next);
        if (result.overflow)
            return writes;
        next = (next + 1) % used;
    }
    return max_writes;
}

std::uint64_t
adversarialWritesToOverflow(const CounterFormat &format, unsigned primed)
{
    MORPH_CHECK(primed >= 1 && primed <= format.arity());

    CachelineData line;
    format.init(line);

    std::uint64_t writes = 0;
    // Phase 1: one write each to `primed` children (children 1..primed
    // so the hammered child 0 stays zero until phase 2 when primed <
    // arity; the paper's 52-counter pattern primes disjoint children).
    for (unsigned i = 0; i < primed; ++i) {
        ++writes;
        const unsigned child = (i + 1) % format.arity();
        if (format.increment(line, child).overflow)
            return writes;
    }
    // Phase 2: hammer child 0.
    while (true) {
        ++writes;
        if (format.increment(line, 0).overflow)
            return writes;
    }
}

} // namespace morph
