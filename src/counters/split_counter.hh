/**
 * @file
 * Split counters (Yan et al., ISCA 2006), generalized to arity n.
 *
 * One 64-byte line holds a 64-bit major counter, n minor counters of
 * 384/n bits each, and a 64-bit MAC:
 *
 *   | major (64b) | minor_0 .. minor_{n-1} (384b total) | MAC (64b) |
 *
 * The effective value of child i is (major << minor_bits) | minor_i.
 * When a minor counter saturates, the major counter is incremented and
 * ALL minors reset to zero, changing every child's effective value —
 * an overflow costing n re-encryptions. A saturated n-minor design
 * therefore tolerates exactly 2^minor_bits writes per overflow in the
 * single-hot-counter worst case (64 for SC-64, 8 for SC-128; Fig 6).
 *
 * Supported arities: 8, 16, 32, 64, 128 (VAULT's levels use 16/32/64).
 */

#ifndef MORPH_COUNTERS_SPLIT_COUNTER_HH
#define MORPH_COUNTERS_SPLIT_COUNTER_HH

#include <string>

#include "counters/counter_block.hh"

namespace morph
{

/** Generic SC-n split-counter format. */
class SplitCounterFormat : public CounterFormat
{
  public:
    /** @param arity counters per cacheline; must divide 384 evenly */
    explicit SplitCounterFormat(unsigned arity);

    unsigned arity() const override { return arity_; }
    void init(CachelineData &line) const override;
    std::uint64_t read(const CachelineData &line,
                       unsigned idx) const override;
    WriteResult increment(CachelineData &line, unsigned idx) const override;
    unsigned nonZeroCount(const CachelineData &line) const override;
    const char *name() const override { return name_.c_str(); }

    /** Width of each minor counter in bits (384 / arity). */
    unsigned minorBits() const { return minorBits_; }

    /** Raw major counter. */
    std::uint64_t major(const CachelineData &line) const;

    /** Raw minor counter of child @p idx. */
    std::uint64_t minor(const CachelineData &line, unsigned idx) const;

  private:
    static constexpr unsigned majorOffset = 0;
    static constexpr unsigned majorBitsWidth = 64;
    static constexpr unsigned minorFieldOffset = 64;
    static constexpr unsigned minorFieldBits = 384;

    unsigned minorOffset(unsigned idx) const
    {
        return minorFieldOffset + idx * minorBits_;
    }

    unsigned arity_;
    unsigned minorBits_;
    std::uint64_t minorMax_;
    std::string name_;
};

} // namespace morph

#endif // MORPH_COUNTERS_SPLIT_COUNTER_HH
