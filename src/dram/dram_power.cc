#include "dram/dram_power.hh"

namespace morph
{

DramEnergy
dramEnergy(const DramPowerParams &params, const ChannelActivity &activity,
           double elapsed_seconds, unsigned total_ranks)
{
    DramEnergy energy;
    energy.activateJ = double(activity.activates) *
                       params.activateEnergyJ;
    energy.readJ = double(activity.reads) * params.readEnergyJ;
    energy.writeJ = double(activity.writes) * params.writeEnergyJ;
    energy.refreshJ = double(activity.refreshes) * params.refreshEnergyJ;
    energy.backgroundJ = params.backgroundWattsPerRank *
                         double(total_ranks) * elapsed_seconds;
    return energy;
}

} // namespace morph
