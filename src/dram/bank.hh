/**
 * @file
 * DRAM bank state machine (row buffer + availability tracking).
 *
 * Each bank tracks its open row and the earliest CPU cycle at which a
 * new column command may begin. An access classifies as a row-buffer
 * hit (CAS only), a closed-row access (ACT + CAS) or a row conflict
 * (PRE + ACT + CAS); the paper's streaming-vs-random workload split
 * maps directly onto these classes.
 */

#ifndef MORPH_DRAM_BANK_HH
#define MORPH_DRAM_BANK_HH

#include <cstdint>

#include "dram/dram_config.hh"

namespace morph
{

/** Outcome classification of one bank access. */
enum class RowOutcome : std::uint8_t { Hit, Closed, Conflict };

/** One DRAM bank. */
class Bank
{
  public:
    /**
     * Schedule an access's bank-side work.
     *
     * @param config   timing parameters
     * @param row      target row
     * @param is_write column command direction
     * @param earliest earliest CPU cycle the command sequence may start
     * @param act_ready earliest cycle an ACT may issue (tRRD/tFAW from
     *                  the rank; ignored for row hits)
     * @param cas_ready out: cycle at which the CAS issues
     * @param act_at    out: cycle of the ACT, or ~0 if none issued
     * @return outcome class (hit / closed / conflict)
     */
    RowOutcome schedule(const DramConfig &config, std::uint64_t row,
                        bool is_write, Cycle earliest, Cycle act_ready,
                        Cycle &cas_ready, Cycle &act_at);

    /**
     * Commit the access once the data phase is placed on the bus.
     *
     * Reads pipeline: the next CAS to this bank may issue tCCD after
     * this one, so back-to-back row hits stream at burst rate.
     * Writes add the tWR recovery after the data burst.
     *
     * @param config     timing parameters
     * @param cas_at     cycle the CAS command actually issued
     * @param data_start first cycle of the data burst
     * @param is_write   direction
     */
    void complete(const DramConfig &config, Cycle cas_at,
                  Cycle data_start, bool is_write);

    bool rowOpen() const { return rowOpen_; }
    std::uint64_t openRow() const { return openRow_; }

  private:
    bool rowOpen_ = false;
    std::uint64_t openRow_ = 0;
    Cycle readyAt_ = 0;     ///< earliest next command sequence
    Cycle activatedAt_ = 0; ///< last ACT (for tRAS)
};

} // namespace morph

#endif // MORPH_DRAM_BANK_HH
