#include "dram/dram_system.hh"

#include "common/check.hh"

namespace morph
{

DramSystem::DramSystem(const DramConfig &config) : config_(config)
{
    channels_.reserve(config_.channels);
    for (unsigned c = 0; c < config_.channels; ++c)
        channels_.emplace_back(config_);
}

Cycle
DramSystem::access(LineAddr line, AccessType type, Cycle when)
{
    const DramCoord coord = decodeLine(config_, line);
    return channels_[coord.channel].access(coord, type, when);
}

ChannelActivity
DramSystem::totalActivity() const
{
    ChannelActivity total;
    for (const auto &channel : channels_) {
        const auto &a = channel.activity();
        total.reads += a.reads;
        total.writes += a.writes;
        total.activates += a.activates;
        total.refreshes += a.refreshes;
        total.rowHits += a.rowHits;
        total.rowClosed += a.rowClosed;
        total.rowConflicts += a.rowConflicts;
        total.writeDrains += a.writeDrains;
        total.busBusyCycles += a.busBusyCycles;
    }
    return total;
}

const ChannelActivity &
DramSystem::activity(unsigned channel) const
{
    MORPH_CHECK_LT(channel, channels_.size());
    return channels_[channel].activity();
}

void
DramSystem::resetActivity()
{
    for (auto &channel : channels_)
        channel.resetActivity();
}

} // namespace morph
