#include "dram/dram_system.hh"

#include "common/check.hh"
#include "common/prof.hh"
#include "common/stat_registry.hh"

namespace morph
{

DramSystem::DramSystem(const DramConfig &config) : config_(config)
{
    channels_.reserve(config_.channels);
    for (unsigned c = 0; c < config_.channels; ++c)
        channels_.emplace_back(config_);
}

Cycle
DramSystem::access(LineAddr line, AccessType type, Cycle when,
                   DramAccessTiming *timing)
{
    MORPH_PROF_SCOPE("dram.access");
    const DramCoord coord = decodeLine(config_, line);
    if (timing)
        timing->channel = coord.channel;
    return channels_[coord.channel].access(coord, type, when, timing);
}

ChannelActivity
DramSystem::totalActivity() const
{
    ChannelActivity total;
    for (const auto &channel : channels_) {
        const auto &a = channel.activity();
        total.reads += a.reads;
        total.writes += a.writes;
        total.activates += a.activates;
        total.refreshes += a.refreshes;
        total.rowHits += a.rowHits;
        total.rowClosed += a.rowClosed;
        total.rowConflicts += a.rowConflicts;
        total.writeDrains += a.writeDrains;
        total.busBusyCycles += a.busBusyCycles;
    }
    return total;
}

const ChannelActivity &
DramSystem::activity(unsigned channel) const
{
    MORPH_CHECK_LT(channel, channels_.size());
    return channels_[channel].activity();
}

void
DramSystem::resetActivity()
{
    for (auto &channel : channels_)
        channel.resetActivity();
}

void
DramSystem::registerStats(StatRegistry &registry,
                          const std::string &prefix) const
{
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const ChannelActivity &a = channels_[c].activity();
        const std::string base =
            prefix + ".ch" + std::to_string(c);
        registry.counter(base + ".reads", &a.reads,
                         "read bursts on this channel");
        registry.counter(base + ".writes", &a.writes,
                         "write bursts on this channel");
        registry.counter(base + ".activates", &a.activates,
                         "row activations on this channel");
        registry.counter(base + ".row_hits", &a.rowHits,
                         "open-row hits on this channel");
        registry.counter(base + ".row_conflicts", &a.rowConflicts,
                         "row-buffer conflicts on this channel");
        registry.counter(base + ".refreshes", &a.refreshes,
                         "refresh windows elapsed on this channel");
        registry.counter(base + ".bus_busy_cycles", &a.busBusyCycles,
                         "data-bus occupancy, CPU cycles");
        registry.gauge(
            base + ".utilisation",
            [this, c]() {
                const ChannelActivity &act =
                    channels_[c].activity();
                const Cycle free_at = channels_[c].busFreeAt();
                return free_at
                           ? double(act.busBusyCycles) /
                                 double(free_at)
                           : 0.0;
            },
            "bus-busy cycles / elapsed channel cycles");
    }
    registry.counter(
        prefix + ".reads",
        [this]() { return totalActivity().reads; },
        "read bursts, all channels");
    registry.counter(
        prefix + ".writes",
        [this]() { return totalActivity().writes; },
        "write bursts, all channels");
    registry.counter(
        prefix + ".activates",
        [this]() { return totalActivity().activates; },
        "row activations, all channels");
    registry.gauge(
        prefix + ".row_hit_rate",
        [this]() {
            const ChannelActivity a = totalActivity();
            const std::uint64_t accesses = a.reads + a.writes;
            return accesses ? double(a.rowHits) / double(accesses)
                            : 0.0;
        },
        "open-row hits per access, all channels");
}

} // namespace morph
