#include "dram/bank.hh"

#include <algorithm>

namespace morph
{

RowOutcome
Bank::schedule(const DramConfig &config, std::uint64_t row,
               bool is_write, Cycle earliest, Cycle act_ready,
               Cycle &cas_ready, Cycle &act_at)
{
    (void)is_write;
    Cycle start = std::max(earliest, readyAt_);
    act_at = ~Cycle(0);

    if (rowOpen_ && openRow_ == row) {
        cas_ready = start;
        return RowOutcome::Hit;
    }

    RowOutcome outcome = RowOutcome::Closed;
    if (rowOpen_) {
        // Row conflict: precharge first, honoring tRAS since the ACT.
        outcome = RowOutcome::Conflict;
        const Cycle pre_at =
            std::max(start, activatedAt_ + config.cpu(config.tRAS));
        start = pre_at + config.cpu(config.tRP);
    }

    const Cycle act = std::max(start, act_ready);
    act_at = act;
    activatedAt_ = act;
    rowOpen_ = true;
    openRow_ = row;
    cas_ready = act + config.cpu(config.tRCD);
    return outcome;
}

void
Bank::complete(const DramConfig &config, Cycle cas_at, Cycle data_start,
               bool is_write)
{
    if (is_write) {
        // Write recovery: the bank is busy until tWR past the burst.
        readyAt_ = data_start + config.cpu(config.tBURST) +
                   config.cpu(config.tWR);
    } else {
        // Reads pipeline at tCCD; tRTP before a precharge is folded
        // into the conservative tRAS gate in schedule().
        readyAt_ = cas_at + config.cpu(config.tCCD);
    }
}

} // namespace morph
