/**
 * @file
 * DRAM channel: banks, the shared data bus, and rank ACT windows.
 *
 * Requests are scheduled in arrival order (FCFS) against bank and bus
 * resources: bank preparation (PRE/ACT/CAS) proceeds in parallel
 * across banks, while data bursts serialize on the channel's data
 * bus. Rank-level tRRD and tFAW constraints gate activates. This
 * captures the two effects the paper's evaluation hinges on — row
 * locality and bandwidth saturation under metadata traffic bloat —
 * while staying simple enough to schedule each access in O(1).
 */

#ifndef MORPH_DRAM_CHANNEL_HH
#define MORPH_DRAM_CHANNEL_HH

#include <array>
#include <vector>

#include "dram/bank.hh"

namespace morph
{

/**
 * Timing detail of one scheduled access (request-lifecycle tracing).
 *
 * For a normally scheduled access, submit <= burstStart < complete:
 * [submit, burstStart) is queueing plus bank preparation, [burstStart,
 * complete) the data burst on the shared bus. A posted write under
 * write-queueing reports queued = true with all three equal to the
 * submit cycle (its bus activity happens later, at drain time).
 */
struct DramAccessTiming
{
    Cycle submit = 0;     ///< cycle the request entered the channel
    Cycle burstStart = 0; ///< cycle the data burst won the bus
    Cycle complete = 0;   ///< cycle the burst finished
    unsigned channel = 0; ///< owning channel index
    bool queued = false;  ///< buffered posted write, not yet issued
};

/** Per-channel activity counters (power model inputs). */
struct ChannelActivity
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowClosed = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t writeDrains = 0; ///< write-queue drain episodes
    Cycle busBusyCycles = 0; ///< CPU cycles of data-bus occupancy
};

/** One memory channel with its ranks and banks. */
class Channel
{
  public:
    explicit Channel(const DramConfig &config);

    /**
     * Schedule one line access submitted at CPU cycle @p when.
     *
     * @param timing optional out-param filled with the access's
     *               lifecycle cycles (tracing; never affects timing)
     * @return the CPU cycle at which the data burst completes
     */
    Cycle access(const DramCoord &coord, AccessType type, Cycle when,
                 DramAccessTiming *timing = nullptr);

    const ChannelActivity &activity() const { return activity_; }
    void resetActivity() { activity_ = ChannelActivity{}; }

    /** Earliest cycle the data bus is free (introspection/tests). */
    Cycle busFreeAt() const { return busFreeAt_; }

  private:
    /** Rank ACT-window bookkeeping for tRRD / tFAW. */
    struct RankWindow
    {
        std::array<Cycle, 4> lastActs{}; ///< rolling, oldest replaced
        unsigned next = 0;
        std::uint64_t actCount = 0;
        Cycle lastAct = 0;

        Cycle readyFor(const DramConfig &config) const;
        void record(Cycle act_at);
    };

    /** Schedule one access against bank/bus resources (no queuing). */
    Cycle scheduleAccess(const DramCoord &coord, AccessType type,
                         Cycle when, DramAccessTiming *timing = nullptr);

    /** Earliest start for @p rank at @p when, refresh applied. */
    Cycle afterRefresh(unsigned rank, Cycle when);

    /** Drain buffered writes down to the low watermark. */
    void drainWrites(Cycle when);

    const DramConfig &config_;
    std::vector<Bank> banks_;       ///< ranksPerChannel * banksPerRank
    std::vector<RankWindow> ranks_;
    std::vector<DramCoord> writeQueue_;
    std::vector<std::uint64_t> refreshesDone_; ///< per rank
    Cycle busFreeAt_ = 0;
    ChannelActivity activity_;
};

} // namespace morph

#endif // MORPH_DRAM_CHANNEL_HH
