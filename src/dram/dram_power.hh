/**
 * @file
 * DRAM energy model (Micron-style event energies + background power).
 *
 * USIMM computes memory power from the DDR3 current specs of a 4 Gb
 * x8 device; we fold those into representative per-event energies for
 * a x64 rank and a static background term. Absolute joules are
 * approximate; the relative energy/EDP comparisons of paper Fig 18
 * depend only on event counts and execution time, which are exact
 * model outputs.
 */

#ifndef MORPH_DRAM_DRAM_POWER_HH
#define MORPH_DRAM_DRAM_POWER_HH

#include "dram/channel.hh"

namespace morph
{

/** Per-event energies and background power for one channel's ranks. */
struct DramPowerParams
{
    double activateEnergyJ = 15e-9; ///< ACT+PRE pair, full rank
    double readEnergyJ = 10e-9;     ///< 64 B read burst incl. I/O
    double writeEnergyJ = 10e-9;    ///< 64 B write burst incl. I/O
    double refreshEnergyJ = 120e-9; ///< one all-bank refresh, per rank
    double backgroundWattsPerRank = 0.25;
};

/** Energy breakdown over an execution interval. */
struct DramEnergy
{
    double activateJ = 0;
    double readJ = 0;
    double writeJ = 0;
    double refreshJ = 0;
    double backgroundJ = 0;

    double totalJ() const
    {
        return activateJ + readJ + writeJ + refreshJ + backgroundJ;
    }
};

/**
 * Compute DRAM energy for @p activity accumulated over
 * @p elapsed_seconds with @p total_ranks ranks powered.
 */
DramEnergy dramEnergy(const DramPowerParams &params,
                      const ChannelActivity &activity,
                      double elapsed_seconds, unsigned total_ranks);

} // namespace morph

#endif // MORPH_DRAM_DRAM_POWER_HH
