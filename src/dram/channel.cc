#include "dram/channel.hh"

#include <algorithm>
#include "common/check.hh"

namespace morph
{

Channel::Channel(const DramConfig &config)
    : config_(config),
      banks_(config.ranksPerChannel * config.banksPerRank),
      ranks_(config.ranksPerChannel),
      refreshesDone_(config.ranksPerChannel, 0)
{
    if (config.writeQueueing)
        writeQueue_.reserve(config.writeQueueHigh);
}

Cycle
Channel::afterRefresh(unsigned rank, Cycle when)
{
    if (!config_.refresh)
        return when;
    // Ranks refresh every tREFI, staggered across the interval; a
    // command landing inside a refresh window waits it out.
    const Cycle interval = config_.cpu(config_.tREFI);
    const Cycle blocked = config_.cpu(config_.tRFC);
    const Cycle offset =
        interval * rank / std::max(1u, config_.ranksPerChannel);
    const Cycle phase = (when + interval - offset) % interval;
    // Account refreshes that have elapsed up to `when` (power model).
    const std::uint64_t elapsed = (when + interval - offset) / interval;
    if (elapsed > refreshesDone_[rank]) {
        activity_.refreshes += elapsed - refreshesDone_[rank];
        refreshesDone_[rank] = elapsed;
    }
    if (phase < blocked)
        return when + (blocked - phase);
    return when;
}

void
Channel::drainWrites(Cycle when)
{
    ++activity_.writeDrains;
    while (writeQueue_.size() > config_.writeQueueLow) {
        const DramCoord coord = writeQueue_.front();
        writeQueue_.erase(writeQueue_.begin());
        scheduleAccess(coord, AccessType::Write, when);
    }
}

Cycle
Channel::RankWindow::readyFor(const DramConfig &config) const
{
    // tFAW: the new ACT must start after the 4th-most-recent ACT plus
    // the window; tRRD: after the most recent ACT plus tRRD. Neither
    // gate applies until enough activates have actually occurred.
    const Cycle faw_gate =
        actCount >= lastActs.size()
            ? lastActs[next] + config.cpu(config.tFAW)
            : 0;
    const Cycle rrd_gate =
        actCount >= 1 ? lastAct + config.cpu(config.tRRD) : 0;
    return std::max(faw_gate, rrd_gate);
}

void
Channel::RankWindow::record(Cycle act_at)
{
    lastActs[next] = act_at;
    next = unsigned((next + 1) % lastActs.size());
    lastAct = act_at;
    ++actCount;
}

Cycle
Channel::access(const DramCoord &coord, AccessType type, Cycle when,
                DramAccessTiming *timing)
{
    if (config_.writeQueueing && type == AccessType::Write) {
        // Posted write: buffered, bus-invisible until a drain.
        writeQueue_.push_back(coord);
        if (timing) {
            timing->submit = when;
            timing->burstStart = when;
            timing->complete = when;
            timing->queued = true;
        }
        if (writeQueue_.size() >= config_.writeQueueHigh)
            drainWrites(when);
        return when;
    }
    const Cycle done = scheduleAccess(coord, type, when, timing);
    return done;
}

Cycle
Channel::scheduleAccess(const DramCoord &coord, AccessType type,
                        Cycle when, DramAccessTiming *timing)
{
    MORPH_CHECK_LT(coord.rank, config_.ranksPerChannel);
    MORPH_CHECK_LT(coord.bank, config_.banksPerRank);
    when = afterRefresh(coord.rank, when);

    Bank &bank = banks_[coord.rank * config_.banksPerRank + coord.bank];
    RankWindow &rank = ranks_[coord.rank];
    const bool is_write = type == AccessType::Write;

    Cycle cas_ready, act_at;
    const RowOutcome outcome =
        bank.schedule(config_, coord.row, is_write, when,
                      rank.readyFor(config_), cas_ready, act_at);

    if (act_at != ~Cycle(0)) {
        rank.record(act_at);
        ++activity_.activates;
    }
    switch (outcome) {
      case RowOutcome::Hit:
        ++activity_.rowHits;
        break;
      case RowOutcome::Closed:
        ++activity_.rowClosed;
        break;
      case RowOutcome::Conflict:
        ++activity_.rowConflicts;
        break;
    }

    // Column access latency, then the burst must win the shared bus.
    const unsigned cas_latency = is_write ? config_.tCWL : config_.tCL;
    const Cycle data_ready = cas_ready + config_.cpu(cas_latency);
    const Cycle data_start = std::max(data_ready, busFreeAt_);
    busFreeAt_ = data_start + config_.cpu(config_.tBURST);
    activity_.busBusyCycles += config_.cpu(config_.tBURST);

    // The CAS actually issued CL before the data burst started.
    const Cycle cas_at = data_start - config_.cpu(cas_latency);
    bank.complete(config_, cas_at, data_start, is_write);
    if (is_write)
        ++activity_.writes;
    else
        ++activity_.reads;

    const Cycle done = data_start + config_.cpu(config_.tBURST);
    if (timing) {
        timing->submit = when;
        timing->burstStart = data_start;
        timing->complete = done;
        timing->queued = false;
    }
    return done;
}

} // namespace morph
