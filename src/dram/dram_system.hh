/**
 * @file
 * Top-level DRAM system: channel demux plus aggregate accounting.
 */

#ifndef MORPH_DRAM_DRAM_SYSTEM_HH
#define MORPH_DRAM_DRAM_SYSTEM_HH

#include <vector>

#include "dram/channel.hh"

namespace morph
{

/** The main-memory system (all channels). */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config = DramConfig{});

    /**
     * Schedule one 64-byte access submitted at CPU cycle @p when.
     *
     * @return completion CPU cycle (data burst fully transferred)
     */
    Cycle access(LineAddr line, AccessType type, Cycle when);

    /** Aggregate activity over all channels. */
    ChannelActivity totalActivity() const;

    /** Per-channel activity. */
    const ChannelActivity &activity(unsigned channel) const;

    /** Zero all activity counters (warm-up boundary). */
    void resetActivity();

    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;
    std::vector<Channel> channels_;
};

} // namespace morph

#endif // MORPH_DRAM_DRAM_SYSTEM_HH
