/**
 * @file
 * Top-level DRAM system: channel demux plus aggregate accounting.
 */

#ifndef MORPH_DRAM_DRAM_SYSTEM_HH
#define MORPH_DRAM_DRAM_SYSTEM_HH

#include <string>
#include <vector>

#include "dram/channel.hh"

namespace morph
{

class StatRegistry;

/** The main-memory system (all channels). */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config = DramConfig{});

    /**
     * Schedule one 64-byte access submitted at CPU cycle @p when.
     *
     * @param timing optional lifecycle detail for tracing (channel
     *               index, queue/burst/complete cycles)
     * @return completion CPU cycle (data burst fully transferred)
     */
    Cycle access(LineAddr line, AccessType type, Cycle when,
                 DramAccessTiming *timing = nullptr);

    /** Aggregate activity over all channels. */
    ChannelActivity totalActivity() const;

    /** Per-channel activity. */
    const ChannelActivity &activity(unsigned channel) const;

    /** Zero all activity counters (warm-up boundary). */
    void resetActivity();

    /**
     * Register per-channel activity counters ("<prefix>.chN.*") and
     * aggregate gauges ("<prefix>.row_hit_rate", ...) into
     * @p registry. Pointers into the channels are held; the registry
     * must not outlive this system.
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;
    std::vector<Channel> channels_;
};

} // namespace morph

#endif // MORPH_DRAM_DRAM_SYSTEM_HH
