/**
 * @file
 * DDR3 main-memory configuration (paper Table I).
 *
 * Baseline: DDR3-1600 (800 MHz bus), 2 channels x 2 ranks x 8 banks,
 * 64K rows per bank, 128 cachelines (8 KB) per row — a 16 GB system.
 * Timing parameters are in memory-bus cycles; the simulator runs on
 * the 3.2 GHz CPU clock, cpuPerMemCycle ticks per bus cycle.
 */

#ifndef MORPH_DRAM_DRAM_CONFIG_HH
#define MORPH_DRAM_DRAM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace morph
{

/** Organization and timing of the DRAM system. */
struct DramConfig
{
    // Organization.
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned linesPerRow = 128; ///< columns (cachelines) per row

    // Clocking: CPU cycles per memory-bus cycle (3.2 GHz / 800 MHz).
    unsigned cpuPerMemCycle = 4;
    double cpuFreqHz = 3.2e9;

    // DDR3-1600 timing, in memory-bus cycles.
    unsigned tCL = 11;   ///< CAS latency
    unsigned tCWL = 8;   ///< CAS write latency
    unsigned tRCD = 11;  ///< RAS-to-CAS delay
    unsigned tRP = 11;   ///< precharge
    unsigned tRAS = 28;  ///< row-active minimum
    unsigned tBURST = 4; ///< BL8 data burst
    unsigned tCCD = 4;   ///< CAS-to-CAS, same bank group
    unsigned tWR = 12;   ///< write recovery
    unsigned tRTP = 6;   ///< read-to-precharge
    unsigned tRRD = 5;   ///< ACT-to-ACT, same rank
    unsigned tFAW = 32;  ///< four-activate window

    // Refresh (per rank, staggered). Disabled by default so the
    // headline experiments match EXPERIMENTS.md; enable for absolute
    // latency realism (adds the usual ~2-4% slowdown).
    bool refresh = false;
    unsigned tREFI = 6240; ///< refresh interval (7.8 us @ 800 MHz)
    unsigned tRFC = 208;   ///< refresh cycle time (4 Gb device)

    // Posted-write buffering with read priority. When enabled,
    // writes enter a per-channel queue and only occupy the bus when
    // the queue crosses the high watermark (drained down to the low
    // one) — the USIMM write-drain policy. Disabled by default (see
    // above).
    bool writeQueueing = false;
    unsigned writeQueueHigh = 32;
    unsigned writeQueueLow = 16;

    /** Helpers in CPU cycles. */
    Cycle cpu(unsigned mem_cycles) const
    {
        return Cycle(mem_cycles) * cpuPerMemCycle;
    }

    /** Total banks across the system. */
    unsigned totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }
};

/** Decoded position of a line in the DRAM system. */
struct DramCoord
{
    unsigned channel;
    unsigned rank;
    unsigned bank;
    std::uint64_t row;
    unsigned column;
};

/**
 * Address mapping: channel-interleaved at line granularity with
 * row-buffer-friendly column placement:
 *
 *   line -> | row | rank | bank | column | channel |
 *
 * Consecutive lines alternate channels and then walk columns within
 * a row, so streaming accesses enjoy row-buffer hits on both channels.
 */
DramCoord decodeLine(const DramConfig &config, LineAddr line);

} // namespace morph

#endif // MORPH_DRAM_DRAM_CONFIG_HH
