#include "dram/dram_config.hh"

namespace morph
{

DramCoord
decodeLine(const DramConfig &config, LineAddr line)
{
    DramCoord coord;
    coord.channel = unsigned(line % config.channels);
    line /= config.channels;
    coord.column = unsigned(line % config.linesPerRow);
    line /= config.linesPerRow;
    coord.bank = unsigned(line % config.banksPerRank);
    line /= config.banksPerRank;
    coord.rank = unsigned(line % config.ranksPerChannel);
    line /= config.ranksPerChannel;
    coord.row = line;
    return coord;
}

} // namespace morph
