/**
 * @file
 * Tests for the writes-to-overflow characterization (Figs 6 / 10).
 */

#include <gtest/gtest.h>

#include "counters/counter_factory.hh"
#include "counters/overflow_model.hh"
#include "counters/split_counter.hh"

namespace morph
{
namespace
{

TEST(OverflowModel, Sc64AnchorPoints)
{
    SplitCounterFormat reference(64);
    // Fig 6: one hot counter -> 2^6 writes; all 64 used -> ~64 * 63.
    EXPECT_EQ(writesToOverflow(reference, 1), 64u);
    EXPECT_EQ(writesToOverflow(reference, 64), 64u * 63 + 1);
}

TEST(OverflowModel, Sc128AnchorPoints)
{
    SplitCounterFormat reference(128);
    // Fig 6: SC-128 tolerates 8x fewer writes than SC-64.
    EXPECT_EQ(writesToOverflow(reference, 1), 8u);
    EXPECT_EQ(writesToOverflow(reference, 128), 128u * 7 + 1);
}

TEST(OverflowModel, MorphZccAnchorPoints)
{
    auto fmt = makeCounterFormat(CounterKind::Morph);
    // Fig 10: with k <= 16 counters used, each gets 16 bits.
    EXPECT_EQ(writesToOverflow(*fmt, 1), 1ull << 16);
    EXPECT_EQ(writesToOverflow(*fmt, 16), 16u * 65535 + 1);
    // k = 64: 4-bit counters.
    EXPECT_EQ(writesToOverflow(*fmt, 64), 64u * 15 + 1);
}

TEST(OverflowModel, ZccBeatsSc64WhenSparse)
{
    auto morph_fmt = makeCounterFormat(CounterKind::Morph);
    SplitCounterFormat sc64(64);
    // The paper's headline: below ~25% usage ZCC tolerates far more
    // writes than SC-64 despite double the arity.
    for (unsigned used : {1u, 4u, 8u, 16u, 32u}) {
        EXPECT_GT(writesToOverflow(*morph_fmt, used),
                  writesToOverflow(sc64, used))
            << "used=" << used;
    }
}

TEST(OverflowModel, RebasingBeatsZccOnlyWhenDense)
{
    auto with = makeCounterFormat(CounterKind::Morph);
    auto without = makeCounterFormat(CounterKind::MorphZccOnly);
    EXPECT_GT(writesToOverflow(*with, 128, 1u << 22),
              4 * writesToOverflow(*without, 128, 1u << 22));
}

TEST(OverflowModel, UniformMorphExceedsFiveHundred)
{
    // §V: "morphable counters can tolerate 500+ writes before an
    // overflow, when counters are written uniformly".
    auto fmt = makeCounterFormat(CounterKind::Morph);
    EXPECT_GT(writesToOverflow(*fmt, 128, 1u << 22), 500u);
}

TEST(OverflowModel, AdversarialBoundMatchesPaper)
{
    auto fmt = makeCounterFormat(CounterKind::Morph);
    // Priming 52 counters then hammering a 53rd: 52 + 15 + 1 writes.
    EXPECT_EQ(adversarialWritesToOverflow(*fmt, 52), 68u);
    // The baseline split counter is even weaker (64-write worst case).
    SplitCounterFormat sc64(64);
    EXPECT_LE(adversarialWritesToOverflow(sc64, 1), 65u);
}

TEST(OverflowModel, CapRespected)
{
    auto fmt = makeCounterFormat(CounterKind::Morph);
    EXPECT_EQ(writesToOverflow(*fmt, 1, 1000), 1000u);
}

} // namespace
} // namespace morph
