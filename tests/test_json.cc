/**
 * @file
 * Unit tests for the minimal JSON value model, parser, and emit
 * helpers in common/json — the foundation every morphscope exporter
 * and the morphbench comparator share.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "common/rng.hh"
#include "common/trace_log.hh"

namespace morph
{
namespace
{

JsonValue
parseOk(const std::string &text)
{
    bool ok = false;
    std::string error;
    JsonValue value = jsonParse(text, ok, error);
    EXPECT_TRUE(ok) << error;
    return value;
}

void
expectParseFails(const std::string &text)
{
    JsonValue out;
    EXPECT_FALSE(jsonParse(text, out)) << "accepted: " << text;
}

TEST(JsonParser, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonParser, NumbersRoundTripExactly)
{
    // Counter values near 2^53 and full-precision doubles must
    // survive emit -> parse unchanged.
    for (const double v : {0.0, 1.0, 1e15 - 1, 0.1, 2.9404499999999998,
                           -123456789.25}) {
        const JsonValue parsed = parseOk(jsonNumber(v));
        EXPECT_DOUBLE_EQ(parsed.asNumber(), v);
    }
}

TEST(JsonParser, NonFiniteEmitsNullParsesToNaN)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    const JsonValue v = parseOk("null");
    EXPECT_TRUE(std::isnan(v.asNumber()));
}

TEST(JsonParser, NestedStructure)
{
    const JsonValue doc = parseOk(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}");
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->elements()[1].asNumber(), 2.0);
    EXPECT_TRUE(a->elements()[2].find("b")->asBool());
    EXPECT_TRUE(doc.find("c")->find("d")->isNull());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, ObjectPreservesKeyOrder)
{
    const JsonValue doc = parseOk("{\"z\": 1, \"a\": 2, \"m\": 3}");
    const auto &keys = doc.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "z");
    EXPECT_EQ(keys[1], "a");
    EXPECT_EQ(keys[2], "m");
}

TEST(JsonParser, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\\"b\\\\c\\n\\t\"").asString(),
              "a\"b\\c\n\t");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(JsonParser, EscapeRoundTrip)
{
    const std::string nasty = "he said \"hi\"\n\tpath\\x\x01end";
    const JsonValue parsed =
        parseOk("\"" + jsonEscape(nasty) + "\"");
    EXPECT_EQ(parsed.asString(), nasty);
}

TEST(JsonParser, EscapesEveryControlCharacter)
{
    // U+0000 .. U+001F must all emit as escapes and read back intact
    // — a single raw control byte makes the whole document invalid.
    for (int c = 0; c < 0x20; ++c) {
        const std::string raw(1, char(c));
        const std::string escaped = jsonEscape(raw);
        for (const char b : escaped)
            EXPECT_GE(static_cast<unsigned char>(b), 0x20u)
                << "raw control byte " << c << " in '" << escaped
                << "'";
        EXPECT_EQ(parseOk("\"" + escaped + "\"").asString(), raw)
            << "c=" << c;
    }
}

TEST(JsonParser, UnicodeEscapeRoundTrip)
{
    // \uXXXX the parser accepts must survive re-emission: parse to
    // UTF-8, escape, parse again, same bytes.
    for (const char *literal :
         {"\"\\u0000\"", "\"\\u0007\"", "\"\\u001f\"", "\"\\u0041\"",
          "\"\\u00e9\"", "\"\\u20ac\"", "\"\\uffff\""}) {
        const std::string once = parseOk(literal).asString();
        const std::string twice =
            parseOk("\"" + jsonEscape(once) + "\"").asString();
        EXPECT_EQ(twice, once) << literal;
    }
}

TEST(JsonParser, FuzzedByteStringsRoundTrip)
{
    // Seeded fuzz: arbitrary byte strings — control bytes, quotes,
    // backslashes, high bytes — must survive escape -> parse exactly.
    Rng rng(0x6a736f6e66757a7aull);
    for (int iter = 0; iter < 500; ++iter) {
        std::string raw;
        const std::size_t len = rng.below(64);
        for (std::size_t i = 0; i < len; ++i)
            raw.push_back(char(rng.below(256)));
        const JsonValue parsed =
            parseOk("\"" + jsonEscape(raw) + "\"");
        ASSERT_EQ(parsed.asString(), raw) << "iteration " << iter;
    }
}

TEST(TraceLogJson, EventNamesWithOddBytesStayValidJson)
{
    // Trace event names/categories pass through jsonEscape: an
    // instrumentation site with a quote or control byte in its name
    // must still produce a parseable Chrome trace document.
    TraceLog log(16);
    log.nameTrack(1, "core \"zero\"\n");
    log.complete("fill\tline\x01", "cat\"egory", 1, 10, 5, 0x40);
    log.instant("drop\x1f", "ev\\ent", 1, 20);
    std::ostringstream os;
    log.write(os);

    const JsonValue doc = parseOk(os.str());
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 3u);
    EXPECT_EQ(events->elements()[1].find("name")->asString(),
              "fill\tline\x01");
    EXPECT_EQ(events->elements()[1].find("cat")->asString(),
              "cat\"egory");
    EXPECT_EQ(events->elements()[2].find("name")->asString(),
              "drop\x1f");
    EXPECT_EQ(events->elements()[2].find("cat")->asString(),
              "ev\\ent");
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    expectParseFails("");
    expectParseFails("{");
    expectParseFails("[1, 2");
    expectParseFails("{\"a\": }");
    expectParseFails("{\"a\": 1,}");  // no trailing commas... in keys
    expectParseFails("\"unterminated");
    expectParseFails("tru");
    expectParseFails("1 2");          // trailing characters
    expectParseFails("{a: 1}");       // unquoted key
    expectParseFails("1.2.3");
}

TEST(JsonParser, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    expectParseFails(deep);
}

TEST(JsonParser, WhitespaceTolerant)
{
    const JsonValue doc =
        parseOk("  {\r\n\t\"k\" :\n [ 1 ,\t2 ]\n}  ");
    EXPECT_EQ(doc.find("k")->size(), 2u);
}

} // namespace
} // namespace morph
