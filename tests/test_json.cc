/**
 * @file
 * Unit tests for the minimal JSON value model, parser, and emit
 * helpers in common/json — the foundation every morphscope exporter
 * and the morphbench comparator share.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/json.hh"

namespace morph
{
namespace
{

JsonValue
parseOk(const std::string &text)
{
    bool ok = false;
    std::string error;
    JsonValue value = jsonParse(text, ok, error);
    EXPECT_TRUE(ok) << error;
    return value;
}

void
expectParseFails(const std::string &text)
{
    JsonValue out;
    EXPECT_FALSE(jsonParse(text, out)) << "accepted: " << text;
}

TEST(JsonParser, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonParser, NumbersRoundTripExactly)
{
    // Counter values near 2^53 and full-precision doubles must
    // survive emit -> parse unchanged.
    for (const double v : {0.0, 1.0, 1e15 - 1, 0.1, 2.9404499999999998,
                           -123456789.25}) {
        const JsonValue parsed = parseOk(jsonNumber(v));
        EXPECT_DOUBLE_EQ(parsed.asNumber(), v);
    }
}

TEST(JsonParser, NonFiniteEmitsNullParsesToNaN)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    const JsonValue v = parseOk("null");
    EXPECT_TRUE(std::isnan(v.asNumber()));
}

TEST(JsonParser, NestedStructure)
{
    const JsonValue doc = parseOk(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}");
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->elements()[1].asNumber(), 2.0);
    EXPECT_TRUE(a->elements()[2].find("b")->asBool());
    EXPECT_TRUE(doc.find("c")->find("d")->isNull());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, ObjectPreservesKeyOrder)
{
    const JsonValue doc = parseOk("{\"z\": 1, \"a\": 2, \"m\": 3}");
    const auto &keys = doc.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "z");
    EXPECT_EQ(keys[1], "a");
    EXPECT_EQ(keys[2], "m");
}

TEST(JsonParser, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\\"b\\\\c\\n\\t\"").asString(),
              "a\"b\\c\n\t");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(JsonParser, EscapeRoundTrip)
{
    const std::string nasty = "he said \"hi\"\n\tpath\\x\x01end";
    const JsonValue parsed =
        parseOk("\"" + jsonEscape(nasty) + "\"");
    EXPECT_EQ(parsed.asString(), nasty);
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    expectParseFails("");
    expectParseFails("{");
    expectParseFails("[1, 2");
    expectParseFails("{\"a\": }");
    expectParseFails("{\"a\": 1,}");  // no trailing commas... in keys
    expectParseFails("\"unterminated");
    expectParseFails("tru");
    expectParseFails("1 2");          // trailing characters
    expectParseFails("{a: 1}");       // unquoted key
    expectParseFails("1.2.3");
}

TEST(JsonParser, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    expectParseFails(deep);
}

TEST(JsonParser, WhitespaceTolerant)
{
    const JsonValue doc =
        parseOk("  {\r\n\t\"k\" :\n [ 1 ,\t2 ]\n}  ");
    EXPECT_EQ(doc.find("k")->size(), 2u);
}

} // namespace
} // namespace morph
