/**
 * @file
 * Parameterized invariant sweep over tree geometries: every config x
 * memory size combination must produce a structurally sound tree.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "integrity/tree_geometry.hh"

namespace morph
{
namespace
{

using SweepParam = std::tuple<int, std::uint64_t>;

TreeConfig
configByIndex(int index)
{
    switch (index) {
      case 0:
        return TreeConfig::sgx();
      case 1:
        return TreeConfig::vault();
      case 2:
        return TreeConfig::sc64();
      case 3:
        return TreeConfig::sc128();
      case 4:
        return TreeConfig::morph();
      case 5:
        return TreeConfig::morphZccOnly();
      case 6:
        return TreeConfig::sc64Rebased();
      default:
        return TreeConfig::bonsaiMacTree();
    }
}

class GeometrySweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    TreeConfig config() const
    {
        return configByIndex(std::get<0>(GetParam()));
    }
    std::uint64_t memBytes() const { return std::get<1>(GetParam()); }
};

TEST_P(GeometrySweep, LevelsShrinkByArity)
{
    const TreeGeometry geom(memBytes(), config());
    const auto &levels = geom.levels();
    ASSERT_GE(levels.size(), 1u);

    std::uint64_t covered = geom.dataLines();
    for (const auto &info : levels) {
        EXPECT_EQ(info.entries, (covered + info.arity - 1) / info.arity)
            << "level " << info.level;
        EXPECT_EQ(info.bytes, info.entries * lineBytes);
        covered = info.entries;
    }
    EXPECT_EQ(levels.back().entries, 1u);
}

TEST_P(GeometrySweep, PlacementIsContiguousAndDisjoint)
{
    const TreeGeometry geom(memBytes(), config());
    LineAddr next = geom.dataLines();
    for (const auto &info : geom.levels()) {
        EXPECT_EQ(info.baseLine, next);
        next += info.entries;
    }
    EXPECT_EQ(geom.totalBytes(), next * lineBytes);
}

TEST_P(GeometrySweep, ParentChildInverse)
{
    const TreeGeometry geom(memBytes(), config());
    Rng rng(std::get<0>(GetParam()) * 31 + 7);
    for (int i = 0; i < 200; ++i) {
        const LineAddr data_line = rng.below(geom.dataLines());
        const std::uint64_t entry = geom.parentIndex(0, data_line);
        const unsigned slot = geom.childSlot(0, data_line);
        EXPECT_EQ(entry * geom.levels()[0].arity + slot, data_line);
        EXPECT_LT(entry, geom.levels()[0].entries);
        EXPECT_LT(slot, geom.levels()[0].arity);
    }
}

TEST_P(GeometrySweep, EntryOfLineRoundTripsAtRandom)
{
    const TreeGeometry geom(memBytes(), config());
    Rng rng(std::get<0>(GetParam()) * 131 + 11);
    for (const auto &info : geom.levels()) {
        const std::uint64_t index = rng.below(info.entries);
        unsigned out_level;
        std::uint64_t out_index;
        ASSERT_TRUE(geom.entryOfLine(geom.lineOfEntry(info.level, index),
                                     out_level, out_index));
        EXPECT_EQ(out_level, info.level);
        EXPECT_EQ(out_index, index);
    }
}

TEST_P(GeometrySweep, MetadataOverheadIsBounded)
{
    const TreeGeometry geom(memBytes(), config());
    // Even SGX's 8-ary design keeps total metadata under 15% of data.
    EXPECT_LT(double(geom.totalBytes() - geom.memBytes()),
              0.15 * double(geom.memBytes()));
    // The tree above the encryption counters is always smaller than
    // the counters themselves.
    EXPECT_LT(geom.treeBytes(), geom.encryptionBytes());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsTimesSizes, GeometrySweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(std::uint64_t(1) << 20,
                                         std::uint64_t(1) << 26,
                                         std::uint64_t(1) << 30,
                                         std::uint64_t(16) << 30,
                                         std::uint64_t(64) << 30)));

} // namespace
} // namespace morph
