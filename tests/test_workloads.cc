/**
 * @file
 * Tests for trace generators and the workload database.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/workload_db.hh"

namespace morph
{
namespace
{

constexpr std::uint64_t GiB = 1ull << 30;

GeneratorParams
baseParams(Pattern)
{
    GeneratorParams params;
    params.regionBaseLine = 1000 * linesPerPage;
    params.regionLines = 1ull << 22;
    params.footprintLines = 1ull << 16;
    params.readPki = 20;
    params.writePki = 10;
    params.seed = 7;
    return params;
}

class PatternParam : public ::testing::TestWithParam<Pattern>
{
};

TEST_P(PatternParam, EntriesStayInsideRegion)
{
    const auto params = baseParams(GetParam());
    auto gen = makeGenerator(GetParam(), params);
    for (int i = 0; i < 20000; ++i) {
        const TraceEntry entry = gen->next();
        ASSERT_GE(entry.line, params.regionBaseLine);
        ASSERT_LT(entry.line,
                  params.regionBaseLine + params.regionLines);
    }
}

TEST_P(PatternParam, DeterministicForSeed)
{
    const auto params = baseParams(GetParam());
    auto a = makeGenerator(GetParam(), params);
    auto b = makeGenerator(GetParam(), params);
    for (int i = 0; i < 1000; ++i) {
        const TraceEntry ea = a->next();
        const TraceEntry eb = b->next();
        ASSERT_EQ(ea.line, eb.line);
        ASSERT_EQ(ea.gap, eb.gap);
        ASSERT_EQ(int(ea.type), int(eb.type));
    }
}

TEST_P(PatternParam, WriteFractionMatchesPki)
{
    const auto params = baseParams(GetParam());
    auto gen = makeGenerator(GetParam(), params);
    unsigned writes = 0;
    constexpr int entries = 30000;
    for (int i = 0; i < entries; ++i)
        writes += gen->next().type == AccessType::Write;
    // writePki / (readPki + writePki) = 1/3.
    EXPECT_NEAR(double(writes) / entries, 1.0 / 3.0, 0.02);
}

TEST_P(PatternParam, GapMatchesPki)
{
    const auto params = baseParams(GetParam());
    auto gen = makeGenerator(GetParam(), params);
    double total_gap = 0;
    constexpr int entries = 30000;
    for (int i = 0; i < entries; ++i)
        total_gap += gen->next().gap;
    // 30 accesses per kilo-instruction -> ~33 instructions per access.
    EXPECT_NEAR(total_gap / entries, 1000.0 / 30.0, 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternParam,
                         ::testing::Values(Pattern::Streaming,
                                           Pattern::Random,
                                           Pattern::HotCold,
                                           Pattern::Mixed));

TEST(StreamingPattern, WritesSweepSequentially)
{
    auto params = baseParams(Pattern::Streaming);
    auto gen = makeGenerator(Pattern::Streaming, params);
    // Consecutive writes touch consecutive lines of some page (after
    // the physical permutation, offsets within a page stay ordered).
    std::uint64_t last_offset = ~0ull;
    unsigned sequential = 0, samples = 0;
    for (int i = 0; i < 50000 && samples < 1000; ++i) {
        const TraceEntry entry = gen->next();
        if (entry.type != AccessType::Write)
            continue;
        const std::uint64_t offset = entry.line % linesPerPage;
        if (last_offset != ~0ull && offset == last_offset + 1)
            ++sequential;
        last_offset = offset;
        ++samples;
    }
    EXPECT_GT(sequential, samples * 9 / 10);
}

TEST(HotColdPattern, PageSkewIsVisible)
{
    auto params = baseParams(Pattern::HotCold);
    params.zipfExponent = 1.0;
    auto gen = makeGenerator(Pattern::HotCold, params);
    std::map<std::uint64_t, unsigned> page_counts;
    for (int i = 0; i < 50000; ++i)
        ++page_counts[pageOf(addrOf(gen->next().line))];
    unsigned hottest = 0;
    for (const auto &kv : page_counts)
        hottest = std::max(hottest, kv.second);
    // With zipf(1.0) the hottest page dwarfs the uniform share.
    const double uniform_share = 50000.0 / double(params.footprintLines /
                                                  linesPerPage);
    EXPECT_GT(hottest, 20 * uniform_share);
}

TEST(RandomPattern, WriteWorkingSetIsConcentrated)
{
    auto params = baseParams(Pattern::Random);
    params.writeHotFraction = 0.01;
    auto gen = makeGenerator(Pattern::Random, params);
    std::set<LineAddr> write_lines, read_lines;
    for (int i = 0; i < 60000; ++i) {
        const TraceEntry entry = gen->next();
        if (entry.type == AccessType::Write)
            write_lines.insert(entry.line);
        else
            read_lines.insert(entry.line);
    }
    // Writes revisit a small set; reads spray over the footprint.
    EXPECT_LT(write_lines.size() * 10, read_lines.size());
}

TEST(MixedPattern, UsesMidRangeOfEachPage)
{
    auto params = baseParams(Pattern::Mixed);
    auto gen = makeGenerator(Pattern::Mixed, params);
    std::map<std::uint64_t, std::set<std::uint64_t>> offsets_by_page;
    for (int i = 0; i < 200000; ++i) {
        const TraceEntry entry = gen->next();
        offsets_by_page[entry.line / linesPerPage].insert(
            entry.line % linesPerPage);
    }
    // Fully revisited pages use ~26 of 64 line offsets (~40%).
    std::size_t full_pages = 0;
    for (const auto &kv : offsets_by_page) {
        if (kv.second.size() >= 20) {
            ++full_pages;
            EXPECT_LE(kv.second.size(), 30u);
        }
    }
    EXPECT_GT(full_pages, 0u);
}

TEST(PagePermutationTest, IsBijective)
{
    for (const std::uint64_t n : {1ull, 2ull, 100ull, 4097ull}) {
        PagePermutation perm(n, 99);
        std::set<std::uint64_t> images;
        for (std::uint64_t v = 0; v < n; ++v) {
            const std::uint64_t p = perm(v);
            ASSERT_LT(p, n);
            images.insert(p);
        }
        EXPECT_EQ(images.size(), n);
    }
}

TEST(PagePermutationTest, ScattersNeighbours)
{
    PagePermutation perm(1 << 16, 3);
    unsigned adjacent = 0;
    for (std::uint64_t v = 0; v + 1 < 1000; ++v)
        adjacent += perm(v + 1) == perm(v) + 1;
    EXPECT_LT(adjacent, 10u);
}

TEST(WorkloadDb, TableMatchesPaper)
{
    EXPECT_EQ(workloadTable().size(), 22u);
    EXPECT_EQ(mixTable().size(), 6u);

    const WorkloadSpec *mcf = findWorkload("mcf");
    ASSERT_NE(mcf, nullptr);
    EXPECT_DOUBLE_EQ(mcf->readPki, 69);
    EXPECT_DOUBLE_EQ(mcf->writePki, 2);
    EXPECT_DOUBLE_EQ(mcf->footprintGb, 7.5);

    const WorkloadSpec *gcc = findWorkload("gcc");
    ASSERT_NE(gcc, nullptr);
    EXPECT_DOUBLE_EQ(gcc->writePki, 53);
    EXPECT_EQ(int(gcc->pattern), int(Pattern::Streaming));

    EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(WorkloadDb, MixPartsResolve)
{
    for (const MixSpec &mix : mixTable())
        for (const auto &part : mix.parts)
            EXPECT_NE(findWorkload(part), nullptr)
                << mix.name << " references " << part;
}

TEST(WorkloadDb, CoreRegionsAreDisjoint)
{
    const WorkloadSpec *spec = findWorkload("lbm");
    ASSERT_NE(spec, nullptr);
    std::set<std::uint64_t> regions;
    for (unsigned core = 0; core < 4; ++core) {
        auto trace = makeWorkloadTrace(*spec, core, 4, 16 * GiB, 1);
        for (int i = 0; i < 2000; ++i) {
            const LineAddr line = trace->next().line;
            const std::uint64_t region = line / (16 * GiB / 64 / 4);
            regions.insert(region);
            ASSERT_EQ(region, core);
        }
    }
    EXPECT_EQ(regions.size(), 4u);
}

TEST(WorkloadDb, FootprintScaleShrinksWorkingSet)
{
    const WorkloadSpec *spec = findWorkload("mcf");
    ASSERT_NE(spec, nullptr);
    auto full = makeWorkloadTrace(*spec, 0, 4, 16 * GiB, 1, 1.0);
    auto scaled = makeWorkloadTrace(*spec, 0, 4, 16 * GiB, 1, 64.0);
    std::set<std::uint64_t> full_pages, scaled_pages;
    for (int i = 0; i < 20000; ++i) {
        full_pages.insert(full->next().line / linesPerPage);
        scaled_pages.insert(scaled->next().line / linesPerPage);
    }
    EXPECT_GT(full_pages.size(), 2 * scaled_pages.size());
}

TEST(WorkloadDbDeath, RejectsBadCore)
{
    const WorkloadSpec *spec = findWorkload("mcf");
    EXPECT_EXIT(makeWorkloadTrace(*spec, 4, 4, 16 * GiB, 1),
                ::testing::ExitedWithCode(1), "core");
}

} // namespace
} // namespace morph
