/**
 * @file
 * Unit and property tests for generalized split counters (SC-n).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "counters/split_counter.hh"

namespace morph
{
namespace
{

TEST(SplitCounter, LayoutWidths)
{
    EXPECT_EQ(SplitCounterFormat(8).minorBits(), 48u);
    EXPECT_EQ(SplitCounterFormat(16).minorBits(), 24u);
    EXPECT_EQ(SplitCounterFormat(32).minorBits(), 12u);
    EXPECT_EQ(SplitCounterFormat(64).minorBits(), 6u);
    EXPECT_EQ(SplitCounterFormat(128).minorBits(), 3u);
}

TEST(SplitCounter, InitializesToZero)
{
    SplitCounterFormat sc(64);
    CachelineData line;
    sc.init(line);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sc.read(line, i), 0u);
    EXPECT_EQ(sc.nonZeroCount(line), 0u);
}

TEST(SplitCounter, IncrementIsolatedToChild)
{
    SplitCounterFormat sc(64);
    CachelineData line;
    sc.init(line);
    const WriteResult res = sc.increment(line, 10);
    EXPECT_FALSE(res.overflow);
    EXPECT_EQ(sc.read(line, 10), 1u);
    for (unsigned i = 0; i < 64; ++i) {
        if (i != 10) {
            EXPECT_EQ(sc.read(line, i), 0u);
        }
    }
}

TEST(SplitCounter, OverflowResetsAllMinors)
{
    SplitCounterFormat sc(64);
    CachelineData line;
    sc.init(line);
    sc.increment(line, 3); // a bystander with value 1

    // Saturate child 0: 63 increments reach the 6-bit max.
    for (int i = 0; i < 63; ++i)
        EXPECT_FALSE(sc.increment(line, 0).overflow);
    EXPECT_EQ(sc.read(line, 0), 63u);

    const WriteResult res = sc.increment(line, 0);
    EXPECT_TRUE(res.overflow);
    EXPECT_EQ(res.reencBegin, 0u);
    EXPECT_EQ(res.reencEnd, 64u);
    EXPECT_EQ(res.usedBefore, 2u);

    // Major advanced; all minors (including the bystander) reset.
    EXPECT_EQ(sc.major(line), 1u);
    EXPECT_EQ(sc.read(line, 0), 1u << 6);
    EXPECT_EQ(sc.read(line, 3), 1u << 6);
}

TEST(SplitCounter, MacFieldIndependentOfCounters)
{
    SplitCounterFormat sc(64);
    CachelineData line;
    sc.init(line);
    CounterFormat::setMac(line, 0xdeadbeefcafef00dull);
    for (int i = 0; i < 100; ++i)
        sc.increment(line, unsigned(i) % 64);
    EXPECT_EQ(CounterFormat::mac(line), 0xdeadbeefcafef00dull);
}

TEST(SplitCounterDeath, RejectsBadArity)
{
    EXPECT_EXIT(SplitCounterFormat(7), ::testing::ExitedWithCode(1),
                "arity");
    EXPECT_EXIT(SplitCounterFormat(0), ::testing::ExitedWithCode(1),
                "arity");
}

/** Property tests across every supported arity. */
class SplitCounterArity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SplitCounterArity, WorstCaseWritesToOverflow)
{
    // A single hot child overflows after exactly 2^minor_bits writes
    // (Fig 6 of the paper: 64 writes for SC-64, 8 for SC-128).
    SplitCounterFormat sc(GetParam());
    if (sc.minorBits() > 16)
        GTEST_SKIP() << "period 2^" << sc.minorBits()
                     << " is impractical to iterate";
    CachelineData line;
    sc.init(line);
    const std::uint64_t period = 1ull << sc.minorBits();
    for (std::uint64_t w = 1; w < period; ++w)
        ASSERT_FALSE(sc.increment(line, 0).overflow);
    EXPECT_TRUE(sc.increment(line, 0).overflow);
}

TEST_P(SplitCounterArity, EffectiveValuesStrictlyMonotonic)
{
    SplitCounterFormat sc(GetParam());
    const unsigned arity = sc.arity();
    CachelineData line;
    sc.init(line);

    std::vector<std::uint64_t> shadow(arity, 0);
    Rng rng(GetParam() * 7919 + 1);
    for (int iter = 0; iter < 20000; ++iter) {
        const unsigned idx = unsigned(rng.below(arity));
        const WriteResult res = sc.increment(line, idx);
        const std::uint64_t value = sc.read(line, idx);
        ASSERT_GT(value, shadow[idx]) << "counter reuse at " << idx;
        shadow[idx] = value;
        if (res.overflow) {
            // Every child moved forward; refresh the whole shadow.
            for (unsigned i = 0; i < arity; ++i) {
                const std::uint64_t v = sc.read(line, i);
                ASSERT_GE(v, shadow[i]);
                shadow[i] = v;
            }
        } else {
            // No other child may change silently.
            for (unsigned i = 0; i < arity; ++i) {
                if (i != idx) {
                    ASSERT_EQ(sc.read(line, i), shadow[i]);
                }
            }
        }
    }
}

TEST_P(SplitCounterArity, NonZeroCountTracksDistinctChildren)
{
    SplitCounterFormat sc(GetParam());
    const unsigned arity = sc.arity();
    CachelineData line;
    sc.init(line);
    const unsigned touched = std::min(arity, 5u);
    for (unsigned i = 0; i < touched; ++i)
        sc.increment(line, i);
    EXPECT_EQ(sc.nonZeroCount(line), touched);
}

INSTANTIATE_TEST_SUITE_P(AllArities, SplitCounterArity,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

} // namespace
} // namespace morph
