/**
 * @file
 * Whole-controller fuzzing: random access streams through every tree
 * configuration and option combination, checking internal-consistency
 * invariants that must hold regardless of inputs.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "secmem/secure_memory_model.hh"

namespace morph
{
namespace
{

constexpr std::uint64_t MiB = 1ull << 20;

TreeConfig
configByIndex(int index)
{
    switch (index) {
      case 0:
        return TreeConfig::sgx();
      case 1:
        return TreeConfig::vault();
      case 2:
        return TreeConfig::sc64();
      case 3:
        return TreeConfig::sc128();
      case 4:
        return TreeConfig::morph();
      case 5:
        return TreeConfig::morphZccOnly();
      case 6:
        return TreeConfig::sc64Rebased();
      default:
        return TreeConfig::bonsaiMacTree();
    }
}

class ModelFuzz : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(ModelFuzz, StatsMatchEmittedAccessesExactly)
{
    SecureModelConfig config;
    config.memBytes = 512 * MiB;
    config.metadataCacheBytes = 8 * 1024; // tiny: maximal evictions
    config.tree = configByIndex(std::get<0>(GetParam()));
    config.inlineMacs = std::get<1>(GetParam());
    SecureMemoryModel model(config);

    Rng rng(std::get<0>(GetParam()) * 1009 + 17);
    std::vector<MemAccess> out;
    std::uint64_t emitted = 0;

    for (int iter = 0; iter < 30000; ++iter) {
        // Mix of hot lines (counter churn) and cold sprays (cache
        // churn); 40% writes to provoke write-back propagation.
        const bool hot = rng.chance(0.5);
        const LineAddr line =
            hot ? rng.below(4096)
                : rng.below(config.memBytes / lineBytes);
        const AccessType type = rng.chance(0.4) ? AccessType::Write
                                                : AccessType::Read;
        out.clear();
        model.onDataAccess(line, type, out);
        emitted += out.size();

        // Every emitted access targets a mapped address.
        for (const MemAccess &access : out) {
            const bool is_data = access.line < config.memBytes / 64;
            unsigned level;
            std::uint64_t index;
            const bool is_metadata =
                model.geometry().entryOfLine(access.line, level, index);
            const bool is_mac =
                !config.inlineMacs &&
                access.line >= model.geometry().totalBytes() / 64;
            ASSERT_TRUE(is_data || is_metadata || is_mac)
                << "unmapped line " << access.line;
        }
    }

    // The stats ledger and the emitted stream agree access-for-access.
    EXPECT_EQ(model.stats().total(), emitted);
}

TEST_P(ModelFuzz, CountersNeverMoveBackwards)
{
    SecureModelConfig config;
    config.memBytes = 64 * MiB;
    config.metadataCacheBytes = 8 * 1024;
    config.tree = configByIndex(std::get<0>(GetParam()));
    config.inlineMacs = std::get<1>(GetParam());
    SecureMemoryModel model(config);

    // Sample a few tracked lines amid background noise.
    const LineAddr tracked[] = {0, 7, 129, 4095};
    std::uint64_t last[4] = {};

    Rng rng(std::get<0>(GetParam()) * 2003 + 5);
    std::vector<MemAccess> out;
    for (int iter = 0; iter < 20000; ++iter) {
        const LineAddr line = rng.below(8192);
        out.clear();
        model.onDataAccess(line,
                           rng.chance(0.5) ? AccessType::Write
                                           : AccessType::Read,
                           out);
        for (unsigned t = 0; t < 4; ++t) {
            const std::uint64_t now = model.counterOf(tracked[t]);
            ASSERT_GE(now, last[t]) << "counter moved backwards";
            last[t] = now;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ModelFuzz,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()));

} // namespace
} // namespace morph
