/**
 * @file
 * Unit tests for the morphscope stat registry, epoch series, and the
 * JSON/CSV exporters (round-trip through the common/json parser).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/stat_registry.hh"

namespace morph
{
namespace
{

TEST(StatName, Contract)
{
    EXPECT_TRUE(isValidStatName("sim.ipc"));
    EXPECT_TRUE(isValidStatName("dram.ch0.row_hits"));
    EXPECT_TRUE(isValidStatName("a"));
    EXPECT_FALSE(isValidStatName(""));
    EXPECT_FALSE(isValidStatName("Traffic.Total"));
    EXPECT_FALSE(isValidStatName("ctr 1"));
    EXPECT_FALSE(isValidStatName("ctr-1"));
    EXPECT_FALSE(isValidStatName("ctr&up"));
}

TEST(StatRegistryDeathTest, RejectsInvalidAndDuplicateNames)
{
    StatRegistry registry;
    std::uint64_t v = 0;
    registry.counter("ok.name", &v);
    EXPECT_DEATH(registry.counter("Bad.Name", &v), "violates");
    EXPECT_DEATH(registry.counter("ok.name", &v), "twice");
    Histogram h(0.0, 1.0, 4);
    EXPECT_DEATH(registry.histogram("ok.name", &h), "twice");
}

TEST(StatRegistry, CountersGaugesAndLookup)
{
    StatRegistry registry;
    std::uint64_t reads = 7;
    registry.counter("reads", &reads, "read count");
    registry.counter(
        "twice.reads", [&reads]() { return 2 * reads; });
    registry.gauge("rate", [&reads]() { return double(reads) / 10.0; });
    registry.scalar("fixed", 3.5);

    EXPECT_EQ(registry.numScalars(), 4u);
    EXPECT_EQ(registry.scalarName(0), "reads");
    EXPECT_EQ(registry.scalarKind(0), StatKind::Counter);
    EXPECT_EQ(registry.scalarKind(2), StatKind::Gauge);
    EXPECT_EQ(registry.scalarDesc(0), "read count");
    EXPECT_DOUBLE_EQ(registry.value("reads"), 7.0);
    EXPECT_DOUBLE_EQ(registry.value("twice.reads"), 14.0);
    EXPECT_DOUBLE_EQ(registry.value("fixed"), 3.5);
    EXPECT_TRUE(std::isnan(registry.value("missing")));
    EXPECT_TRUE(registry.has("rate"));
    EXPECT_FALSE(registry.has("missing"));

    reads = 9; // live view: the registry reads through the pointer
    EXPECT_DOUBLE_EQ(registry.value("reads"), 9.0);
    EXPECT_DOUBLE_EQ(registry.value("twice.reads"), 18.0);
}

TEST(StatRegistry, HistogramSnapshots)
{
    StatRegistry registry;
    ExpHistogram latency;
    for (std::uint64_t v = 1; v <= 64; ++v)
        latency.record(v);
    registry.histogram("latency", &latency);

    ASSERT_EQ(registry.numHistograms(), 1u);
    const HistogramSnapshot snap = registry.histogramSnapshot(0);
    EXPECT_EQ(snap.count, 64u);
    EXPECT_LE(snap.p50, snap.p95);
    EXPECT_LE(snap.p95, snap.p99);
    EXPECT_FALSE(snap.buckets.empty());
    std::uint64_t bucket_total = 0;
    for (const auto &bucket : snap.buckets) {
        // Full bounds: distributions must be re-derivable from the
        // snapshot alone.
        EXPECT_LT(bucket.lo, bucket.hi);
        bucket_total += bucket.count;
    }
    EXPECT_EQ(bucket_total, 64u);
}

TEST(StatRegistry, FreezeDetachesFromComponents)
{
    StatRegistry registry;
    {
        // Component with a shorter lifetime than the registry.
        std::uint64_t hits = 5;
        registry.counter("hits", &hits);
        registry.freeze();
        hits = 99; // post-freeze mutations are invisible
    }
    EXPECT_DOUBLE_EQ(registry.value("hits"), 5.0);
}

TEST(EpochSeries, CounterDeltasSumToTotals)
{
    StatRegistry registry;
    std::uint64_t ticks = 100; // warm-up residue before baseline
    double level = 0.0;
    registry.counter("ticks", &ticks);
    registry.gauge("level", [&level]() { return level; });

    EpochSeries epochs;
    epochs.baseline(registry);

    std::uint64_t delta_sum = 0;
    for (int e = 0; e < 4; ++e) {
        ticks += std::uint64_t(10 + e);
        delta_sum += std::uint64_t(10 + e);
        level = double(e);
        epochs.sample(registry, 1000);
    }

    ASSERT_EQ(epochs.records().size(), 4u);
    double recorded = 0.0;
    for (const auto &record : epochs.records()) {
        EXPECT_EQ(record.accessesPerCore, 1000u);
        recorded += record.values[0];
        // Gauges report the value at the boundary, not a delta.
        EXPECT_DOUBLE_EQ(record.values[1],
                         double(record.index));
    }
    EXPECT_DOUBLE_EQ(recorded, double(delta_sum));
    // Deltas are measured from the baseline, not from zero.
    EXPECT_DOUBLE_EQ(recorded, double(ticks) - 100.0);
}

TEST(EpochSeries, PartialFinalEpochStillSumsToTotals)
{
    // A measured window of 8 accesses sampled every 3 produces epochs
    // of 3, 3 and 2: the short final epoch must keep counter deltas
    // summing exactly to the run totals, and stay rectangular.
    StatRegistry registry;
    std::uint64_t reads = 40; // warm-up residue before baseline
    registry.counter("reads", &reads);

    EpochSeries epochs;
    epochs.baseline(registry);

    const std::uint64_t window = 8;
    const std::uint64_t epoch = 3;
    std::uint64_t done = 0;
    while (done < window) {
        const std::uint64_t chunk = std::min(epoch, window - done);
        reads += 2 * chunk; // 2 counted events per access
        done += chunk;
        epochs.sample(registry, chunk);
    }

    ASSERT_EQ(epochs.records().size(), 3u);
    EXPECT_EQ(epochs.records()[0].accessesPerCore, 3u);
    EXPECT_EQ(epochs.records()[1].accessesPerCore, 3u);
    EXPECT_EQ(epochs.records()[2].accessesPerCore, 2u);

    double delta_sum = 0.0;
    std::uint64_t accesses = 0;
    for (const auto &record : epochs.records()) {
        ASSERT_EQ(record.values.size(), 1u);
        delta_sum += record.values[0];
        accesses += record.accessesPerCore;
    }
    EXPECT_EQ(accesses, window);
    EXPECT_DOUBLE_EQ(delta_sum, double(reads) - 40.0);
}

TEST(EpochSeries, EpochLargerThanWindowYieldsOnePartialEpoch)
{
    StatRegistry registry;
    std::uint64_t reads = 0;
    registry.counter("reads", &reads);
    EpochSeries epochs;
    epochs.baseline(registry);

    // window 5, epoch 1000: the only epoch is the partial one.
    reads = 5;
    epochs.sample(registry, 5);
    ASSERT_EQ(epochs.records().size(), 1u);
    EXPECT_EQ(epochs.records()[0].accessesPerCore, 5u);
    EXPECT_DOUBLE_EQ(epochs.records()[0].values[0], 5.0);
}

TEST(StatRegistry, FrozenRegistryIsSafeForConcurrentReaders)
{
    // The sweep engine runs one registry per run, but a frozen
    // registry is also read from multiple threads by report emission
    // in tests and tooling: freeze() must leave a self-contained,
    // immutable snapshot. Run under tsan, this pins the absence of
    // races between concurrent readers.
    StatRegistry registry;
    std::uint64_t reads = 123;
    double rate = 0.25;
    Histogram hist(0.0, 16.0, 8);
    for (int i = 0; i < 64; ++i)
        hist.record(double(i % 16));
    registry.counter("reads", &reads);
    registry.gauge("rate", [&rate]() { return rate; });
    registry.histogram("lat", &hist);
    registry.freeze();

    std::vector<std::string> reports(8);
    {
        std::vector<std::thread> readers;
        for (std::size_t t = 0; t < reports.size(); ++t) {
            readers.emplace_back([&, t]() {
                std::ostringstream os;
                registry.dumpText(os, "unit");
                for (std::size_t i = 0; i < registry.numScalars(); ++i)
                    os << registry.scalarValue(i);
                const HistogramSnapshot snap =
                    registry.histogramSnapshot(0);
                os << snap.count << snap.mean;
                reports[t] = os.str();
            });
        }
        for (std::thread &reader : readers)
            reader.join();
    }
    for (std::size_t t = 1; t < reports.size(); ++t)
        EXPECT_EQ(reports[t], reports[0]);
}

TEST(EpochSeries, StaysRectangularAcrossLateRegistration)
{
    StatRegistry registry;
    std::uint64_t a = 0;
    registry.counter("a", &a);
    EpochSeries epochs;
    epochs.baseline(registry);
    epochs.sample(registry, 10);
    registry.scalar("late", 42.0); // post-baseline: excluded
    epochs.sample(registry, 10);
    EXPECT_EQ(epochs.numStats(), 1u);
    for (const auto &record : epochs.records())
        EXPECT_EQ(record.values.size(), 1u);
}

TEST(Exporters, JsonRoundTripMatchesRegistry)
{
    StatRegistry registry;
    std::uint64_t reads = 12345;
    registry.counter("reads", &reads);
    registry.gauge("bad", []() { return std::nan(""); });
    registry.scalar("pi", 3.14159);
    ExpHistogram h;
    h.record(4);
    registry.histogram("lat", &h);

    RunMeta meta;
    meta.set("workload", "quoted \"name\"");

    EpochSeries epochs;
    epochs.baseline(registry);
    reads += 55;
    epochs.sample(registry, 500);

    std::ostringstream os;
    writeStatsJson(os, registry, meta, &epochs);

    bool ok = false;
    std::string error;
    const JsonValue doc = jsonParse(os.str(), ok, error);
    ASSERT_TRUE(ok) << error << "\n" << os.str();

    EXPECT_EQ(doc.find("schema")->asString(), "morphscope-v1");
    EXPECT_EQ(doc.find("meta")->find("workload")->asString(),
              "quoted \"name\"");
    const JsonValue *totals = doc.find("totals");
    EXPECT_DOUBLE_EQ(totals->find("reads")->asNumber(), 12400.0);
    EXPECT_DOUBLE_EQ(totals->find("pi")->asNumber(), 3.14159);
    // Non-finite gauges export as null and read back as NaN.
    EXPECT_TRUE(std::isnan(totals->find("bad")->asNumber()));
    EXPECT_EQ(doc.find("kinds")->find("reads")->asString(), "counter");
    EXPECT_EQ(doc.find("kinds")->find("pi")->asString(), "gauge");
    EXPECT_EQ(doc.find("histograms")->find("lat")->find("count")
                  ->asNumber(),
              1.0);

    const JsonValue *samples = doc.find("epochs")->find("samples");
    ASSERT_EQ(samples->size(), 1u);
    const JsonValue &sample = samples->elements()[0];
    EXPECT_DOUBLE_EQ(sample.find("accesses_per_core")->asNumber(),
                     500.0);
    // Stat order in "epochs.stats" matches the value arrays.
    EXPECT_EQ(doc.find("epochs")->find("stats")->elements()[0]
                  .asString(),
              "reads");
    EXPECT_DOUBLE_EQ(sample.find("values")->elements()[0].asNumber(),
                     55.0);
}

TEST(Exporters, CsvTotalsTable)
{
    StatRegistry registry;
    registry.scalar("a", 1.5);
    registry.scalar("b", 2.0);
    std::ostringstream os;
    writeStatsCsv(os, registry);
    EXPECT_EQ(os.str(), "stat,value\na,1.5\nb,2\n");
}

TEST(Exporters, CsvEpochRowsSumToTotalRow)
{
    StatRegistry registry;
    std::uint64_t n = 0;
    registry.counter("n", &n);
    EpochSeries epochs;
    epochs.baseline(registry);
    for (int e = 0; e < 3; ++e) {
        n += 10;
        epochs.sample(registry, 100);
    }
    std::ostringstream os;
    writeStatsCsv(os, registry, &epochs);

    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "epoch,accesses_per_core,n");
    double sum = 0.0;
    for (int e = 0; e < 3; ++e) {
        std::getline(in, line);
        const std::size_t comma = line.rfind(',');
        sum += std::stod(line.substr(comma + 1));
    }
    EXPECT_DOUBLE_EQ(sum, 30.0);
    std::getline(in, line);
    EXPECT_EQ(line, "total,,30");
}

TEST(Exporters, CsvFieldQuoting)
{
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");
}

TEST(Exporters, TextReportUsesJsonFormatting)
{
    StatRegistry registry;
    registry.scalar("bloat", 2.9404499999999998);
    registry.gauge("nan", []() { return std::nan(""); });
    std::ostringstream os;
    registry.dumpText(os, "morphsim");
    EXPECT_EQ(os.str(), "morphsim.bloat 2.9404499999999998\n"
                        "morphsim.nan null\n");
}

} // namespace
} // namespace morph
