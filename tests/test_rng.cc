/**
 * @file
 * Unit tests for the deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"

namespace morph
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 63ull, 1000ull,
                                      (1ull << 40) + 17}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(13);
    constexpr std::uint64_t buckets = 8;
    std::uint64_t counts[buckets] = {};
    constexpr int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(buckets)];
    for (std::uint64_t c : counts) {
        EXPECT_GT(c, draws / buckets * 85 / 100);
        EXPECT_LT(c, draws / buckets * 115 / 100);
    }
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(17);
    ZipfSampler zipf(100, 1.0);
    std::map<std::uint64_t, unsigned> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[50]);
    EXPECT_GT(counts[1], counts[50]);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(19);
    for (const std::uint64_t n : {1ull, 2ull, 100ull, 1ull << 22}) {
        ZipfSampler zipf(n, 0.9);
        for (int i = 0; i < 500; ++i)
            ASSERT_LT(zipf.sample(rng), n);
    }
}

TEST(Zipf, LargeDomainUsesApproximation)
{
    // Beyond the CDF limit the sampler switches to the continuous
    // inverse; skew must survive the switch.
    Rng rng(23);
    ZipfSampler zipf(1ull << 24, 1.0);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t s = zipf.sample(rng);
        if (s < 100)
            ++low;
        if (s >= (1ull << 23))
            ++high;
    }
    EXPECT_GT(low, high);
    EXPECT_GT(low, 1000u);
}

TEST(Zipf, ZeroExponentIsUniform)
{
    Rng rng(29);
    ZipfSampler zipf(10, 0.0);
    std::uint64_t counts[10] = {};
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (std::uint64_t c : counts) {
        EXPECT_GT(c, 4000u);
        EXPECT_LT(c, 6000u);
    }
}

} // namespace
} // namespace morph
