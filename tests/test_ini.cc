/**
 * @file
 * Tests for the INI configuration parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/ini.hh"

namespace morph
{
namespace
{

IniFile
parse(const std::string &text)
{
    std::istringstream input(text);
    return IniFile::fromStream(input, "inline");
}

TEST(Ini, SectionsAndKeys)
{
    const IniFile ini = parse("top = 1\n"
                              "[system]\n"
                              "workload = mcf\n"
                              "mem_gb = 16\n"
                              "[dram]\n"
                              "refresh = true\n");
    EXPECT_TRUE(ini.has("top"));
    EXPECT_TRUE(ini.has("system.workload"));
    EXPECT_FALSE(ini.has("system.refresh"));
    EXPECT_EQ(ini.getString("system.workload", "x"), "mcf");
    EXPECT_EQ(ini.getInt("system.mem_gb", 0), 16);
    EXPECT_TRUE(ini.getBool("dram.refresh", false));
}

TEST(Ini, FallbacksForMissingKeys)
{
    const IniFile ini = parse("[a]\nb = 1\n");
    EXPECT_EQ(ini.getString("a.missing", "dflt"), "dflt");
    EXPECT_EQ(ini.getInt("a.missing", 42), 42);
    EXPECT_DOUBLE_EQ(ini.getDouble("a.missing", 2.5), 2.5);
    EXPECT_TRUE(ini.getBool("a.missing", true));
}

TEST(Ini, CommentsAndWhitespace)
{
    const IniFile ini = parse("; full line comment\n"
                              "# hash comment\n"
                              "  [ sec ]  \n"
                              "  key =  spaced value  ; trailing\n");
    EXPECT_EQ(ini.getString("sec.key", ""), "spaced value");
}

TEST(Ini, LastAssignmentWins)
{
    const IniFile ini = parse("[s]\nk = 1\nk = 2\n");
    EXPECT_EQ(ini.getInt("s.k", 0), 2);
    EXPECT_EQ(ini.keys().size(), 2u);
}

TEST(Ini, NumericFormats)
{
    const IniFile ini = parse("[n]\nhex = 0x40\nneg = -3\nf = 2.5e2\n");
    EXPECT_EQ(ini.getInt("n.hex", 0), 64);
    EXPECT_EQ(ini.getInt("n.neg", 0), -3);
    EXPECT_DOUBLE_EQ(ini.getDouble("n.f", 0), 250.0);
}

TEST(Ini, BooleanSpellings)
{
    const IniFile ini = parse("[b]\na = yes\nb = OFF\nc = 1\nd = False\n");
    EXPECT_TRUE(ini.getBool("b.a", false));
    EXPECT_FALSE(ini.getBool("b.b", true));
    EXPECT_TRUE(ini.getBool("b.c", false));
    EXPECT_FALSE(ini.getBool("b.d", true));
}

TEST(IniDeath, RejectsBadSyntax)
{
    EXPECT_EXIT(parse("[unterminated\n"), ::testing::ExitedWithCode(1),
                "section");
    EXPECT_EXIT(parse("novalue\n"), ::testing::ExitedWithCode(1),
                "key = value");
    EXPECT_EXIT(parse("= 3\n"), ::testing::ExitedWithCode(1), "key");
}

TEST(IniDeath, RejectsBadTypes)
{
    const IniFile ini = parse("[t]\nx = abc\n");
    EXPECT_EXIT(ini.getInt("t.x", 0), ::testing::ExitedWithCode(1),
                "integer");
    EXPECT_EXIT(ini.getDouble("t.x", 0), ::testing::ExitedWithCode(1),
                "number");
    EXPECT_EXIT(ini.getBool("t.x", false), ::testing::ExitedWithCode(1),
                "boolean");
}

TEST(IniDeath, RejectsMissingFile)
{
    EXPECT_EXIT(IniFile::fromFile("/nonexistent/x.ini"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace morph
