/**
 * @file
 * Tests for the crash injector: deterministic replay, recoverability
 * at swept cut points under both policies, and the broken fixture.
 */

#include <gtest/gtest.h>

#include "sim/crash_injector.hh"

namespace morph
{
namespace
{

CrashInjectorOptions
baseOptions(PersistPolicy policy)
{
    CrashInjectorOptions options;
    options.workload = "mcf";
    options.model.tree = TreeConfig::morph();
    // Small metadata cache so tree-level writebacks happen within the
    // short cut windows these tests can afford.
    options.model.metadataCacheBytes = 4 * 1024;
    options.model.persist.enabled = true;
    options.model.persist.policy = policy;
    options.model.persist.epochWrites = 64;
    options.seed = 11;
    options.cutAccesses = 2'000;
    return options;
}

TEST(CrashInjector, ReplayIsDeterministic)
{
    const CrashInjectorOptions options =
        baseOptions(PersistPolicy::Lazy);
    const CrashReport a = injectCrash(options);
    const CrashReport b = injectCrash(options);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.persist.linePersists, b.persist.linePersists);
    EXPECT_EQ(a.persist.barriers, b.persist.barriers);
    EXPECT_EQ(a.recovery.recoveredDigest, b.recovery.recoveredDigest);
    EXPECT_EQ(a.recovery.rolledBack, b.recovery.rolledBack);
}

TEST(CrashInjector, DifferentCutsDiverge)
{
    CrashInjectorOptions options = baseOptions(PersistPolicy::Lazy);
    const CrashReport early = injectCrash(options);
    options.cutAccesses = 3'000;
    const CrashReport late = injectCrash(options);
    EXPECT_NE(early.fingerprint, late.fingerprint);
    EXPECT_GT(late.persist.entryMutations,
              early.persist.entryMutations);
}

TEST(CrashInjector, StrictRecoversAtSweptCuts)
{
    for (std::uint64_t cut : {200ull, 900ull, 2'500ull}) {
        CrashInjectorOptions options =
            baseOptions(PersistPolicy::Strict);
        options.cutAccesses = cut;
        const CrashReport report = injectCrash(options);
        EXPECT_TRUE(report.recovery.consistent) << "cut " << cut;
        EXPECT_EQ(report.recovery.rolledBack, 0u);
        EXPECT_EQ(report.recovery.lostWrites, 0u);
    }
}

TEST(CrashInjector, LazyRecoversAtSweptCuts)
{
    for (std::uint64_t cut : {200ull, 900ull, 2'500ull}) {
        CrashInjectorOptions options =
            baseOptions(PersistPolicy::Lazy);
        options.cutAccesses = cut;
        const CrashReport report = injectCrash(options);
        EXPECT_TRUE(report.recovery.consistent) << "cut " << cut;
    }
}

TEST(CrashInjector, BrokenTreePersistCaught)
{
    CrashInjectorOptions options = baseOptions(PersistPolicy::Lazy);
    // Disarm the barrier so a commit never papers over the missing
    // write-ahead records inside the cut window.
    options.model.persist.epochWrites = 1ull << 40;
    options.model.persist.brokenSkipTreePersist = true;
    const CrashReport report = injectCrash(options);
    EXPECT_FALSE(report.recovery.consistent);
}

} // namespace
} // namespace morph
