/**
 * @file
 * Unit tests for the MAC engine (tag binding and truncation).
 */

#include <gtest/gtest.h>

#include "crypto/mac.hh"

namespace morph
{
namespace
{

SipKey
testKey()
{
    SipKey key;
    for (unsigned i = 0; i < 16; ++i)
        key[i] = std::uint8_t(0xa0 + i);
    return key;
}

class MacTest : public ::testing::Test
{
  protected:
    MacEngine mac{testKey()};
    CachelineData payload{};
};

TEST_F(MacTest, Deterministic)
{
    EXPECT_EQ(mac.compute(1, 2, payload), mac.compute(1, 2, payload));
}

TEST_F(MacTest, BindsAddress)
{
    EXPECT_NE(mac.compute(1, 2, payload), mac.compute(3, 2, payload));
}

TEST_F(MacTest, BindsCounter)
{
    EXPECT_NE(mac.compute(1, 2, payload), mac.compute(1, 3, payload));
}

TEST_F(MacTest, BindsPayload)
{
    CachelineData other = payload;
    other[63] ^= 1;
    EXPECT_NE(mac.compute(1, 2, payload), mac.compute(1, 2, other));
}

TEST_F(MacTest, KeyedDistinctly)
{
    SipKey other_key = testKey();
    other_key[7] ^= 0xff;
    MacEngine other(other_key);
    EXPECT_NE(mac.compute(1, 2, payload), other.compute(1, 2, payload));
}

TEST_F(MacTest, TruncationMasksHighBits)
{
    const std::uint64_t full = mac.compute(1, 2, payload, 64);
    const std::uint64_t t54 = mac.compute(1, 2, payload, 54);
    EXPECT_EQ(t54, full & ((1ull << 54) - 1));
    EXPECT_EQ(t54 >> 54, 0u);
}

TEST_F(MacTest, EqualRespectsWidth)
{
    const std::uint64_t a = 0x00ff00ff00ff00ffull;
    const std::uint64_t b = 0xffff00ff00ff00ffull; // differs in top 16
    EXPECT_TRUE(MacEngine::equal(a, b, 48));
    EXPECT_FALSE(MacEngine::equal(a, b, 64));
    EXPECT_FALSE(MacEngine::equal(a, a ^ 1, 54));
    EXPECT_TRUE(MacEngine::equal(a, a, 1));
}

TEST_F(MacTest, SingleBitFlipsChangeTag)
{
    const std::uint64_t base = mac.compute(9, 9, payload, 54);
    for (unsigned byte = 0; byte < lineBytes; byte += 5) {
        CachelineData flipped = payload;
        flipped[byte] ^= 0x01;
        EXPECT_FALSE(MacEngine::equal(
            base, mac.compute(9, 9, flipped, 54), 54))
            << "byte " << byte;
    }
}

} // namespace
} // namespace morph
