/**
 * @file
 * SipHash-2-4 reference vectors and PRF properties.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/rng.hh"
#include "crypto/siphash.hh"

namespace morph
{
namespace
{

SipKey
referenceKey()
{
    SipKey key;
    for (unsigned i = 0; i < 16; ++i)
        key[i] = std::uint8_t(i);
    return key;
}

/**
 * Reference vectors from the SipHash paper / reference implementation
 * (key 00..0f, message 00, 01, 02, ... of increasing length). The
 * published vectors are byte arrays in little-endian order; values
 * below are the corresponding 64-bit integers.
 */
TEST(SipHash, ReferenceVectors)
{
    const SipKey key = referenceKey();
    std::uint8_t msg[16];
    for (unsigned i = 0; i < 16; ++i)
        msg[i] = std::uint8_t(i);

    EXPECT_EQ(siphash24(msg, 0, key), 0x726fdb47dd0e0e31ull);
    EXPECT_EQ(siphash24(msg, 1, key), 0x74f839c593dc67fdull);
    EXPECT_EQ(siphash24(msg, 2, key), 0x0d6c8009d9a94f5aull);
    EXPECT_EQ(siphash24(msg, 3, key), 0x85676696d7fb7e2dull);
    EXPECT_EQ(siphash24(msg, 7, key), 0xab0200f58b01d137ull);
    EXPECT_EQ(siphash24(msg, 8, key), 0x93f5f5799a932462ull);
    EXPECT_EQ(siphash24(msg, 9, key), 0x9e0082df0ba9e4b0ull);
}

TEST(SipHash, KeySensitivity)
{
    SipKey a = referenceKey(), b = referenceKey();
    b[0] ^= 1;
    const char msg[] = "morphable counters";
    EXPECT_NE(siphash24(msg, sizeof(msg), a),
              siphash24(msg, sizeof(msg), b));
}

TEST(SipHash, MessageSensitivity)
{
    const SipKey key = referenceKey();
    std::uint8_t msg[64] = {};
    const std::uint64_t base = siphash24(msg, sizeof(msg), key);
    for (unsigned byte = 0; byte < 64; byte += 7) {
        msg[byte] ^= 0x80;
        EXPECT_NE(siphash24(msg, sizeof(msg), key), base);
        msg[byte] ^= 0x80;
    }
}

TEST(SipHash, LengthSensitivity)
{
    const SipKey key = referenceKey();
    std::uint8_t msg[16] = {};
    std::set<std::uint64_t> tags;
    for (std::size_t len = 0; len <= 16; ++len)
        tags.insert(siphash24(msg, len, key));
    EXPECT_EQ(tags.size(), 17u);
}

TEST(SipHash, NoObviousCollisionsOnCounterLikeInputs)
{
    // The MAC engine hashes (address, counter, payload) tuples; check
    // that dense counter-like inputs give distinct tags.
    const SipKey key = referenceKey();
    std::set<std::uint64_t> tags;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        std::uint8_t msg[16];
        std::memcpy(msg, &i, 8);
        std::memset(msg + 8, 0, 8);
        tags.insert(siphash24(msg, sizeof(msg), key));
    }
    EXPECT_EQ(tags.size(), 4096u);
}

} // namespace
} // namespace morph
