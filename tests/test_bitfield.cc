/**
 * @file
 * Unit tests for bit-granular cacheline field access.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/rng.hh"

namespace morph
{
namespace
{

TEST(Bitfield, SingleByteAlignedField)
{
    CachelineData line{};
    writeBits(line, 0, 8, 0xab);
    EXPECT_EQ(readBits(line, 0, 8), 0xabu);
    EXPECT_EQ(line[0], 0xab);
    EXPECT_EQ(line[1], 0x00);
}

TEST(Bitfield, CrossByteField)
{
    CachelineData line{};
    writeBits(line, 4, 12, 0xfff);
    EXPECT_EQ(readBits(line, 4, 12), 0xfffu);
    EXPECT_EQ(line[0], 0xf0);
    EXPECT_EQ(line[1], 0xff);
    EXPECT_EQ(readBits(line, 0, 4), 0u);
    EXPECT_EQ(readBits(line, 16, 8), 0u);
}

TEST(Bitfield, Full64BitField)
{
    CachelineData line{};
    const std::uint64_t value = 0x0123456789abcdefull;
    writeBits(line, 448, 64, value);
    EXPECT_EQ(readBits(line, 448, 64), value);
}

TEST(Bitfield, LastBit)
{
    CachelineData line{};
    writeBits(line, 511, 1, 1);
    EXPECT_EQ(readBits(line, 511, 1), 1u);
    EXPECT_EQ(line[63], 0x80);
}

TEST(Bitfield, OverwritePreservesNeighbors)
{
    CachelineData line;
    line.fill(0xff);
    writeBits(line, 13, 7, 0);
    EXPECT_EQ(readBits(line, 13, 7), 0u);
    EXPECT_EQ(readBits(line, 0, 13), 0x1fffu);
    EXPECT_EQ(readBits(line, 20, 12), 0xfffu);
}

TEST(Bitfield, SetAndTestBit)
{
    CachelineData line{};
    setBit(line, 100, true);
    EXPECT_TRUE(testBit(line, 100));
    EXPECT_FALSE(testBit(line, 99));
    EXPECT_FALSE(testBit(line, 101));
    setBit(line, 100, false);
    EXPECT_FALSE(testBit(line, 100));
}

TEST(Bitfield, PopcountRange)
{
    CachelineData line{};
    for (unsigned bit : {64u, 70u, 100u, 191u})
        setBit(line, bit, true);
    EXPECT_EQ(popcountBits(line, 64, 128), 4u);
    EXPECT_EQ(popcountBits(line, 64, 37), 3u);  // bits [64,101)
    EXPECT_EQ(popcountBits(line, 65, 127), 3u); // excludes bit 64
    EXPECT_EQ(popcountBits(line, 0, 64), 0u);
}

TEST(Bitfield, PopcountOddWidths)
{
    CachelineData line{};
    for (unsigned bit = 3; bit < 512; bit += 5)
        setBit(line, bit, true);
    unsigned expected = 0;
    for (unsigned bit = 3; bit < 509; bit += 5)
        ++expected;
    EXPECT_EQ(popcountBits(line, 0, 509), expected);
}

/** Random field placements round-trip and never clobber neighbors. */
TEST(BitfieldProperty, RandomRoundTrips)
{
    Rng rng(42);
    for (int iter = 0; iter < 2000; ++iter) {
        const unsigned width = 1 + unsigned(rng.below(64));
        const unsigned offset = unsigned(rng.below(512 - width + 1));
        const std::uint64_t value =
            width == 64 ? rng.next() : rng.next() & ((1ull << width) - 1);

        CachelineData line;
        for (auto &b : line)
            b = std::uint8_t(rng.next());
        CachelineData before = line;

        writeBits(line, offset, width, value);
        ASSERT_EQ(readBits(line, offset, width), value)
            << "offset=" << offset << " width=" << width;

        // All bits outside [offset, offset+width) are untouched.
        for (unsigned bit = 0; bit < 512; ++bit) {
            if (bit >= offset && bit < offset + width)
                continue;
            ASSERT_EQ(testBit(line, bit), testBit(before, bit))
                << "bit " << bit << " clobbered (offset=" << offset
                << " width=" << width << ")";
        }
    }
}

/**
 * Differential tests: the word-level fast path (readBits/writeBits/
 * popcountBits and the narrow 32-bit-window variants) must agree with
 * the retained bit-at-a-time reference (morph::bitnaive) on every
 * offset x width combination, including word-straddling fields.
 */

CachelineData
patternedLine(std::uint64_t seed)
{
    CachelineData line;
    Rng rng(seed);
    for (auto &b : line)
        b = std::uint8_t(rng.next());
    return line;
}

TEST(BitfieldDifferential, ReadMatchesNaiveExhaustive)
{
    const CachelineData line = patternedLine(1);
    for (unsigned width = 1; width <= 64; ++width)
        for (unsigned offset = 0; offset + width <= 512; ++offset)
            ASSERT_EQ(readBits(line, offset, width),
                      bitnaive::readBits(line, offset, width))
                << "offset=" << offset << " width=" << width;
}

TEST(BitfieldDifferential, WriteMatchesNaiveExhaustive)
{
    const CachelineData base = patternedLine(2);
    Rng rng(3);
    for (unsigned width = 1; width <= 64; ++width) {
        for (unsigned offset = 0; offset + width <= 512; ++offset) {
            const std::uint64_t value =
                width == 64 ? rng.next()
                            : rng.next() & ((1ull << width) - 1);
            CachelineData fast = base;
            CachelineData naive = base;
            writeBits(fast, offset, width, value);
            bitnaive::writeBits(naive, offset, width, value);
            ASSERT_EQ(fast, naive)
                << "offset=" << offset << " width=" << width;
        }
    }
}

TEST(BitfieldDifferential, PopcountMatchesNaiveExhaustive)
{
    const CachelineData line = patternedLine(4);
    for (unsigned offset = 0; offset < 512; ++offset)
        for (unsigned nbits = 0; offset + nbits <= 512; ++nbits)
            ASSERT_EQ(popcountBits(line, offset, nbits),
                      bitnaive::popcountBits(line, offset, nbits))
                << "offset=" << offset << " nbits=" << nbits;
}

TEST(BitfieldDifferential, NarrowReadMatchesNaive)
{
    const CachelineData line = patternedLine(5);
    for (unsigned width = 1; width <= 25; ++width)
        for (unsigned offset = 0; offset + width <= 512; ++offset) {
            if ((offset >> 3) + 4 > lineBytes)
                continue; // outside the narrow 32-bit window contract
            ASSERT_EQ(readBitsNarrow(line, offset, width),
                      bitnaive::readBits(line, offset, width))
                << "offset=" << offset << " width=" << width;
        }
}

TEST(BitfieldDifferential, NarrowWriteMatchesNaive)
{
    const CachelineData base = patternedLine(6);
    Rng rng(7);
    for (unsigned width = 1; width <= 25; ++width) {
        for (unsigned offset = 0; offset + width <= 512; ++offset) {
            if ((offset >> 3) + 4 > lineBytes)
                continue;
            const std::uint64_t value =
                rng.next() & ((1ull << width) - 1);
            CachelineData fast = base;
            CachelineData naive = base;
            writeBitsNarrow(fast, offset, width, value);
            bitnaive::writeBits(naive, offset, width, value);
            ASSERT_EQ(fast, naive)
                << "offset=" << offset << " width=" << width;
        }
    }
}

/**
 * Seeded mixed-operation fuzz: apply an identical random stream of
 * writes to a fast-path line and a naive-path line, interleaved with
 * read/popcount cross-checks biased toward word-straddling fields.
 */
TEST(BitfieldDifferential, MixedOperationFuzz)
{
    Rng rng(0xbf1e1d);
    CachelineData fast = patternedLine(8);
    CachelineData naive = fast;
    for (int iter = 0; iter < 20000; ++iter) {
        unsigned width = 1 + unsigned(rng.below(64));
        unsigned offset;
        if (width > 1 && rng.below(2)) {
            // Force a word straddle: place the field so it starts in
            // word `word` and ends in the next one.
            const unsigned word = unsigned(rng.below(7));
            const unsigned bit =
                65 - width + unsigned(rng.below(width - 1));
            offset = 64 * word + bit;
        } else {
            offset = unsigned(rng.below(512 - width + 1));
        }
        switch (rng.below(4)) {
        case 0: {
            const std::uint64_t value =
                width == 64 ? rng.next()
                            : rng.next() & ((1ull << width) - 1);
            writeBits(fast, offset, width, value);
            bitnaive::writeBits(naive, offset, width, value);
            break;
        }
        case 1:
            ASSERT_EQ(readBits(fast, offset, width),
                      bitnaive::readBits(naive, offset, width))
                << "offset=" << offset << " width=" << width;
            break;
        case 2:
            ASSERT_EQ(popcountBits(fast, offset, width),
                      bitnaive::popcountBits(naive, offset, width))
                << "offset=" << offset << " width=" << width;
            break;
        default: {
            if (width > 25 || (offset >> 3) + 4 > lineBytes)
                break;
            const std::uint64_t value =
                rng.next() & ((1ull << width) - 1);
            writeBitsNarrow(fast, offset, width, value);
            bitnaive::writeBits(naive, offset, width, value);
            break;
        }
        }
        ASSERT_EQ(fast, naive) << "diverged at iter " << iter;
    }
}

} // namespace
} // namespace morph
