/**
 * @file
 * Unit tests for bit-granular cacheline field access.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/rng.hh"

namespace morph
{
namespace
{

TEST(Bitfield, SingleByteAlignedField)
{
    CachelineData line{};
    writeBits(line, 0, 8, 0xab);
    EXPECT_EQ(readBits(line, 0, 8), 0xabu);
    EXPECT_EQ(line[0], 0xab);
    EXPECT_EQ(line[1], 0x00);
}

TEST(Bitfield, CrossByteField)
{
    CachelineData line{};
    writeBits(line, 4, 12, 0xfff);
    EXPECT_EQ(readBits(line, 4, 12), 0xfffu);
    EXPECT_EQ(line[0], 0xf0);
    EXPECT_EQ(line[1], 0xff);
    EXPECT_EQ(readBits(line, 0, 4), 0u);
    EXPECT_EQ(readBits(line, 16, 8), 0u);
}

TEST(Bitfield, Full64BitField)
{
    CachelineData line{};
    const std::uint64_t value = 0x0123456789abcdefull;
    writeBits(line, 448, 64, value);
    EXPECT_EQ(readBits(line, 448, 64), value);
}

TEST(Bitfield, LastBit)
{
    CachelineData line{};
    writeBits(line, 511, 1, 1);
    EXPECT_EQ(readBits(line, 511, 1), 1u);
    EXPECT_EQ(line[63], 0x80);
}

TEST(Bitfield, OverwritePreservesNeighbors)
{
    CachelineData line;
    line.fill(0xff);
    writeBits(line, 13, 7, 0);
    EXPECT_EQ(readBits(line, 13, 7), 0u);
    EXPECT_EQ(readBits(line, 0, 13), 0x1fffu);
    EXPECT_EQ(readBits(line, 20, 12), 0xfffu);
}

TEST(Bitfield, SetAndTestBit)
{
    CachelineData line{};
    setBit(line, 100, true);
    EXPECT_TRUE(testBit(line, 100));
    EXPECT_FALSE(testBit(line, 99));
    EXPECT_FALSE(testBit(line, 101));
    setBit(line, 100, false);
    EXPECT_FALSE(testBit(line, 100));
}

TEST(Bitfield, PopcountRange)
{
    CachelineData line{};
    for (unsigned bit : {64u, 70u, 100u, 191u})
        setBit(line, bit, true);
    EXPECT_EQ(popcountBits(line, 64, 128), 4u);
    EXPECT_EQ(popcountBits(line, 64, 37), 3u);  // bits [64,101)
    EXPECT_EQ(popcountBits(line, 65, 127), 3u); // excludes bit 64
    EXPECT_EQ(popcountBits(line, 0, 64), 0u);
}

TEST(Bitfield, PopcountOddWidths)
{
    CachelineData line{};
    for (unsigned bit = 3; bit < 512; bit += 5)
        setBit(line, bit, true);
    unsigned expected = 0;
    for (unsigned bit = 3; bit < 509; bit += 5)
        ++expected;
    EXPECT_EQ(popcountBits(line, 0, 509), expected);
}

/** Random field placements round-trip and never clobber neighbors. */
TEST(BitfieldProperty, RandomRoundTrips)
{
    Rng rng(42);
    for (int iter = 0; iter < 2000; ++iter) {
        const unsigned width = 1 + unsigned(rng.below(64));
        const unsigned offset = unsigned(rng.below(512 - width + 1));
        const std::uint64_t value =
            width == 64 ? rng.next() : rng.next() & ((1ull << width) - 1);

        CachelineData line;
        for (auto &b : line)
            b = std::uint8_t(rng.next());
        CachelineData before = line;

        writeBits(line, offset, width, value);
        ASSERT_EQ(readBits(line, offset, width), value)
            << "offset=" << offset << " width=" << width;

        // All bits outside [offset, offset+width) are untouched.
        for (unsigned bit = 0; bit < 512; ++bit) {
            if (bit >= offset && bit < offset + width)
                continue;
            ASSERT_EQ(testBit(line, bit), testBit(before, bit))
                << "bit " << bit << " clobbered (offset=" << offset
                << " width=" << width << ")";
        }
    }
}

} // namespace
} // namespace morph
