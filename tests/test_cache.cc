/**
 * @file
 * Unit tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace morph
{
namespace
{

TEST(Cache, Construction)
{
    Cache cache(128 * 1024, 8);
    EXPECT_EQ(cache.sizeBytes(), 128u * 1024);
    EXPECT_EQ(cache.ways(), 8u);
    EXPECT_EQ(cache.numSets(), 128u * 1024 / 64 / 8);
}

TEST(Cache, MissThenHit)
{
    Cache cache(4096, 4);
    EXPECT_FALSE(cache.access(1));
    cache.insert(1, false);
    EXPECT_TRUE(cache.access(1));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruVictimSelection)
{
    // One set: 4 ways, 1 set (4 * 64 = 256 bytes).
    Cache cache(256, 4);
    for (LineAddr line = 0; line < 4; ++line)
        cache.insert(line, false);
    // Touch 0 so 1 becomes LRU.
    cache.access(0);
    const auto evicted = cache.insert(100, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 1u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache(256, 4);
    cache.insert(1, true);
    for (LineAddr line = 2; line <= 4; ++line)
        cache.insert(line, false);
    const auto evicted = cache.insert(5, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 1u);
    EXPECT_TRUE(evicted->dirty);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(Cache, WriteAccessSetsDirty)
{
    Cache cache(256, 4);
    cache.insert(1, false);
    cache.access(1, true);
    const auto evicted = cache.invalidate(1);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
}

TEST(Cache, MarkDirty)
{
    Cache cache(256, 4);
    EXPECT_FALSE(cache.markDirty(9));
    cache.insert(9, false);
    EXPECT_TRUE(cache.markDirty(9));
    EXPECT_TRUE(cache.invalidate(9)->dirty);
}

TEST(Cache, InsertExistingUpdatesDirtyOnly)
{
    Cache cache(256, 4);
    cache.insert(1, false);
    const auto evicted = cache.insert(1, true);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_TRUE(cache.invalidate(1)->dirty);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Cache, SetIsolation)
{
    // Lines mapping to different sets never evict each other.
    Cache cache(4096, 2); // 32 sets
    const std::size_t sets = cache.numSets();
    for (LineAddr line = 0; line < sets; ++line)
        EXPECT_FALSE(cache.insert(line, false).has_value());
    for (LineAddr line = 0; line < sets; ++line)
        EXPECT_TRUE(cache.contains(line));
}

TEST(Cache, ConflictWithinSet)
{
    Cache cache(4096, 2); // 32 sets, 2 ways
    const std::size_t sets = cache.numSets();
    // Three lines in the same set: first one evicted.
    cache.insert(0, false);
    cache.insert(sets, false);
    const auto evicted = cache.insert(2 * sets, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 0u);
}

TEST(Cache, ContainsDoesNotTouchLruOrStats)
{
    Cache cache(256, 2); // 2 sets: even lines map to set 0
    cache.insert(0, false);
    cache.insert(2, false);
    const auto hits = cache.stats().hits;
    // contains() must not promote line 0 to MRU.
    EXPECT_TRUE(cache.contains(0));
    EXPECT_EQ(cache.stats().hits, hits);
    const auto evicted = cache.insert(4, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->line, 0u);
}

TEST(Cache, FlushDropsEverything)
{
    Cache cache(256, 4);
    for (LineAddr line = 0; line < 4; ++line)
        cache.insert(line, true);
    cache.flush();
    for (LineAddr line = 0; line < 4; ++line)
        EXPECT_FALSE(cache.contains(line));
}

TEST(Cache, ForEachVisitsValidLines)
{
    Cache cache(256, 4);
    cache.insert(1, true);
    cache.insert(2, false);
    unsigned count = 0, dirty = 0;
    cache.forEach([&](LineAddr, bool d) {
        ++count;
        dirty += d;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(dirty, 1u);
}

TEST(Cache, HitRate)
{
    Cache cache(256, 4);
    cache.insert(1, false);
    cache.access(1);
    cache.access(2);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache(100, 3), ::testing::ExitedWithCode(1), "cache");
}

} // namespace
} // namespace morph
