/**
 * @file
 * Unit tests for the structural source model (src/analysis): the
 * parser-shape edge cases both analyzers lean on — raw strings,
 * multi-line macro invocations, nested classes, operator overloads —
 * plus the member / annotation extraction morphrace is built from.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/lexer.hh"
#include "analysis/source_model.hh"

namespace morph::analysis
{
namespace
{

SourceModel
modelOf(const LexedSource &src)
{
    return buildModel(src);
}

const FunctionDef *
findFn(const SourceModel &m, const std::string &name)
{
    for (const FunctionDef &f : m.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

const VarDecl *
findVar(const SourceModel &m, const std::string &name)
{
    for (const VarDecl &v : m.varDecls)
        if (v.name == name)
            return &v;
    return nullptr;
}

// ---- raw strings ----------------------------------------------------

TEST(SourceModel, RawStringBracesDoNotBreakBodies)
{
    // The brace and quote inside the raw string must not derail the
    // function-body matcher.
    const LexedSource src = lex("t.cc", R"code(
int before() { return 1; }
const char *blob() { return R"(unbalanced { " brace)"; }
int after() { return 2; }
)code");
    const SourceModel m = modelOf(src);
    EXPECT_NE(findFn(m, "before"), nullptr);
    EXPECT_NE(findFn(m, "blob"), nullptr);
    EXPECT_NE(findFn(m, "after"), nullptr);
}

TEST(SourceModel, RawStringIsOneToken)
{
    const LexedSource src =
        lex("t.cc", "auto s = R\"(a } b ( c)\";\n");
    const auto str = std::find_if(
        src.tokens.begin(), src.tokens.end(),
        [](const Token &t) { return t.kind == Tok::String; });
    ASSERT_NE(str, src.tokens.end());
}

// ---- multi-line macro invocations ------------------------------------

TEST(SourceModel, MultiLineAnnotationInvocation)
{
    // An annotation argument list spanning lines still parses, and
    // the annotation line is where the macro name appears.
    const LexedSource src = lex("t.cc", "class C {\n"
                                        "    int v\n"
                                        "        MORPH_GUARDED_BY(\n"
                                        "            mu_);\n"
                                        "    Mutex mu_;\n"
                                        "};\n");
    const SourceModel m = modelOf(src);
    const VarDecl *v = findVar(m, "v");
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(v->annotations.size(), 1u);
    EXPECT_EQ(v->annotations[0].macro, "MORPH_GUARDED_BY");
    ASSERT_EQ(v->annotations[0].args.size(), 1u);
    EXPECT_EQ(v->annotations[0].args[0], "mu_");
    EXPECT_EQ(v->annotations[0].line, 3u);
}

TEST(SourceModel, MultiLineFunctionAnnotation)
{
    const LexedSource src =
        lex("t.cc", "class C {\n"
                    "    void flush()\n"
                    "        MORPH_REQUIRES(lock_,\n"
                    "                       other_);\n"
                    "};\n");
    const SourceModel m = modelOf(src);
    ASSERT_EQ(m.fnAnnotations.size(), 1u);
    EXPECT_EQ(m.fnAnnotations[0].name, "flush");
    ASSERT_EQ(m.fnAnnotations[0].annotations.size(), 1u);
    ASSERT_EQ(m.fnAnnotations[0].annotations[0].args.size(), 2u);
    EXPECT_EQ(m.fnAnnotations[0].annotations[0].args[0], "lock_");
    EXPECT_EQ(m.fnAnnotations[0].annotations[0].args[1], "other_");
}

// ---- nested classes --------------------------------------------------

TEST(SourceModel, NestedClassesQualifyMembers)
{
    const LexedSource src = lex("t.cc", "class Outer {\n"
                                        "    struct Inner {\n"
                                        "        int depth;\n"
                                        "    };\n"
                                        "    int width;\n"
                                        "};\n");
    const SourceModel m = modelOf(src);
    ASSERT_EQ(m.classes.size(), 2u);
    EXPECT_EQ(m.classes[0].name, "Outer");
    EXPECT_EQ(m.classes[1].name, "Outer::Inner");
    const VarDecl *depth = findVar(m, "depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->klass, "Outer::Inner");
    const VarDecl *width = findVar(m, "width");
    ASSERT_NE(width, nullptr);
    EXPECT_EQ(width->klass, "Outer");
}

TEST(SourceModel, EnumClassIsNotAClass)
{
    const LexedSource src =
        lex("t.cc", "enum class Color { kRed, kBlue };\n");
    const SourceModel m = modelOf(src);
    EXPECT_TRUE(m.classes.empty());
}

// ---- operator overloads ----------------------------------------------

TEST(SourceModel, OperatorOverloadsAreShaped)
{
    const LexedSource src =
        lex("t.cc", "struct V {\n"
                    "    bool operator==(const V &o) const\n"
                    "    { return x == o.x; }\n"
                    "    int operator[](int i) const { return i; }\n"
                    "    int operator()(int a, int b) { return a + b; }\n"
                    "    int x;\n"
                    "};\n");
    const SourceModel m = modelOf(src);
    EXPECT_NE(findFn(m, "operator=="), nullptr);
    EXPECT_NE(findFn(m, "operator[]"), nullptr);
    EXPECT_NE(findFn(m, "operator()"), nullptr);
    // The operator bodies must not swallow the trailing member.
    EXPECT_NE(findVar(m, "x"), nullptr);
}

TEST(SourceModel, AssignmentOperatorIsNotAVarDecl)
{
    const LexedSource src =
        lex("t.cc", "struct S {\n"
                    "    S &operator=(const S &o);\n"
                    "    int member;\n"
                    "};\n");
    const SourceModel m = modelOf(src);
    EXPECT_EQ(findVar(m, "o"), nullptr);
    EXPECT_NE(findVar(m, "member"), nullptr);
}

// ---- member / annotation extraction ------------------------------------

TEST(SourceModel, MemberFlags)
{
    const LexedSource src =
        lex("t.cc", "class C {\n"
                    "    static constexpr unsigned kMax = 8;\n"
                    "    static unsigned counter_;\n"
                    "    const char *label_;\n"
                    "    char *const pin_;\n"
                    "    std::atomic<int> refs_;\n"
                    "};\n");
    const SourceModel m = modelOf(src);
    const VarDecl *k = findVar(m, "kMax");
    ASSERT_NE(k, nullptr);
    EXPECT_TRUE(k->isStatic);
    EXPECT_TRUE(k->isConst);
    const VarDecl *c = findVar(m, "counter_");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->isStatic);
    EXPECT_FALSE(c->isConst);
    // Pointer-to-const is a mutable pointer; const pointer is const.
    const VarDecl *label = findVar(m, "label_");
    ASSERT_NE(label, nullptr);
    EXPECT_FALSE(label->isConst);
    const VarDecl *pin = findVar(m, "pin_");
    ASSERT_NE(pin, nullptr);
    EXPECT_TRUE(pin->isConst);
    const VarDecl *refs = findVar(m, "refs_");
    ASSERT_NE(refs, nullptr);
    EXPECT_NE(refs->typeText.find("atomic"), std::string::npos);
}

TEST(SourceModel, FileScopeRecordsOnlyInterestingDecls)
{
    const LexedSource src =
        lex("t.cc", "int forwardDecl;\n"
                    "static unsigned g_count = 0;\n"
                    "thread_local int t_depth = 0;\n"
                    "int g_init = 3;\n");
    const SourceModel m = modelOf(src);
    // Uninitialized, unannotated, non-static decls stay unmodelled
    // (they are usually extern forward declarations).
    EXPECT_EQ(findVar(m, "forwardDecl"), nullptr);
    const VarDecl *g = findVar(m, "g_count");
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(g->isStatic);
    const VarDecl *t = findVar(m, "t_depth");
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->isThreadLocal);
    EXPECT_NE(findVar(m, "g_init"), nullptr);
}

TEST(SourceModel, DefinitionSiteAnnotations)
{
    const LexedSource src =
        lex("t.cc", "void drainAll() MORPH_EXCLUDES(lock_)\n"
                    "{\n"
                    "}\n");
    const SourceModel m = modelOf(src);
    const FunctionDef *f = findFn(m, "drainAll");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->annotations.size(), 1u);
    EXPECT_EQ(f->annotations[0].macro, "MORPH_EXCLUDES");
    ASSERT_EQ(f->annotations[0].args.size(), 1u);
    EXPECT_EQ(f->annotations[0].args[0], "lock_");
}

} // namespace
} // namespace morph::analysis
